"""Integration tests for the COI layer."""

import pytest

from repro.coi import (
    COIDaemon,
    COIEngine,
    COIError,
    OffloadBinary,
    OffloadFunction,
)
from repro.hw import MB, HardwareParams, ServerNode
from repro.osim import boot_node
from repro.sim import Simulator


def saxpy_effect(ctx, args):
    """y <- a*x + y over buffer payloads (small lists stand in for arrays)."""
    a = args["a"]
    x = ctx.buffer_payload(args["x"])
    y = ctx.buffer_payload(args["y"])
    out = [a * xi + yi for xi, yi in zip(x, y)]
    ctx.set_buffer_payload(args["y"], out)
    return sum(out)


def counter_effect(ctx, args):
    ctx.store["count"] = ctx.store.get("count", 0) + 1
    return ctx.store["count"]


def make_binary(image_size=8 * MB, duration=0.05):
    return OffloadBinary(
        name="testapp_mic.so",
        image_size=image_size,
        functions={
            "saxpy": OffloadFunction("saxpy", duration=duration, effect=saxpy_effect),
            "noop": OffloadFunction("noop", duration=0.01),
            "counter": OffloadFunction("counter", duration=0.02, effect=counter_effect),
        },
    )


def make_env(phis=2):
    sim = Simulator()
    node = ServerNode(sim, HardwareParams(phis_per_node=phis))
    host_os, phi_oses = boot_node(node)
    return sim, node, host_os, phi_oses


def boot_and_launch(sim, node, host_os, binary=None, phi_index=0):
    """Spawn daemon(s), host process, and create the offload process."""
    binary = binary or make_binary()
    result = {}

    def setup(sim):
        for phi in node.phis:
            yield from COIDaemon.boot(phi)
        host_proc = yield from host_os.spawn_process("app", image_size=4 * MB)
        engine = COIEngine(node, phi_index)
        coiproc = yield from engine.process_create(host_proc, binary)
        result["host_proc"] = host_proc
        result["coiproc"] = coiproc
        result["engine"] = engine

    t = sim.spawn(setup(sim))
    sim.run_until(t.done)
    assert t.done.ok, t.done.exception
    return result


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run_until(t.done)
    assert t.done.ok, t.done.exception
    return t.done.value


def test_process_create_launches_offload():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]
    assert coiproc.offload_proc.alive
    assert coiproc.offload_proc.os is phis[0]
    # The card binary image is mapped on the card.
    assert coiproc.offload_proc.region("image").size == 8 * MB
    daemon = COIDaemon.of(node.phis[0])
    entry = daemon.entry_for(coiproc.offload_proc)
    assert entry.state == "running"


def test_buffer_create_allocates_local_store():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        buf = yield from coiproc.buffer_create(256 * MB)
        return buf

    buf = run(sim, work(sim))
    assert buf.size == 256 * MB
    # Local store lives in card RAM-FS memory, not process regions.
    assert phis[0].memory.by_category["ramfs"] >= 256 * MB
    card = coiproc.offload_proc.runtime["coi"]
    assert card.local_store_bytes() == 256 * MB
    assert coiproc.offload_proc.store["buffers"][buf.buf_id]["size"] == 256 * MB


def test_buffer_write_read_roundtrip():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        buf = yield from coiproc.buffer_create(16 * MB)
        yield from coiproc.buffer_write(buf, payload=[1, 2, 3])
        data = yield from coiproc.buffer_read(buf)
        return data

    assert run(sim, work(sim)) == [1, 2, 3]


def test_buffer_destroy_frees_card_memory():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        buf = yield from coiproc.buffer_create(100 * MB)
        before = phis[0].memory.by_category["ramfs"]
        yield from coiproc.buffer_destroy(buf)
        after = phis[0].memory.by_category["ramfs"]
        return before, after

    before, after = run(sim, work(sim))
    assert before - after == 100 * MB


def test_run_function_executes_effect():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        x = yield from coiproc.buffer_create(8 * MB)
        y = yield from coiproc.buffer_create(8 * MB)
        yield from coiproc.buffer_write(x, payload=[1.0, 2.0])
        yield from coiproc.buffer_write(y, payload=[10.0, 20.0])
        result = yield from coiproc.run_function(
            "saxpy", {"a": 2.0, "x": x.buf_id, "y": y.buf_id}
        )
        out = yield from coiproc.buffer_read(y)
        return result, out

    result, out = run(sim, work(sim))
    assert out == [12.0, 24.0]
    assert result == 36.0


def test_run_function_unknown_name_rejected():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        with pytest.raises(Exception):
            yield from coiproc.run_function("nope")
        return "ok"

    assert run(sim, work(sim)) == "ok"


def test_async_run_function_and_event_channel():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        seq = yield from coiproc.start_function("noop")
        result = yield coiproc.wait_result(seq)
        return result

    run(sim, work(sim))
    # Async completion also rides the event channel.
    assert any(
        e.get("type") == "coi.event.function_done" for e in coiproc.events_seen
    )


def test_log_channel_carries_function_logs():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        for _ in range(3):
            yield from coiproc.run_function("noop")

    run(sim, work(sim))
    assert len(coiproc.logs) == 3


def test_sequential_functions_preserve_store_state():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        results = []
        for _ in range(4):
            r = yield from coiproc.run_function("counter")
            results.append(r)
        return results

    assert run(sim, work(sim)) == [1, 2, 3, 4]


def test_quiesce_empties_all_channels_and_blocks_new_traffic():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]
    card = coiproc.offload_proc.runtime["coi"]
    state = {}

    def work(sim):
        buf = yield from coiproc.buffer_create(4 * MB)
        # Start a long offload function, then quiesce mid-execution.
        seq = yield from coiproc.start_function("saxpy", {"a": 1.0, "x": buf.buf_id, "y": buf.buf_id})
        yield sim.timeout(0.01)  # function started (duration 0.05)
        yield from coiproc.quiesce()
        yield from card.quiesce()
        state["empty"] = coiproc.channels_empty()
        state["paused_at"] = sim.now
        # New traffic must block: try an RPC from another thread.
        def blocked_rpc(sim):
            yield from coiproc.cmd_client.rpc({"type": "coi.buffer.reregister"})
            state["rpc_done_at"] = sim.now

        sim.spawn(blocked_rpc(sim))
        yield sim.timeout(1.0)  # hold the pause for a full second
        card.release()
        coiproc.release()
        result = yield coiproc.wait_result(seq)
        state["result"] = result
        yield sim.timeout(0.5)

    def setup_payload(sim):
        yield sim.timeout(0)

    run(sim, setup_payload(sim))

    def full(sim):
        buf = yield from coiproc.buffer_create(4 * MB)
        yield from coiproc.buffer_write(buf, payload=[0.0])
        seq = yield from coiproc.start_function(
            "saxpy", {"a": 1.0, "x": buf.buf_id, "y": buf.buf_id}
        )
        yield sim.timeout(0.01)
        yield from coiproc.quiesce()
        yield from card.quiesce()
        state["empty"] = coiproc.channels_empty()
        t_pause = sim.now

        def blocked_rpc(sim):
            yield from coiproc.cmd_client.rpc({"type": "coi.buffer.reregister"})
            state["rpc_done_at"] = sim.now

        sim.spawn(blocked_rpc(sim))
        yield sim.timeout(1.0)
        card.release()
        coiproc.release()
        result = yield coiproc.wait_result(seq)
        state["result"] = result
        state["t_pause"] = t_pause
        yield sim.timeout(0.1)

    run(sim, full(sim))
    assert state["empty"] is True
    # The blocked RPC only completed after release (>= 1 s pause window).
    assert state["rpc_done_at"] >= state["t_pause"] + 1.0
    # The in-flight function's result arrived after resume.
    assert state["result"] == 0.0


def test_host_exit_terminates_offload_and_cleans_localstore():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc, host_proc = env["coiproc"], env["host_proc"]

    def work(sim):
        yield from coiproc.buffer_create(64 * MB)
        host_proc.terminate()
        yield sim.timeout(0.01)

    run(sim, work(sim))
    assert not coiproc.offload_proc.alive
    assert phis[0].memory.by_category.get("ramfs", 0) == 0
    daemon = COIDaemon.of(node.phis[0])
    entry = daemon.entries[coiproc.offload_proc.pid]
    assert entry.state == "terminated"


def test_unexpected_offload_death_marked_crashed():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        yield sim.timeout(0.01)
        coiproc.offload_proc.terminate(code=139)  # simulated crash
        yield sim.timeout(0.01)

    run(sim, work(sim))
    daemon = COIDaemon.of(node.phis[0])
    entry = daemon.entries[coiproc.offload_proc.pid]
    assert entry.state == "crashed"


def test_destroy_tears_down_cleanly():
    sim, node, host_os, phis = make_env()
    env = boot_and_launch(sim, node, host_os)
    coiproc = env["coiproc"]

    def work(sim):
        yield from coiproc.buffer_create(32 * MB)
        yield from coiproc.destroy()
        with pytest.raises(COIError):
            yield from coiproc.run_function("noop")
        return "ok"

    assert run(sim, work(sim)) == "ok"
    assert not coiproc.offload_proc.alive
    assert phis[0].memory.by_category.get("ramfs", 0) == 0


def test_two_offload_processes_on_two_cards():
    sim, node, host_os, phis = make_env(phis=2)
    binary = make_binary()
    result = {}

    def setup(sim):
        for phi in node.phis:
            yield from COIDaemon.boot(phi)
        host_proc = yield from host_os.spawn_process("app", image_size=4 * MB)
        p0 = yield from COIEngine(node, 0).process_create(host_proc, binary)
        p1 = yield from COIEngine(node, 1).process_create(host_proc, binary)
        r0 = yield from p0.run_function("counter")
        r1 = yield from p1.run_function("counter")
        result["r"] = (r0, r1)
        result["os"] = (p0.offload_proc.os, p1.offload_proc.os)

    t = sim.spawn(setup(sim))
    sim.run_until(t.done)
    assert t.done.ok, t.done.exception
    # Independent stores: each card's counter starts at 1.
    assert result["r"] == (1, 1)
    assert result["os"][0] is not result["os"][1]
