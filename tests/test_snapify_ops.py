"""The operation state machine and correlated-completion guarantees.

The tentpole hazard this file pins down: before operations carried
correlation ids, ``snapify_capture``'s completion waiter did a bare
``daemon_ep.recv()``, so two captures overlapping on ONE daemon endpoint
would steal each other's ``CAPTURE_COMPLETE`` — the first waiter got
whichever completion arrived first, regardless of whose capture it was.
``test_overlapping_captures_on_one_endpoint_keep_their_completions`` runs
exactly that schedule (a slow and a fast capture sharing an endpoint, the
fast one completing first) and asserts each handle observed *its own*
bytes; against the old unkeyed recv the sizes come back swapped.

The rest covers the machine itself (legal path, illegal moves, idempotent
failure), the typed results, wait/wait_all error aggregation, the
two-card ``snapshot_application`` path with per-operation timelines, and
the ``operations_quiescent`` fuzz oracle.
"""

import pytest

from repro.check.oracles import operations_quiescent
from repro.coi import OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.obs import operation_timelines
from repro.sim import Simulator
from repro.snapify import (
    OperationManager,
    snapify_capture,
    snapify_pause,
    snapify_resume,
    snapify_t,
    snapify_wait,
    snapshot_application,
)
from repro.snapify.monitor import SnapifyError
from repro.snapify.ops import CAPTURING, DRAINED, FAILED, PAUSING, TRANSFERRING
from repro.testbed import XeonPhiServer


def _binary(name, image_mb):
    return OffloadBinary(
        name=name,
        image_size=image_mb * MB,
        functions={"step": OffloadFunction("step", duration=0.05)},
    )


def _launch(server, image_mbs, device=0, prefix="capp"):
    """One offload process per entry of ``image_mbs``, all on one card."""
    out = []

    def setup(sim):
        for i, image_mb in enumerate(image_mbs):
            host_proc = yield from server.host_os.spawn_process(
                f"{prefix}{i}", image_size=4 * MB
            )
            coiproc = yield from server.engine(device).process_create(
                host_proc, _binary(f"{prefix}{i}.so", image_mb)
            )
            buf = yield from coiproc.buffer_create(4 * MB)
            yield from coiproc.buffer_write(buf, payload=i + 1)
            out.append(coiproc)

    server.run(setup(server.sim))
    return out


# ---------------------------------------------------------------------------
# State machine
# ---------------------------------------------------------------------------


def test_full_lifecycle_produces_phase_accounting():
    sim = Simulator()
    mgr = OperationManager.of(sim)
    box = {}

    def driver(s):
        op = mgr.begin("checkpoint")
        op.transition(PAUSING)
        yield s.timeout(0.10)
        op.transition(DRAINED)
        yield s.timeout(0.05)
        op.transition(CAPTURING)
        yield s.timeout(0.20)
        op.transition(TRANSFERRING)
        yield s.timeout(0.02)
        box["op"] = op
        box["result"] = op.complete()

    sim.spawn(driver(sim), name="lifecycle")
    sim.run()
    res = box["result"]
    assert res.ok and res.state == "DONE" and res.error is None
    assert res.phases["pausing"] == pytest.approx(0.10)
    assert res.phases["drained"] == pytest.approx(0.05)
    assert res.phases["capturing"] == pytest.approx(0.20)
    assert res.phases["transferring"] == pytest.approx(0.02)
    assert res.elapsed == pytest.approx(0.37)
    # complete() is idempotent and the manager remembers the operation.
    assert box["op"].complete() is res
    assert mgr.operations[res.op_id] is box["op"]
    assert mgr.non_terminal() == []


def test_illegal_transition_raises_and_leaves_state_untouched():
    sim = Simulator()
    op = OperationManager.of(sim).begin("checkpoint")
    with pytest.raises(SnapifyError, match="illegal operation transition") as ei:
        op.transition(CAPTURING)  # REQUESTED cannot skip the pause
    assert ei.value.op_id == op.op_id
    assert op.state == "REQUESTED"
    op.complete()
    with pytest.raises(SnapifyError):
        op.transition(PAUSING)  # terminal states are never left


def test_fail_is_idempotent_and_complete_after_fail_raises():
    sim = Simulator()
    op = OperationManager.of(sim).begin("swapout")
    op.transition(PAUSING)
    first = op.fail("card fell off the bus")
    assert first.state == FAILED and not first.ok
    assert first.failed_phase == PAUSING  # defaulted to the wedged state
    # A second report (waiter thread, then the waiting API call) is a no-op.
    assert op.fail("later, different story") is first
    assert op.error == "card fell off the bus"
    with pytest.raises(SnapifyError, match="failed operation"):
        op.complete()


def test_snapify_error_carries_operation_context():
    err = SnapifyError("capture failed", op_id=7, phase=CAPTURING)
    assert err.op_id == 7 and err.phase == CAPTURING
    assert "capture failed [op 7 @ CAPTURING]" in str(err)
    plain = SnapifyError("no live offload process in handle")
    assert plain.op_id is None and plain.phase is None
    assert "[op" not in str(plain)


def test_wait_returns_result_and_wait_all_names_every_failure():
    sim = Simulator()
    mgr = OperationManager.of(sim)
    ok = mgr.begin("checkpoint")
    bad1 = mgr.begin("swapout")
    bad2 = mgr.begin("restore")
    ok.complete()
    bad1.fail("card fell off the bus", phase=CAPTURING)
    bad2.fail("restore image corrupt")

    # All ops are terminal, so the sub-generators never yield.
    with pytest.raises(StopIteration) as done:
        next(mgr.wait(ok))
    assert done.value.value is ok.result

    with pytest.raises(SnapifyError) as ei:
        next(mgr.wait_all([ok, bad1, bad2]))
    msg = str(ei.value)
    assert "2 operation(s) failed" in msg
    assert f"op {bad1.op_id} (swapout)" in msg
    assert f"op {bad2.op_id} (restore)" in msg
    assert "card fell off the bus" in msg
    assert ei.value.op_id == bad1.op_id and ei.value.phase == CAPTURING

    with pytest.raises(StopIteration) as all_done:
        next(mgr.wait_all([ok, bad1, bad2], raise_on_error=False))
    assert [r.ok for r in all_done.value.value] == [True, False, False]


# ---------------------------------------------------------------------------
# The completion-stealing regression (tentpole hazard)
# ---------------------------------------------------------------------------


def _solo_capture_size(image_mb):
    """Reference: the offload-snapshot byte count a lone capture observes."""
    server = XeonPhiServer()
    [coiproc] = _launch(server, [image_mb], prefix="solo")

    def driver(sim):
        snap = snapify_t(snapshot_path="/snap/solo", coiproc=coiproc)
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=False)
        yield from snapify_wait(snap)
        yield from snapify_resume(snap)
        return snap

    snap = server.run(driver(server.sim))
    return snap.sizes["offload_snapshot"]


def test_overlapping_captures_on_one_endpoint_keep_their_completions():
    """Two captures in flight on ONE daemon endpoint: the slow (32 MB) one
    is issued first, the fast (8 MB) one completes first. With the old
    unkeyed recv the first waiter swallowed the fast capture's completion
    and both handles reported swapped sizes; with op-id demultiplexing each
    observes exactly what a solo run of its own process observes."""
    server = XeonPhiServer()
    big, small = _launch(server, [32, 8], prefix="steal")
    # Route both handles over one SERVICE connection — the shared-endpoint
    # schedule the demux exists for.
    small.daemon_ep = big.daemon_ep

    def driver(sim):
        a = snapify_t(snapshot_path="/snap/steal_big", coiproc=big)
        b = snapify_t(snapshot_path="/snap/steal_small", coiproc=small)
        yield from snapify_pause(a)
        yield from snapify_pause(b)
        yield from snapify_capture(a, terminate=False)  # slow, completes last
        yield from snapify_capture(b, terminate=False)  # fast, completes first
        yield from snapify_wait(a)
        yield from snapify_wait(b)
        yield from snapify_resume(a)
        yield from snapify_resume(b)
        return a, b

    a, b = server.run(driver(server.sim))
    assert a.sizes["offload_snapshot"] == _solo_capture_size(32)
    assert b.sizes["offload_snapshot"] == _solo_capture_size(8)
    assert a.sizes["offload_snapshot"] > b.sizes["offload_snapshot"]

    ra, rb = a.op.result, b.op.result
    assert ra.ok and rb.ok
    assert ra.op_id != rb.op_id
    assert ra.pid == big.offload_proc.pid
    assert rb.pid == small.offload_proc.pid
    assert ra.snapshot_path == "/snap/steal_big"
    assert rb.snapshot_path == "/snap/steal_small"
    # The slow capture also *took longer* end to end — stealing would have
    # closed it at the fast capture's completion time.
    assert ra.phases["capturing"] > rb.phases["capturing"]


# ---------------------------------------------------------------------------
# snapshot_application across cards
# ---------------------------------------------------------------------------


def test_snapshot_application_across_cards_attributes_results():
    """One application spanning two cards, snapshotted concurrently: every
    operation completes DONE, results come back in input order with the
    right pids and sizes, and the trace yields one per-operation timeline
    with nonzero pause/capture phases."""
    sim = Simulator(trace=True)
    server = XeonPhiServer(sim=sim)
    snaps = []

    def setup(s):
        host_proc = yield from server.host_os.spawn_process(
            "spanning", image_size=4 * MB
        )
        for dev in range(2):
            coiproc = yield from server.engine(dev).process_create(
                host_proc, _binary(f"span{dev}.so", 8)
            )
            buf = yield from coiproc.buffer_create((dev + 1) * 4 * MB)
            yield from coiproc.buffer_write(buf, payload=dev + 1)
            snaps.append(
                snapify_t(snapshot_path=f"/snap/span{dev}", coiproc=coiproc)
            )

    server.run(setup(sim))

    def driver(s):
        return (yield from snapshot_application(snaps, kind="checkpoint"))

    results = server.run(driver(sim))
    assert len(results) == 2 and all(r.ok for r in results)
    assert [r.pid for r in results] == [
        snap.coiproc.offload_proc.pid for snap in snaps
    ]
    assert len({r.op_id for r in results}) == 2
    # Per-card attribution of the local-store drain: card 1 held twice the
    # buffer bytes of card 0.
    assert results[1].sizes["local_store"] == 2 * results[0].sizes["local_store"]

    timelines = {tl.op_id: tl for tl in operation_timelines(sim.trace)}
    for r in results:
        tl = timelines[r.op_id]
        assert tl.final_state == "DONE" and tl.error is None
        assert tl.pid == r.pid
        phases = tl.phases()
        assert phases["pausing"] > 0 and phases["capturing"] > 0
        assert tl.elapsed == pytest.approx(r.elapsed)


# ---------------------------------------------------------------------------
# Quiescence oracle
# ---------------------------------------------------------------------------


def test_operations_quiescent_oracle():
    from types import SimpleNamespace

    server = XeonPhiServer()
    # No manager ever created: clean, and the oracle must not create one.
    assert operations_quiescent(server) == []
    assert OperationManager.peek(server.sim) is None

    mgr = OperationManager.of(server.sim)
    op = mgr.begin("checkpoint")
    violations = operations_quiescent(server)
    assert len(violations) == 1
    assert f"op {op.op_id}" in violations[0].detail
    assert "REQUESTED" in violations[0].detail

    op.complete()
    assert operations_quiescent(server) == []

    # An operation whose processes died under it is abandoned, not leaked.
    ghost_snap = SimpleNamespace(
        coiproc=SimpleNamespace(host_proc=None, offload_proc=None, dead=True)
    )
    ghost = mgr.begin("swapout", ghost_snap)
    assert not ghost.is_terminal
    assert operations_quiescent(server) == []
    assert ghost.abandoned()
