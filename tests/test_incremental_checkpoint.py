"""End-to-end tests of incremental checkpoints and the in-memory tier.

Covers the chain format (base + deltas reassemble byte-equal to a full
capture; CRC tamper and epoch gaps fail loudly), the three restore paths
(memory-tier hit, partner copy after local loss, NFS-demoted chain), the
fleet plumbing (BACKGROUND demotion tickets, re-home after a health sweep
flags a card), the delta statistics on :class:`OperationResult`, and smoke
runs of the ``incremental:*`` fuzz scenarios.
"""

import pytest

from repro.blcr import ChainError, capture_incremental, reassemble
from repro.calibration import paper_testbed
from repro.coi import OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.obs.registry import MetricsRegistry
from repro.snapify import (
    BACKGROUND,
    MAINTENANCE,
    CardRef,
    FleetManager,
    snapify_restore,
    snapify_resume,
    snapify_t,
)
from repro.snapify.fleet import DONE, CardHealth, HealthReport
from repro.snapify.ops import capture_sequence
from repro.snapify_io.memtier import TIER_CATEGORY, MemoryTier, chain_path
from repro.testbed import XeonPhiFleet, XeonPhiServer


def accumulate_effect(ctx, args):
    data = ctx.buffer_payload(args["buf"]) or 0
    ctx.store["acc"] = ctx.store.get("acc", 0) + data
    return ctx.store["acc"]


def make_binary():
    return OffloadBinary(
        name="inc_test.so",
        image_size=8 * MB,
        functions={
            "step": OffloadFunction("step", duration=0.05, effect=accumulate_effect),
        },
    )


def launch(server, buffer_mb=16):
    out = {}

    def setup(sim):
        host_proc = yield from server.host_os.spawn_process("app", image_size=4 * MB)
        coiproc = yield from server.engine(0).process_create(host_proc, make_binary())
        buf = yield from coiproc.buffer_create(buffer_mb * MB)
        yield from coiproc.buffer_write(buf, payload=7)
        out["host_proc"], out["coiproc"], out["buf"] = host_proc, coiproc, buf

    server.run(setup(server.sim))
    MemoryTier.of(server.sim).register_server(server)
    return out


def dirty_some_pages(proc, epoch):
    """Write ~4% of every region at an epoch-walking offset."""
    for region in proc.regions.values():
        span = max(1, region.size // 25)
        offset = (epoch * 7919 * 4096) % max(1, region.size - span)
        region.write(offset, span)


def counters(sim):
    return MetricsRegistry.of(sim).snapshot()["counters"]


# ---------------------------------------------------------------------------
# Chain format
# ---------------------------------------------------------------------------


def test_chain_reassembles_equal_to_full_capture():
    """Base + deltas must reproduce exactly what a full capture at the same
    epoch would record — reassemble's fingerprint verification is against
    the live state hashed at the last capture."""
    server = XeonPhiServer()
    env = launch(server)
    proc = env["coiproc"].offload_proc
    images = []
    for epoch in range(4):
        images.append(capture_incremental(proc, "/t/chain"))
        dirty_some_pages(proc, epoch)
        proc.store["iter"] = epoch
    # The writes after the last capture must NOT leak into the chain.
    ctx = reassemble(images[:1], verify=True)
    assert ctx.nthreads >= 1
    ctx = reassemble(images, verify=True)
    assert ctx.store.get("iter") == 2  # state as of the epoch-3 capture
    assert images[0].kind == "base"
    assert all(img.kind == "delta" for img in images[1:])
    # Deltas ship a fraction of the logical image.
    for img in images[1:]:
        assert 0 < img.delta_bytes < img.logical_bytes


def test_crc_tamper_and_epoch_gap_fail_loudly():
    server = XeonPhiServer()
    env = launch(server)
    proc = env["coiproc"].offload_proc
    images = []
    for epoch in range(3):
        images.append(capture_incremental(proc, "/t/tamper"))
        dirty_some_pages(proc, epoch)
    # Bit-flip one link's stored CRC.
    images[1].crc ^= 0x1
    with pytest.raises(ChainError, match="CRC mismatch"):
        reassemble(images, verify=True)
    images[1].crc ^= 0x1
    # Payload tamper after seal: CRC recomputation diverges.
    images[1].store["evil"] = True
    with pytest.raises(ChainError, match="CRC mismatch"):
        reassemble(images, verify=True)
    del images[1].store["evil"]
    # Missing middle link: epoch continuity is enforced.
    with pytest.raises(ChainError, match="epoch gap"):
        reassemble([images[0], images[2]], verify=True)
    # A chain must start with its base.
    with pytest.raises(ChainError, match="base"):
        reassemble(images[1:], verify=True)
    # Intact chain still reassembles after the round-trip of tampering.
    reassemble(images, verify=True)


def test_missed_write_diverges_fingerprint():
    """A write that escapes the dirty bitmap leaves a stale page version
    behind — reassembly must refuse to restore silently-wrong state."""
    server = XeonPhiServer()
    env = launch(server)
    proc = env["coiproc"].offload_proc
    images = [capture_incremental(proc, "/t/missed")]
    dirty_some_pages(proc, 0)
    # Sneak a write past the tracker (version bumps, bitmap stays clean —
    # as if the write hook was bypassed): pick a page the delta won't ship.
    region = max(proc.regions.values(), key=lambda r: r.size)
    missed = region.tracker.bitmap.n_pages - 1
    assert not region.tracker.bitmap.is_dirty(missed)
    region.tracker.page_versions[missed] = (
        region.tracker.page_versions.get(missed, 0) + 1
    )
    images.append(capture_incremental(proc, "/t/missed"))
    with pytest.raises(ChainError, match="diverges"):
        reassemble(images, verify=True)


# ---------------------------------------------------------------------------
# Capture protocol: OperationResult delta statistics
# ---------------------------------------------------------------------------


def test_incremental_capture_reports_delta_stats():
    server = XeonPhiServer()
    env = launch(server)
    coiproc = env["coiproc"]
    results = []

    def driver(sim):
        snap = snapify_t("/snap/inc1", coiproc=coiproc, incremental=True)
        for epoch in range(2):
            results.append((yield from capture_sequence(snap)))
            dirty_some_pages(coiproc.offload_proc, epoch)
        return snap

    snap = server.run(driver(server.sim))
    base, delta = results
    assert base.incremental and delta.incremental
    assert base.tier == "memtier" and delta.tier == "memtier"
    # Epoch 0 ships the full image; epoch 1 ships only dirty pages.
    assert base.delta_bytes == base.logical_bytes
    assert 0 < delta.delta_bytes < delta.logical_bytes
    assert delta.shipped_bytes == delta.delta_bytes
    # The logical size keeps reporting the full image (trace/top consumers
    # must use shipped_bytes for transfer math).
    assert snap.sizes["offload_snapshot"] == delta.logical_bytes
    assert snap.sizes["offload_delta"] == delta.delta_bytes
    assert "capturing_delta" in delta.phases
    assert "replicating" in delta.phases
    # Both links landed in the tier, replicated to the partner card.
    entry = MemoryTier.of(server.sim).lookup("/snap/inc1")
    assert len(entry.links) == 2
    assert all(link.replicated for link in entry.links)
    assert all(
        any(c.role == "partner" and c.intact for c in link.copies)
        for link in entry.links
    )


def test_noninc_capture_has_no_delta_stats():
    server = XeonPhiServer()
    env = launch(server)
    coiproc = env["coiproc"]

    def driver(sim):
        snap = snapify_t("/snap/classic", coiproc=coiproc)
        return (yield from capture_sequence(snap))

    result = server.run(driver(server.sim))
    assert not result.incremental
    assert result.delta_bytes is None and result.logical_bytes is None
    assert result.tier is None
    assert result.shipped_bytes == result.sizes["offload_snapshot"] > 0


# ---------------------------------------------------------------------------
# Restore paths
# ---------------------------------------------------------------------------


def _capture_epochs(server, env, path, n=3):
    """Run n incremental capture epochs, terminating the proc on the last
    (swap-out style), advancing app state between epochs. Returns the snap."""
    coiproc = env["coiproc"]

    def driver(sim):
        snap = snapify_t(path, coiproc=coiproc, incremental=True)
        for epoch in range(n):
            seq = yield from coiproc.start_function("step", {"buf": env["buf"].buf_id})
            yield coiproc.wait_result(seq)
            yield from capture_sequence(snap, terminate=(epoch == n - 1))
            dirty_some_pages(coiproc.offload_proc, epoch)
        return snap

    return server.run(driver(server.sim))


def test_restore_from_memory_tier_hit():
    server = XeonPhiServer()
    env = launch(server)
    snap = _capture_epochs(server, env, "/snap/tier_hit")

    def restore(sim):
        new = yield from snapify_restore(snap, server.engine(0), env["host_proc"])
        yield from snapify_resume(snap)
        return new

    new = server.run(restore(server.sim))
    assert new.offload_proc.alive
    # Three "step" calls ran before the final capture: acc == 7 * 3.
    assert new.offload_proc.store.get("acc") == 21
    c = counters(server.sim)
    assert c.get("memtier.hits.local", 0) >= 3  # every link served in place
    assert c.get("memtier.hits.nfs", 0) == 0


def test_restore_from_partner_after_local_loss():
    """Kill the capture card after the chain is replicated: every link must
    be served from partner copies on the surviving cards."""
    server = XeonPhiServer(params=paper_testbed(phis_per_node=3))
    env = launch(server)
    snap = _capture_epochs(server, env, "/snap/partner")
    # The capture card (and every local copy) is gone.
    server.node.phis[0].failed = True

    def restore(sim):
        new = yield from snapify_restore(snap, server.engine(2), env["host_proc"])
        yield from snapify_resume(snap)
        return new

    new = server.run(restore(server.sim))
    assert new.offload_proc.alive
    assert new.offload_proc.store.get("acc") == 21
    assert new.offload_proc.os is server.phi_os(2)
    c = counters(server.sim)
    assert c.get("memtier.hits.partner", 0) >= 1
    # The dead card's copies are recorded as lost, not still counted.
    entry = MemoryTier.of(server.sim).lookup("/snap/partner")
    assert all(
        not c_.intact for link in entry.links for c_ in link.copies
        if c_.home == "n0.mic0"
    )


def test_restore_from_nfs_demoted_chain():
    """With every memory copy released, restore falls back to the demoted
    chain file on the host export — same app state, one more hop."""
    server = XeonPhiServer()
    env = launch(server)
    snap = _capture_epochs(server, env, "/snap/demoted")
    tier = MemoryTier.of(server.sim)

    def demote(sim):
        total = yield from tier.demote("/snap/demoted", server.host_os, release=True)
        return total

    total = server.run(demote(server.sim))
    entry = tier.lookup("/snap/demoted")
    assert entry.demoted
    assert total == sum(link.image.delta_bytes for link in entry.links)
    assert server.host_os.fs.exists(chain_path("/snap/demoted"))
    # Releasing freed every tier byte on every card.
    for phi in server.node.phis:
        assert phi.memory.by_category.get(TIER_CATEGORY, 0) == 0

    def restore(sim):
        new = yield from snapify_restore(snap, server.engine(1), env["host_proc"])
        yield from snapify_resume(snap)
        return new

    new = server.run(restore(server.sim))
    assert new.offload_proc.alive
    assert new.offload_proc.store.get("acc") == 21
    assert counters(server.sim).get("memtier.hits.nfs", 0) >= 1


# ---------------------------------------------------------------------------
# Fleet plumbing: demotion tickets and health-sweep re-homing
# ---------------------------------------------------------------------------


def test_demotion_ticket_runs_at_background_priority():
    server = XeonPhiServer()
    env = launch(server)
    _capture_epochs(server, env, "/snap/bgdemote", n=2)
    manager = FleetManager(sim=server.sim, name="tiermgr")
    ticket = manager.submit_demotion("demote:bg", "/snap/bgdemote", server.host_os)
    assert ticket.priority == BACKGROUND

    def drive(sim):
        result = yield from manager.collect([ticket])
        return result

    result = server.run(drive(server.sim))
    t = result.tickets["demote:bg"]
    assert t.state == DONE
    entry = MemoryTier.of(server.sim).lookup("/snap/bgdemote")
    assert entry.demoted
    # Demotion without release keeps the fast copies resident.
    assert any(c.intact for link in entry.links for c in link.copies)
    chain_file = chain_path("/snap/bgdemote")
    assert server.host_os.fs.stat(chain_file).size == sum(
        link.image.delta_bytes for link in entry.links
    )


def test_rehome_moves_copies_off_sweep_flagged_card():
    """A health sweep flagging a (still alive) card must trigger MAINTENANCE
    re-home tickets that move every tier copy off it."""
    fleet = XeonPhiFleet("dev2")
    server = fleet.servers[0]
    env = launch(server)
    _capture_epochs(server, env, "/fleet/rehome", n=2)
    manager = FleetManager(fleet)
    tier = manager.memory_tier()
    entry = tier.lookup("/fleet/rehome")
    assert any(
        c.intact and c.home == "n0.mic0"
        for link in entry.links for c in link.copies
    )
    report = HealthReport(
        [CardHealth(card="n0.mic0", ok=False, latency=None, error="straggling"),
         CardHealth(card="n0.mic1", ok=True, latency=0.001)],
        when=server.sim.now,
    )
    tickets = manager.rehome_after_sweep(report)
    assert len(tickets) == 1
    assert tickets[0].priority == MAINTENANCE

    def drive(sim):
        result = yield from manager.collect(tickets)
        return result

    result = server.run(drive(server.sim))
    t = result.tickets["rehome:n0.mic0"]
    assert t.state == DONE
    assert t.result == 2  # both links' copies moved
    # Nothing intact remains on the flagged card; the chain survives whole.
    assert not any(
        c.intact and c.home == "n0.mic0"
        for link in entry.links for c in link.copies
    )
    assert all(link.intact_copies() for link in entry.links)
    reassemble(entry.images, verify=True)


def test_partner_for_skips_unhealthy_cards():
    fleet = XeonPhiFleet("dev2")
    manager = FleetManager(fleet)
    card0 = CardRef(node=0, device=0)
    assert manager.partner_for(card0) == "n0.mic1"
    fleet.phi(CardRef(node=0, device=1)).failed = True
    assert manager.partner_for(card0) is None
    fleet.phi(CardRef(node=0, device=1)).failed = False
    assert manager.partner_for(card0) == "n0.mic1"


# ---------------------------------------------------------------------------
# Fuzz scenario smoke
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["delta_chain", "partner_loss", "demotion_race"])
def test_incremental_scenarios_smoke(mode):
    from repro.check.fuzz import default_faults
    from repro.check.scenarios import run_scenario

    name = f"incremental:{mode}"
    for seed in (0, 1):
        result = run_scenario(name, seed=seed, faults=default_faults(name, seed))
        assert result.ok, result.summary()


def test_scenario_names_include_incremental():
    from repro.check.scenarios import scenario_names

    names = scenario_names()
    for mode in ("delta_chain", "partner_loss", "demotion_race"):
        assert f"incremental:{mode}" in names
