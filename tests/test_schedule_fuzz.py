"""The schedule-exploration fuzzer: seeded kernels, oracles, artifacts, CLI.

Covers the repro.check tentpole end to end: ``Simulator(schedule_seed=N)``
perturbs same-timestamp ties deterministically (and ``None`` stays the
plain counter), every (scenario, seed, faults) triple replays
byte-identically, the fuzz sweep passes all invariant oracles, and a
failure round-trips through a repro artifact into a one-command replay.
"""

import json

import pytest

from repro.check import (
    CHECKPOINT_FAULT_PHASES,
    ReproArtifact,
    fuzz,
    replay_artifact,
    run_scenario,
)
from repro.check.fuzz import default_faults
from repro.check.scenarios import (
    INCREMENTAL_MODES,
    PLUGIN_MODES,
    SCENARIOS,
    TRANSFER_FAULT_MODES,
    scenario_names,
)
from repro.obs.cli import main
from repro.sim import Simulator

# ---------------------------------------------------------------------------
# Kernel: seeded tie-break perturbation
# ---------------------------------------------------------------------------


def _tie_order(seed, n=6):
    """Spawn n same-time threads; return the order they first ran in."""
    sim = Simulator(schedule_seed=seed)
    out = []

    def w(tag):
        out.append(tag)
        yield sim.timeout(0.001)

    for i in range(n):
        sim.spawn(w(i), name=f"w{i}")
    sim.run()
    return tuple(out)


def test_unseeded_ties_pop_in_insertion_order():
    assert _tie_order(None) == tuple(range(6))


def test_seeded_schedule_replays_identically():
    for seed in (0, 1, 7, 12345):
        assert _tie_order(seed) == _tie_order(seed)


def test_some_seed_perturbs_the_schedule():
    base = _tie_order(None)
    assert any(_tie_order(s) != base for s in range(10))


def test_seeded_mode_is_still_a_legal_schedule():
    """Time ordering is never violated: only same-time ties are permuted."""
    sim = Simulator(schedule_seed=3)
    order = []

    def w(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.spawn(w(0.3, "late"), name="late")
    sim.spawn(w(0.1, "early"), name="early")
    sim.spawn(w(0.2, "mid"), name="mid")
    sim.run()
    assert order == ["early", "mid", "late"]


def test_schedule_seed_recorded_on_simulator():
    assert Simulator().schedule_seed is None
    assert Simulator(schedule_seed=42).schedule_seed == 42


# ---------------------------------------------------------------------------
# Scenarios: replayability and oracle-checked sweeps
# ---------------------------------------------------------------------------


def test_scenario_replay_is_byte_identical():
    a = run_scenario("swap", seed=11, capture_trace=True)
    b = run_scenario("swap", seed=11, capture_trace=True)
    assert a.ok and b.ok
    assert a.trace_digest == b.trace_digest
    assert a.final_time == b.final_time


def test_faulted_scenario_replay_is_byte_identical():
    faults = [{"device": 1, "at": 0.4, "repair_after": 0.5}]
    a = run_scenario("checkpoint", seed=5, faults=faults, capture_trace=True)
    b = run_scenario("checkpoint", seed=5, faults=faults, capture_trace=True)
    assert a.trace_digest == b.trace_digest


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("nonsense", seed=0)


def test_scenario_names_expand_fault_phases():
    names = scenario_names()
    parameterized = {"checkpoint_fault", "transfer_fault", "fleet",
                     "incremental", "plugin", "replication"}
    assert set(SCENARIOS) - parameterized <= set(names)
    for mode in ("card_failure", "team_wipe", "lagging_replica"):
        assert f"replication:{mode}" in names
    for phase in CHECKPOINT_FAULT_PHASES:
        assert f"checkpoint_fault:{phase}" in names
    for mode in TRANSFER_FAULT_MODES:
        assert f"transfer_fault:{mode}" in names
    assert "fleet:rack8" in names
    for mode in INCREMENTAL_MODES:
        assert f"incremental:{mode}" in names
    for mode in PLUGIN_MODES:
        assert f"plugin:{mode}" in names


def test_fuzz_smoke_all_scenarios_pass_oracles():
    """Every scenario under a handful of seeds (with the default fault
    plan) satisfies every invariant oracle. CI runs the wide version."""
    report = fuzz(seeds=range(3))
    assert report.runs, "sweep produced no runs"
    assert report.ok, report.summary()


def test_default_fault_plan_is_deterministic():
    for scenario in scenario_names():
        for seed in range(6):
            assert default_faults(scenario, seed) == default_faults(scenario, seed)


# ---------------------------------------------------------------------------
# Artifacts: failure -> JSON -> one-command replay
# ---------------------------------------------------------------------------


def test_artifact_roundtrip(tmp_path):
    result = run_scenario("migrate", seed=2)
    art = ReproArtifact.from_result(result)
    path = art.save(str(tmp_path / art.filename()))
    loaded = ReproArtifact.load(path)
    assert loaded.scenario == "migrate"
    assert loaded.seed == 2
    assert loaded.faults == result.faults
    assert "fuzz --replay" in loaded.replay_command(path)
    # The file is plain, versioned JSON.
    data = json.loads(open(path).read())
    assert data["version"] == 1


def test_artifact_replay_reruns_the_same_triple(tmp_path):
    art = ReproArtifact(scenario="checkpoint_fault:after_pause", seed=4)
    path = art.save(str(tmp_path / art.filename()))
    loaded, result = replay_artifact(path)
    assert loaded.scenario == result.scenario == "checkpoint_fault:after_pause"
    assert result.seed == 4
    assert result.outcome == "faulted"
    assert result.ok


def test_fuzz_writes_artifacts_only_on_failure(tmp_path):
    report = fuzz(scenarios=["swap"], seeds=range(2), artifact_dir=str(tmp_path))
    assert report.ok
    assert report.artifact_paths == []
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# CLI: snapify fuzz
# ---------------------------------------------------------------------------


def test_cli_fuzz_smoke(capsys):
    rc = main(["fuzz", "--seeds", "2", "--scenario", "swap"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2 runs" in out and "0 failed" in out


def test_cli_fuzz_scenario_prefix_selects_phases(capsys):
    rc = main(["fuzz", "--seeds", "1", "--scenario", "checkpoint_fault"])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"{len(CHECKPOINT_FAULT_PHASES)} runs" in out


def test_cli_fuzz_rejects_unknown_scenario(capsys):
    assert main(["fuzz", "--seeds", "1", "--scenario", "bogus"]) == 2


def test_cli_fuzz_replay_of_clean_artifact(tmp_path, capsys):
    art = ReproArtifact(scenario="swap", seed=1)
    path = art.save(str(tmp_path / "a.json"))
    rc = main(["fuzz", "--replay", path])
    out = capsys.readouterr().out
    assert rc == 0
    assert "did NOT reproduce" in out
