"""Concurrency stress: several applications, overlapping Snapify operations,
and concurrent host threads hammering one pipeline — all under the drain
protocol, all verifying their results."""

import pytest

from repro.apps.openmp import make_app, run_benchmark, suite, profile
from repro.apps import expected_checksum
from repro.coi import COIEngine, OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.snapify import checkpoint_offload_app, snapify_t
from repro.snapify.usecases import snapify_migration
from repro.testbed import XeonPhiServer


def test_openmp_helpers():
    server = XeonPhiServer()
    app = run_benchmark(server, "MC", iterations=8)
    assert app.finished
    assert len(list(suite())) == 8
    with pytest.raises(KeyError):
        profile("NOPE")


def test_three_apps_with_interleaved_snapshots():
    """Three tenants across two cards; each gets checkpointed or migrated
    while the others keep running; all three finish correctly."""
    server = XeonPhiServer()
    apps = [
        make_app(server, "MC", iterations=60, device=0),
        make_app(server, "KM", iterations=400, device=0),
        make_app(server, "MD", iterations=1200, device=1),
    ]

    def driver(sim):
        for app in apps:
            yield from app.launch()
        yield sim.timeout(0.4)

        # Checkpoint app 0 while 1 and 2 run.
        snap = snapify_t(snapshot_path="/stress/a0", coiproc=apps[0].coiproc)
        yield from checkpoint_offload_app(snap)

        # Migrate app 1 from mic0 to mic1 under the application gate.
        gate = apps[1].host_proc.runtime["app_gate"]
        yield gate.acquire(owner="stress")
        try:
            new, _ = yield from snapify_migration(
                apps[1].coiproc, server.engine(1), snapshot_path="/stress/a1"
            )
            apps[1].host_proc.runtime["coi_handle"] = new
        finally:
            gate.release()

        # Checkpoint app 2 (on mic1, now shared with app 1).
        snap2 = snapify_t(snapshot_path="/stress/a2", coiproc=apps[2].coiproc)
        yield from checkpoint_offload_app(snap2)

        for app in apps:
            yield app.host_proc.main_thread.done

    server.run(driver(server.sim))
    for app in apps:
        assert app.verify(), app.name


def test_concurrent_host_threads_share_one_pipeline():
    """Multiple host threads issue run-functions on ONE offload process;
    the pipeline serializes them; a pause in the middle blocks and releases
    all of them without loss."""
    server = XeonPhiServer()

    def accum(ctx, args):
        ctx.store["sum"] = ctx.store.get("sum", 0) + args["v"]
        return ctx.store["sum"]

    binary = OffloadBinary("acc.so", 4 * MB,
                           {"add": OffloadFunction("add", 2e-3, accum)})
    out = {"results": []}

    def driver(sim):
        host = yield from server.host_os.spawn_process("multi", image_size=4 * MB)
        coiproc = yield from COIEngine(server.node, 0).process_create(host, binary)

        def caller(sim, k):
            for j in range(10):
                r = yield from coiproc.run_function("add", {"v": 1})
                out["results"].append(r)

        threads = [host.spawn_thread(caller(sim, k), name=f"caller{k}")
                   for k in range(4)]

        # Pause mid-storm; everything must drain and resume.
        yield sim.timeout(0.02)
        from repro.snapify import snapify_pause, snapify_resume

        snap = snapify_t(snapshot_path="/stress/pipe", coiproc=coiproc)
        yield from snapify_pause(snap)
        assert coiproc.channels_empty()
        yield sim.timeout(0.5)
        yield from snapify_resume(snap)

        for t in threads:
            yield t.done
        final = yield from coiproc.run_function("add", {"v": 0})
        return final

    final = server.run(driver(server.sim))
    # 40 increments of 1, exactly once each.
    assert final == 40
    assert sorted(out["results"]) == list(range(1, 41))


def test_full_suite_smoke():
    """Every benchmark in the suite runs (short) and verifies."""
    for p in suite():
        server = XeonPhiServer()
        app = run_benchmark(server, p.name, iterations=5)
        assert app.host_proc.store["checksum"] == expected_checksum(5)
