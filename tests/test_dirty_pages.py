"""Property-based tests of dirty-page tracking.

The shadow-copy oracle: apply the same random write trace to a real byte
buffer and to the tracker, then diff the buffer page-by-page — the pages
that actually changed must be exactly the pages the bitmap claims. Plus
directed cases for the edges property search rarely lands on: writes that
straddle page boundaries by one byte, a partial tail page, zero-length
writes, and version continuity across epoch rollovers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blcr.dirty import PAGE_SIZE, DirtyBitmap, RegionTracker, page_span
from repro.osim.process import MemoryRegion

prop = settings(max_examples=60, deadline=None)

REGION_SIZE = 40 * PAGE_SIZE + 1234  # deliberately a partial tail page

writes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=REGION_SIZE + 2 * PAGE_SIZE),
        st.integers(min_value=0, max_value=6 * PAGE_SIZE),
    ),
    max_size=30,
)


def shadow_dirty_pages(trace, size):
    """Ground truth: stamp a real buffer, diff it page-by-page."""
    buf = bytearray(size)
    for stamp, (offset, nbytes) in enumerate(trace, start=1):
        lo = min(offset, size)
        hi = min(offset + nbytes, size)
        for i in range(lo, hi):
            buf[i] = 1 + (stamp % 250)
    n_pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
    return sorted(
        p for p in range(n_pages)
        if any(buf[p * PAGE_SIZE:(p + 1) * PAGE_SIZE])
    )


@prop
@given(trace=writes)
def test_random_writes_match_shadow_copy_diff(trace):
    tracker = RegionTracker(REGION_SIZE)
    for offset, nbytes in trace:
        tracker.note_write(offset, nbytes)
    assert tracker.bitmap.dirty_pages == shadow_dirty_pages(trace, REGION_SIZE)


@prop
@given(trace=writes)
def test_versions_bump_once_per_touching_write(trace):
    tracker = RegionTracker(REGION_SIZE)
    expected = {}
    n_pages = tracker.bitmap.n_pages
    for offset, nbytes in trace:
        tracker.note_write(offset, nbytes)
        # Same clamp the tracker applies: bytes past the region's end (the
        # tail page is partial) touch nothing.
        nbytes = min(nbytes, max(0, REGION_SIZE - offset))
        if nbytes == 0:
            continue
        first, stop = page_span(offset, nbytes)
        for p in range(first, min(stop, n_pages)):
            expected[p] = expected.get(p, 0) + 1
    assert tracker.all_versions() == expected
    # versions_for fills untouched pages with version 0
    probe = list(range(n_pages))
    vmap = tracker.versions_for(probe)
    assert all(vmap[p] == expected.get(p, 0) for p in probe)


@prop
@given(trace=writes, cut=st.integers(min_value=0, max_value=30))
def test_epoch_rollover_clears_bitmap_keeps_versions(trace, cut):
    """A capture (roll_epoch) forgets dirtiness, never write history."""
    tracker = RegionTracker(REGION_SIZE)
    before, after = trace[:cut], trace[cut:]
    for offset, nbytes in before:
        tracker.note_write(offset, nbytes)
    versions_at_capture = tracker.all_versions()
    assert tracker.roll_epoch() == 1
    assert tracker.bitmap.dirty_pages == []
    assert tracker.all_versions() == versions_at_capture
    for offset, nbytes in after:
        tracker.note_write(offset, nbytes)
    # The new epoch's dirty set is exactly the post-capture trace's pages.
    assert tracker.bitmap.dirty_pages == shadow_dirty_pages(
        [(o, n) for o, n in after], REGION_SIZE
    )
    # And versions are cumulative across the rollover.
    merged = dict(versions_at_capture)
    n_pages = tracker.bitmap.n_pages
    for offset, nbytes in after:
        nbytes = min(nbytes, max(0, REGION_SIZE - offset))
        if nbytes == 0:
            continue
        first, stop = page_span(offset, nbytes)
        for p in range(first, min(stop, n_pages)):
            merged[p] = merged.get(p, 0) + 1
    assert tracker.all_versions() == merged


def test_page_boundary_straddles():
    bm = DirtyBitmap(8 * PAGE_SIZE)
    bm.mark(PAGE_SIZE - 1, 2)  # one byte each side of the boundary
    assert bm.dirty_pages == [0, 1]
    bm.clear()
    bm.mark(PAGE_SIZE, PAGE_SIZE)  # exactly page 1, nothing else
    assert bm.dirty_pages == [1]
    bm.clear()
    bm.mark(0, PAGE_SIZE + 1)  # one byte into page 1
    assert bm.dirty_pages == [0, 1]
    bm.clear()
    bm.mark(3 * PAGE_SIZE - 1, 1)  # last byte of page 2
    assert bm.dirty_pages == [2]


def test_zero_length_and_out_of_range_writes():
    bm = DirtyBitmap(4 * PAGE_SIZE)
    bm.mark(PAGE_SIZE, 0)
    assert bm.dirty_pages == []
    bm.mark(100 * PAGE_SIZE, PAGE_SIZE)  # past the region: ignored
    assert bm.dirty_pages == []
    bm.mark(3 * PAGE_SIZE, 100 * PAGE_SIZE)  # clipped at the region end
    assert bm.dirty_pages == [3]
    with pytest.raises(ValueError):
        page_span(-1, 10)
    with pytest.raises(ValueError):
        page_span(0, -10)


def test_partial_tail_page_byte_accounting():
    size = 2 * PAGE_SIZE + 100
    bm = DirtyBitmap(size)
    assert bm.n_pages == 3
    bm.mark(0, size)
    assert bm.dirty_bytes == size  # tail page counts its 100 real bytes
    bm.clear()
    bm.mark(2 * PAGE_SIZE, 1)
    assert bm.dirty_bytes == 100
    bm.mark(0, 1)
    assert bm.dirty_bytes == PAGE_SIZE + 100


def test_region_write_hook_is_noop_without_tracker():
    region = MemoryRegion("heap", 4 * PAGE_SIZE)
    region.write(0, PAGE_SIZE)  # no tracker: pure no-op
    assert region.tracker is None
    region.enable_tracking()
    region.enable_tracking()  # idempotent
    region.write(PAGE_SIZE + 10, 20)
    assert region.tracker.bitmap.dirty_pages == [1]
    assert region.tracker.all_versions() == {1: 1}
