"""Coverage for the kernel/channel fast paths and thread-ID isolation.

The optimized kernel short-circuits the common cases (already-triggered
event waits, unbounded sends with a ready receiver, immediate recvs on a
non-empty channel). These tests pin down the semantics of those paths —
including the interrupt/kill interactions that the fast paths must not
break — and the per-simulator thread-ID counter.
"""

import pytest

from repro.sim import Channel, ChannelClosed, Event, Interrupted, Simulator


# ---------------------------------------------------------------------------
# Per-simulator thread IDs (regression: the counter used to be class-global)
# ---------------------------------------------------------------------------


def test_thread_ids_do_not_leak_across_simulators():
    """Thread IDs restart at 1 for every Simulator, so trace output and
    tie-breaking cannot depend on how many simulators ran earlier in the
    process."""

    def worker(sim):
        yield sim.timeout(1)

    tids = []
    for _ in range(3):
        sim = Simulator()
        t1 = sim.spawn(worker(sim))
        t2 = sim.spawn(worker(sim))
        sim.run()
        tids.append((t1.tid, t2.tid))
    assert tids == [(1, 2), (1, 2), (1, 2)]


def test_default_thread_names_are_reproducible_per_simulator():
    def worker(sim):
        yield sim.timeout(1)

    names = []
    for _ in range(2):
        sim = Simulator()
        t = sim.spawn(worker(sim))
        sim.run()
        names.append(t.name)
    assert names == ["thread-1", "thread-1"]


# ---------------------------------------------------------------------------
# Already-triggered event waits
# ---------------------------------------------------------------------------


def test_yield_already_succeeded_event_returns_value():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed("pre")

    def worker(sim):
        value = yield ev
        return value

    t = sim.spawn(worker(sim))
    sim.run()
    assert t.done.value == "pre"


def test_yield_already_failed_event_raises_in_thread():
    sim = Simulator()
    ev = Event(sim)
    ev.fail(ValueError("pre-failed"))

    def worker(sim):
        with pytest.raises(ValueError, match="pre-failed"):
            yield ev
        return "caught"

    t = sim.spawn(worker(sim))
    sim.run()
    assert t.done.value == "caught"


def test_triggered_event_wait_preserves_scheduling_order():
    """A thread resuming through the already-triggered fast path must queue
    behind work scheduled before it, exactly like a callback resume would."""
    sim = Simulator()
    ev = Event(sim)
    ev.succeed("x")
    order = []

    def eager(sim):
        order.append("eager-start")
        yield ev  # already triggered: fast path
        order.append("eager-resumed")

    def other(sim):
        order.append("other-start")
        yield sim.timeout(0)
        order.append("other-resumed")

    sim.spawn(eager(sim))
    sim.spawn(other(sim))
    sim.run()
    assert order == ["eager-start", "other-start", "eager-resumed", "other-resumed"]


def test_many_threads_wait_on_one_event_wake_fifo():
    sim = Simulator()
    ev = Event(sim)
    order = []

    def waiter(sim, tag):
        value = yield ev
        order.append((tag, value))

    for tag in "abc":
        sim.spawn(waiter(sim, tag))

    def trigger(sim):
        yield sim.timeout(1)
        ev.succeed(7)

    sim.spawn(trigger(sim))
    sim.run()
    assert order == [("a", 7), ("b", 7), ("c", 7)]


def test_mixed_thread_waiters_and_callbacks_fire_in_registration_order():
    """Threads park directly in the callback list; plain callbacks and
    thread resumes must still fire in registration order."""
    sim = Simulator()
    ev = Event(sim)
    order = []

    def waiter(sim):
        yield ev
        order.append("thread")

    sim.spawn(waiter(sim))
    sim.run(until=0, check_deadlock=False)  # let the waiter park itself first
    ev.add_callback(lambda e: order.append("callback"))

    def trigger(sim):
        yield sim.timeout(1)
        ev.succeed(None)

    sim.spawn(trigger(sim))
    sim.run()
    # The callback runs synchronously at trigger time; the thread resume is
    # scheduled through the heap, so it lands after.
    assert order == ["callback", "thread"]


def test_interrupted_thread_not_resumed_by_fast_path_event():
    sim = Simulator()
    ev = Event(sim)
    hits = []

    def worker(sim):
        try:
            yield ev
            hits.append("normal")
        except Interrupted:
            hits.append("interrupted")
        yield sim.timeout(5)

    t = sim.spawn(worker(sim))

    def driver(sim):
        yield sim.timeout(1)
        t.interrupt()
        yield sim.timeout(1)
        ev.succeed("late")

    sim.spawn(driver(sim))
    sim.run()
    assert hits == ["interrupted"]


# ---------------------------------------------------------------------------
# Channel fast paths — unbounded
# ---------------------------------------------------------------------------


def test_unbounded_send_completes_immediately():
    sim = Simulator()
    ch = Channel(sim, "c")
    ev = ch.send("m")
    assert ev.triggered and ev.ok
    assert ch.qsize == 1


def test_recv_on_nonempty_channel_completes_immediately():
    sim = Simulator()
    ch = Channel(sim, "c")
    ch.send("m1")
    ch.send("m2")
    ev = ch.recv()
    assert ev.triggered and ev.value == "m1"
    assert ch.qsize == 1


def test_send_hands_off_to_parked_receiver():
    sim = Simulator()
    ch = Channel(sim, "c")
    got = []

    def receiver(sim):
        value = yield ch.recv()
        got.append(value)

    def sender(sim):
        yield sim.timeout(1)
        yield ch.send("direct")

    sim.spawn(receiver(sim))
    sim.spawn(sender(sim))
    sim.run()
    assert got == ["direct"]
    assert ch.qsize == 0
    assert ch.sent_count == ch.received_count == 1


def test_ping_pong_interleaving_unbounded():
    sim = Simulator()
    a = Channel(sim, "a")
    b = Channel(sim, "b")
    log = []

    def ping(sim):
        for i in range(3):
            yield a.send(i)
            echo = yield b.recv()
            log.append(("ping", echo))

    def pong(sim):
        for _ in range(3):
            v = yield a.recv()
            log.append(("pong", v))
            yield b.send(v * 10)

    sim.spawn(ping(sim))
    sim.spawn(pong(sim))
    sim.run()
    assert log == [
        ("pong", 0),
        ("ping", 0),
        ("pong", 1),
        ("ping", 10),
        ("pong", 2),
        ("ping", 20),
    ]


# ---------------------------------------------------------------------------
# Channel fast paths — bounded (back-pressure must be preserved)
# ---------------------------------------------------------------------------


def test_bounded_send_blocks_until_recv():
    sim = Simulator()
    ch = Channel(sim, "c", capacity=1)
    states = []

    def sender(sim):
        yield ch.send("a")  # fills the buffer
        second = ch.send("b")  # must block
        states.append(second.triggered)
        yield second
        states.append(second.triggered)

    def receiver(sim):
        yield sim.timeout(1)
        v = yield ch.recv()
        return v

    sim.spawn(sender(sim))
    r = sim.spawn(receiver(sim))
    sim.run()
    assert states == [False, True]
    assert r.done.value == "a"
    assert ch.qsize == 1  # "b" was admitted when "a" drained


def test_bounded_ping_pong_interleaving_matches_unbounded():
    def run(capacity):
        sim = Simulator()
        a = Channel(sim, "a", capacity=capacity)
        b = Channel(sim, "b", capacity=capacity)
        log = []

        def ping(sim):
            for i in range(4):
                yield a.send(i)
                log.append(("sent", i))
                echo = yield b.recv()
                log.append(("echo", echo))

        def pong(sim):
            for _ in range(4):
                v = yield a.recv()
                yield b.send(v)

        sim.spawn(ping(sim))
        sim.spawn(pong(sim))
        sim.run()
        return log

    # A ping-pong never has more than one message in flight per direction,
    # so any capacity >= 1 must produce the identical interleaving.
    assert run(None) == run(1) == run(4)


def test_interrupted_receiver_does_not_swallow_message():
    sim = Simulator()
    ch = Channel(sim, "c")
    got = []

    def victim(sim):
        try:
            yield ch.recv()
            got.append("victim")
        except Interrupted:
            pass

    def survivor(sim):
        yield sim.timeout(2)
        v = yield ch.recv()
        got.append(("survivor", v))

    t = sim.spawn(victim(sim))
    sim.spawn(survivor(sim))

    def driver(sim):
        yield sim.timeout(1)
        t.interrupt()
        yield sim.timeout(2)
        yield ch.send("msg")

    sim.spawn(driver(sim))
    sim.run()
    # The interrupted receiver's abandoned event is skipped; the message
    # goes to the live one.
    assert got == [("survivor", "msg")]


def test_interrupted_blocked_sender_does_not_inject_message():
    sim = Simulator()
    ch = Channel(sim, "c", capacity=1)
    delivered = []

    def blocked_sender(sim):
        yield ch.send("first")
        try:
            yield ch.send("ghost")  # blocks: buffer full
        except Interrupted:
            pass

    t = sim.spawn(blocked_sender(sim))

    def driver(sim):
        yield sim.timeout(1)
        t.interrupt()
        yield sim.timeout(1)
        ok, item = ch.try_recv()
        delivered.append((ok, item))
        delivered.append(ch.try_recv())

    sim.spawn(driver(sim))
    sim.run()
    # Only "first" is ever delivered; the interrupted send's item is dropped.
    assert delivered == [(True, "first"), (False, None)]


def test_closed_channel_fails_fast_paths():
    sim = Simulator()
    ch = Channel(sim, "c")
    ch.send("m")
    ch.close()
    assert not ch.send("x").ok
    recv_ev = ch.recv()
    assert recv_ev.triggered and isinstance(recv_ev.exception, ChannelClosed)


# ---------------------------------------------------------------------------
# Lazy callback lists
# ---------------------------------------------------------------------------


def test_abandoned_reflects_lazy_callback_list():
    sim = Simulator()
    ev = Event(sim)
    assert ev.abandoned  # pending, no listeners ever registered
    ev.add_callback(lambda e: None)
    assert not ev.abandoned
    ev.succeed(None)
    assert not ev.abandoned  # triggered events are never abandoned


def test_remove_callback_before_any_registration_is_noop():
    sim = Simulator()
    ev = Event(sim)
    ev.remove_callback(lambda e: None)  # must not raise
    assert ev.abandoned
