"""Edge cases of the Snapify-IO daemons: concurrency, aborts, phi-to-phi."""


from repro.hw import GB, MB
from repro.snapify_io import SnapifyIODaemon, snapifyio_open
from repro.testbed import XeonPhiServer


def test_concurrent_transfers_share_the_wire():
    """Two simultaneous card->host writes each get their own connection and
    staging buffer; both complete, and the shared PCIe direction makes the
    pair slower than one alone."""
    server = XeonPhiServer()
    phi = server.phi_os(0)
    times = {}

    def one_transfer(sim, tag):
        fd = yield from snapifyio_open(phi, 0, f"/out/{tag}", "w")
        yield from fd.write(256 * MB)
        yield from fd.finish()
        times[tag] = sim.now

    def solo(sim):
        t0 = sim.now
        yield from one_transfer(sim, "solo")
        return sim.now - t0

    t_solo = server.run(solo(server.sim))

    server2 = XeonPhiServer()
    phi2 = server2.phi_os(0)
    times2 = {}

    def one2(sim, tag):
        fd = yield from snapifyio_open(phi2, 0, f"/out/{tag}", "w")
        yield from fd.write(256 * MB)
        yield from fd.finish()
        times2[tag] = sim.now

    def pair(sim):
        t0 = sim.now
        a = sim.spawn(one2(sim, "a"))
        b = sim.spawn(one2(sim, "b"))
        yield sim.all_of([a.done, b.done])
        return sim.now - t0

    t_pair = server2.run(pair(server2.sim))
    assert t_pair > t_solo
    assert server2.host_os.fs.stat("/out/a").size == 256 * MB
    assert server2.host_os.fs.stat("/out/b").size == 256 * MB
    daemon = SnapifyIODaemon.of(phi2)
    assert daemon.connections_served == 2


def test_reader_abort_mid_stream_is_clean():
    """Closing the read descriptor halfway through must not wedge or kill
    the daemons; later transfers still work."""
    server = XeonPhiServer()
    phi = server.phi_os(0)

    def driver(sim):
        yield from server.host_os.fs.write("/big", 512 * MB)
        fd = yield from snapifyio_open(phi, 0, "/big", "r")
        yield from fd.read(4 * MB)  # one chunk only
        fd.close()                  # abort
        yield sim.timeout(0.05)
        # The service must still be healthy.
        fd2 = yield from snapifyio_open(phi, 0, "/after", "w")
        yield from fd2.write(16 * MB)
        yield from fd2.finish()
        return server.host_os.fs.stat("/after").size

    assert server.run(driver(server.sim)) == 16 * MB
    assert not server.sim.failed_threads()


def test_writer_process_death_leaves_partial_file():
    """A card process dying mid-write (e.g. OOM-killed) resets its socket;
    the host file keeps whatever was flushed — standard crash semantics."""
    server = XeonPhiServer()
    phi = server.phi_os(0)

    def driver(sim):
        def victim_main(proc):
            fd = yield from snapifyio_open(phi, 0, "/partial", "w", proc=proc)
            yield from fd.write(1 * GB)  # will be interrupted
            yield from fd.finish()

        proc = yield from phi.spawn_process("victim", image_size=1 * MB,
                                            main_factory=victim_main)
        yield sim.timeout(0.3)  # mid-transfer
        proc.terminate(code=137)
        yield sim.timeout(0.1)
        exists = server.host_os.fs.exists("/partial")
        size = server.host_os.fs.stat("/partial").size if exists else 0
        # Service still alive afterwards.
        fd = yield from snapifyio_open(phi, 0, "/later", "w")
        yield from fd.write(1 * MB)
        yield from fd.finish()
        return size

    size = server.run(driver(server.sim))
    assert 0 < size < 1 * GB
    assert server.host_os.fs.stat("/later").size == 1 * MB


def test_phi_to_phi_transfer():
    """Snapify-IO between two coprocessors (the migration local-store path
    the paper mentions): node ids are SCIF ids, so mic0 can address mic1."""
    server = XeonPhiServer()
    mic0, mic1 = server.phi_os(0), server.phi_os(1)

    def driver(sim):
        fd = yield from snapifyio_open(mic0, node=2, path="/tmp/from_mic0", mode="w")
        yield from fd.write(64 * MB, record="hello-mic1")
        yield from fd.finish()
        f = mic1.fs.stat("/tmp/from_mic0")
        return f.size, f.payload

    size, payload = server.run(driver(server.sim))
    assert size == 64 * MB
    assert payload == ["hello-mic1"]
    # The bytes landed in mic1's RAM-FS (charged to its card memory).
    assert server.node.phis[1].memory.by_category["ramfs"] >= 64 * MB


def test_zero_byte_file_roundtrip():
    server = XeonPhiServer()
    phi = server.phi_os(0)

    def driver(sim):
        fd = yield from snapifyio_open(phi, 0, "/empty", "w")
        yield from fd.finish()  # no writes at all
        rfd = yield from snapifyio_open(phi, 0, "/empty", "r")
        rec = yield from rfd.read(1 * MB)
        rfd.close()
        return server.host_os.fs.stat("/empty").size, rec

    size, rec = server.run(driver(server.sim))
    assert size == 0
    assert rec is None
