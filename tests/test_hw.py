"""Unit tests for the hardware layer: links, memory pools, disk, node, cluster."""

import pytest

from repro.hw import (
    GB,
    MB,
    BandwidthLink,
    Cluster,
    HardwareParams,
    MemoryExhausted,
    MemoryParams,
    PhysicalMemory,
    ServerNode,
    HOST_TO_DEVICE,
    DEVICE_TO_HOST,
)
from repro.sim import Simulator


def run_thread(sim, gen):
    t = sim.spawn(gen)
    sim.run()
    assert t.done.ok, t.done.exception
    return t.done.value


# --------------------------------------------------------------------------
# BandwidthLink / PCIe
# --------------------------------------------------------------------------


def test_link_transfer_time():
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=100.0)

    def worker(sim):
        yield from link.occupy(1000, extra_latency=0.5)
        return sim.now

    assert run_thread(sim, worker(sim)) == pytest.approx(10.5)


def test_link_serializes_concurrent_transfers():
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=100.0)
    finish = []

    def worker(sim, tag):
        yield from link.occupy(500)
        finish.append((tag, sim.now))

    sim.spawn(worker(sim, "a"))
    sim.spawn(worker(sim, "b"))
    sim.run()
    assert finish == [("a", 5.0), ("b", 10.0)]


def test_link_counters():
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=100.0)

    def worker(sim):
        yield from link.occupy(300)
        yield from link.occupy(200)

    run_thread(sim, worker(sim))
    assert link.bytes_transferred == 500
    assert link.transfer_count == 2


def test_link_rejects_bad_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        BandwidthLink(sim, bandwidth=0)
    link = BandwidthLink(sim, bandwidth=1.0)

    def worker(sim):
        yield from link.occupy(-1)

    t = sim.spawn(worker(sim))
    sim.run()
    assert isinstance(t.done.exception, ValueError)


def test_pcie_directions_are_independent():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    link = node.phis[0].link
    done = []

    def up(sim):
        yield from link.rdma(DEVICE_TO_HOST, 650 * MB)
        done.append(("up", sim.now))

    def down(sim):
        yield from link.rdma(HOST_TO_DEVICE, 600 * MB)
        done.append(("down", sim.now))

    sim.spawn(up(sim))
    sim.spawn(down(sim))
    sim.run()
    # Full duplex: both complete in ~0.1 s rather than serializing.
    assert all(t < 0.2 for _, t in done)


def test_pcie_message_vs_rdma_contention():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    link = node.phis[0].link
    times = {}

    def bulk(sim):
        yield from link.rdma(HOST_TO_DEVICE, 600 * MB)
        times["bulk"] = sim.now

    def msg(sim):
        yield sim.timeout(1e-6)  # arrive after the bulk transfer starts
        yield from link.message(HOST_TO_DEVICE)
        times["msg"] = sim.now

    sim.spawn(bulk(sim))
    sim.spawn(msg(sim))
    sim.run()
    # The control message queues behind the bulk RDMA on the shared wire.
    assert times["msg"] > times["bulk"]


def test_pcie_register_cost_scales_with_size():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    link = node.phis[0].link
    small = link.register_cost(1 * MB)
    large = link.register_cost(100 * MB)
    assert large > small > 0


# --------------------------------------------------------------------------
# PhysicalMemory
# --------------------------------------------------------------------------


def test_memory_allocate_free():
    sim = Simulator()
    mem = PhysicalMemory(sim, MemoryParams(capacity=1000))
    mem.allocate(400, "process")
    mem.allocate(100, "ramfs")
    assert mem.used == 500
    assert mem.available == 500
    mem.free(400, "process")
    assert mem.used == 100
    assert mem.by_category["ramfs"] == 100


def test_memory_exhaustion():
    sim = Simulator()
    mem = PhysicalMemory(sim, MemoryParams(capacity=1000))
    mem.allocate(900)
    with pytest.raises(MemoryExhausted) as exc:
        mem.allocate(200)
    assert exc.value.available == 100
    assert not mem.can_allocate(200)
    assert mem.can_allocate(100)


def test_memory_peak_tracking():
    sim = Simulator()
    mem = PhysicalMemory(sim, MemoryParams(capacity=1000))
    mem.allocate(800)
    mem.free(600)
    mem.allocate(100)
    assert mem.peak == 800
    assert mem.used == 300


def test_memory_over_free_rejected():
    sim = Simulator()
    mem = PhysicalMemory(sim, MemoryParams(capacity=1000))
    mem.allocate(100, "a")
    with pytest.raises(ValueError):
        mem.free(200, "a")
    with pytest.raises(ValueError):
        mem.free(1, "never-allocated")


def test_memcpy_time():
    sim = Simulator()
    mem = PhysicalMemory(sim, MemoryParams(capacity=GB, memcpy_bw=2 * GB))

    def worker(sim):
        yield from mem.memcpy(GB)
        return sim.now

    assert run_thread(sim, worker(sim)) == pytest.approx(0.5)


# --------------------------------------------------------------------------
# HostDisk
# --------------------------------------------------------------------------


def test_disk_async_write_is_fast_then_fsync_waits():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    disk = node.disk
    times = {}

    def worker(sim):
        yield from disk.write(350 * MB)  # absorbed by page cache
        times["write_done"] = sim.now
        yield from disk.fsync()
        times["fsync_done"] = sim.now

    run_thread(sim, worker(sim))
    # Page-cache write at memcpy speed (~6 GB/s) ≈ 0.06 s.
    assert times["write_done"] < 0.2
    # fsync waits for the 350 MB/s platter ≈ 1 s.
    assert times["fsync_done"] == pytest.approx(1.0, rel=0.3)


def test_disk_sync_write():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())

    def worker(sim):
        yield from node.disk.write(350 * MB, sync=True)
        return sim.now

    t_end = run_thread(sim, worker(sim))
    assert t_end == pytest.approx(1.0, rel=0.3)


def test_disk_dirty_limit_throttles():
    params = HardwareParams()
    # Shrink the cache so the test is quick.
    small_disk = params.host.disk.__class__(
        read_bw=params.host.disk.read_bw,
        write_bw=params.host.disk.write_bw,
        op_latency=params.host.disk.op_latency,
        dirty_limit=64 * MB,
    )
    sim = Simulator()
    from repro.hw.storage import HostDisk

    disk = HostDisk(sim, small_disk, memcpy_bw=6 * GB)

    def worker(sim):
        yield from disk.write(350 * MB)
        return sim.now

    t_end = run_thread(sim, worker(sim))
    # Most of the write had to go at platter speed: ~(350-64)/350 s ≈ 0.8 s.
    assert t_end > 0.5


def test_disk_read_cached_vs_uncached():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    times = {}

    def worker(sim):
        t0 = sim.now
        yield from node.disk.read(500 * MB, cached=True)
        times["cached"] = sim.now - t0
        t0 = sim.now
        yield from node.disk.read(500 * MB, cached=False)
        times["uncached"] = sim.now - t0

    run_thread(sim, worker(sim))
    assert times["cached"] < times["uncached"]
    assert times["uncached"] == pytest.approx(1.0, rel=0.3)


# --------------------------------------------------------------------------
# Node / Cluster
# --------------------------------------------------------------------------


def test_node_topology():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams(phis_per_node=2))
    assert len(node.phis) == 2
    assert node.phis[0].scif_node_id == 1
    assert node.phis[1].scif_node_id == 2
    assert node.scif_peer(0) is node
    assert node.scif_peer(2) is node.phis[1]


def test_phi_memory_capacity_default():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    assert node.phis[0].memory.capacity == 8 * GB


def test_cluster_transfer_times():
    sim = Simulator()
    cluster = Cluster(sim, HardwareParams(), n_nodes=4)

    def worker(sim):
        t0 = sim.now
        yield from cluster.transfer(0, 1, int(3.2 * GB))
        return sim.now - t0

    dt = run_thread(sim, worker(sim))
    assert dt == pytest.approx(1.0, rel=0.1)


def test_cluster_same_node_transfer_is_free():
    sim = Simulator()
    cluster = Cluster(sim, HardwareParams(), n_nodes=2)

    def worker(sim):
        yield sim.timeout(0)
        yield from cluster.transfer(1, 1, GB)
        return sim.now

    assert run_thread(sim, worker(sim)) == 0


def test_cluster_validates_size():
    sim = Simulator()
    with pytest.raises(ValueError):
        Cluster(sim, HardwareParams(), n_nodes=0)


def test_params_with_override():
    params = HardwareParams()
    tweaked = params.with_(phis_per_node=4)
    assert tweaked.phis_per_node == 4
    assert params.phis_per_node == 2  # original untouched


def test_describe_smoke():
    from repro.hw import describe

    desc = describe(HardwareParams())
    assert "pcie dma h2d" in desc
    assert desc["phi memory"] == "8 GB"
