"""Tests for simulated file systems and file descriptors."""

import pytest

from repro.hw import GB, MB, HardwareParams, MemoryExhausted, ServerNode
from repro.osim import FSError, RegularFileFD, boot_node
from repro.osim.fd import FDError
from repro.sim import Simulator


def make_env():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    host_os, phi_oses = boot_node(node)
    return sim, node, host_os, phi_oses[0]


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run()
    assert t.done.ok, t.done.exception
    return t.done.value


def test_host_fs_write_read_roundtrip():
    sim, node, host, phi = make_env()

    def worker(sim):
        yield from host.fs.write("/snap/ctx", 100 * MB, payload={"x": 1})
        data = yield from host.fs.read("/snap/ctx")
        return data

    assert run(sim, worker(sim)) == {"x": 1}


def test_host_fs_write_is_page_cached():
    sim, node, host, phi = make_env()
    times = {}

    def worker(sim):
        yield from host.fs.write("/f", 300 * MB)
        times["write"] = sim.now  # async: page cache speed

    run(sim, worker(sim))
    assert times["write"] < 0.3


def test_fs_requires_absolute_paths():
    sim, node, host, phi = make_env()
    with pytest.raises(FSError):
        host.fs.exists("relative/path")


def test_fs_stat_and_unlink():
    sim, node, host, phi = make_env()

    def worker(sim):
        yield from host.fs.write("/a/b", 10)

    run(sim, worker(sim))
    assert host.fs.stat("/a/b").size == 10
    host.fs.unlink("/a/b")
    assert not host.fs.exists("/a/b")
    with pytest.raises(FSError):
        host.fs.unlink("/a/b")


def test_fs_listdir():
    sim, node, host, phi = make_env()

    def worker(sim):
        yield from host.fs.write("/snap/1/ctx", 1)
        yield from host.fs.write("/snap/1/libs", 1)
        yield from host.fs.write("/other", 1)

    run(sim, worker(sim))
    assert host.fs.listdir("/snap/1") == ["/snap/1/ctx", "/snap/1/libs"]


def test_fs_create_truncates():
    sim, node, host, phi = make_env()

    def worker(sim):
        yield from host.fs.write("/f", 100)
        host.fs.create("/f")

    run(sim, worker(sim))
    assert host.fs.stat("/f").size == 0


def test_ramfs_charges_card_memory():
    sim, node, host, phi = make_env()

    def worker(sim):
        yield from phi.fs.write("/tmp/localstore", 512 * MB)

    run(sim, worker(sim))
    assert phi.memory.by_category["ramfs"] == 512 * MB
    phi.fs.unlink("/tmp/localstore")
    assert phi.memory.by_category["ramfs"] == 0


def test_ramfs_oom_on_oversized_file():
    """A snapshot bigger than free card memory cannot be stored locally."""
    sim, node, host, phi = make_env()

    def worker(sim):
        # Fill most of the 8 GB card, then try to write a 4 GB local file.
        phi.memory.allocate(5 * GB, "process")
        yield from phi.fs.write("/tmp/snapshot", 4 * GB)

    t = sim.spawn(worker(sim))
    sim.run()
    assert isinstance(t.done.exception, MemoryExhausted)


def test_ramfs_slower_than_memcpy():
    sim, node, host, phi = make_env()
    times = {}

    def worker(sim):
        t0 = sim.now
        yield from phi.fs.write("/f", GB)
        times["ramfs"] = sim.now - t0

    run(sim, worker(sim))
    expected_memcpy = GB / phi.memory.params.memcpy_bw
    assert times["ramfs"] == pytest.approx(expected_memcpy * 1.3)


# --------------------------------------------------------------------------
# RegularFileFD
# --------------------------------------------------------------------------


def test_fd_record_stream_roundtrip():
    sim, node, host, phi = make_env()

    def writer(sim):
        fd = RegularFileFD(sim, host.fs, "/ctx", "w")
        yield from fd.write(100, record="header")
        yield from fd.write(50 * MB, record={"region": "heap"})
        yield from fd.write(10, record=None)  # data with no record
        fd.close()

    def reader(sim):
        fd = RegularFileFD(sim, host.fs, "/ctx", "r")
        r1 = yield from fd.read(100)
        r2 = yield from fd.read(50 * MB)
        r3 = yield from fd.read(10)
        fd.close()
        return (r1, r2, r3)

    run(sim, writer(sim))
    assert run(sim, reader(sim)) == ("header", {"region": "heap"}, None)


def test_fd_mode_enforcement():
    sim, node, host, phi = make_env()

    def worker(sim):
        wfd = RegularFileFD(sim, host.fs, "/f", "w")
        yield from wfd.write(1, record="x")
        wfd.close()
        rfd = RegularFileFD(sim, host.fs, "/f", "r")
        with pytest.raises(FDError):
            yield from rfd.write(1)
        with pytest.raises(FDError):
            yield from wfd.write(1)  # closed
        return "ok"

    assert run(sim, worker(sim)) == "ok"


def test_fd_open_missing_file_for_read_fails():
    sim, node, host, phi = make_env()
    with pytest.raises(FSError):
        RegularFileFD(sim, host.fs, "/missing", "r")


def test_fd_write_mode_truncates_existing():
    sim, node, host, phi = make_env()

    def worker(sim):
        fd1 = RegularFileFD(sim, host.fs, "/f", "w")
        yield from fd1.write(100, record="old")
        fd1.close()
        fd2 = RegularFileFD(sim, host.fs, "/f", "w")
        yield from fd2.write(5, record="new")
        fd2.close()
        fd3 = RegularFileFD(sim, host.fs, "/f", "r")
        rec = yield from fd3.read(5)
        return rec, host.fs.stat("/f").size

    rec, size = run(sim, worker(sim))
    assert rec == "new"
    assert size == 5


def test_fd_byte_counters():
    sim, node, host, phi = make_env()

    def worker(sim):
        fd = RegularFileFD(sim, host.fs, "/f", "w")
        yield from fd.write(30, record="a")
        yield from fd.write(70, record="b")
        fd.close()
        return fd.bytes_written

    assert run(sim, worker(sim)) == 100
