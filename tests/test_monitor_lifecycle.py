"""Lifecycle tests for the daemon's Snapify monitor thread.

The paper's rule: "Whenever a request is received and no monitor thread
exists, the daemon creates a new monitor thread"; the thread exits when the
active-request list drains. The sequential single-request path is covered in
test_snapify_protocol; these tests pin down the edges around it — no thread
before any request, ONE shared thread across concurrent requests, exit only
on full drain, and re-creation afterwards.
"""

from repro.coi import COIDaemon, OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.snapify import snapify_pause, snapify_resume, snapify_t
from repro.snapify.monitor import SnapifyService
from repro.testbed import XeonPhiServer


def make_binary(name="mon_test.so"):
    return OffloadBinary(
        name=name,
        image_size=8 * MB,
        functions={"step": OffloadFunction("step", duration=0.05)},
    )


def launch_two(server):
    """Two independent offload processes on the same card (same daemon)."""
    out = {}

    def setup(sim):
        for i in range(2):
            host_proc = yield from server.host_os.spawn_process(
                f"app{i}", image_size=4 * MB
            )
            coiproc = yield from server.engine(0).process_create(
                host_proc, make_binary(f"mon_test{i}.so")
            )
            buf = yield from coiproc.buffer_create(16 * MB)
            yield from coiproc.buffer_write(buf, payload=1)
            out[i] = coiproc

    server.run(setup(server.sim))
    return out


def test_no_monitor_before_first_request():
    server = XeonPhiServer()
    launch_two(server)
    svc = SnapifyService.of(COIDaemon.of(server.node.phis[0]))
    assert not svc.monitor_running
    assert svc.monitor_spawn_count == 0
    assert svc.active == {}


def test_concurrent_requests_share_one_monitor_thread():
    """Two offload processes paused at once: the daemon's active list holds
    both requests, but only ONE monitor thread polls for them — and it exits
    only when the LAST request drains."""
    server = XeonPhiServer()
    procs = launch_two(server)
    svc = SnapifyService.of(COIDaemon.of(server.node.phis[0]))

    def driver(sim):
        a = snapify_t(snapshot_path="/snap/m1a", coiproc=procs[0])
        b = snapify_t(snapshot_path="/snap/m1b", coiproc=procs[1])
        ta = sim.spawn(snapify_pause(a), name="pause-a")
        tb = sim.spawn(snapify_pause(b), name="pause-b")
        yield sim.all_of([ta.done, tb.done])
        assert len(svc.active) == 2
        assert svc.monitor_running
        assert svc.monitor_spawn_count == 1

        # Draining ONE request leaves the monitor alive for the other.
        yield from snapify_resume(a)
        yield sim.timeout(0.01)
        assert len(svc.active) == 1
        assert svc.monitor_running
        assert svc.monitor_spawn_count == 1

        # Draining the last request lets the monitor exit.
        yield from snapify_resume(b)
        yield sim.timeout(0.01)
        assert svc.active == {}
        assert not svc.monitor_running
        return "ok"

    assert server.run(driver(server.sim)) == "ok"


def test_request_after_drain_recreates_monitor():
    server = XeonPhiServer()
    procs = launch_two(server)
    svc = SnapifyService.of(COIDaemon.of(server.node.phis[0]))

    def driver(sim):
        for cycle in range(3):
            snap = snapify_t(snapshot_path=f"/snap/m2_{cycle}", coiproc=procs[0])
            yield from snapify_pause(snap)
            assert svc.monitor_running
            yield from snapify_resume(snap)
            yield sim.timeout(0.01)
            assert not svc.monitor_running
        return svc.monitor_spawn_count

    assert server.run(driver(server.sim)) == 3


def test_monitor_lifecycle_is_traced():
    """monitor.spawn / monitor.exit trace records and the spawn counter keep
    the lifecycle observable without reaching into daemon internals."""
    server = XeonPhiServer()
    procs = launch_two(server)
    from repro.obs import MetricsRegistry

    def driver(sim):
        with sim.trace.capture():
            snap = snapify_t(snapshot_path="/snap/m3", coiproc=procs[0])
            yield from snapify_pause(snap)
            yield from snapify_resume(snap)
            yield sim.timeout(0.01)

    server.run(driver(server.sim))
    trace = server.sim.trace
    assert len(trace.find("monitor.spawn")) == 1
    assert len(trace.find("monitor.exit")) == 1
    assert trace.first_time("monitor.spawn") < trace.first_time("monitor.exit")
    reg = MetricsRegistry.of(server.sim)
    assert reg.counter("snapify.monitor.spawns").value == 1
    assert reg.counter("snapify.monitor.relays").value >= 2  # complete + ack
