"""Tests for the MPI substrate and coordinated checkpoint/restart."""

import pytest

from repro.apps import NAS_MZ_BENCHMARKS, mz_rank_footprint
from repro.apps.nas_mz import MZJob
from repro.mpi import MPIComm, MPIError, mpi_checkpoint, mpi_restart
from repro.testbed import XeonPhiCluster


def test_comm_tagged_send_recv():
    cluster = XeonPhiCluster(n_nodes=2)
    comm = MPIComm(cluster, 2)
    out = {}

    def rank0(sim):
        yield from comm.send(0, 1, ("halo", 3), 4 * 1024 * 1024, payload="h3")

    def rank1(sim):
        msg = yield comm.recv(1, 0, ("halo", 3))
        out["msg"] = msg

    cluster.sim.spawn(rank0(cluster.sim))
    cluster.sim.spawn(rank1(cluster.sim))
    cluster.sim.run()
    assert out["msg"] == "h3"


def test_comm_duplicate_send_is_harmless():
    cluster = XeonPhiCluster(n_nodes=2)
    comm = MPIComm(cluster, 2)
    out = {}

    def driver(sim):
        yield from comm.send(0, 1, "t", 1024, payload="first")
        msg = yield comm.recv(1, 0, "t")
        out["first"] = msg
        # A restarted rank re-sends the same tag: ignored.
        yield from comm.send(0, 1, "t", 1024, payload="dup")
        yield from comm.send(0, 1, "t2", 1024, payload="next")
        msg = yield comm.recv(1, 0, "t2")
        out["second"] = msg
        return comm.pending_messages()

    t = cluster.sim.spawn(driver(cluster.sim))
    cluster.sim.run_until(t.done)
    assert out == {"first": "first", "second": "next"}
    # Hmm: the duplicate "t" is parked as delivered-but-unconsumed.
    assert t.done.value in (0, 1)


def test_comm_counter_split_conserves_messages():
    """Duplicate re-sends count in ``messages_dropped``, never in
    ``messages_sent`` — so sent == consumed + pending at quiescence."""
    cluster = XeonPhiCluster(n_nodes=2)
    comm = MPIComm(cluster, 2)

    def driver(sim):
        yield from comm.send(0, 1, "t", 1024, payload="first")
        yield from comm.send(0, 1, "t", 1024, payload="dup")  # dropped
        msg = yield comm.recv(1, 0, "t")
        assert msg == "first"
        yield from comm.send(0, 1, "t2", 1024, payload="parked")

    t = cluster.sim.spawn(driver(cluster.sim))
    cluster.sim.run_until(t.done)
    assert comm.messages_sent == 2
    assert comm.messages_dropped == 1
    assert comm.messages_consumed == 1
    assert comm.pending_messages() == 1
    assert comm.messages_sent == comm.messages_consumed + comm.pending_messages()


def test_comm_send_requeues_around_dead_receiver():
    """A recv whose rank died mid-wait leaves an abandoned event; the send
    must park the payload for the next (restarted) receiver instead of
    vanishing it into the dead waiter."""
    cluster = XeonPhiCluster(n_nodes=2)
    comm = MPIComm(cluster, 2)
    out = {}

    def driver(sim):
        orphan = comm.recv(1, 0, "t")  # the rank dies before waiting
        assert orphan.abandoned
        yield from comm.send(0, 1, "t", 1024, payload="p")
        assert not orphan.triggered  # NOT handed to the dead waiter
        assert comm.pending_messages() == 1
        out["msg"] = yield comm.recv(1, 0, "t")

    t = cluster.sim.spawn(driver(cluster.sim))
    cluster.sim.run_until(t.done)
    assert out["msg"] == "p"
    assert comm.messages_sent == comm.messages_consumed == 1
    assert comm.messages_dropped == 0


def test_comm_drop_stale_waiters_sweeps_only_the_dead():
    cluster = XeonPhiCluster(n_nodes=2)
    comm = MPIComm(cluster, 2)
    out = {}

    def dead_rank(sim):
        comm.recv(1, 0, "never")  # registered, then the rank moves on
        yield sim.timeout(0.01)

    def live_rank(sim):
        out["msg"] = yield comm.recv(0, 1, "later")

    def sender(sim):
        yield sim.timeout(0.05)
        # Only the abandoned waiter is swept; the parked live one survives.
        assert comm.drop_stale_waiters() == 1
        assert comm.drop_stale_waiters() == 0
        yield from comm.send(1, 0, "later", 512, payload="ok")

    cluster.sim.spawn(dead_rank(cluster.sim))
    cluster.sim.spawn(live_rank(cluster.sim))
    cluster.sim.spawn(sender(cluster.sim))
    cluster.sim.run()
    assert out["msg"] == "ok"


def test_comm_rank_validation():
    cluster = XeonPhiCluster(n_nodes=2)
    comm = MPIComm(cluster, 2)
    with pytest.raises(MPIError):
        comm.recv(0, 5, "x")
    with pytest.raises(MPIError):
        MPIComm(cluster, 3)


def test_rank_footprint_shrinks_with_ranks():
    profile = NAS_MZ_BENCHMARKS["LU-MZ"]
    sizes = [sum(mz_rank_footprint(profile, n)) for n in (1, 2, 4)]
    assert sizes[0] > sizes[1] > sizes[2]


@pytest.mark.parametrize("n_ranks", [1, 2])
def test_mz_job_runs_to_completion(n_ranks):
    cluster = XeonPhiCluster(n_nodes=max(2, n_ranks))
    job = MZJob(cluster, NAS_MZ_BENCHMARKS["SP-MZ"], n_ranks, iterations=6)

    def driver(sim):
        yield from job.launch()
        yield from job.join()

    cluster.run(driver(cluster.sim))
    assert job.verify()


def test_mpi_checkpoint_and_continue():
    cluster = XeonPhiCluster(n_nodes=2)
    job = MZJob(cluster, NAS_MZ_BENCHMARKS["BT-MZ"], 2, iterations=8)
    out = {}

    def driver(sim):
        yield from job.launch()
        yield sim.timeout(0.5)
        report = yield from mpi_checkpoint(job, "/snap/mpi1")
        out["report"] = report
        yield from job.join()

    cluster.run(driver(cluster.sim))
    assert job.verify()
    report = out["report"]
    assert report["elapsed"] > 0
    assert set(report["rank_snapshot_bytes"]) == {0, 1}
    assert all(v > 0 for v in report["rank_snapshot_bytes"].values())


def test_mpi_full_failure_restart():
    cluster = XeonPhiCluster(n_nodes=2)
    job = MZJob(cluster, NAS_MZ_BENCHMARKS["LU-MZ"], 2, iterations=8)

    def driver(sim):
        yield from job.launch()
        yield sim.timeout(0.5)
        yield from mpi_checkpoint(job, "/snap/mpi2")
        yield sim.timeout(0.2)
        # Catastrophic failure: every rank dies.
        for rank in job.ranks:
            rank.host_proc.terminate(code=1)
        yield sim.timeout(0.05)
        yield from mpi_restart(job, "/snap/mpi2")
        yield from job.join()

    cluster.run(driver(cluster.sim))
    assert job.verify()


def test_mpi_checkpoint_time_decreases_with_ranks():
    """Fig. 11's headline trend: more ranks -> smaller per-rank snapshots ->
    faster coordinated checkpoints."""
    times = {}
    for n in (1, 2, 4):
        cluster = XeonPhiCluster(n_nodes=4)
        job = MZJob(cluster, NAS_MZ_BENCHMARKS["LU-MZ"], n, iterations=30)
        out = {}

        def driver(sim):
            yield from job.launch()
            yield sim.timeout(0.5)
            report = yield from mpi_checkpoint(job, f"/snap/sweep{n}")
            out["elapsed"] = report["elapsed"]
            # Don't run to completion; just drain the resume.
            yield sim.timeout(0.5)

        cluster.run(driver(cluster.sim))
        times[n] = out["elapsed"]
    assert times[1] > times[2] > times[4]
