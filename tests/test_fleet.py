"""Tests for the fleet control plane (repro.snapify.fleet).

Covers the admission controller (global and per-card caps, priority
ordering, no head-of-line blocking), keyed batch collection with partial
failures, health sweeps, the pre-baked fleet topologies, the scheduler's
fleet routing, the ``snapify fleet`` CLI, and the big-sweep acceptance
scenario (>= 100 operations across >= 32 cards with the invariant oracles
asserted on the result).
"""

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
from repro.check.oracles import (
    fleet_admission_caps,
    fleet_no_starvation,
    fleet_quiescent,
)
from repro.hw import GB, MB
from repro.sched import FaultInjector, SwapScheduler
from repro.sim import Simulator
from repro.sim.events import Event
from repro.snapify import SnapifyError
from repro.snapify.fleet import (
    BACKGROUND,
    DONE,
    FAILED,
    MAINTENANCE,
    QUEUED,
    RUNNING,
    SWAP,
    CardHealth,
    CardRef,
    FleetManager,
    HealthReport,
    fleet_sweep,
)
from repro.snapify.ops import OperationManager
from repro.testbed import FLEET_TOPOLOGIES, XeonPhiFleet


def _work(sim, order, name, delay=0.01):
    def work():
        order.append(name)
        yield sim.timeout(delay)
        return name

    return work


# ---------------------------------------------------------------------------
# Admission control on a bare simulator (no testbed needed)
# ---------------------------------------------------------------------------


def test_priorities_drain_maintenance_first():
    sim = Simulator()
    mgr = FleetManager(sim=sim, max_in_flight=1)
    order = []
    blocker = mgr.submit("blk", "w", _work(sim, order, "blocker"))
    tb = mgr.submit("bg", "w", _work(sim, order, "bg"), priority=BACKGROUND)
    ts = mgr.submit("sw", "w", _work(sim, order, "swap"), priority=SWAP)
    tm = mgr.submit("mt", "w", _work(sim, order, "maint"),
                    priority=MAINTENANCE)
    # The single slot is busy: everything later is queued regardless of rank.
    assert blocker.state == RUNNING
    assert [t.state for t in (tb, ts, tm)] == [QUEUED, QUEUED, QUEUED]

    def driver(s):
        return (yield from mgr.collect([blocker, tb, ts, tm]))

    t = sim.spawn(driver(sim))
    sim.run_until(t.done)
    result = t.done.value
    assert order == ["blocker", "maint", "swap", "bg"]
    assert result.ok and len(result) == 4
    assert result.results == {"blk": "blocker", "bg": "bg", "sw": "swap",
                              "mt": "maint"}
    assert mgr.hwm_in_flight == 1 and mgr.quiescent()
    # Queue waits were observed per priority class.
    assert tm.queue_wait is not None and ts.queue_wait is not None
    assert tm.queue_wait <= ts.queue_wait <= tb.queue_wait


def test_per_card_cap_does_not_block_other_cards():
    sim = Simulator()
    mgr = FleetManager(sim=sim, max_in_flight=4, per_card_limit=1)
    a, b = CardRef(0, 0), CardRef(0, 1)
    gate = Event(sim, name="gate")

    def blocked():
        yield gate
        return "ok"

    t1 = mgr.submit("a1", "w", blocked, card=a)
    t2 = mgr.submit("a2", "w", blocked, card=a)
    t3 = mgr.submit("b1", "w", blocked, card=b)
    # a2 waits for a's slot, but b1 behind it was admitted immediately.
    assert t1.state == RUNNING and t3.state == RUNNING
    assert t2.state == QUEUED

    def driver(s):
        gate.succeed(None)
        return (yield from mgr.collect([t1, t2, t3]))

    t = sim.spawn(driver(sim))
    sim.run_until(t.done)
    assert t.done.value.ok
    assert mgr.hwm_per_card == {"n0.mic0": 1, "n0.mic1": 1}
    assert mgr.hwm_in_flight <= 2
    assert mgr.quiescent()


def test_submit_rejects_bad_priority_and_bad_caps():
    sim = Simulator()
    mgr = FleetManager(sim=sim)
    with pytest.raises(ValueError):
        mgr.submit("k", "w", lambda: iter(()), priority=99)
    with pytest.raises(ValueError):
        FleetManager(sim=sim, max_in_flight=0)
    with pytest.raises(ValueError):
        FleetManager()  # neither fleet nor sim
    with pytest.raises(SnapifyError):
        next(mgr.health_sweep())  # no fleet, no explicit cards


def test_partial_failure_keyed_results_and_aggregation():
    sim = Simulator()
    mgr = FleetManager(sim=sim, max_in_flight=4)

    def good():
        yield sim.timeout(0.01)
        return 42

    def bad():
        yield sim.timeout(0.005)
        raise SnapifyError("card fell off the bus")

    tg = mgr.submit("good", "ckpt", good, card=CardRef(0, 0))
    tb = mgr.submit("bad", "ckpt", bad, card=CardRef(0, 1))

    def driver(s):
        return (yield from mgr.collect([tg, tb]))

    t = sim.spawn(driver(sim))
    sim.run_until(t.done)
    result = t.done.value
    assert not result.ok
    assert tg.state == DONE and tb.state == FAILED
    assert result.results == {"good": 42, "bad": None}
    assert list(result.failures) == ["bad"]
    assert "card fell off the bus" in result.failures["bad"].error
    assert "1 ok" in result.summary() and "1 failed" in result.summary()
    assert set(result.by_card()) == {"n0.mic0", "n0.mic1"}
    with pytest.raises(SnapifyError, match="bad .ckpt. failed"):
        result.raise_on_error()
    # The failed slot was released: counters and caps balance.
    assert mgr.m_completed.value == 1 and mgr.m_failed.value == 1
    assert mgr.quiescent()
    d = mgr.describe()
    assert d["submitted"] == 2 and d["in_flight"] == 0


def test_collect_rejects_duplicate_keys():
    sim = Simulator()
    mgr = FleetManager(sim=sim)

    def noop():
        return "x"
        yield  # pragma: no cover

    t1 = mgr.submit("dup", "w", noop)
    t2 = mgr.submit("dup", "w", noop)
    with pytest.raises(SnapifyError, match="duplicate fleet key"):
        next(mgr.collect([t1, t2]))


# ---------------------------------------------------------------------------
# Topologies
# ---------------------------------------------------------------------------


def test_fleet_topologies_catalog():
    assert set(FLEET_TOPOLOGIES) == {"dev2", "rack8", "rack32", "pod64",
                                     "hall128"}
    assert FLEET_TOPOLOGIES["pod64"].cards == 64
    assert FLEET_TOPOLOGIES["hall128"].cards == 128
    with pytest.raises(ValueError, match="unknown fleet topology"):
        XeonPhiFleet("nope")


def test_fleet_addressing_is_node_major():
    fleet = XeonPhiFleet("dev2")
    cards = fleet.cards()
    assert len(fleet) == 2 and [c.key for c in cards] == ["n0.mic0", "n0.mic1"]
    assert fleet.phi(cards[1]) is fleet.servers[0].node.phis[1]
    assert fleet.engine(cards[0]).device_id == 0


# ---------------------------------------------------------------------------
# Health sweeps
# ---------------------------------------------------------------------------


def test_health_sweep_flags_dead_card():
    fleet = XeonPhiFleet("dev2")
    mgr = FleetManager(fleet)
    injector = FaultInjector(fleet.sim)
    dead = fleet.cards()[1]

    def driver():
        injector.fail_now(fleet.phi(dead))
        return (yield from mgr.health_sweep())

    report = fleet.run(driver())
    assert [h.card for h in report.failed] == ["n0.mic1"]
    assert "card failed" in report.failed[0].error
    assert [h.card for h in report.healthy] == ["n0.mic0"]
    assert "1 failed" in report.summary()


def test_health_report_straggler_analysis():
    entries = [
        CardHealth("n0.mic0", True, 0.010),
        CardHealth("n0.mic1", True, 0.011),
        CardHealth("n1.mic0", True, 0.012),
        CardHealth("n1.mic1", True, 0.100),
        CardHealth("n2.mic0", False, None, error="link down"),
    ]
    report = HealthReport(entries, when=1.0)
    assert [h.card for h in report.stragglers()] == ["n1.mic1"]
    assert report.median_latency() == pytest.approx(0.0115)
    assert "1 straggling" in report.summary()
    # All-failed report: no median, no stragglers.
    empty = HealthReport([CardHealth("x", False, None, error="e")], when=0.0)
    assert empty.median_latency() is None and empty.stragglers() == []


# ---------------------------------------------------------------------------
# The acceptance scenario: a big sweep with the oracles asserted
# ---------------------------------------------------------------------------


def test_rack32_sweep_hundred_ops_under_admission_caps():
    """>= 100 concurrent keyed operations across >= 32 cards through one
    manager, with the admission-cap / starvation / quiescence oracles
    checked on the quiesced fleet."""
    fleet = XeonPhiFleet("rack32")
    mgr = FleetManager(fleet, max_in_flight=12, per_card_limit=2)
    assert len(fleet) == 32

    def driver():
        return (yield from fleet_sweep(fleet, mgr, ops_per_card=4))

    result = fleet.run(driver())
    assert len(result) == 128 and result.ok
    assert len(result.by_card()) == 32
    # Everything was truly concurrent: the global cap was reached.
    assert mgr.hwm_in_flight == 12
    assert max(mgr.hwm_per_card.values()) <= 2
    server = fleet.servers[0]
    assert fleet_admission_caps(server) == []
    assert fleet_no_starvation(server) == []
    assert fleet_quiescent(server) == []
    # Keyed operation results round-trip through the operation manager.
    op_results = result.operation_results()
    assert op_results
    mgr_ops = OperationManager.of(fleet.sim).operations
    for key, res in op_results.items():
        assert mgr_ops[res.op_id].fleet_key == key


def test_fleet_sweep_survives_card_failure():
    fleet = XeonPhiFleet("dev2")
    mgr = FleetManager(fleet, max_in_flight=4, per_card_limit=2)
    injector = FaultInjector(fleet.sim)
    dead = fleet.cards()[1]

    def driver():
        injector.fail_now(fleet.phi(dead))
        result = yield from fleet_sweep(fleet, mgr, ops_per_card=2)
        report = yield from mgr.health_sweep()
        return result, report

    result, report = fleet.run(driver())
    # Card 0's ops succeed; the dead card's spawns fail as keyed tickets.
    by_card = result.by_card()
    assert all(t.state == DONE for t in by_card["n0.mic0"])
    assert all(t.state == FAILED for t in by_card["n0.mic1"])
    assert [h.card for h in report.failed] == ["n0.mic1"]
    assert mgr.quiescent()
    server = fleet.servers[0]
    assert fleet_no_starvation(server) == []
    assert fleet_quiescent(server) == []


# ---------------------------------------------------------------------------
# Scheduler integration
# ---------------------------------------------------------------------------


def test_scheduler_routes_swaps_through_fleet():
    fleet = XeonPhiFleet("dev2")
    mgr = FleetManager(fleet, max_in_flight=4, per_card_limit=2)
    card = fleet.cards()[0]
    server = fleet.server(card.node)
    sched = SwapScheduler(server, device=card.device, fleet=mgr, card=card,
                          headroom=256 * MB)
    profile = replace(OPENMP_BENCHMARKS["MC"], iterations=300)
    app = OffloadApplication(server, profile, device=card.device,
                             name="tenant")
    out = {}

    def driver():
        sim = fleet.sim
        yield from app.launch()
        yield sim.timeout(0.5)
        sched.register(app.host_proc, footprint=2 * GB)
        out["evacuated"] = [j.host_proc.name
                            for j in (yield from sched.evacuate())]
        # A flagged card gets nothing swapped back onto it.
        sched.note_health(HealthReport(
            [CardHealth(card.key, False, None, error="probe failed")],
            when=sim.now,
        ))
        assert not sched.card_healthy()
        out["gated"] = yield from sched.reclaim()
        sched.note_health(HealthReport(
            [CardHealth(card.key, True, 0.01)], when=sim.now,
        ))
        out["reclaimed"] = [j.host_proc.name
                            for j in (yield from sched.reclaim())]
        yield app.host_proc.main_thread.done

    fleet.run(driver())
    assert out["evacuated"] == ["tenant"]
    assert out["gated"] == []
    assert out["reclaimed"] == ["tenant"]
    assert app.verify()
    # Both swap directions rode fleet tickets and recorded typed results.
    assert [e[0] for e in sched.swap_events] == ["out", "in"]
    assert len(sched.operations) == 2
    kinds = sorted(t.kind for t in mgr.tickets)
    assert kinds == ["swapin", "swapout"]
    assert all(t.state == DONE for t in mgr.tickets)


def test_scheduler_fleet_requires_card_ref():
    fleet = XeonPhiFleet("dev2")
    mgr = FleetManager(fleet)
    with pytest.raises(ValueError, match="CardRef"):
        SwapScheduler(fleet.servers[0], device=0, fleet=mgr)


# ---------------------------------------------------------------------------
# wait_map (keyed operation waiting on the ops layer)
# ---------------------------------------------------------------------------


def test_wait_map_returns_keyed_results_and_names_failed_keys():
    sim = Simulator()
    mgr = OperationManager.of(sim)
    ok = mgr.begin("checkpoint")
    bad = mgr.begin("swapout")
    ok.complete()
    bad.fail("no such card")

    with pytest.raises(StopIteration) as done:
        next(mgr.wait_map({"a": ok, "b": bad}))
    assert done.value.value == {"a": ok.result, "b": bad.result}

    with pytest.raises(SnapifyError, match="b .swapout. failed"):
        next(mgr.wait_map({"a": ok, "b": bad}, raise_on_error=True))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_fleet_smoke(capsys):
    from repro.obs.cli import main

    rc = main(["fleet", "--topology", "dev2", "--ops-per-card", "1",
               "--max-in-flight", "2", "--metrics"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Fleet sweep: dev2" in out
    assert "n0.mic0" in out and "n0.mic1" in out
    assert "2 ops, 2 ok, 0 failed" in out
    assert "fleet.submitted" in out


# ---------------------------------------------------------------------------
# Fuzz scenario registration
# ---------------------------------------------------------------------------


def test_fleet_fuzz_scenario_clean_and_faulted():
    from repro.check.fuzz import default_faults
    from repro.check.scenarios import run_scenario, scenario_names

    assert "fleet:rack8" in scenario_names()
    clean = run_scenario("fleet:rack8", seed=0, faults=default_faults("fleet:rack8", 0))
    assert clean.ok and clean.outcome == "completed"
    faults = default_faults("fleet:rack8", 1)
    assert faults and faults[0]["kind"] == "fleet_card_failure"
    faulted = run_scenario("fleet:rack8", seed=1, faults=faults)
    assert faulted.ok and faulted.outcome == "faulted"
