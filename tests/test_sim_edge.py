"""Edge paths of the simulation kernel not covered by the basic tests."""

import pytest

from repro.sim import (
    AnyOf,
    Channel,
    DeadlockError,
    Interrupted,
    Mutex,
    Simulator,
)


def test_anyof_propagates_failure_of_first_trigger():
    sim = Simulator()

    def worker(sim):
        bad = sim.event("bad")
        slow = sim.timeout(10)
        sim.schedule(1, bad.fail, ValueError("boom"))
        with pytest.raises(ValueError):
            yield sim.any_of([slow, bad])
        return "handled"

    t = sim.spawn(worker(sim))
    sim.run(check_deadlock=False)
    assert t.done.value == "handled"


def test_allof_propagates_first_failure():
    sim = Simulator()

    def worker(sim):
        bad = sim.event("bad")
        sim.schedule(1, bad.fail, KeyError("x"))
        with pytest.raises(KeyError):
            yield sim.all_of([sim.timeout(5), bad])
        return "handled"

    t = sim.spawn(worker(sim))
    sim.run(check_deadlock=False)
    assert t.done.value == "handled"


def test_anyof_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_event_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not-an-exception")


def test_interrupt_running_or_finished_thread_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)
        return "done"

    t = sim.spawn(quick(sim))
    sim.run()
    t.interrupt("too late")  # finished: no effect, no error
    assert t.done.value == "done"


def test_interrupt_race_with_completed_wait():
    """A signal landing exactly when a wait completes must deliver exactly
    one resume per wait: either the value or ONE interrupt, never both."""
    sim = Simulator()
    log = []

    def worker(sim):
        for k in range(2):
            try:
                v = yield sim.timeout(1.0, f"normal{k}")
                log.append(v)
            except Interrupted:
                log.append(f"interrupted{k}")
        return "survived"

    t = sim.spawn(worker(sim))

    def interrupter(sim):
        yield sim.timeout(1.0)  # same instant the first timeout fires
        t.interrupt("race")

    sim.spawn(interrupter(sim))
    sim.run()
    assert t.done.value == "survived"
    assert len(log) == 2
    # The signal was consumed by at most one wait.
    assert sum(1 for entry in log if entry.startswith("interrupted")) <= 1


def test_kill_idempotent_and_join_sees_failure():
    sim = Simulator()

    def worker(sim):
        yield sim.event("forever")

    t = sim.spawn(worker(sim))

    def killer(sim):
        yield sim.timeout(1)
        t.kill()
        t.kill()  # second kill: no-op
        try:
            yield t.done
        except Exception as exc:
            return type(exc).__name__

    k = sim.spawn(killer(sim))
    sim.run(check_deadlock=False)
    assert k.done.value == "ThreadKilled"


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # not a generator


def test_mutex_waiter_cancelled_by_interrupt_is_skipped():
    """A thread interrupted while queued on a mutex must not receive
    ownership later (its acquire event is stale)."""
    sim = Simulator()
    mutex = Mutex(sim)
    order = []

    def holder(sim):
        yield mutex.acquire(owner="holder")
        yield sim.timeout(2)
        mutex.release()

    def victim(sim):
        try:
            yield mutex.acquire(owner="victim")
            order.append("victim-acquired")
            mutex.release()
        except Interrupted:
            order.append("victim-interrupted")

    def third(sim):
        yield sim.timeout(0.5)
        yield mutex.acquire(owner="third")
        order.append("third-acquired")
        mutex.release()

    sim.spawn(holder(sim))
    v = sim.spawn(victim(sim))
    sim.spawn(third(sim))

    def interrupter(sim):
        yield sim.timeout(1)
        v.interrupt("cancel")

    sim.spawn(interrupter(sim))
    sim.run()
    assert order == ["victim-interrupted", "third-acquired"]
    assert not mutex.locked


def test_channel_close_with_custom_error_class():
    from repro.sim import SimError

    class CustomReset(SimError):
        pass

    sim = Simulator()
    ch = Channel(sim)
    ch.close(CustomReset("gone"))

    def worker(sim):
        with pytest.raises(CustomReset):
            yield ch.recv()
        with pytest.raises(CustomReset):
            yield ch.send(1)
        return "ok"

    t = sim.spawn(worker(sim))
    sim.run()
    assert t.done.value == "ok"


def test_run_resumes_after_until():
    sim = Simulator()
    hits = []

    def ticker(sim):
        for i in range(5):
            yield sim.timeout(1)
            hits.append(i)

    sim.spawn(ticker(sim))
    sim.run(until=2.5)
    assert hits == [0, 1]
    sim.run()
    assert hits == [0, 1, 2, 3, 4]


def test_deadlock_error_names_blocked_threads():
    sim = Simulator()

    def stuck(sim):
        yield sim.event("the-event-that-never-fires")

    sim.spawn(stuck(sim), name="my-stuck-thread")
    with pytest.raises(DeadlockError, match="my-stuck-thread"):
        sim.run()
