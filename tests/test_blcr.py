"""Tests for BLCR: context capture, checkpoint write pattern, restart."""

import pytest

from repro.blcr import (
    BASE_SMALL_RECORDS,
    BLCRError,
    ProcessContext,
    RECORDS_PER_THREAD,
    SMALL_RECORD,
    cr_checkpoint,
    cr_request_checkpoint,
    cr_restart,
)
from repro.hw import GB, MB, HardwareParams, MemoryExhausted, ServerNode
from repro.osim import RegularFileFD, boot_node
from repro.sim import Simulator


def make_env():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    host_os, phi_oses = boot_node(node)
    return sim, node, host_os, phi_oses[0]


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run()
    assert t.done.ok, t.done.exception
    return t.done.value


def counting_main(proc):
    """A resumable program: counts iterations in the store."""
    store = proc.store
    store.setdefault("iter", 0)
    store.setdefault("result", 0)
    while store["iter"] < store.get("n_iter", 10):
        yield proc.sim.timeout(0.1)
        store["result"] += store["iter"]
        store["iter"] += 1
    store["done"] = True


def test_context_capture_copies_state():
    sim, node, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("app", image_size=1 * MB)
        proc.map_region("heap", 10 * MB, data={"v": [1, 2, 3]})
        proc.store["iter"] = 5
        ctx = ProcessContext.capture(proc)
        # Mutations after capture must not leak into the context.
        proc.store["iter"] = 99
        proc.region("heap").data["v"].append(4)
        return ctx

    ctx = run(sim, worker(sim))
    assert ctx.store["iter"] == 5
    region = {r.name: r for r in ctx.regions}
    assert region["heap"].data == {"v": [1, 2, 3]}
    assert ctx.bulk_bytes == 11 * MB


def test_write_plan_shape():
    ctx = ProcessContext(
        name="x", nthreads=240, store={},
        regions=[__import__("repro.blcr.context", fromlist=["RegionImage"]).RegionImage(
            "heap", 9 * MB, "heap", False)],
    )
    plan = ctx.write_plan()
    small = [p for p in plan if p[0] == SMALL_RECORD]
    bulk = [p for p in plan if p[0] > SMALL_RECORD]
    assert len(small) == BASE_SMALL_RECORDS + RECORDS_PER_THREAD * 240 + 1
    assert sum(n for n, _ in bulk) == 9 * MB
    # Exactly one record carries the context itself.
    assert sum(1 for _, r in plan if isinstance(r, ProcessContext)) == 1


def test_checkpoint_restart_roundtrip_preserves_result():
    """The headline correctness property: restart -> identical final result."""
    sim, node, host, phi = make_env()
    state = {}

    def worker(sim):
        proc = yield from host.spawn_process(
            "app", image_size=1 * MB, main_factory=counting_main
        )
        proc.store["n_iter"] = 10
        yield sim.timeout(0.35)  # a few iterations in
        fd = RegularFileFD(sim, host.fs, "/ckpt/app.ctx", "w")
        ctx = yield from cr_checkpoint(proc, fd)
        fd.close()
        state["iter_at_ckpt"] = ctx.store["iter"]
        proc.terminate()

        rfd = RegularFileFD(sim, host.fs, "/ckpt/app.ctx", "r")
        restored = yield from cr_restart(host, rfd)
        rfd.close()
        yield restored.main_thread.done
        return restored

    restored = run(sim, worker(sim))
    assert 0 < state["iter_at_ckpt"] < 10
    assert restored.store["done"] is True
    # sum(range(10)) regardless of where the snapshot fell.
    assert restored.store["result"] == sum(range(10))
    assert restored.store["_blcr_restored"] is True


def test_restart_remaps_regions_with_data():
    sim, node, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("app", image_size=2 * MB)
        proc.map_region("heap", 64 * MB, data={"weights": "W0"}, pinned=True)
        fd = RegularFileFD(sim, host.fs, "/c", "w")
        yield from cr_checkpoint(proc, fd)
        fd.close()
        proc.terminate()
        rfd = RegularFileFD(sim, host.fs, "/c", "r")
        restored = yield from cr_restart(host, rfd)
        return restored

    restored = run(sim, worker(sim))
    assert restored.region("heap").data == {"weights": "W0"}
    assert restored.region("heap").pinned is True
    assert restored.memory_footprint == 66 * MB


def test_checkpoint_dead_process_rejected():
    sim, node, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("app")
        proc.terminate()
        fd = RegularFileFD(sim, host.fs, "/c", "w")
        with pytest.raises(BLCRError):
            yield from cr_checkpoint(proc, fd)
        return "ok"

    assert run(sim, worker(sim)) == "ok"


def test_restart_from_non_context_file_fails():
    sim, node, host, phi = make_env()

    def worker(sim):
        fd = RegularFileFD(sim, host.fs, "/junk", "w")
        yield from fd.write(SMALL_RECORD, record="not-a-context")
        fd.close()
        rfd = RegularFileFD(sim, host.fs, "/junk", "r")
        with pytest.raises(BLCRError):
            yield from cr_restart(host, rfd)
        return "ok"

    assert run(sim, worker(sim)) == "ok"


def test_restart_oom_cleans_up():
    """Restoring a 6 GB process onto a card with 5 GB free must fail cleanly."""
    sim, node, host, phi = make_env()

    def worker(sim):
        proc = yield from phi.spawn_process("big")
        proc.map_region("heap", 6 * GB)
        fd = RegularFileFD(sim, host.fs, "/c", "w")
        yield from cr_checkpoint(proc, fd)
        fd.close()
        proc.terminate()
        # Occupy the card so the restore cannot fit.
        phi.memory.allocate(5 * GB, "process")
        rfd = RegularFileFD(sim, host.fs, "/c", "r")
        with pytest.raises(MemoryExhausted):
            yield from cr_restart(phi, rfd)
        phi.memory.free(5 * GB, "process")
        return "ok"

    assert run(sim, worker(sim)) == "ok"
    # The half-restored process must not linger in the process table.
    assert all(p.name != "big" for p in sim.threads if hasattr(p, "name"))


def test_cr_request_checkpoint_is_asynchronous():
    sim, node, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process(
            "app", image_size=1 * MB, main_factory=counting_main
        )
        proc.store["n_iter"] = 3
        fd = RegularFileFD(sim, host.fs, "/c", "w")
        done = cr_request_checkpoint(proc, fd)
        t_request = sim.now
        ctx = yield done
        fd.close()
        return t_request, sim.now, ctx

    t_request, t_done, ctx = run(sim, worker(sim))
    assert t_done >= t_request
    assert isinstance(ctx, ProcessContext)


def test_checkpoint_size_accounting():
    sim, node, host, phi = make_env()

    def worker(sim):
        proc = yield from phi.spawn_process("app", image_size=20 * MB)
        proc.map_region("heap", 100 * MB)
        fd = RegularFileFD(sim, host.fs, "/c", "w")
        ctx = yield from cr_checkpoint(proc, fd)
        fd.close()
        return ctx, host.fs.stat("/c").size

    ctx, fsize = run(sim, worker(sim))
    assert fsize == ctx.image_bytes
    assert ctx.bulk_bytes == 120 * MB
    assert ctx.metadata_bytes < 1 * MB


def test_restart_on_different_os():
    """Process migration primitive: context captured on mic0, restored on mic1."""
    sim = Simulator()
    node = ServerNode(sim, HardwareParams(phis_per_node=2))
    host, (mic0, mic1) = boot_node(node)

    def worker(sim):
        proc = yield from mic0.spawn_process(
            "roamer", image_size=1 * MB, main_factory=counting_main
        )
        proc.store["n_iter"] = 4
        yield sim.timeout(0.15)
        fd = RegularFileFD(sim, host.fs, "/c", "w")
        yield from cr_checkpoint(proc, fd)
        fd.close()
        proc.terminate()
        rfd = RegularFileFD(sim, host.fs, "/c", "r")
        restored = yield from cr_restart(mic1, rfd)
        yield restored.main_thread.done
        return restored

    restored = run(sim, worker(sim))
    assert restored.os is mic1
    assert restored.store["result"] == sum(range(4))


def test_multiple_restores_from_one_context_are_independent():
    """Regression: two processes restored from the SAME snapshot must not
    share mutable store/region state (a real bug caught by the resilient-
    runner benchmark: the second restore saw the first restart's progress)."""
    sim, node, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process(
            "app", image_size=1 * MB, main_factory=counting_main
        )
        proc.store["n_iter"] = 6
        proc.map_region("heap", 4 * MB, data={"log": []})
        yield sim.timeout(0.25)
        fd = RegularFileFD(sim, host.fs, "/multi", "w")
        yield from cr_checkpoint(proc, fd)
        fd.close()
        proc.terminate()

        rfd = RegularFileFD(sim, host.fs, "/multi", "r")
        first = yield from cr_restart(host, rfd)
        rfd.close()
        yield first.main_thread.done
        first.store["poison"] = True
        first.region("heap").data["log"].append("tainted")
        first.terminate()

        rfd = RegularFileFD(sim, host.fs, "/multi", "r")
        second = yield from cr_restart(host, rfd)
        rfd.close()
        yield second.main_thread.done
        return first, second

    first, second = run(sim, worker(sim))
    assert second.store.get("poison") is None
    assert second.region("heap").data == {"log": []}
    assert first.store["result"] == second.store["result"] == sum(range(6))
