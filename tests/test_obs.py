"""Tests for the observability layer: spans, metrics, phases, export."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    PhaseBreakdown,
    build_span_tree,
    chrome_trace,
    validate_trace_events,
    write_chrome_trace,
)
from repro.obs.cli import main as cli_main, run_traced_scenario
from repro.sim import NULL_SPAN, Simulator


# ---------------------------------------------------------------------------
# Span API
# ---------------------------------------------------------------------------


def test_span_begin_end_records():
    sim = Simulator(trace=True)
    sp = sim.trace.span("op", answer=42)
    assert sp.span_id == 1 and sp.parent_id == 0
    sim.schedule(0.5, lambda: None)
    sim.run()
    sp.finish(bytes=7)
    begins = sim.trace.find("span.begin", span=1)
    ends = sim.trace.find("span.end", span=1)
    assert len(begins) == 1 and begins[0].fields["answer"] == 42
    assert len(ends) == 1 and ends[0].fields["bytes"] == 7
    assert ends[0].time == pytest.approx(0.5)
    assert sp.end == pytest.approx(0.5)


def test_span_parent_accepts_span_or_bare_id():
    sim = Simulator(trace=True)
    root = sim.trace.span("root")
    by_object = sim.trace.span("child-a", parent=root)
    # Protocol messages carry bare ids across process boundaries.
    by_id = sim.trace.span("child-b", parent=root.span_id)
    assert by_object.parent_id == root.span_id
    assert by_id.parent_id == root.span_id


def test_span_ids_are_deterministic_per_simulator():
    ids = []
    for _ in range(2):
        sim = Simulator(trace=True)
        sim.trace.span("a")
        ids.append(sim.trace.span("b").span_id)
    assert ids[0] == ids[1] == 2


def test_span_double_finish_is_single_record():
    sim = Simulator(trace=True)
    sp = sim.trace.span("op")
    sp.finish()
    sp.finish()
    assert len(sim.trace.find("span.end", span=sp.span_id)) == 1


def test_span_context_manager():
    sim = Simulator(trace=True)
    with sim.trace.span("op") as sp:
        pass
    assert sp.end is not None


def test_disabled_span_is_null_span():
    """With tracing off, span() returns the shared NULL_SPAN: no allocation,
    no id drawn, finish() a no-op — and span_id 0 means 'no parent' when
    embedded in protocol messages."""
    sim = Simulator(trace=False)
    sp = sim.trace.span("op", parent=17)
    assert sp is NULL_SPAN and sp.span_id == 0
    sp.finish()
    assert sim.trace.records == []
    # No id was drawn while disabled: the first traced span still gets id 1.
    sim.trace.enabled = True
    assert sim.trace.span("op").span_id == 1


# ---------------------------------------------------------------------------
# Sinks and capture()
# ---------------------------------------------------------------------------


def test_sinks_attached_while_disabled_see_nothing():
    """The disabled tracer's emit is a no-op, so sinks observe only records
    emitted while enabled — attaching early doesn't change that."""
    sim = Simulator(trace=False)
    seen = []
    sim.trace.sinks.append(lambda rec: seen.append(rec.category))
    sim.trace.emit("invisible")
    assert seen == [] and sim.trace.records == []
    sim.trace.enabled = True
    sim.trace.emit("visible")
    assert seen == ["visible"]


def test_capture_context_manager():
    sim = Simulator(trace=False)
    with sim.trace.capture() as trace:
        trace.emit("inside")
    assert not sim.trace.enabled
    assert [r.category for r in sim.trace.records] == ["inside"]
    sim.trace.emit("after")  # still disabled
    assert len(sim.trace.records) == 1


def test_capture_restores_enabled_state_and_clears():
    sim = Simulator(trace=True)
    sim.trace.emit("before")
    with sim.trace.capture(clear=True):
        sim.trace.emit("inside")
    assert sim.trace.enabled  # prior state restored
    assert [r.category for r in sim.trace.records] == ["inside"]


# ---------------------------------------------------------------------------
# Category index (find / first_time / last_time)
# ---------------------------------------------------------------------------


def test_category_index_matches_linear_scan():
    sim = Simulator(trace=True)
    for i in range(200):
        sim.trace.emit(f"cat{i % 7}", i=i, parity=i % 2)
    trace = sim.trace
    for cat in [f"cat{k}" for k in range(7)] + ["missing"]:
        for match in ({}, {"parity": 0}, {"i": 13}, {"i": -1}):
            expect = [r for r in trace.records if r.category == cat
                      and all(r.fields.get(k) == v for k, v in match.items())]
            assert trace.find(cat, **match) == expect
            assert trace.first_time(cat, **match) == (
                expect[0].time if expect else None)
            assert trace.last_time(cat, **match) == (
                expect[-1].time if expect else None)


def test_clear_resets_category_index():
    sim = Simulator(trace=True)
    sim.trace.emit("cat")
    sim.trace.clear()
    assert sim.trace.find("cat") == []
    sim.trace.emit("cat", fresh=True)
    assert len(sim.trace.find("cat")) == 1


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def test_registry_is_per_simulator_and_get_or_create():
    sim = Simulator()
    reg = MetricsRegistry.of(sim)
    assert MetricsRegistry.of(sim) is reg
    c = reg.counter("hits")
    assert reg.counter("hits") is c
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_registry_snapshot_and_gauge_failure():
    sim = Simulator()
    reg = MetricsRegistry.of(sim)
    reg.counter("n").inc(3)
    reg.gauge("depth", lambda: 7)
    reg.gauge("broken", lambda: 1 / 0)
    h = reg.histogram("lat")
    h.observe(2.0)
    h.observe(4.0)
    snap = reg.snapshot()
    assert snap["counters"]["n"] == 3
    assert snap["gauges"]["depth"] == 7
    assert snap["gauges"]["broken"] is None  # raising gauge reported as None
    assert snap["histograms"]["lat"]["mean"] == pytest.approx(3.0)
    assert snap["histograms"]["lat"]["min"] == 2.0
    assert snap["histograms"]["lat"]["max"] == 4.0


def test_registry_sample_emits_metric_records():
    sim = Simulator(trace=True)
    reg = MetricsRegistry.of(sim)
    reg.counter("a.n").inc()
    reg.gauge("b.depth", lambda: 2)
    reg.gauge("b.label", lambda: "text")  # non-numeric: not sampled
    reg.sample(sim.trace)
    names = {r.fields["name"] for r in sim.trace.find("metric.sample")}
    assert names == {"a.n", "b.depth"}
    reg.sample(sim.trace, prefix="b.")
    assert len(sim.trace.find("metric.sample")) == 3


# ---------------------------------------------------------------------------
# Span trees and phase breakdowns
# ---------------------------------------------------------------------------


def _advance(sim, dt):
    sim.schedule(dt, lambda: None)
    sim.run()


def _synthetic_operation(sim):
    """Root [0, 10] with overlapping children [1, 5] and [4, 8]."""
    trace = sim.trace
    root = trace.span("op", proc="host")
    _advance(sim, 1.0)
    a = trace.span("phase.a", parent=root, proc="host")
    _advance(sim, 3.0)
    b = trace.span("phase.b", parent=root, proc="card")
    _advance(sim, 1.0)
    a.finish()
    _advance(sim, 3.0)
    b.finish()
    _advance(sim, 2.0)
    root.finish()
    return root


def test_build_span_tree_structure():
    sim = Simulator(trace=True)
    _synthetic_operation(sim)
    roots, by_id = build_span_tree(sim.trace)
    assert len(roots) == 1 and len(by_id) == 3
    root = roots[0]
    assert [c.name for c in root.children] == ["phase.a", "phase.b"]
    assert root.find("phase.b")[0].duration == pytest.approx(4.0)
    assert len(list(root.walk())) == 3


def test_phase_breakdown_accounts_to_total():
    """Union accounting: overlapping children are counted once, and covered
    plus unattributed reproduces end-to-end exactly (the 1% criterion holds
    by construction)."""
    sim = Simulator(trace=True)
    _synthetic_operation(sim)
    bd = PhaseBreakdown.from_trace(sim.trace, "op")
    assert bd.total == pytest.approx(10.0)
    assert bd.covered == pytest.approx(7.0)  # [1,5] U [4,8]
    assert bd.unattributed == pytest.approx(3.0)
    assert bd.accounted == pytest.approx(bd.total)
    assert abs(bd.accounted - bd.total) <= 0.01 * bd.total
    text = bd.render()
    assert "phase.a" in text and "(unattributed)" in text and "overlap" in text


def test_phase_breakdown_unknown_root():
    sim = Simulator(trace=True)
    _synthetic_operation(sim)
    with pytest.raises(ValueError, match="no finished root span"):
        PhaseBreakdown.from_trace(sim.trace, "nope")
    with pytest.raises(ValueError, match="occurrence 1"):
        PhaseBreakdown.from_trace(sim.trace, "op", occurrence=1)


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------


def test_chrome_trace_lanes_and_pairs():
    sim = Simulator(trace=True)
    _synthetic_operation(sim)
    MetricsRegistry.of(sim).counter("n").inc()
    MetricsRegistry.of(sim).sample(sim.trace)
    sim.trace.emit("marker", proc="host")
    doc = chrome_trace(sim.trace)
    assert validate_trace_events(doc) == len(doc["traceEvents"])
    lanes = {ev["args"]["name"] for ev in doc["traceEvents"] if ev["ph"] == "M"}
    assert {"host", "card", "metrics"} <= lanes
    counters = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
    assert counters and counters[0]["args"]["value"] == 1


def test_chrome_trace_closes_unfinished_spans():
    sim = Simulator(trace=True)
    sim.trace.span("never-finished", proc="host")
    sim.trace.emit("later")
    doc = chrome_trace(sim.trace)
    validate_trace_events(doc)  # synthetic 'e' keeps pairs matched
    ends = [ev for ev in doc["traceEvents"] if ev["ph"] == "e"]
    assert len(ends) == 1 and ends[0]["args"] == {"unfinished": True}


def test_validator_rejects_malformed_docs():
    with pytest.raises(ValueError, match="traceEvents"):
        validate_trace_events({})
    with pytest.raises(ValueError, match="bad phase"):
        validate_trace_events({"traceEvents": [{"ph": "z"}]})
    with pytest.raises(ValueError, match="never ended"):
        validate_trace_events({"traceEvents": [
            {"ph": "b", "cat": "span", "id": 1, "name": "x",
             "pid": 1, "tid": 0, "ts": 0.0},
        ]})
    with pytest.raises(ValueError, match="without begin"):
        validate_trace_events({"traceEvents": [
            {"ph": "e", "cat": "span", "id": 9, "name": "x",
             "pid": 1, "tid": 0, "ts": 0.0},
        ]})


# ---------------------------------------------------------------------------
# End-to-end: the traced swap-out scenario (CI's format test)
# ---------------------------------------------------------------------------


def test_traced_swapout_breakdown_and_export(tmp_path):
    server = run_traced_scenario("swapout", iterations=10)
    tracer = server.sim.trace

    for root_name in ("snapify.swapout", "snapify.swapin"):
        bd = PhaseBreakdown.from_trace(tracer, root_name)
        assert bd.total > 0
        assert bd.components, f"{root_name} has no component spans"
        # Acceptance criterion: components (union) + unattributed sum to the
        # end-to-end latency within 1%.
        assert abs(bd.accounted - bd.total) <= 0.01 * bd.total

    # The daemon/agent-side work joins the host-side causal tree.
    roots, _ = build_span_tree(tracer)
    swapout = next(r for r in roots if r.name == "snapify.swapout")
    names = {n.name for n in swapout.walk()}
    assert {"snapify.pause", "agent.pause", "agent.localstore_save",
            "snapifyio.local"} <= names

    out = tmp_path / "trace.json"
    doc = write_chrome_trace(tracer, str(out))
    assert validate_trace_events(doc) > 0
    validate_trace_events(json.loads(out.read_text()))  # valid after round-trip


def test_cli_trace_checkpoint(capsys):
    rc = cli_main(["trace", "--scenario", "checkpoint", "--iterations", "10",
                   "--sample-interval", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Phase breakdown: snapify.checkpoint" in out
    assert "end-to-end" in out
