"""Property-based tests on the hardware/transport cost models: simulated
costs must be monotone, additive where expected, and free of negative or
NaN times for any admissible input."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    GB,
    KB,
    MB,
    BandwidthLink,
    HardwareParams,
    MemoryParams,
    PhysicalMemory,
    ServerNode,
)
from repro.hw.storage import HostDisk
from repro.hw.params import DiskParams
from repro.osim import boot_node
from repro.sim import Simulator
from repro.snapify_io import NFSMount

sizes = st.integers(min_value=1, max_value=2 * GB)
prop = settings(max_examples=40, deadline=None)


def timed(sim, gen):
    t0 = sim.now
    th = sim.spawn(gen)
    sim.run_until(th.done)
    assert th.done.ok, th.done.exception
    return sim.now - t0


# ---------------------------------------------------------------------------
# Links
# ---------------------------------------------------------------------------


@prop
@given(n=sizes, bw=st.floats(min_value=1 * MB, max_value=10 * GB))
def test_link_cost_is_linear(n, bw):
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=bw)

    def xfer(nbytes):
        yield from link.occupy(nbytes)

    t1 = timed(sim, xfer(n))
    assert t1 == pytest.approx(n / bw)
    assert t1 >= 0 and math.isfinite(t1)


@prop
@given(a=sizes, b=sizes)
def test_link_transfers_are_additive(a, b):
    sim = Simulator()
    link = BandwidthLink(sim, bandwidth=1 * GB)

    def both(sim):
        yield from link.occupy(a)
        yield from link.occupy(b)

    def single(sim):
        yield from link.occupy(a + b)

    t_both = timed(sim, both(sim))
    sim2 = Simulator()
    link2 = BandwidthLink(sim2, bandwidth=1 * GB)

    def single2(sim):
        yield from link2.occupy(a + b)

    t_single = timed(sim2, single2(sim2))
    assert t_both == pytest.approx(t_single, rel=1e-9)


# ---------------------------------------------------------------------------
# Memory accounting
# ---------------------------------------------------------------------------


@prop
@given(
    allocs=st.lists(st.integers(min_value=1, max_value=512 * MB), max_size=20)
)
def test_memory_accounting_is_exact(allocs):
    sim = Simulator()
    mem = PhysicalMemory(sim, MemoryParams(capacity=64 * GB))
    total = 0
    for i, n in enumerate(allocs):
        mem.allocate(n, f"c{i % 3}")
        total += n
    assert mem.used == total
    assert mem.available == mem.capacity - total
    for i, n in enumerate(allocs):
        mem.free(n, f"c{i % 3}")
    assert mem.used == 0
    assert all(v == 0 for v in mem.by_category.values())


# ---------------------------------------------------------------------------
# Disk (sync path)
# ---------------------------------------------------------------------------


@prop
@given(n=sizes)
def test_sync_write_cost_model(n):
    sim = Simulator()
    disk = HostDisk(sim, DiskParams(write_bw=120 * MB, op_latency=1e-4),
                    memcpy_bw=6 * GB)

    def w(sim):
        yield from disk.write(n, sync=True)

    t = timed(sim, w(sim))
    assert t == pytest.approx(1e-4 + n / (120 * MB))


# ---------------------------------------------------------------------------
# NFS model
# ---------------------------------------------------------------------------


def make_nfs(sync=True):
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    host, phis = boot_node(node)
    return sim, NFSMount(phis[0], host.fs, node.params.nfs, sync_writes=sync)


@prop
@given(n=st.integers(min_value=1, max_value=256 * MB))
def test_nfs_sync_write_cost_positive_and_monotone_pieces(n):
    sim, mount = make_nfs()

    def w(sim):
        yield from mount.write("/f", n)

    t = timed(sim, w(sim))
    params = mount.params
    n_rpcs = max(1, -(-n // params.rpc_size))
    assert t >= n_rpcs * params.op_latency
    assert t >= n / params.write_bw


@settings(max_examples=15, deadline=None)
@given(
    chunks=st.lists(st.integers(min_value=1, max_value=4 * MB),
                    min_size=1, max_size=12)
)
def test_nfs_small_writes_cost_at_least_one_rpc_each(chunks):
    sim, mount = make_nfs()

    def w(sim):
        for c in chunks:
            yield from mount.write("/f", c)

    t = timed(sim, w(sim))
    assert t >= len(chunks) * mount.params.op_latency
    assert mount.rpc_count >= len(chunks)


@settings(max_examples=15, deadline=None)
@given(
    reads=st.lists(st.integers(min_value=64, max_value=64 * KB),
                   min_size=2, max_size=30)
)
def test_nfs_readahead_never_refetches(reads):
    """Sequential reads fetch each rpc_size window at most once."""
    sim, mount = make_nfs(sync=False)
    total = sum(reads)

    def setup(sim):
        yield from mount.host_fs.write("/f", total)

    timed(sim, setup(sim))

    def r(sim):
        for n in reads:
            yield from mount.read("/f", n)

    mount.rpc_count = 0
    timed(sim, r(sim))
    max_windows = -(-total // mount.params.rpc_size) + 1
    assert mount.rpc_count <= max_windows
