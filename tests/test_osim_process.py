"""Tests for simulated processes, signals, pipes and sockets."""

import pytest

from repro.hw import MB, HardwareParams, ServerNode
from repro.osim import DuplexPipe, ProcessError, SocketError, UnixPipe, UnixSocket, boot_node, signals
from repro.sim import Simulator, ThreadKilled


def make_env():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    host_os, phi_oses = boot_node(node)
    return sim, host_os, phi_oses[0]


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run()
    assert t.done.ok, t.done.exception
    return t.done.value


# --------------------------------------------------------------------------
# Processes
# --------------------------------------------------------------------------


def test_spawn_process_charges_latency_and_memory():
    sim, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("app", image_size=10 * MB)
        return proc, sim.now

    proc, t = run(sim, worker(sim))
    assert t == pytest.approx(host.spawn_latency)
    assert proc.memory_footprint == 10 * MB
    assert host.memory.by_category["process"] == 10 * MB


def test_process_main_thread_runs():
    sim, host, phi = make_env()
    ran = []

    def main(proc):
        yield proc.sim.timeout(1)
        ran.append(proc.name)

    def worker(sim):
        yield from host.spawn_process("app", main_factory=main)

    run(sim, worker(sim))
    assert ran == ["app"]


def test_region_mapping_and_oom():
    sim, host, phi = make_env()

    def worker(sim):
        proc = yield from phi.spawn_process("offload", image_size=20 * MB)
        proc.map_region("heap", 4096 * MB, kind="heap")
        return proc

    proc = run(sim, worker(sim))
    assert proc.memory_footprint == (4096 + 20) * MB
    from repro.hw import MemoryExhausted

    with pytest.raises(MemoryExhausted):
        proc.map_region("huge", 8 * 1024 * MB)


def test_region_duplicate_and_unknown_unmap():
    sim, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("app")
        proc.map_region("a", 10)
        with pytest.raises(ProcessError):
            proc.map_region("a", 10)
        with pytest.raises(ProcessError):
            proc.unmap_region("b")
        return "ok"

    assert run(sim, worker(sim)) == "ok"


def test_terminate_releases_everything_and_fires_exit():
    sim, host, phi = make_env()
    observed = []

    def stuck(proc):
        yield proc.sim.event("never")

    def worker(sim):
        proc = yield from host.spawn_process("app", image_size=5 * MB)
        proc.map_region("heap", 100 * MB)
        t = proc.spawn_thread(stuck(proc), name="stuck")
        proc.exit_event.add_callback(lambda ev: observed.append(ev.value))
        yield sim.timeout(1)
        proc.terminate(code=7)
        return proc, t

    proc, t = run(sim, worker(sim))
    assert observed == [7]
    assert proc.memory_footprint == 0
    assert host.memory.by_category["process"] == 0
    assert isinstance(t.done.exception, ThreadKilled)
    assert proc.pid not in host.processes


def test_exit_watchers_invoked():
    sim, host, phi = make_env()
    reaped = []
    host.exit_watchers.append(lambda p: reaped.append(p.name))

    def worker(sim):
        proc = yield from host.spawn_process("app")
        proc.terminate()

    run(sim, worker(sim))
    assert reaped == ["app"]


def test_signal_handler_spawns_thread():
    sim, host, phi = make_env()
    log = []

    def handler(proc, signum):
        yield proc.sim.timeout(0.5)
        log.append((proc.name, signum, proc.sim.now))

    def worker(sim):
        proc = yield from host.spawn_process("app")
        proc.install_signal_handler(signals.SIGUSR1, handler)
        proc.deliver_signal(signals.SIGUSR1)
        yield proc.exit_event if False else sim.timeout(1)
        return proc

    run(sim, worker(sim))
    assert len(log) == 1
    assert log[0][1] == signals.SIGUSR1


def test_default_fatal_signal_terminates():
    sim, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("app")
        proc.deliver_signal(signals.SIGTERM)
        return proc

    proc = run(sim, worker(sim))
    assert not proc.alive
    assert proc.exit_code == 128 + signals.SIGTERM


def test_sigkill_cannot_be_caught():
    sim, host, phi = make_env()

    def handler(proc, signum):
        yield proc.sim.timeout(0)

    def worker(sim):
        proc = yield from host.spawn_process("app")
        with pytest.raises(ProcessError):
            proc.install_signal_handler(signals.SIGKILL, handler)
        return "ok"

    assert run(sim, worker(sim)) == "ok"


def test_unhandled_nonfatal_signal_ignored():
    sim, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("app")
        proc.deliver_signal(signals.SIGUSR2)
        return proc

    proc = run(sim, worker(sim))
    assert proc.alive


def test_signal_to_dead_process_raises():
    sim, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("app")
        proc.terminate()
        with pytest.raises(ProcessError):
            proc.deliver_signal(signals.SIGUSR1)
        return "ok"

    assert run(sim, worker(sim)) == "ok"


# --------------------------------------------------------------------------
# Pipes
# --------------------------------------------------------------------------


def test_unix_pipe_directionality():
    sim, host, phi = make_env()
    pipe = UnixPipe(sim)

    def worker(sim):
        yield from pipe.write_end.send("msg")
        msg = yield pipe.read_end.recv()
        with pytest.raises(RuntimeError):
            yield from pipe.read_end.send("x")
        with pytest.raises(RuntimeError):
            pipe.write_end.recv()
        return msg

    assert run(sim, worker(sim)) == "msg"


def test_duplex_pipe_roundtrip():
    sim, host, phi = make_env()
    dp = DuplexPipe(sim)
    log = []

    def daemon_side(sim):
        msg = yield dp.a.recv()
        log.append(("daemon got", msg))
        yield from dp.a.send("ack:" + msg)

    def process_side(sim):
        yield from dp.b.send("pause")
        ack = yield dp.b.recv()
        log.append(("process got", ack))

    sim.spawn(daemon_side(sim))
    sim.spawn(process_side(sim))
    sim.run()
    assert log == [("daemon got", "pause"), ("process got", "ack:pause")]


# --------------------------------------------------------------------------
# UNIX sockets
# --------------------------------------------------------------------------


def test_socket_listen_connect_transfer():
    sim, host, phi = make_env()
    listener = host.sockets.listen("/var/run/snapify-io.sock")
    got = []

    def server(sim):
        conn = yield listener.accept()
        n, rec = yield from conn.read_datagram()
        got.append((n, rec))

    def client(sim):
        sock = yield from host.sockets.connect("/var/run/snapify-io.sock")
        yield from sock.write(4 * MB, record=b"chunk")

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run()
    assert got == [(4 * MB, b"chunk")]


def test_socket_connect_refused():
    sim, host, phi = make_env()

    def client(sim):
        yield sim.timeout(0)
        with pytest.raises(SocketError):
            yield from host.sockets.connect("/no/listener")
        return "ok"

    assert run(sim, client(sim)) == "ok"


def test_socket_eof_on_close():
    sim, host, phi = make_env()
    a, b = UnixSocket.pair(sim, bandwidth=1e9)
    results = []

    def reader(sim):
        rec = yield from b.read()
        results.append(rec)
        rec = yield from b.read()
        results.append(rec)  # EOF -> None

    def writer(sim):
        yield from a.write(10, record="only")
        a.close()

    sim.spawn(reader(sim))
    sim.spawn(writer(sim))
    sim.run()
    assert results == ["only", None]


def test_socket_write_after_peer_close_epipe():
    sim, host, phi = make_env()
    a, b = UnixSocket.pair(sim, bandwidth=1e9)

    def worker(sim):
        b.close()
        with pytest.raises(SocketError):
            yield from a.write(10, record="x")
        return "ok"

    assert run(sim, worker(sim)) == "ok"


def test_socket_transfer_charges_bandwidth():
    sim, host, phi = make_env()
    a, b = UnixSocket.pair(sim, bandwidth=100 * MB)

    def reader(sim):
        yield from b.read()

    def writer(sim):
        yield from a.write(200 * MB)
        return sim.now

    sim.spawn(reader(sim))
    t = sim.spawn(writer(sim))
    sim.run()
    assert t.done.value == pytest.approx(2.0)


def test_socket_address_in_use():
    sim, host, phi = make_env()
    host.sockets.listen("/sock")
    with pytest.raises(SocketError):
        host.sockets.listen("/sock")
