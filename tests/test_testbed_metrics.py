"""Tests for the testbed assembly, calibration parameters, and metrics."""

import pytest

from repro.calibration import mpi_cluster_testbed, paper_testbed
from repro.coi import COIDaemon
from repro.hw import GB, KB, MB, describe
from repro.metrics import ResultTable, fmt_bytes, fmt_time
from repro.snapify_io import SnapifyIODaemon
from repro.testbed import XeonPhiCluster, XeonPhiServer


# ---------------------------------------------------------------------------
# Testbeds
# ---------------------------------------------------------------------------


def test_server_boots_full_stack():
    server = XeonPhiServer()
    assert len(server.node.phis) == 2
    assert len(server.coi_daemons) == 2
    # One Snapify-IO daemon on the host + one per card.
    assert len(server.io_daemons) == 3
    for phi in server.node.phis:
        assert COIDaemon.of(phi).proc.alive
    assert SnapifyIODaemon.of(server.host_os).proc.alive
    assert SnapifyIODaemon.of(server.phi_os(0)).proc.alive


def test_server_engines_map_to_devices():
    server = XeonPhiServer()
    assert server.engine(0).device_id == 0
    assert server.engine(1).device_id == 1
    assert server.engine(1).phi is server.node.phis[1]


def test_cluster_matches_paper_mpi_testbed():
    cluster = XeonPhiCluster(n_nodes=4)
    assert len(cluster) == 4
    for server in cluster.servers:
        # Fig. 11's cluster: ONE 8 GB Phi per node.
        assert len(server.node.phis) == 1
        assert server.node.phis[0].memory.capacity == 8 * GB


def test_paper_testbed_matches_table2():
    params = paper_testbed()
    assert params.host.cores == 12          # E5-2630: 6 cores x 2 threads
    assert params.host.memory.capacity == 32 * GB
    assert params.phi.cores == 60           # 5110P
    assert params.phi.threads_per_core == 4
    assert params.phi.memory.capacity == 8 * GB
    assert params.phis_per_node == 2
    assert mpi_cluster_testbed().phis_per_node == 1


def test_describe_smoke():
    desc = describe(paper_testbed())
    assert "snapify-io buffer" in desc and desc["snapify-io buffer"] == "4 MB"


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(4 * KB) == "4.0 KB"
    assert fmt_bytes(150 * MB) == "150.0 MB"
    assert fmt_bytes(int(2.5 * GB)) == "2.50 GB"


def test_fmt_time():
    assert fmt_time(3.21) == "3.21 s"
    assert fmt_time(0.004) == "4.00 ms"
    assert fmt_time(2.5e-6) == "2.5 us"


def test_result_table_render():
    t = ResultTable("demo", ["a", "b"])
    t.add_row("x", 1)
    t.add_row("longer-cell", 22)
    t.add_note("a note")
    out = t.render()
    assert "== demo ==" in out
    assert "longer-cell | 22" in out
    assert "note: a note" in out


def test_result_table_rejects_wrong_arity():
    t = ResultTable("demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row("only-one")
