"""Real numerical payloads through the whole snapshot pipeline.

Buffers and card state carry actual numpy arrays; offload functions do real
vectorized math. Snapshots must round-trip the numbers bit-exactly — across
checkpoint/restart, migration, and double restores.
"""

import numpy as np

from repro.coi import COIEngine, OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.snapify import (
    snapify_capture,
    snapify_pause,
    snapify_restore,
    snapify_resume,
    snapify_t,
    snapify_wait,
)
from repro.snapify.usecases import snapify_migration
from repro.testbed import XeonPhiServer

N = 4096


def jacobi_step(ctx, args):
    """One Jacobi smoothing step over the buffer's array (real numpy)."""
    x = ctx.buffer_payload(args["buf"])
    smoothed = x.copy()
    smoothed[1:-1] = (x[:-2] + 2 * x[1:-1] + x[2:]) / 4.0
    ctx.set_buffer_payload(args["buf"], smoothed)
    return float(smoothed.sum())


def make_binary():
    return OffloadBinary(
        "jacobi_mic.so", 4 * MB,
        {"step": OffloadFunction("step", duration=5e-3, effect=jacobi_step)},
    )


def reference_run(x0: np.ndarray, steps: int) -> np.ndarray:
    x = x0.copy()
    for _ in range(steps):
        s = x.copy()
        s[1:-1] = (x[:-2] + 2 * x[1:-1] + x[2:]) / 4.0
        x = s
    return x


def setup(server):
    out = {}

    def boot(sim):
        host = yield from server.host_os.spawn_process("jacobi", image_size=4 * MB)
        coiproc = yield from COIEngine(server.node, 0).process_create(host, make_binary())
        buf = yield from coiproc.buffer_create(N * 8)
        rng = np.random.default_rng(7)
        x0 = rng.normal(size=N)
        yield from coiproc.buffer_write(buf, payload=x0.copy())
        out.update(host=host, coiproc=coiproc, buf=buf, x0=x0)

    server.run(boot(server.sim))
    return out


def test_checkpoint_mid_solve_is_bit_exact():
    server = XeonPhiServer()
    env = setup(server)
    coiproc, buf, x0 = env["coiproc"], env["buf"], env["x0"]
    STEPS = 12

    def driver(sim):
        for k in range(STEPS):
            yield from coiproc.run_function("step", {"buf": buf.buf_id})
            if k == 5:  # checkpoint mid-solve
                snap = snapify_t(snapshot_path="/np/ck", coiproc=coiproc)
                yield from snapify_pause(snap)
                yield from snapify_capture(snap, terminate=False)
                yield from snapify_wait(snap)
                yield from snapify_resume(snap)
        result = yield from coiproc.buffer_read(buf)
        return result

    result = server.run(driver(server.sim))
    np.testing.assert_array_equal(result, reference_run(x0, STEPS))


def test_restore_resumes_with_exact_intermediate_state():
    server = XeonPhiServer()
    env = setup(server)
    coiproc, buf, x0, host = env["coiproc"], env["buf"], env["x0"], env["host"]

    def driver(sim):
        for _ in range(4):
            yield from coiproc.run_function("step", {"buf": buf.buf_id})
        snap = snapify_t(snapshot_path="/np/sw", coiproc=coiproc)
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=True)
        yield from snapify_wait(snap)
        new = yield from snapify_restore(snap, server.engine(1), host)
        yield from snapify_resume(snap)
        mid = yield from new.buffer_read(new.buffers[buf.buf_id])
        for _ in range(4):
            yield from new.run_function("step", {"buf": buf.buf_id})
        final = yield from new.buffer_read(new.buffers[buf.buf_id])
        return mid, final

    mid, final = server.run(driver(server.sim))
    np.testing.assert_array_equal(mid, reference_run(x0, 4))
    np.testing.assert_array_equal(final, reference_run(x0, 8))


def test_two_restores_get_independent_arrays():
    """Numpy flavor of the aliasing regression: restores from one snapshot
    must not share array objects."""
    server = XeonPhiServer()
    env = setup(server)
    coiproc, buf, x0, host = env["coiproc"], env["buf"], env["x0"], env["host"]

    def driver(sim):
        yield from coiproc.run_function("step", {"buf": buf.buf_id})
        snap = snapify_t(snapshot_path="/np/tw", coiproc=coiproc)
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=True)
        yield from snapify_wait(snap)

        first = yield from snapify_restore(snap, server.engine(0), host)
        yield from snapify_resume(snap)
        # Drive the first restore forward, then kill it.
        for _ in range(3):
            yield from first.run_function("step", {"buf": buf.buf_id})
        first_arr = yield from first.buffer_read(first.buffers[buf.buf_id])
        first.offload_proc.terminate()
        yield sim.timeout(0.01)

        snap2 = snapify_t(snapshot_path="/np/tw", coiproc=None)
        second = yield from snapify_restore(snap2, server.engine(1), host)
        yield from snapify_resume(snap2)
        second_arr = yield from second.buffer_read(second.buffers[buf.buf_id])
        return first_arr, second_arr

    first_arr, second_arr = server.run(driver(server.sim))
    np.testing.assert_array_equal(second_arr, reference_run(x0, 1))
    np.testing.assert_array_equal(first_arr, reference_run(x0, 4))
    assert not np.array_equal(first_arr, second_arr)


def test_migration_preserves_arrays():
    server = XeonPhiServer()
    env = setup(server)
    coiproc, buf, x0 = env["coiproc"], env["buf"], env["x0"]

    def driver(sim):
        for _ in range(3):
            yield from coiproc.run_function("step", {"buf": buf.buf_id})
        new, _ = yield from snapify_migration(coiproc, server.engine(1),
                                              snapshot_path="/np/mig")
        arr = yield from new.buffer_read(new.buffers[buf.buf_id])
        return arr

    arr = server.run(driver(server.sim))
    np.testing.assert_array_equal(arr, reference_run(x0, 3))
