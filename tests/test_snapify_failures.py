"""Failure injection inside the Snapify protocol itself: the offload
process dying mid-pause / mid-capture must surface as errors, not hangs —
and migration's direct device-to-device local-store path must work.
"""

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
from repro.coi import COIEngine, OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.snapify import (
    SnapifyError,
    snapify_capture,
    snapify_pause,
    snapify_t,
    snapify_wait,
)
from repro.snapify.constants import localstore_path
from repro.snapify.usecases import snapify_migration, snapify_swapout
from repro.testbed import XeonPhiServer


def make_binary():
    return OffloadBinary(
        "f.so", 4 * MB,
        {"work": OffloadFunction("work", duration=0.4,
                                 effect=lambda ctx, args: ctx.store.setdefault("done", True))},
    )


def launch(server, buffer_mb=64):
    out = {}

    def setup(sim):
        host = yield from server.host_os.spawn_process("app", image_size=4 * MB)
        coiproc = yield from COIEngine(server.node, 0).process_create(host, make_binary())
        buf = yield from coiproc.buffer_create(buffer_mb * MB)
        out.update(host=host, coiproc=coiproc, buf=buf)

    server.run(setup(server.sim))
    return out


def test_offload_death_during_capture_raises_not_hangs():
    server = XeonPhiServer()
    env = launch(server)
    coiproc = env["coiproc"]

    def driver(sim):
        yield from snapify_pause(snap := snapify_t("/f/s1", coiproc=coiproc))
        yield from snapify_capture(snap, terminate=False)
        # The card process crashes while BLCR streams the context out.
        yield sim.timeout(0.01)
        coiproc.offload_proc.terminate(code=139)
        with pytest.raises(SnapifyError, match="died during"):
            yield from snapify_wait(snap)
        return "surfaced"

    assert server.run(driver(server.sim)) == "surfaced"


def test_pause_on_dead_process_raises_immediately():
    server = XeonPhiServer()
    env = launch(server)
    coiproc = env["coiproc"]

    def driver(sim):
        coiproc.offload_proc.terminate(code=139)
        coiproc.mark_dead()
        with pytest.raises(SnapifyError, match="no live offload process"):
            yield from snapify_pause(snapify_t("/f/s2", coiproc=coiproc))
        return "ok"

    assert server.run(driver(server.sim)) == "ok"


def test_migration_stages_local_store_on_target_card():
    """The direct device-to-device path: during the pause of a migration,
    the local store lands on the TARGET card's RAM-FS, not the host FS."""
    server = XeonPhiServer()
    env = launch(server, buffer_mb=256)
    coiproc, host = env["coiproc"], env["host"]
    probes = {}

    def driver(sim):
        snap = yield from snapify_swapout(
            "/mig/direct", coiproc, localstore_node=server.node.phis[1].scif_node_id
        )
        # After swap-out: staging file on mic1, NOT on the host.
        probes["on_host"] = server.host_os.fs.exists(localstore_path("/mig/direct"))
        probes["on_mic1"] = server.phi_os(1).fs.exists(localstore_path("/mig/direct"))
        probes["mic1_ramfs"] = server.node.phis[1].memory.by_category.get("ramfs", 0)
        from repro.snapify.usecases import snapify_swapin

        new = yield from snapify_swapin(snap, server.engine(1))
        # Staging copy is released after the buffers are recreated.
        probes["staging_after"] = server.phi_os(1).fs.exists(
            localstore_path("/mig/direct"))
        data = yield from new.buffer_read(new.buffers[env["buf"].buf_id])
        return new

    new = server.run(driver(server.sim))
    assert probes["on_host"] is False
    assert probes["on_mic1"] is True
    assert probes["mic1_ramfs"] >= 256 * MB
    assert probes["staging_after"] is False
    assert new.offload_proc.os is server.phi_os(1)


def test_full_migration_with_direct_path_is_correct():
    server = XeonPhiServer()
    profile = replace(OPENMP_BENCHMARKS["CG"], iterations=25)
    app = OffloadApplication(server, profile)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.5)
        gate = app.host_proc.runtime["app_gate"]
        yield gate.acquire(owner="test")
        try:
            new, snap = yield from snapify_migration(app.coiproc, server.engine(1),
                                                     snapshot_path="/mig/full")
            app.host_proc.runtime["coi_handle"] = new
        finally:
            gate.release()
        yield app.host_proc.main_thread.done
        return snap

    snap = server.run(driver(server.sim))
    assert app.verify()
    assert snap.localstore_node == server.node.phis[1].scif_node_id


def test_direct_path_changes_pause_restore_split():
    """Migration (direct local store) shifts cost out of the restore stage
    relative to a host-staged swap cycle of the same process size."""
    # Host-staged swap cycle.
    server1 = XeonPhiServer()
    env1 = launch(server1, buffer_mb=512)

    def swap_cycle(sim):
        snap = yield from snapify_swapout("/cmp/swap", env1["coiproc"])
        from repro.snapify.usecases import snapify_swapin

        yield from snapify_swapin(snap, server1.engine(1))
        return snap

    snap_swap = server1.run(swap_cycle(server1.sim))

    # Direct migration.
    server2 = XeonPhiServer()
    env2 = launch(server2, buffer_mb=512)

    def migrate(sim):
        new, snap = yield from snapify_migration(env2["coiproc"], server2.engine(1),
                                                 snapshot_path="/cmp/mig")
        return snap

    snap_mig = server2.run(migrate(server2.sim))
    # Restore is cheaper with the local store already on the target card.
    assert snap_mig.timings["restore"] < snap_swap.timings["restore"]
