"""Property-based tests of the headline guarantee: a snapshot taken at ANY
instant — mid-offload-call, mid-transfer, between iterations — followed by
restart/swap-in/migration yields exactly the result of a failure-free run.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import OPENMP_BENCHMARKS, OffloadApplication, expected_checksum
from repro.blcr import ProcessContext, cr_checkpoint, cr_restart
from repro.hw import MB
from repro.osim import RegularFileFD
from repro.snapify import (
    checkpoint_offload_app,
    restart_offload_app,
    snapify_t,
)
from repro.snapify.usecases import snapify_migration, snapify_swapin, snapify_swapout
from repro.testbed import XeonPhiServer

#: A small, fast profile: ~21 ms/iteration, 18 iterations ≈ 0.4 s of sim.
PROFILE = replace(OPENMP_BENCHMARKS["MC"], iterations=18)
EXPECTED = expected_checksum(PROFILE.iterations)

prop_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@prop_settings
@given(t_snap=st.floats(min_value=0.55, max_value=1.2))
def test_checkpoint_restart_at_any_instant(t_snap):
    """Full dual-process failure + restart at an arbitrary snapshot time."""
    server = XeonPhiServer()
    app = OffloadApplication(server, PROFILE)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(t_snap)
        snap = snapify_t(snapshot_path="/p/ckpt", coiproc=app.coiproc)
        yield from checkpoint_offload_app(snap)
        app.host_proc.terminate(code=1)
        yield sim.timeout(0.02)
        result = yield from restart_offload_app(server.host_os, "/p/ckpt",
                                                server.engine(0))
        yield result.host_proc.main_thread.done
        return result.host_proc.store["checksum"]

    assert server.run(driver(server.sim)) == EXPECTED


@prop_settings
@given(t_mig=st.floats(min_value=0.55, max_value=1.2))
def test_migration_at_any_instant(t_mig):
    server = XeonPhiServer()
    app = OffloadApplication(server, PROFILE)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(t_mig)
        new, _ = yield from snapify_migration(app.coiproc, server.engine(1),
                                              snapshot_path="/p/mig")
        app.host_proc.runtime["coi_handle"] = new
        yield app.host_proc.main_thread.done
        return app.host_proc.store["checksum"]

    assert server.run(driver(server.sim)) == EXPECTED


@prop_settings
@given(
    t_out=st.floats(min_value=0.55, max_value=1.0),
    dwell=st.floats(min_value=0.01, max_value=1.5),
    target=st.integers(min_value=0, max_value=1),
)
def test_swap_cycle_at_any_instant(t_out, dwell, target):
    """Swap out at an arbitrary time, dwell, swap in on either card."""
    server = XeonPhiServer()
    app = OffloadApplication(server, PROFILE)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(t_out)
        snap = yield from snapify_swapout("/p/swap", app.coiproc)
        iter_frozen = app.host_proc.store["iter"]
        yield sim.timeout(dwell)
        # Iteration counter may advance by at most the one call that was in
        # flight when the pause landed; beyond that the app must be frozen.
        assert app.host_proc.store["iter"] <= iter_frozen + 1
        new = yield from snapify_swapin(snap, server.engine(target))
        app.host_proc.runtime["coi_handle"] = new
        yield app.host_proc.main_thread.done
        return app.host_proc.store["checksum"]

    assert server.run(driver(server.sim)) == EXPECTED


@prop_settings
@given(
    ops=st.lists(
        st.sampled_from(["checkpoint", "migrate", "swap"]),
        min_size=1, max_size=3,
    ),
    gap=st.floats(min_value=0.3, max_value=0.8),
)
def test_random_operation_sequences(ops, gap):
    """Arbitrary interleavings of checkpoint/migrate/swap leave the final
    checksum untouched."""
    server = XeonPhiServer()
    profile = replace(OPENMP_BENCHMARKS["MC"], iterations=30)
    app = OffloadApplication(server, profile)

    def driver(sim):
        yield from app.launch()
        # Contract (same one the snapify CLI honors): operations that
        # REPLACE the handle must hold the application gate so no app
        # thread is mid-operation on the dying handle. Plain checkpoints
        # don't need it — the handle survives.
        gate = app.host_proc.runtime["app_gate"]
        device = 0
        for i, op in enumerate(ops):
            yield sim.timeout(gap)
            if not app.host_proc.alive or app.host_proc.store.get("finished"):
                break
            if op == "checkpoint":
                handle = app.host_proc.runtime["coi_handle"]
                snap = snapify_t(snapshot_path=f"/p/seq{i}", coiproc=handle)
                yield from checkpoint_offload_app(snap)
            elif op == "migrate":
                yield gate.acquire(owner="test-migrate")
                try:
                    handle = app.host_proc.runtime["coi_handle"]
                    device = 1 - device
                    new, _ = yield from snapify_migration(
                        handle, server.engine(device), snapshot_path=f"/p/seq{i}"
                    )
                    app.host_proc.runtime["coi_handle"] = new
                finally:
                    gate.release()
            else:  # swap out and straight back in
                yield gate.acquire(owner="test-swap")
                try:
                    handle = app.host_proc.runtime["coi_handle"]
                    snap = yield from snapify_swapout(f"/p/seq{i}", handle)
                    new = yield from snapify_swapin(snap, server.engine(device))
                    app.host_proc.runtime["coi_handle"] = new
                finally:
                    gate.release()
        yield app.host_proc.main_thread.done
        return app.host_proc.store["checksum"]

    assert server.run(driver(server.sim)) == expected_checksum(30)


# ---------------------------------------------------------------------------
# BLCR round-trip with arbitrary process shapes
# ---------------------------------------------------------------------------

region_strategy = st.lists(
    st.tuples(
        st.sampled_from(["heap", "stack", "coi_buffer"]),
        st.integers(min_value=1, max_value=64 * MB),
        st.booleans(),  # pinned
    ),
    min_size=0, max_size=6,
)

store_strategy = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(), st.text(max_size=12),
              st.lists(st.integers(), max_size=4)),
    max_size=5,
)


@settings(max_examples=25, deadline=None)
@given(regions=region_strategy, store=store_strategy)
def test_blcr_roundtrip_arbitrary_processes(regions, store):
    server = XeonPhiServer()
    phi = server.phi_os(0)

    def driver(sim):
        def spin(proc):
            while True:
                yield proc.sim.timeout(1)

        proc = yield from phi.spawn_process("rand", image_size=1 * MB,
                                            main_factory=spin)
        for i, (kind, size, pinned) in enumerate(regions):
            proc.map_region(f"r{i}", size, kind=kind,
                            data={"i": i, "size": size}, pinned=pinned)
        proc.store.update(store)
        fd = RegularFileFD(sim, server.host_os.fs, "/rt", "w")
        ctx = yield from cr_checkpoint(proc, fd)
        fd.close()
        proc.terminate()
        rfd = RegularFileFD(sim, server.host_os.fs, "/rt", "r")
        restored = yield from cr_restart(phi, rfd, start=False)
        rfd.close()
        return ctx, restored

    ctx, restored = server.run(driver(server.sim))
    assert isinstance(ctx, ProcessContext)
    for i, (kind, size, pinned) in enumerate(regions):
        region = restored.region(f"r{i}")
        assert (region.kind, region.size, region.pinned) == (kind, size, pinned)
        assert region.data == {"i": i, "size": size}
    for key, value in store.items():
        assert restored.store[key] == value
    assert restored.memory_footprint == sum(s for _, s, _ in regions) + 1 * MB
