"""Multi-coprocessor scenarios: one host process driving offload processes
on several cards, independent snapshots, and cross-application isolation.
"""

from dataclasses import replace

from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
from repro.coi import COIEngine, OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.snapify import (
    snapify_capture,
    snapify_pause,
    snapify_restore,
    snapify_resume,
    snapify_t,
    snapify_wait,
)
from repro.snapify.usecases import snapify_migration
from repro.testbed import XeonPhiServer


def bump(ctx, args):
    ctx.store["n"] = ctx.store.get("n", 0) + args["d"]
    return ctx.store["n"]


def make_binary():
    return OffloadBinary("multi.so", 4 * MB,
                         {"bump": OffloadFunction("bump", 0.01, bump)})


def test_one_host_process_two_cards():
    """§4.1: "our approach handles multiple Xeon Phi coprocessors in a
    server" — one host process with an offload process on EACH card, each
    snapshotted independently."""
    server = XeonPhiServer()
    binary = make_binary()
    out = {}

    def driver(sim):
        host = yield from server.host_os.spawn_process("dual", image_size=4 * MB)
        p0 = yield from COIEngine(server.node, 0).process_create(host, binary)
        p1 = yield from COIEngine(server.node, 1).process_create(host, binary)
        r0 = yield from p0.run_function("bump", {"d": 5})
        r1 = yield from p1.run_function("bump", {"d": 7})

        # Pause/capture/resume mic0's process while mic1's keeps serving.
        snap = snapify_t(snapshot_path="/dual/p0", coiproc=p0)
        yield from snapify_pause(snap)
        r1b = yield from p1.run_function("bump", {"d": 1})  # mic1 unaffected
        yield from snapify_capture(snap, terminate=False)
        yield from snapify_wait(snap)
        yield from snapify_resume(snap)
        r0b = yield from p0.run_function("bump", {"d": 2})
        out.update(r0=r0, r1=r1, r0b=r0b, r1b=r1b)

    server.run(driver(server.sim))
    assert (out["r0"], out["r1"]) == (5, 7)
    assert out["r1b"] == 8  # mic1 progressed during mic0's pause
    assert out["r0b"] == 7  # mic0 resumed with its state intact


def test_migrate_one_of_two_offload_processes():
    """Migrating the mic0 process must not disturb the mic1 process owned
    by the same host process (separate sequence/waiter spaces)."""
    server = XeonPhiServer()
    binary = make_binary()
    out = {}

    def driver(sim):
        host = yield from server.host_os.spawn_process("dual", image_size=4 * MB)
        p0 = yield from COIEngine(server.node, 0).process_create(host, binary)
        p1 = yield from COIEngine(server.node, 1).process_create(host, binary)
        yield from p0.run_function("bump", {"d": 10})
        yield from p1.run_function("bump", {"d": 20})
        new0, _ = yield from snapify_migration(p0, COIEngine(server.node, 1),
                                               snapshot_path="/dual/mig")
        # Both now live on mic1; both keep their own state.
        a = yield from new0.run_function("bump", {"d": 1})
        b = yield from p1.run_function("bump", {"d": 1})
        out.update(a=a, b=b, os0=new0.offload_proc.os, os1=p1.offload_proc.os)

    server.run(driver(server.sim))
    assert out["a"] == 11
    assert out["b"] == 21
    assert out["os0"] is out["os1"] is server.phi_os(1)


def test_concurrent_apps_snapshot_independently():
    """Two applications on the same card: checkpointing one leaves the
    other's execution and result untouched."""
    server = XeonPhiServer()
    a1 = OffloadApplication(server, replace(OPENMP_BENCHMARKS["MC"], iterations=20),
                            name="a1")
    a2 = OffloadApplication(server, replace(OPENMP_BENCHMARKS["KM"], iterations=200),
                            name="a2")

    def driver(sim):
        yield from a1.launch()
        yield from a2.launch()
        yield sim.timeout(0.4)
        from repro.snapify import checkpoint_offload_app

        snap = snapify_t(snapshot_path="/iso/a1", coiproc=a1.coiproc)
        yield from checkpoint_offload_app(snap)
        yield a1.host_proc.main_thread.done
        yield a2.host_proc.main_thread.done

    server.run(driver(server.sim))
    assert a1.verify() and a2.verify()


def test_restore_targets_any_device_number():
    """snapify_restore takes the device id exactly as the paper's API does
    (GetDeviceID / device parameter)."""
    server = XeonPhiServer()
    binary = make_binary()

    def driver(sim):
        host = yield from server.host_os.spawn_process("app", image_size=4 * MB)
        p = yield from COIEngine(server.node, 0).process_create(host, binary)
        yield from p.run_function("bump", {"d": 3})
        snap = snapify_t(snapshot_path="/dev/s", coiproc=p)
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=True)
        yield from snapify_wait(snap)
        for device in (1, 0, 1):  # bounce it around
            engine = server.engine(device)
            new = yield from snapify_restore(snap, engine, host)
            yield from snapify_resume(snap)
            assert new.offload_proc.os is server.phi_os(device)
            r = yield from new.run_function("bump", {"d": 1})
            # Re-capture for the next hop.
            if device != 1 or r < 6:
                yield from snapify_pause(snap)
                yield from snapify_capture(snap, terminate=True)
                yield from snapify_wait(snap)
        return r

    # 3 (initial) + 1 per hop across three restores.
    assert server.run(driver(server.sim)) == 6
