"""Tests for the fleet telemetry stack: time series, SLOs, flight recorder.

Covers the unit surface (Series windows, exact percentile digests, robust
z-scores, SLO parsing), the alert engine's fire/resolve transitions (with
trace records), the flight-recorder rings and post-mortem bundles, and the
end-to-end acceptance path: a telemetry-enabled rack8 sweep with an
injected card failure must export per-card p99 phase latencies in
Prometheus text and both fire and resolve at least one alert.
"""

import json

import pytest

from repro.obs.slo import (
    Breach,
    BurnRateSLO,
    PercentileSLO,
    SLOEngine,
    SLORule,
    StragglerSLO,
    default_slos,
    parse_slo,
    robust_zscores,
)
from repro.obs.timeseries import (
    PercentileDigest,
    Series,
    TelemetryConfig,
    TimeSeriesRecorder,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Series
# ---------------------------------------------------------------------------


def test_series_window_delta_rate():
    s = Series("x")
    for i in range(5):
        s.append(float(i), 10.0 * i)
    assert s.latest() == 40.0 and s.latest_time() == 4.0
    assert s.window(2.0) == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert s.delta(2.0) == 20.0
    assert s.rate(2.0) == pytest.approx(10.0)
    # Explicit `now` shifts the window.
    assert s.delta(1.0, now=2.0) == 10.0


def test_series_empty_and_single_point_aggregates():
    s = Series("x")
    assert s.latest() is None and s.window(1.0) == []
    assert s.delta(1.0) == 0.0 and s.rate(1.0) == 0.0 and s.ewma() is None
    s.append(1.0, 5.0)
    assert s.delta(10.0) == 0.0 and s.rate(10.0) == 0.0
    assert s.ewma() == 5.0


def test_series_ring_is_bounded():
    s = Series("x", maxlen=4)
    for i in range(10):
        s.append(float(i), float(i))
    assert len(s) == 4
    assert s.points()[0] == (6.0, 6.0)


def test_series_ewma_smooths_toward_recent():
    s = Series("x")
    for t, v in [(0.0, 0.0), (1.0, 0.0), (2.0, 100.0)]:
        s.append(t, v)
    ew = s.ewma(alpha=0.5)
    assert 0.0 < ew < 100.0 and ew == pytest.approx(50.0)


# ---------------------------------------------------------------------------
# PercentileDigest
# ---------------------------------------------------------------------------


def test_digest_exact_percentiles_interpolate():
    d = PercentileDigest("lat")
    for v in [1.0, 2.0, 3.0, 4.0]:
        d.observe(v)
    assert d.p50 == pytest.approx(2.5)
    assert d.percentile(0.0) == 1.0 and d.percentile(100.0) == 4.0
    assert d.mean == pytest.approx(2.5)
    assert d.count_le(2.0) == 2 and d.count_le(0.5) == 0
    assert d.summary()["count"] == 4 and d.summary()["saturated"] is False


def test_digest_empty_and_singleton():
    d = PercentileDigest("lat")
    assert d.p99 is None and d.mean is None
    d.observe(7.0)
    assert d.p50 == d.p99 == 7.0


def test_digest_saturates_at_cap():
    d = PercentileDigest("lat", cap=3)
    for v in [3.0, 1.0, 2.0, 9.0]:
        d.observe(v)
    assert d.saturated is True
    assert d.count == 4          # counting continues past the cap
    assert d.percentile(100.0) == 3.0  # the dropped 9.0 is not retained


# ---------------------------------------------------------------------------
# Robust z-scores
# ---------------------------------------------------------------------------


def test_robust_zscores_flags_outlier_not_cluster():
    scores = robust_zscores(
        {"a": 0.010, "b": 0.011, "c": 0.012, "d": 0.100}
    )
    assert scores["d"] > 3.5
    assert abs(scores["a"]) < 3.5 and abs(scores["b"]) < 3.5


def test_robust_zscores_mad_zero_fallback():
    # All-identical values: z is 0 everywhere (relative deviation).
    scores = robust_zscores({"a": 5.0, "b": 5.0, "c": 5.0})
    assert scores == {"a": 0.0, "b": 0.0, "c": 0.0}
    # Majority identical, one huge outlier: MAD is 0 but the outlier must
    # still score high via the relative-to-median fallback.
    scores = robust_zscores({"a": 1.0, "b": 1.0, "c": 1.0, "d": 50.0})
    assert scores["d"] > 3.5 and scores["a"] == 0.0
    assert robust_zscores({}) == {}


def test_straggler_slo_min_spread_suppresses_microsecond_jitter():
    """A tightly-clustered fleet (microsecond jitter, tiny MAD) must not
    flag: the absolute-deviation floor gates astronomical z-scores."""
    sim = Simulator()
    rec = TimeSeriesRecorder(sim)
    base = 0.2783
    for i, card in enumerate(["n0.mic0", "n0.mic1", "n1.mic0", "n1.mic1"]):
        for _ in range(2):
            rec._digest("total", card).observe(base + i * 1e-6)
    rule = StragglerSLO(phase="total", min_cards=3)
    assert rule.evaluate(rec, 1.0) == []
    # A genuinely slow card (above floor and z) still flags.
    rec._digest("total", "n2.mic0").observe(base + 0.5)
    rec._digest("total", "n2.mic0").observe(base + 0.5)
    breaches = rule.evaluate(rec, 1.0)
    assert [b.card for b in breaches] == ["n2.mic0"]


# ---------------------------------------------------------------------------
# SLO parsing
# ---------------------------------------------------------------------------


def test_parse_slo_forms():
    p = parse_slo("pausing p99 < 50ms")
    assert isinstance(p, PercentileSLO)
    assert p.phase == "pausing" and p.q == 99.0
    assert p.max_seconds == pytest.approx(0.050)
    assert parse_slo("transferring p95 < 0.4s").max_seconds == pytest.approx(0.4)
    b = parse_slo("burn_rate < 0.1")
    assert isinstance(b, BurnRateSLO) and b.max_rate == pytest.approx(0.1)
    s = parse_slo("straggler z > 4")
    assert isinstance(s, StragglerSLO) and s.max_z == pytest.approx(4.0)
    with pytest.raises(ValueError, match="unparseable"):
        parse_slo("nonsense!!")


def test_default_slos_cover_three_families():
    rules = default_slos()
    assert {type(r) for r in rules} == {PercentileSLO, BurnRateSLO, StragglerSLO}


# ---------------------------------------------------------------------------
# SLO engine: fire/resolve transitions + trace records
# ---------------------------------------------------------------------------


class _FlipRule(SLORule):
    """Breaches exactly when told to — drives engine transitions."""

    name = "flip"

    def __init__(self):
        self.breaching = False

    def evaluate(self, recorder, now):
        if not self.breaching:
            return []
        return [Breach(key="flip", value=2.0, threshold=1.0, detail="test")]


def test_engine_fire_resolve_emits_trace_records():
    sim = Simulator(trace=True)
    rec = TimeSeriesRecorder(sim)
    rule = _FlipRule()
    engine = SLOEngine([rule])

    engine.evaluate(rec, 1.0)
    assert engine.firing == {} and engine.history == []

    rule.breaching = True
    engine.evaluate(rec, 2.0)
    assert "flip" in engine.firing and engine.firing["flip"].since == 2.0
    # A still-breaching tick refreshes, it does not double-fire.
    engine.evaluate(rec, 3.0)
    assert len(engine.history) == 1

    rule.breaching = False
    engine.evaluate(rec, 4.0)
    assert engine.firing == {}
    assert [(t, ev) for t, ev, _ in engine.history] == [(2.0, "fire"), (4.0, "resolve")]
    assert engine.fired_keys() == ["flip"]

    fires = sim.trace.find("alert.fire")
    resolves = sim.trace.find("alert.resolve")
    assert len(fires) == 1 and fires[0].fields["key"] == "flip"
    assert len(resolves) == 1 and resolves[0].fields["since"] == 2.0
    assert json.dumps(engine.describe())  # JSON-safe


def test_burn_rate_fires_on_windowed_ticket_failures():
    """Drive the recorder through real sample ticks: a burst of ticket
    failures fires burn_rate; once the window drains it resolves."""

    class _Ticket:
        def __init__(self, error):
            self.error = error

    sim = Simulator()
    rec = TimeSeriesRecorder(
        sim, TelemetryConfig(interval=0.1),
        slos=[BurnRateSLO(max_rate=0.25, window=0.5, min_events=2)],
    )

    def driver(s):
        for _ in range(3):  # healthy traffic
            rec.observe_ticket(_Ticket(None))
            rec.sample_tick()
            yield s.timeout(0.1)
        rec.observe_ticket(_Ticket("card died"))
        rec.observe_ticket(_Ticket("card died"))
        rec.sample_tick()
        fired_now = "burn_rate" in rec.engine.firing
        for _ in range(10):  # drain the window
            yield s.timeout(0.1)
            rec.sample_tick()
        return fired_now

    sim.spawn(driver(sim))
    sim.run()
    assert driver  # driver ran
    events = [(ev, snap["key"]) for _, ev, snap in rec.engine.history]
    assert ("fire", "burn_rate") in events
    assert ("resolve", "burn_rate") in events
    assert rec.engine.firing == {}


def test_percentile_slo_respects_min_samples():
    sim = Simulator()
    rec = TimeSeriesRecorder(sim)
    rule = PercentileSLO(phase="pausing", q=99.0, max_seconds=0.01, min_samples=3)
    rec._digest("pausing", None).observe(5.0)
    rec._digest("pausing", None).observe(5.0)
    assert rule.evaluate(rec, 1.0) == []          # below min_samples
    rec._digest("pausing", None).observe(5.0)
    breaches = rule.evaluate(rec, 1.0)
    assert len(breaches) == 1 and breaches[0].key == "p99:pausing"


# ---------------------------------------------------------------------------
# Sampler lifecycle + inertness
# ---------------------------------------------------------------------------


def test_sampler_ticks_on_sim_clock_and_stops():
    sim = Simulator()
    rec = TimeSeriesRecorder.install(sim, TelemetryConfig(interval=0.1))
    assert TimeSeriesRecorder.peek(sim) is rec

    def driver(s):
        yield s.timeout(0.55)
        rec.stop()

    sim.spawn(driver(sim))
    sim.run(check_deadlock=True)  # a live sampler would never settle
    assert rec.stats.ticks == 5
    assert "telemetry.ops_total" in rec.series


def test_uninstalled_telemetry_is_inert():
    """The default path: no recorder, no alert records, no extra events."""
    from repro.obs.cli import run_traced_scenario

    server = run_traced_scenario("checkpoint", iterations=10)
    sim = server.sim
    assert TimeSeriesRecorder.peek(sim) is None
    assert sim.trace.find("alert.fire") == []
    assert sim.trace.find("alert.resolve") == []
    assert not any(r.category.startswith("telemetry") for r in sim.trace.records)


def test_operation_feed_counts_phases_per_card():
    from repro.coi import OffloadBinary, OffloadFunction
    from repro.hw import MB
    from repro.snapify import snapify_t, snapshot_application
    from repro.testbed import XeonPhiServer, offload_process

    sim = Simulator()
    rec = TimeSeriesRecorder.install(sim, TelemetryConfig(interval=0.05))
    server = XeonPhiServer(sim=sim)

    def driver(s):
        binary = OffloadBinary(
            "t.so", 8 * MB, {"step": OffloadFunction("step", duration=0.05)}
        )
        coiproc, _ = yield from offload_process(server, "t", binary,
                                                buffers=[(4 * MB, 1)])
        snap = snapify_t(snapshot_path="/t/ckpt", coiproc=coiproc)
        results = yield from snapshot_application([snap], kind="checkpoint")
        rec.stop()
        return results

    results = server.run(driver(sim))
    assert all(r.ok for r in results)
    assert rec.ops_total == 1 and rec.ops_failed == 0
    assert rec.cards() == ["n0.mic0"]
    assert "pausing" in rec.phases() and "total" in rec.phases()
    d = rec.phase_digest("pausing", "n0.mic0")
    assert d is not None and d.count == 1 and d.p99 > 0
    assert rec.card_failure_counts() == {"n0.mic0": (1, 0)}
    assert json.dumps(rec.describe())


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


def test_flight_recorder_rings_are_bounded():
    from repro.obs.recorder import FlightRecorder

    sim = Simulator(trace=True)
    fr = FlightRecorder.install(sim, per_category=4)
    assert FlightRecorder.peek(sim) is fr
    assert FlightRecorder.install(sim) is fr  # idempotent
    for i in range(10):
        sim.trace.emit("chatty", i=i)
    sim.trace.emit("quiet", i=0)
    bundle = fr.bundle()
    assert bundle["format"] == 1
    chatty = bundle["events"]["chatty"]
    assert len(chatty) == 4
    assert [r["fields"]["i"] for r in chatty] == [6, 7, 8, 9]
    assert bundle["dropped"]["chatty"] == 6
    assert len(bundle["events"]["quiet"]) == 1
    assert json.dumps(bundle)


def test_flight_recorder_latches_op_failures():
    from repro.obs.recorder import FlightRecorder
    from repro.coi import OffloadBinary, OffloadFunction
    from repro.hw import MB
    from repro.sched.faults import FaultInjector
    from repro.snapify import snapify_t, snapshot_application
    from repro.testbed import XeonPhiServer, offload_process

    sim = Simulator(trace=True)
    fr = FlightRecorder.install(sim)
    server = XeonPhiServer(sim=sim)

    def driver(s):
        binary = OffloadBinary(
            "f.so", 8 * MB, {"step": OffloadFunction("step", duration=0.05)}
        )
        coiproc, _ = yield from offload_process(server, "f", binary,
                                                buffers=[(4 * MB, 1)])
        # Kill the card mid-checkpoint (the op is ~70 ms end to end).
        FaultInjector(s).schedule_card_failure(server.node.phis[0],
                                               at=s.now + 0.03)
        snap = snapify_t(snapshot_path="/f/ckpt", coiproc=coiproc)
        try:
            yield from snapshot_application([snap], kind="checkpoint",
                                            raise_on_error=True)
        except Exception:
            pass

    server.run(driver(sim))
    assert len(fr.failures) == 1
    entry = fr.failures[0]
    assert entry["state"] == "FAILED" and entry["card"] == "n0.mic0"
    bundle = fr.bundle()
    assert bundle["failures"][0]["kind"] == "checkpoint"
    assert json.dumps(bundle)


def test_postmortem_bundle_without_recorder_synthesizes_from_trace():
    from repro.obs.recorder import postmortem_bundle

    sim = Simulator(trace=True)
    for i in range(3):
        sim.trace.emit("thing", i=i)
    bundle = postmortem_bundle(sim)
    assert bundle["format"] == 1
    assert [r["fields"]["i"] for r in bundle["events"]["thing"]] == [0, 1, 2]
    assert bundle["failures"] == [] and bundle["active_ops"] == []
    assert json.dumps(bundle)


# ---------------------------------------------------------------------------
# Fuzz artifact integration
# ---------------------------------------------------------------------------


def test_failing_run_carries_postmortem_into_artifact(tmp_path):
    from repro.check.artifact import ReproArtifact
    from repro.check.scenarios import run_scenario

    result = run_scenario("checkpoint", seed=3, faults=[{"device": 0, "at": 0.4}])
    assert not result.ok
    assert result.postmortem is not None
    assert result.postmortem["format"] == 1

    art = ReproArtifact.from_result(result)
    assert art.postmortem == result.postmortem
    path = art.save(str(tmp_path / art.filename()))
    loaded = ReproArtifact.load(path)
    assert loaded.postmortem == art.postmortem

    flight = art.save_flight(str(tmp_path / art.flight_filename()))
    assert flight is not None and flight.endswith(".flight.json")
    with open(flight) as fh:
        assert json.load(fh)["format"] == 1

    clean = run_scenario("checkpoint", seed=3)
    assert clean.ok and clean.postmortem is None
    assert ReproArtifact.from_result(clean).save_flight(
        str(tmp_path / "none.json")) is None


# ---------------------------------------------------------------------------
# Acceptance: rack8 sweep, injected card failure, prom export
# ---------------------------------------------------------------------------


def test_rack8_failure_fires_alert_and_exports_per_card_p99():
    from repro.obs.cli import run_top
    from repro.obs.export import (
        parse_prometheus_text,
        prometheus_text,
        validate_prometheus_text,
    )

    recorder, manager, result, health = run_top(
        topology="rack8", ops_per_card=2, fail_card=1, fail_at=0.05,
    )
    assert not result.ok           # the dead card's tickets failed
    assert recorder.tickets_failed > 0

    events = [(ev, snap["key"]) for _, ev, snap in recorder.engine.history]
    assert ("fire", "burn_rate") in events
    assert ("resolve", "burn_rate") in events

    # The surviving cards' p99 phase latencies land in the prom export,
    # labeled per card.
    text = prometheus_text(manager.sim, telemetry=recorder)
    assert validate_prometheus_text(text) > 0
    _, samples = parse_prometheus_text(text)
    p99 = [
        labels
        for labels, _value in samples.get("snapify_phase_latency_seconds", [])
        if labels.get("quantile") == "0.99" and "card" in labels
    ]
    assert {lbl["card"] for lbl in p99} >= {"n0.mic0", "n1.mic0"}
    assert {lbl["phase"] for lbl in p99} >= {"pausing", "total"}

    # The health sweep names the injected casualty.
    assert [h.card for h in health.failed] == ["n0.mic1"]
