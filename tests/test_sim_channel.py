"""Unit + property tests for FIFO channels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, ChannelClosed, Simulator


def test_send_then_recv():
    sim = Simulator()
    ch = Channel(sim)

    def worker(sim):
        yield ch.send("hello")
        msg = yield ch.recv()
        return msg

    t = sim.spawn(worker(sim))
    sim.run()
    assert t.done.value == "hello"


def test_recv_blocks_until_send():
    sim = Simulator()
    ch = Channel(sim)
    got = []

    def consumer(sim):
        msg = yield ch.recv()
        got.append((msg, sim.now))

    def producer(sim):
        yield sim.timeout(5)
        yield ch.send("late")

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert got == [("late", 5)]


def test_fifo_ordering():
    sim = Simulator()
    ch = Channel(sim)
    received = []

    def producer(sim):
        for i in range(10):
            yield ch.send(i)

    def consumer(sim):
        for _ in range(10):
            msg = yield ch.recv()
            received.append(msg)

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert received == list(range(10))


def test_multiple_receivers_fifo():
    sim = Simulator()
    ch = Channel(sim)
    results = {}

    def consumer(sim, tag):
        msg = yield ch.recv()
        results[tag] = msg

    def producer(sim):
        yield sim.timeout(1)
        yield ch.send("first")
        yield ch.send("second")

    sim.spawn(consumer(sim, "a"))
    sim.spawn(consumer(sim, "b"))
    sim.spawn(producer(sim))
    sim.run()
    assert results == {"a": "first", "b": "second"}


def test_bounded_channel_backpressure():
    sim = Simulator()
    ch = Channel(sim, capacity=2)
    timeline = []

    def producer(sim):
        for i in range(4):
            yield ch.send(i)
            timeline.append(("sent", i, sim.now))

    def consumer(sim):
        for _ in range(4):
            yield sim.timeout(10)
            yield ch.recv()

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    sent_times = [t for op, i, t in timeline]
    # First two fit in capacity at t=0; the rest wait for consumer drains.
    assert sent_times[0] == 0 and sent_times[1] == 0
    assert sent_times[2] == 10 and sent_times[3] == 20


def test_try_recv():
    sim = Simulator()
    ch = Channel(sim)
    ok, item = ch.try_recv()
    assert not ok and item is None

    def worker(sim):
        yield ch.send("x")

    sim.spawn(worker(sim))
    sim.run()
    ok, item = ch.try_recv()
    assert ok and item == "x"


def test_close_fails_pending_recv():
    sim = Simulator()
    ch = Channel(sim)

    def consumer(sim):
        with pytest.raises(ChannelClosed):
            yield ch.recv()
        return "handled"

    def closer(sim):
        yield sim.timeout(1)
        ch.close()

    t = sim.spawn(consumer(sim))
    sim.spawn(closer(sim))
    sim.run()
    assert t.done.value == "handled"


def test_send_on_closed_channel_fails():
    sim = Simulator()
    ch = Channel(sim)
    ch.close()

    def producer(sim):
        with pytest.raises(ChannelClosed):
            yield ch.send("x")
        return "handled"

    t = sim.spawn(producer(sim))
    sim.run()
    assert t.done.value == "handled"


def test_in_flight_accounting():
    sim = Simulator()
    ch = Channel(sim, capacity=1)

    def producer(sim):
        yield ch.send(1)
        yield ch.send(2)  # blocks (capacity 1)

    sim.spawn(producer(sim))
    sim.run(until=0.5, check_deadlock=False)
    assert ch.qsize == 1
    assert ch.in_flight == 2


def test_counters():
    sim = Simulator()
    ch = Channel(sim)

    def worker(sim):
        for i in range(5):
            yield ch.send(i)
        for _ in range(3):
            yield ch.recv()

    sim.spawn(worker(sim))
    sim.run()
    assert ch.sent_count == 5
    assert ch.received_count == 3
    assert ch.qsize == 2


@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(), max_size=40), chunk=st.integers(min_value=1, max_value=7))
def test_property_fifo_preserved_under_interleaving(items, chunk):
    """Whatever the producer/consumer interleaving, order is preserved."""
    sim = Simulator()
    ch = Channel(sim)
    received = []

    def producer(sim):
        for i, item in enumerate(items):
            if i % chunk == 0:
                yield sim.timeout(1)
            yield ch.send(item)

    def consumer(sim):
        for i in range(len(items)):
            if i % (chunk + 1) == 0:
                yield sim.timeout(1)
            msg = yield ch.recv()
            received.append(msg)

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert received == items


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    n=st.integers(min_value=0, max_value=30),
)
def test_property_bounded_channel_never_exceeds_capacity(capacity, n):
    sim = Simulator()
    ch = Channel(sim, capacity=capacity)
    max_q = 0

    def producer(sim):
        for i in range(n):
            yield ch.send(i)

    def consumer(sim):
        nonlocal max_q
        for _ in range(n):
            yield sim.timeout(0.1)
            max_q = max(max_q, ch.qsize)
            yield ch.recv()

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert max_q <= capacity
