"""Tests for fault injection, proactive migration and the swap scheduler."""

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
from repro.hw import GB, MB
from repro.sched import FaultInjector, ProactiveMigrator, SwapScheduler
from repro.testbed import XeonPhiServer


def profile(name="MC", iterations=20, **overrides):
    return replace(OPENMP_BENCHMARKS[name], iterations=iterations, **overrides)


def test_card_failure_kills_processes():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = OffloadApplication(server, profile(iterations=100))

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.2)
        ev = injector.schedule_card_failure(server.node.phis[0], at=sim.now + 0.1)
        yield ev
        yield sim.timeout(0.05)

    server.run(driver(server.sim))
    assert not app.coiproc.offload_proc.alive
    assert injector.is_failed(server.node.phis[0])


def test_failure_in_past_rejected():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)

    def driver(sim):
        yield sim.timeout(5)
        with pytest.raises(ValueError):
            injector.schedule_card_failure(server.node.phis[0], at=1.0)
        return "ok"

    assert server.run(driver(server.sim)) == "ok"


def test_proactive_migration_saves_the_job():
    """With enough warning the job survives the card failure and finishes
    with the correct checksum on the other card."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    migrator = ProactiveMigrator(server, injector)
    app = OffloadApplication(server, profile("KM", iterations=1500), device=0)

    def driver(sim):
        yield from app.launch()
        migrator.track(app.host_proc, device=0)
        yield sim.timeout(0.2)
        # Swap-out + swap-in of KM takes ~2 s (libs copy, local store,
        # context); a realistic prediction lead comfortably covers it.
        injector.schedule_card_failure(
            server.node.phis[0], at=sim.now + 4.0, warning_lead=3.8
        )
        yield app.host_proc.main_thread.done

    server.run(driver(server.sim))
    assert app.verify()
    assert len(migrator.migrations_done) == 1
    name, src, dst, when = migrator.migrations_done[0]
    assert (src, dst) == (0, 1)
    assert app.coiproc.offload_proc.os is server.phi_os(1)


def test_no_warning_means_job_dies():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    migrator = ProactiveMigrator(server, injector)
    app = OffloadApplication(server, profile("KM", iterations=400), device=0)

    def driver(sim):
        yield from app.launch()
        migrator.track(app.host_proc, device=0)
        yield sim.timeout(0.2)
        ev = injector.schedule_card_failure(server.node.phis[0], at=sim.now + 0.05)
        yield ev
        yield sim.timeout(0.1)

    server.run(driver(server.sim))
    assert migrator.migrations_done == []
    assert not app.coiproc.offload_proc.alive


def test_swap_scheduler_makes_room_and_reclaims():
    server = XeonPhiServer()
    sched = SwapScheduler(server, device=0, headroom=256 * MB)
    # Two tenants that together blow the 8 GB card; SS is the big one.
    big = OffloadApplication(server, profile("SS", iterations=60), name="big")
    small = OffloadApplication(server, profile("MC", iterations=60), name="small")
    out = {}

    def driver(sim):
        yield from big.launch()
        yield sim.timeout(1.0)
        sched.register(big.host_proc, footprint=2 * GB)
        # Pretend the next job needs 7 GB: the scheduler must evict `big`.
        victims = yield from sched.make_room(incoming=7 * GB)
        out["victims"] = [v.host_proc.name for v in victims]
        out["free_after_evict"] = server.node.phis[0].memory.available
        yield sim.timeout(0.5)
        # The 7 GB job "finished"; bring the victim back.
        returned = yield from sched.reclaim()
        out["returned"] = [j.host_proc.name for j in returned]
        yield big.host_proc.main_thread.done

    server.run(driver(server.sim))
    assert out["victims"] == ["big"]
    assert out["free_after_evict"] > 7 * GB
    assert out["returned"] == ["big"]
    assert big.verify()
    assert sched.jobs[big.host_proc.pid].swap_count == 1


def test_swap_scheduler_noop_when_room_exists():
    server = XeonPhiServer()
    sched = SwapScheduler(server, device=0)
    app = OffloadApplication(server, profile("MC", iterations=10))

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.2)
        sched.register(app.host_proc, footprint=50 * MB)
        victims = yield from sched.make_room(incoming=100 * MB)
        yield app.host_proc.main_thread.done
        return victims

    assert server.run(driver(server.sim)) == []
    assert app.verify()


def test_card_repair_reboots_daemons_and_accepts_work():
    from repro.apps import OffloadApplication as _App
    from repro.coi import COIDaemon
    from repro.snapify_io import SnapifyIODaemon

    server = XeonPhiServer()
    injector = FaultInjector(server.sim)

    def driver(sim):
        ev = injector.schedule_card_failure(server.node.phis[0], at=1.0,
                                            repair_after=2.0)
        yield ev
        assert injector.is_failed(server.node.phis[0])
        yield sim.timeout(2.5)  # past the repair
        assert not injector.is_failed(server.node.phis[0])
        # The rebooted daemons accept a brand new offload application.
        app = _App(server, profile("MC", iterations=5), device=0)
        yield from app.launch()
        yield app.host_proc.main_thread.done
        return app

    app = server.run(driver(server.sim))
    assert app.verify()
    assert COIDaemon.of(server.node.phis[0]).proc.alive
    assert SnapifyIODaemon.of(server.phi_os(0)).proc.alive


def test_repair_requires_positive_delay():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    with pytest.raises(ValueError):
        injector.schedule_card_failure(server.node.phis[0], at=1.0,
                                       repair_after=0)


def test_telemetry_dispatch_order_is_subscription_order():
    """Warnings fan out in subscription order over a snapshot: subscribers
    added during dispatch see only the NEXT warning, and unsubscribing a
    not-yet-dispatched subscriber mid-warning still delivers to it (the
    snapshot was taken when the warning fired). This keeps telemetry
    ordering identical across seeded schedule perturbations."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    calls = []

    def late(phi, ttf):
        calls.append("late")

    def first(phi, ttf):
        calls.append("first")
        injector.subscribe(late)      # must NOT fire for this warning
        injector.unsubscribe(second)  # must STILL fire for this warning

    def second(phi, ttf):
        calls.append("second")

    injector.subscribe(first)
    injector.subscribe(second)
    injector.schedule_card_failure(server.node.phis[0], at=1.0, warning_lead=0.5)
    server.sim.run(until=0.6)
    assert calls == ["first", "second"]
    calls.clear()
    injector.schedule_card_failure(server.node.phis[1], at=2.0, warning_lead=0.5)
    server.sim.run(until=1.6)
    # Next warning: 'second' unsubscribed, 'late' now in the list.
    assert calls == ["first", "late"]


def test_telemetry_order_stable_under_seeded_schedules():
    """The same fault plan produces the same telemetry order no matter the
    schedule seed (regression for the seeded tie-break mode)."""
    from repro.sim import Simulator

    def dispatch_order(seed):
        sim = Simulator(schedule_seed=seed)
        server = XeonPhiServer(sim=sim)
        injector = FaultInjector(sim)
        calls = []
        for tag in ("a", "b", "c"):
            injector.subscribe(lambda phi, ttf, tag=tag: calls.append(tag))
        injector.schedule_card_failure(server.node.phis[0], at=sim.now + 1.0,
                                       warning_lead=0.5)
        sim.run(until=sim.now + 0.6)
        return calls

    expected = dispatch_order(None)
    assert expected == ["a", "b", "c"]
    for seed in (0, 1, 2, 3):
        assert dispatch_order(seed) == expected


def test_fail_now_kills_card_synchronously():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    phi = server.node.phis[0]
    n_procs = len(phi.os.processes)
    assert n_procs > 0
    ev = injector.fail_now(phi)
    assert ev.triggered and ev.value is phi
    assert injector.is_failed(phi)
    assert len(phi.os.processes) == 0
