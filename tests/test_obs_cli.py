"""CLI coverage for ``repro.obs.cli``: trace edge cases, fleet, top, exports.

The ``snapify top`` dashboard and its ``--export prom``/``--export json``
payloads are exercised end to end through ``main()``; ``snapify trace`` is
pinned to its friendly degraded paths (no finished root span, zero op.*
records) instead of a stack trace; the histogram bucket export round-trips
through the Prometheus text parser/validator.
"""

import json
import types

import pytest

from repro.obs.cli import main as cli_main
from repro.obs.export import (
    parse_prometheus_text,
    prometheus_text,
    validate_prometheus_text,
)
from repro.obs.phases import operation_table
from repro.obs.registry import MetricsRegistry
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# snapify trace: degraded inputs must report, not crash
# ---------------------------------------------------------------------------


def test_operation_table_with_zero_op_records_renders_note():
    sim = Simulator(trace=True)
    table = operation_table(sim.trace)
    text = table.render()
    assert "no op.* records" in text


def test_trace_command_with_empty_trace_exits_zero(monkeypatch, capsys):
    """A run that produced no spans and no operations still prints the
    (empty) operation table and a friendly note per missing breakdown."""
    import repro.obs.cli as cli

    def fake_run(scenario, iterations=40, sample_interval=0.01):
        return types.SimpleNamespace(sim=Simulator(trace=True))

    monkeypatch.setattr(cli, "run_traced_scenario", fake_run)
    rc = cli_main(["trace", "--scenario", "checkpoint"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no phase breakdown for 'snapify.checkpoint'" in out
    assert "no op.* records" in out


def test_trace_command_prints_card_column(capsys):
    rc = cli_main(["trace", "--scenario", "checkpoint", "--iterations", "10",
                   "--sample-interval", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "card" in out        # operation-table column
    assert "n0.mic0" in out     # the op ran on card 0 of node 0


# ---------------------------------------------------------------------------
# Histogram buckets + Prometheus text round-trip
# ---------------------------------------------------------------------------


def test_histogram_cumulative_buckets_end_at_inf():
    sim = Simulator()
    reg = MetricsRegistry.of(sim)
    h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.05, 0.5, 5.0):
        h.observe(v)
    buckets = h.cumulative_buckets()
    les = [le for le, _ in buckets]
    counts = [n for _, n in buckets]
    assert les == [0.01, 0.1, 1.0, float("inf")]
    assert counts == [1, 3, 4, 5]          # cumulative, +Inf == count
    assert counts == sorted(counts)
    # summary() must stay strict-JSON (no bare Infinity).
    text = json.dumps(h.summary())
    assert "+Inf" in text and "Infinity" not in text


def test_prometheus_text_round_trips_and_validates():
    sim = Simulator()
    reg = MetricsRegistry.of(sim)
    reg.counter("fleet.card.n0.mic1.completed").inc(3)
    reg.counter("fleet.prio.swap.submitted").inc(2)
    reg.gauge("fleet.card.n0.mic1.in_flight", lambda: 1)
    h = reg.histogram("fleet.service_time", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)

    text = prometheus_text(sim)
    assert validate_prometheus_text(text) > 0
    types_map, samples = parse_prometheus_text(text)

    # Structured .card.<key>. / .prio.<label>. segments become labels.
    assert samples["fleet_completed"] == [({"card": "n0.mic1"}, 3.0)]
    assert samples["fleet_submitted"] == [({"priority": "swap"}, 2.0)]
    assert samples["fleet_in_flight"] == [({"card": "n0.mic1"}, 1.0)]

    # Histogram exposition: cumulative buckets ending at +Inf == _count.
    buckets = samples["fleet_service_time_bucket"]
    by_le = {lbl["le"]: v for lbl, v in buckets}
    assert by_le == {"0.1": 1.0, "1": 2.0, "+Inf": 2.0}
    assert samples["fleet_service_time_count"] == [({}, 2.0)]
    assert types_map["fleet_service_time"] == "histogram"


def test_prometheus_validator_rejects_malformed_text():
    with pytest.raises(ValueError):
        parse_prometheus_text("not a metric line!!!")
    # A histogram whose +Inf bucket disagrees with _count must fail.
    bad = "\n".join([
        "# TYPE x histogram",
        'x_bucket{le="1"} 1',
        'x_bucket{le="+Inf"} 1',
        "x_sum 1.0",
        "x_count 2",
        "",
    ])
    with pytest.raises(ValueError, match="count"):
        validate_prometheus_text(bad)


# ---------------------------------------------------------------------------
# snapify fleet / snapify top through main()
# ---------------------------------------------------------------------------


def test_cli_fleet_metrics_prints_card_counters(capsys):
    rc = cli_main(["fleet", "--topology", "dev2", "--ops-per-card", "1",
                   "--metrics"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fleet.card.n0.mic0.completed" in out


def test_cli_top_renders_dashboard_and_alert_history(capsys):
    rc = cli_main(["top", "--topology", "dev2", "--ops-per-card", "1",
                   "--frames", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "snapify top" in out
    assert "p99 pause" in out
    assert "n0.mic0" in out and "n0.mic1" in out
    assert "no alerts firing" in out


def test_cli_top_export_prom_to_file(tmp_path, capsys):
    out_path = tmp_path / "metrics.prom"
    rc = cli_main(["top", "--topology", "dev2", "--ops-per-card", "1",
                   "--frames", "0", "--export", "prom",
                   "--out", str(out_path)])
    assert rc == 0
    assert f"wrote {out_path}" in capsys.readouterr().out
    text = out_path.read_text()
    assert validate_prometheus_text(text) > 0
    assert 'snapify_phase_latency_seconds{' in text
    assert 'quantile="0.99"' in text


def test_cli_top_export_json_with_failure_and_custom_slo(tmp_path, capsys):
    out_path = tmp_path / "top.json"
    rc = cli_main(["top", "--topology", "rack8", "--ops-per-card", "2",
                   "--frames", "0", "--fail-card", "1", "--fail-at", "0.05",
                   "--slo", "burn_rate < 0.1", "--slo", "pausing p99 < 150ms",
                   "--export", "json", "--out", str(out_path)])
    out = capsys.readouterr().out
    assert rc == 0                     # injected failure is expected
    assert "alert history:" in out
    assert "fire" in out and "burn_rate" in out
    doc = json.loads(out_path.read_text())
    assert doc["tickets"]["failed"] > 0
    assert any(e["key"] == "burn_rate" and e["event"] == "fire"
               for e in doc["alerts"]["history"])
    assert doc["fleet"]["name"] == "fleet"


def test_cli_top_rejects_bad_slo():
    with pytest.raises(ValueError, match="unparseable"):
        cli_main(["top", "--topology", "dev2", "--frames", "0",
                  "--slo", "gibberish"])
