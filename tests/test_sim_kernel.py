"""Unit tests for the DES kernel: events, threads, scheduling, determinism."""

import pytest

from repro.sim import (
    DeadlockError,
    Interrupted,
    SimTimeLimit,
    Simulator,
    ThreadKilled,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(2.5)
        return sim.now

    t = sim.spawn(worker(sim))
    sim.run()
    assert sim.now == 2.5
    assert t.done.value == 2.5


def test_zero_delay_runs_in_order():
    sim = Simulator()
    order = []

    def worker(sim, tag):
        yield sim.timeout(0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(worker(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_value_passing():
    sim = Simulator()
    ev = sim.event("data")
    got = []

    def consumer(sim):
        value = yield ev
        got.append(value)

    def producer(sim):
        yield sim.timeout(1)
        ev.succeed(42)

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert got == [42]


def test_event_failure_propagates_to_waiter():
    sim = Simulator()
    ev = sim.event()

    def consumer(sim):
        with pytest.raises(ValueError):
            yield ev
        return "survived"

    def producer(sim):
        yield sim.timeout(1)
        ev.fail(ValueError("boom"))

    t = sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert t.done.value == "survived"


def test_wait_on_already_triggered_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")

    def consumer(sim):
        value = yield ev
        return value

    t = sim.spawn(consumer(sim))
    sim.run()
    assert t.done.value == "early"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_thread_join_via_done_event():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3)
        return "child-result"

    def parent(sim):
        t = sim.spawn(child(sim), name="child")
        result = yield t.done
        return result

    p = sim.spawn(parent(sim), name="parent")
    sim.run()
    assert p.done.value == "child-result"
    assert sim.now == 3


def test_yield_from_composition():
    sim = Simulator()

    def inner(sim):
        yield sim.timeout(1)
        return 10

    def outer(sim):
        a = yield from inner(sim)
        b = yield from inner(sim)
        return a + b

    t = sim.spawn(outer(sim))
    sim.run()
    assert t.done.value == 20
    assert sim.now == 2


def test_uncaught_thread_exception_is_recorded():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("oops")

    t = sim.spawn(bad(sim))
    sim.run()
    assert not t.done.ok
    failures = sim.failed_threads()
    assert len(failures) == 1
    assert isinstance(failures[0][1], RuntimeError)


def test_strict_mode_raises_on_thread_error():
    sim = Simulator(strict=True)

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("oops")

    sim.spawn(bad(sim))
    with pytest.raises(RuntimeError):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    t = sim.spawn(bad(sim))
    sim.run()
    assert not t.done.ok
    assert isinstance(t.done.exception, TypeError)


def test_interrupt_blocked_thread():
    sim = Simulator()
    ev = sim.event("never")
    caught = []

    def worker(sim):
        try:
            yield ev
        except Interrupted as exc:
            caught.append(exc.cause)
        yield sim.timeout(1)
        return "recovered"

    t = sim.spawn(worker(sim))

    def interrupter(sim):
        yield sim.timeout(5)
        t.interrupt("signal-9")

    sim.spawn(interrupter(sim))
    sim.run()
    assert caught == ["signal-9"]
    assert t.done.value == "recovered"
    assert sim.now == 6


def test_interrupt_does_not_fire_stale_event_later():
    sim = Simulator()
    ev = sim.event()
    hits = []

    def worker(sim):
        try:
            yield ev
            hits.append("normal")
        except Interrupted:
            hits.append("interrupted")
        yield sim.timeout(10)

    t = sim.spawn(worker(sim))

    def driver(sim):
        yield sim.timeout(1)
        t.interrupt()
        yield sim.timeout(1)
        ev.succeed("late")  # must NOT resume the worker a second time

    sim.spawn(driver(sim))
    sim.run()
    assert hits == ["interrupted"]


def test_kill_thread_runs_finally():
    sim = Simulator()
    cleaned = []

    def worker(sim):
        try:
            yield sim.event("forever")
        finally:
            cleaned.append(True)

    t = sim.spawn(worker(sim))

    def killer(sim):
        yield sim.timeout(1)
        t.kill()

    sim.spawn(killer(sim))
    sim.run(check_deadlock=False)
    assert cleaned == [True]
    assert isinstance(t.done.exception, ThreadKilled)


def test_deadlock_detection():
    sim = Simulator()

    def stuck(sim):
        yield sim.event("never-fires")

    sim.spawn(stuck(sim), name="stuck-thread")
    with pytest.raises(DeadlockError):
        sim.run()


def test_daemon_threads_do_not_trip_deadlock_check():
    sim = Simulator()

    def daemon(sim):
        yield sim.event("never")

    sim.spawn(daemon(sim), daemon=True)
    sim.run()  # no DeadlockError


def test_run_until_limit():
    sim = Simulator()

    def slow(sim):
        yield sim.timeout(100)

    sim.spawn(slow(sim))
    sim.run(until=10)
    assert sim.now == 10

    sim.run()
    assert sim.now == 100


def test_run_until_event():
    sim = Simulator()
    ev = sim.event()

    def worker(sim):
        yield sim.timeout(7)
        ev.succeed("ready")

    sim.spawn(worker(sim))
    assert sim.run_until(ev) == "ready"
    assert sim.now == 7


def test_run_until_event_that_cannot_fire():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(DeadlockError):
        sim.run_until(ev)


def test_run_until_time_limit_guard():
    sim = Simulator()
    ev = sim.event()

    def ticker(sim):
        while True:
            yield sim.timeout(10)

    sim.spawn(ticker(sim), daemon=True)
    with pytest.raises(SimTimeLimit):
        sim.run_until(ev, limit=100)


def test_any_of_returns_first():
    sim = Simulator()

    def worker(sim):
        t1 = sim.timeout(5, "slow")
        t2 = sim.timeout(2, "fast")
        idx, ev = yield sim.any_of([t1, t2])
        return idx, ev.value

    t = sim.spawn(worker(sim))
    sim.run()
    assert t.done.value == (1, "fast")


def test_all_of_waits_for_everything():
    sim = Simulator()

    def worker(sim):
        evs = [sim.timeout(d, d) for d in (3, 1, 2)]
        values = yield sim.all_of(evs)
        return values

    t = sim.spawn(worker(sim))
    sim.run()
    assert t.done.value == [3, 1, 2]
    assert sim.now == 3


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def worker(sim):
        result = yield sim.all_of([])
        return result

    t = sim.spawn(worker(sim))
    sim.run()
    assert t.done.value == []


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_determinism_same_schedule_twice():
    def build_and_run():
        sim = Simulator()
        log = []

        def worker(sim, tag, delay):
            for i in range(3):
                yield sim.timeout(delay)
                log.append((sim.now, tag, i))

        sim.spawn(worker(sim, "x", 1.0))
        sim.spawn(worker(sim, "y", 1.0))
        sim.spawn(worker(sim, "z", 0.5))
        sim.run()
        return log

    assert build_and_run() == build_and_run()
