"""DeadlockError's wait-for graph: thread -> blocking event -> owner.

Pins both the structured form (``Simulator.wait_for_graph`` /
``DeadlockError.waitfor``) and the rendered message format, so deadlock
dumps stay machine-parsable for the fuzzer's repro artifacts.
"""

import pytest

from repro.sim import Simulator
from repro.sim.errors import DeadlockError, render_waitfor
from repro.sim.sync import Mutex


def _abba_deadlock():
    """Classic AB-BA: two threads each hold one lock and want the other."""
    sim = Simulator()
    a = Mutex(sim, name="lock-a")
    b = Mutex(sim, name="lock-b")

    def t1(thread_name="t1"):
        yield a.acquire(owner=thread_name)
        yield sim.timeout(0.1)
        yield b.acquire(owner=thread_name)

    def t2(thread_name="t2"):
        yield b.acquire(owner=thread_name)
        yield sim.timeout(0.1)
        yield a.acquire(owner=thread_name)

    sim.spawn(t1(), name="t1")
    sim.spawn(t2(), name="t2")
    return sim


def test_deadlock_error_carries_the_waitfor_graph():
    sim = _abba_deadlock()
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    graph = excinfo.value.waitfor
    assert len(graph) == 2
    by_thread = {edge["thread"]: edge for edge in graph}
    assert by_thread["t1"]["event"] == "acquire:lock-b"
    assert by_thread["t1"]["owner"] == "mutex 'lock-b' holder 't2'"
    assert by_thread["t2"]["event"] == "acquire:lock-a"
    assert by_thread["t2"]["owner"] == "mutex 'lock-a' holder 't1'"
    # Edges are tid-sorted and schema-complete.
    assert [e["tid"] for e in graph] == sorted(e["tid"] for e in graph)
    for edge in graph:
        assert set(edge) == {"thread", "tid", "daemon", "event", "owner"}
        assert edge["daemon"] is False


def test_deadlock_message_format_is_pinned():
    sim = _abba_deadlock()
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    msg = str(excinfo.value)
    assert "2 thread(s) blocked at t=0.1" in msg
    assert "wait-for graph:" in msg
    assert "  t1 (tid=1) -> waiting on 'acquire:lock-b' held by mutex 'lock-b' holder 't2'" in msg
    assert "  t2 (tid=2) -> waiting on 'acquire:lock-a' held by mutex 'lock-a' holder 't1'" in msg


def test_render_waitfor_marks_daemons_and_plain_events():
    edges = [
        {"thread": "poller", "tid": 3, "daemon": True, "event": "recv:q", "owner": None},
    ]
    assert render_waitfor(edges) == "  poller (tid=3) [daemon] -> waiting on 'recv:q'"
    assert render_waitfor([]) == "  (no blocked threads)"


def test_run_until_deadlock_includes_graph():
    sim = Simulator()
    m = Mutex(sim, name="held")

    def holder():
        yield m.acquire(owner="holder")
        # Never releases.

    def waiter():
        yield m.acquire(owner="waiter")

    sim.spawn(holder(), name="holder")
    t = sim.spawn(waiter(), name="waiter")
    with pytest.raises(DeadlockError) as excinfo:
        sim.run_until(t.done)
    assert "can never trigger" in str(excinfo.value)
    assert any(e["thread"] == "waiter" for e in excinfo.value.waitfor)


def test_wait_for_graph_on_a_live_simulator():
    """The graph is inspectable outside error paths, e.g. mid-run."""
    sim = Simulator()
    m = Mutex(sim, name="gate")

    def holder():
        yield m.acquire(owner="holder")
        yield sim.timeout(1.0)
        m.release()

    def waiter():
        yield sim.timeout(0.1)
        yield m.acquire(owner="waiter")

    sim.spawn(holder(), name="holder")
    sim.spawn(waiter(), name="waiter")
    sim.run(until=0.5)
    graph = sim.wait_for_graph()
    waiting = {e["thread"]: e for e in graph}
    assert waiting["waiter"]["owner"] == "mutex 'gate' holder 'holder'"
    sim.run()  # completes cleanly once the holder releases
    assert sim.wait_for_graph() == []


def test_anonymous_mutex_owner_renders_distinctly():
    sim = Simulator()
    m = Mutex(sim, name="anon")

    def holder():
        yield m.acquire()  # no owner passed

    def waiter():
        yield sim.timeout(0.1)
        yield m.acquire(owner="w")

    sim.spawn(holder(), name="holder")
    sim.spawn(waiter(), name="waiter")
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    edge = next(e for e in excinfo.value.waitfor if e["thread"] == "waiter")
    assert edge["owner"] == "mutex 'anon' (anonymous holder)"
