"""Checkpoint-during-fault races: a card failure at every phase boundary.

The checkpoint protocol has five phase boundaries (before pause, after
pause, after capture, after wait, after resume). A card failure injected
at each one, under several perturbed schedules, must either let the
checkpoint complete or surface a clean, documented error — never hang,
never crash inside the stack, never leave an invariant violated. These are
exactly the races the DMTCP plugin-checkpointing literature warns hide in
checkpoint protocols.
"""

import pytest

from repro.check import CHECKPOINT_FAULT_PHASES, run_scenario
from repro.check.scenarios import CLEAN_ERRORS

SEEDS = (None, 0, 1, 2)


@pytest.mark.parametrize("phase", CHECKPOINT_FAULT_PHASES)
@pytest.mark.parametrize("seed", SEEDS)
def test_card_failure_at_phase_boundary(phase, seed):
    result = run_scenario(f"checkpoint_fault:{phase}", seed=seed)
    # Oracles hold, and the run either completed or faulted cleanly.
    assert result.ok, result.summary()
    assert result.outcome in ("completed", "faulted")
    if result.outcome == "faulted" and result.error:
        # The surfaced error is one of the documented protocol errors.
        names = tuple(e.__name__ for e in CLEAN_ERRORS)
        assert result.error.startswith(names) or "stalled" in result.error, result.error


@pytest.mark.parametrize("phase", CHECKPOINT_FAULT_PHASES)
def test_phase_fault_replays_identically(phase):
    a = run_scenario(f"checkpoint_fault:{phase}", seed=9, capture_trace=True)
    b = run_scenario(f"checkpoint_fault:{phase}", seed=9, capture_trace=True)
    assert a.trace_digest == b.trace_digest
    assert a.outcome == b.outcome


def test_fault_before_pause_reports_dead_card():
    result = run_scenario("checkpoint_fault:before_pause", seed=None)
    assert result.outcome == "faulted"
    assert result.error is not None


def test_repaired_card_failure_leaves_no_residue():
    """A failure + repair on the spare card during a checkpoint: the
    checkpoint is unaffected and the rebooted daemons are quiescent."""
    faults = [{"device": 1, "at": 0.35, "warning_lead": 0.1, "repair_after": 0.4}]
    result = run_scenario("checkpoint", seed=3, faults=faults)
    assert result.ok, result.summary()
    assert result.outcome == "completed"
