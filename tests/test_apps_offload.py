"""End-to-end tests of the offload application framework with Snapify."""


from repro.apps import OPENMP_BENCHMARKS, OffloadApplication, expected_checksum
from repro.snapify import (
    MIGRATE,
    SWAP_IN,
    SWAP_OUT,
    checkpoint_offload_app,
    restart_offload_app,
    snapify_command,
    snapify_t,
)
from repro.testbed import XeonPhiServer


def small_profile(name="MC", iterations=12):
    from dataclasses import replace

    return replace(OPENMP_BENCHMARKS[name], iterations=iterations)


def test_plain_run_produces_expected_checksum():
    server = XeonPhiServer()
    app = OffloadApplication(server, small_profile(), iterations=10)

    def driver(sim):
        result = yield from app.run_to_completion()
        return result

    result = server.run(driver(server.sim))
    assert result == expected_checksum(10)
    assert app.verify()


def test_snapify_disabled_run_is_faster():
    t = {}
    for enabled in (True, False):
        server = XeonPhiServer()
        app = OffloadApplication(
            server, small_profile("MD"), iterations=200, snapify_enabled=enabled
        )

        def driver(sim):
            t0 = sim.now
            yield from app.run_to_completion()
            return sim.now - t0

        t[enabled] = server.run(driver(server.sim))
        assert app.verify()
    overhead = (t[True] - t[False]) / t[False]
    assert 0 < overhead < 0.10


def test_checkpoint_and_continue_preserves_result():
    server = XeonPhiServer()
    app = OffloadApplication(server, small_profile(), iterations=10)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.5)  # a few iterations in
        snap = snapify_t(snapshot_path="/snap/a1", coiproc=app.coiproc)
        yield from checkpoint_offload_app(snap)
        yield app.host_proc.main_thread.done
        return snap

    snap = server.run(driver(server.sim))
    assert app.verify()
    # All three snapshot components exist on the host FS.
    assert snap.sizes["host_snapshot"] > 0
    assert snap.sizes["offload_snapshot"] > 0
    assert snap.sizes["local_store"] > 0


def test_full_failure_restart_roundtrip():
    """Kill BOTH processes after a checkpoint; restart from the snapshot
    directory alone; the run completes with the right checksum."""
    server = XeonPhiServer()
    app = OffloadApplication(server, small_profile(), iterations=10)
    out = {}

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.5)
        snap = snapify_t(snapshot_path="/snap/a2", coiproc=app.coiproc)
        yield from checkpoint_offload_app(snap)
        iter_at_ckpt = None
        # simulate a crash of the whole application some time later
        yield sim.timeout(0.2)
        app.host_proc.terminate(code=1)
        yield sim.timeout(0.05)
        result = yield from restart_offload_app(server.host_os, "/snap/a2", server.engine(0))
        yield result.host_proc.main_thread.done
        out["store"] = result.host_proc.store

    server.run(driver(server.sim))
    assert out["store"]["finished"] is True
    assert out["store"]["checksum"] == expected_checksum(10)


def test_restart_on_other_device_after_failure():
    server = XeonPhiServer()
    app = OffloadApplication(server, small_profile(), iterations=8, device=0)
    out = {}

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.4)
        snap = snapify_t(snapshot_path="/snap/a3", coiproc=app.coiproc)
        yield from checkpoint_offload_app(snap)
        app.host_proc.terminate(code=1)
        yield sim.timeout(0.05)
        result = yield from restart_offload_app(server.host_os, "/snap/a3", server.engine(1))
        yield result.host_proc.main_thread.done
        out["store"] = result.host_proc.store
        out["device_os"] = result.coiproc.offload_proc.os

    server.run(driver(server.sim))
    assert out["store"]["checksum"] == expected_checksum(8)
    assert out["device_os"] is server.phi_os(1)


def test_cli_swap_out_and_in():
    server = XeonPhiServer()
    app = OffloadApplication(server, small_profile(), iterations=15)
    out = {}

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.3)
        done = snapify_command(app.host_proc, SWAP_OUT, snapshot_path="/swap/s1")
        snap = yield done
        out["offload_alive_during_swap"] = snap.coiproc.offload_proc.alive
        out["card_ramfs"] = server.node.phis[0].memory.by_category.get("ramfs", 0)
        yield sim.timeout(1.0)  # swapped out: no progress
        iter_frozen = app.host_proc.store["iter"]
        yield sim.timeout(1.0)
        assert app.host_proc.store["iter"] == iter_frozen
        done = snapify_command(app.host_proc, SWAP_IN, engine=server.engine(0))
        yield done
        yield app.host_proc.main_thread.done
        return app.host_proc.store["checksum"]

    checksum = server.run(driver(server.sim))
    assert checksum == expected_checksum(15)
    assert out["offload_alive_during_swap"] is False
    # Swap-out released the card memory held by the local store.
    assert out["card_ramfs"] == 0


def test_cli_migration_between_cards():
    server = XeonPhiServer()
    app = OffloadApplication(server, small_profile(), iterations=15)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.3)
        done = snapify_command(app.host_proc, MIGRATE, engine=server.engine(1))
        new = yield done
        assert new.offload_proc.os is server.phi_os(1)
        yield app.host_proc.main_thread.done
        return app.host_proc.store["checksum"]

    assert server.run(driver(server.sim)) == expected_checksum(15)


def test_migration_mid_offload_call_is_exactly_once():
    """Migrate while an offload function is in flight; checksum unchanged."""
    server = XeonPhiServer()
    profile = small_profile("FT", iterations=6)  # 15 ms calls
    app = OffloadApplication(server, profile, iterations=6)

    def driver(sim):
        yield from app.launch()
        # Land the migration inside some iterate() execution window.
        yield sim.timeout(1.283)
        done = snapify_command(app.host_proc, MIGRATE, engine=server.engine(1))
        yield done
        yield app.host_proc.main_thread.done
        return app.host_proc.store["checksum"]

    assert server.run(driver(server.sim)) == expected_checksum(6)


def test_two_apps_share_a_card():
    server = XeonPhiServer()
    app1 = OffloadApplication(server, small_profile(), iterations=6, name="app1")
    app2 = OffloadApplication(server, small_profile("KM"), iterations=6, name="app2")

    def driver(sim):
        yield from app1.launch()
        yield from app2.launch()
        yield app1.host_proc.main_thread.done
        yield app2.host_proc.main_thread.done

    server.run(driver(server.sim))
    assert app1.verify() and app2.verify()
