"""Each invariant oracle catches its own class of crafted violation.

The fuzzer is only as good as its oracles: a broken oracle silently turns
the whole campaign green. Every test here wounds a healthy testbed in one
specific way and asserts exactly the right oracle fires.
"""

from types import SimpleNamespace

from repro.check import check_all
from repro.check.oracles import (
    memory_accounting,
    monitor_quiescent,
    no_crashed_threads,
    nothing_left_paused,
    process_accounting,
    ramfs_accounting,
    scif_conservation,
    staging_drained,
)
from repro.scif.endpoint import ScifNetwork
from repro.snapify.monitor import SnapifyService
from repro.testbed import XeonPhiServer


def test_healthy_testbed_passes_every_oracle():
    server = XeonPhiServer()
    server.sim.run()  # settle to quiescence
    assert check_all(server) == []


def test_memory_accounting_catches_ledger_drift():
    server = XeonPhiServer()
    server.node.memory.used += 4096  # drift: used without a category
    violations = memory_accounting(server)
    assert violations and violations[0].oracle == "memory_accounting"
    assert "categories sum" in violations[0].detail


def test_process_accounting_catches_leaked_regions():
    server = XeonPhiServer()
    # 'process' bytes accounted with no live process owning them.
    server.node.memory.allocate(1 << 20, "process")
    violations = process_accounting(server)
    assert violations and violations[0].oracle == "process_accounting"


def test_ramfs_accounting_catches_orphaned_bytes():
    server = XeonPhiServer()
    server.node.phis[0].memory.allocate(512, "ramfs")  # no backing file
    violations = ramfs_accounting(server)
    assert violations and "mic0" in violations[0].detail


def _registered_endpoint(server):
    """A connected-looking endpoint registered with the node's network.
    (Plain boot leaves only listeners; connections appear with workloads.)"""
    from repro.scif.endpoint import ScifEndpoint

    net = ScifNetwork.of(server.node)
    ep = ScifEndpoint(server.sim, server.host_os, 9999)
    net.endpoints.append(ep)
    return ep


def test_scif_conservation_catches_lost_messages():
    server = XeonPhiServer()
    ep = _registered_endpoint(server)
    ep._rx.sent_count += 1  # a message 'sent' that nobody will ever see
    violations = scif_conservation(server)
    assert any(f"ep{ep.eid}" in v.detail for v in violations)


def test_scif_conservation_ignores_closed_endpoints():
    server = XeonPhiServer()
    ep = _registered_endpoint(server)
    ep._rx.sent_count += 1
    ep.closed = True  # close() legally discards in-flight messages
    assert all(f"ep{ep.eid}" not in v.detail for v in scif_conservation(server))


def test_nothing_left_paused_catches_leaked_pause():
    server = XeonPhiServer()
    daemon_proc = server.coi_daemons[0].proc
    daemon_proc.runtime["coi_handle"] = SimpleNamespace(paused=True)
    try:
        violations = nothing_left_paused(server)
        assert violations and "still paused" in violations[0].detail
    finally:
        daemon_proc.runtime.pop("coi_handle")


def test_monitor_quiescent_catches_lingering_monitor():
    server = XeonPhiServer()
    svc = SnapifyService.of(server.coi_daemons[0])
    svc.monitor_running = True
    violations = monitor_quiescent(server)
    assert violations and "monitor thread still running" in violations[0].detail


def test_monitor_quiescent_catches_stuck_requests():
    server = XeonPhiServer()
    svc = SnapifyService.of(server.coi_daemons[0])
    svc.active[1234] = SimpleNamespace()
    violations = monitor_quiescent(server)
    assert violations and "1234" in violations[0].detail


def test_staging_drained_catches_leftover_localstore():
    server = XeonPhiServer()
    server.phi_os(0).fs.create("/mig/x/localstore")
    violations = staging_drained(server)
    assert violations and "localstore" in violations[0].detail


def test_no_crashed_threads_catches_internal_errors():
    server = XeonPhiServer()

    def buggy(sim):
        yield sim.timeout(0.01)
        raise KeyError("protocol handler bug")

    server.sim.spawn(buggy(server.sim), name="buggy")
    server.sim.run()
    violations = no_crashed_threads(server)
    assert violations and "KeyError" in violations[0].detail


def test_no_crashed_threads_allows_documented_errors():
    server = XeonPhiServer()

    def dies_cleanly(sim):
        from repro.scif.endpoint import ConnectionReset

        yield sim.timeout(0.01)
        raise ConnectionReset("peer gone")

    server.sim.spawn(dies_cleanly(server.sim), name="clean-death")
    server.sim.run()
    assert no_crashed_threads(server) == []
