"""Replication-based resilience: teams, heartbeat, re-seed, oracles, study.

Covers the TeaMPI-style replication tentpole end to end: anti-affinity
placement, replica-aware fan-out/dedup messaging, heartbeat detection
(drops debounced against transient glitches), MAINTENANCE-lane re-seeding
with team-log backfill, the two membership/accounting oracles (each wound
is caught by exactly the right oracle), the ``replicas >= N`` SLO form,
the committed worst-case fuzz seeds, and the resilience-study driver.
"""

import pytest

from repro.apps import NAS_MZ_BENCHMARKS
from repro.check.fuzz import default_faults
from repro.check.oracles import (
    no_duplicate_delivery,
    team_membership_consistent,
)
from repro.check.scenarios import run_scenario
from repro.mpi.replication import (
    HeartbeatDetector,
    ReplicatedJob,
    ReplicationError,
    plan_replica_placement,
)
from repro.obs.slo import RedundancySLO, parse_slo
from repro.obs.timeseries import TimeSeriesRecorder
from repro.sched import FaultInjector
from repro.sched.study import ModeResult, markdown_table, run_mode
from repro.sim import Simulator
from repro.snapify.fleet import FleetManager
from repro.testbed import XeonPhiFleet


def make_job(fleet, n_teams=2, n_replicas=2, iterations=4):
    return ReplicatedJob(fleet, NAS_MZ_BENCHMARKS["SP-MZ"], n_teams=n_teams,
                         n_replicas=n_replicas, iterations=iterations)


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


def test_placement_anti_affinity_prefers_disjoint_nodes():
    fleet = XeonPhiFleet("rack8")  # 4 nodes x 2 cards
    placement = plan_replica_placement(fleet.cards(), n_teams=2, n_replicas=2)
    for t in (0, 1):
        a, b = placement[(t, 0)], placement[(t, 1)]
        assert a.key != b.key
        assert a.node != b.node  # rack8 has enough nodes for the strong form
    # No card is used twice across the whole placement.
    keys = [c.key for c in placement.values()]
    assert len(set(keys)) == len(keys)


def test_placement_falls_back_to_shared_node_when_starved():
    """One dual-card node cannot give a team two nodes — but it can still
    give it two distinct cards."""
    fleet = XeonPhiFleet("rack8")
    node0 = [c for c in fleet.cards() if c.node == 0]
    placement = plan_replica_placement(node0, n_teams=1, n_replicas=2)
    a, b = placement[(0, 0)], placement[(0, 1)]
    assert a.node == b.node == 0
    assert a.key != b.key


def test_placement_rejects_overcommit():
    fleet = XeonPhiFleet("rack8")
    with pytest.raises(ReplicationError):
        plan_replica_placement(fleet.cards(), n_teams=5, n_replicas=2)


# ---------------------------------------------------------------------------
# Clean replicated run: fan-out, dedup, ledger
# ---------------------------------------------------------------------------


def test_clean_replicated_run_verifies_and_balances():
    sim = Simulator()
    fleet = XeonPhiFleet("rack8", sim=sim)
    job = make_job(fleet)

    def driver():
        yield from job.launch()
        yield from job.join()

    fleet.run(driver())
    assert job.verify()
    comm = job.comm
    # Both replicas of each team received every logical message exactly once.
    assert comm.delivered_counts and all(
        n == 1 for n in comm.delivered_counts.values()
    )
    # With R=2 both replicas send the same logical message: half the copies
    # land first (delivered), half are suppressed as duplicates.
    assert comm.suppressed > 0
    assert comm.ledger_balanced()
    # Redundancy burns extra iterations beyond the logical progress (the
    # laggard replicas may still be mid-run when the first finishers land,
    # so the burn is between 1x and 2x).
    assert (job.useful_iterations()
            < job.executed_iterations()
            <= 2 * job.useful_iterations())
    server = fleet.servers[0]
    assert team_membership_consistent(server) == []
    assert no_duplicate_delivery(server) == []


# ---------------------------------------------------------------------------
# Card failure: the survivor carries on, zero restarts
# ---------------------------------------------------------------------------


def test_single_card_failure_is_invisible_to_the_team():
    sim = Simulator()
    fleet = XeonPhiFleet("rack8", sim=sim)
    injector = FaultInjector(sim)
    job = make_job(fleet, iterations=6)
    detector = HeartbeatDetector(job, interval=0.05, misses=2)

    def driver():
        yield from job.launch()
        detector.start()
        injector.schedule_card_failure(
            fleet.phi(job.placement[(0, 0)]), at=sim.now + 0.15
        )
        yield from job.join()
        detector.stop()

    fleet.run(driver())
    assert job.verify()
    assert [e[:3] for e in detector.drops] == [("drop", 0, 0)]
    assert job.comm.live[0] == [1]
    assert job.comm.dropped[0] == [0]
    assert job.comm.ledger_balanced()
    # Copies sent to the dead replica after the drop are accounted, not lost.
    assert all(n == 1 for n in job.comm.delivered_counts.values())
    server = fleet.servers[0]
    assert team_membership_consistent(server) == []
    assert no_duplicate_delivery(server) == []
    # The heartbeat's gauges track the degraded team.
    from repro.obs.registry import MetricsRegistry

    gauges = MetricsRegistry.of(sim).snapshot()["gauges"]
    assert gauges["replica.team.0.live"] == 1
    assert gauges["replica.team.1.live"] == 2


def test_transient_glitch_below_miss_budget_is_tolerated():
    """A health blip shorter than ``misses`` consecutive probes must not
    drop the replica (the debounce the detector exists for)."""
    sim = Simulator()
    fleet = XeonPhiFleet("rack8", sim=sim)
    job = make_job(fleet, iterations=6)
    detector = HeartbeatDetector(job, interval=0.05, misses=3)
    phi = fleet.phi(job.placement[(0, 0)])

    def glitch():
        # A monitoring-visibility blip: the probe sees the link down for
        # ~one heartbeat, but nothing in flight is actually harmed.
        yield sim.timeout(0.12)
        phi.link_down = True
        yield sim.timeout(0.06)
        phi.link_down = False

    def driver():
        yield from job.launch()
        detector.start()
        sim.spawn(glitch(), name="glitch")
        yield from job.join()
        detector.stop()

    fleet.run(driver())
    assert job.verify()
    misses = [e for e in detector.events if e[0] == "miss"]
    assert misses, "the glitch was never even observed"
    assert detector.drops == []
    assert job.comm.live[0] == [0, 1]


# ---------------------------------------------------------------------------
# Team wipe: clean error, fenced survivors
# ---------------------------------------------------------------------------


def test_team_wipe_raises_cleanly_and_membership_stays_coherent():
    sim = Simulator()
    fleet = XeonPhiFleet("rack8", sim=sim)
    injector = FaultInjector(sim)
    job = make_job(fleet, iterations=6)
    detector = HeartbeatDetector(job, interval=0.05, misses=2)
    out = {}

    def driver():
        yield from job.launch()
        detector.start()
        injector.schedule_card_failure(
            fleet.phi(job.placement[(0, 0)]), at=sim.now + 0.12
        )
        injector.schedule_card_failure(
            fleet.phi(job.placement[(0, 1)]), at=sim.now + 0.16
        )
        try:
            yield from job.join()
        except ReplicationError as exc:
            out["error"] = str(exc)
            # join() notices the wipe before the heartbeat's next tick:
            # give the detector a few beats to fence the dead replicas
            # before aborting the (healthy, but now pointless) survivors.
            yield sim.timeout(0.25)
            job.abort()
        detector.stop()

    fleet.run(driver())
    assert "team 0 lost every replica" in out["error"]
    assert job.comm.live[0] == []
    assert sorted(job.comm.dropped[0]) == [0, 1]
    assert job.comm.live[1] == [0, 1]
    # abort() fenced the survivors of team 1, so membership stays coherent.
    assert team_membership_consistent(fleet.servers[0]) == []
    assert no_duplicate_delivery(fleet.servers[0]) == []


# ---------------------------------------------------------------------------
# Re-seed: MAINTENANCE-lane clone + team-log backfill
# ---------------------------------------------------------------------------


def test_reseed_restores_team_strength_with_backfill():
    sim = Simulator()
    fleet = XeonPhiFleet("rack8", sim=sim)
    injector = FaultInjector(sim)
    manager = FleetManager(fleet)
    job = make_job(fleet, iterations=8)
    detector = HeartbeatDetector(job, interval=0.05, misses=2,
                                 reseed=True, manager=manager)

    def driver():
        yield from job.launch()
        detector.start()
        injector.schedule_card_failure(
            fleet.phi(job.placement[(0, 0)]), at=sim.now + 0.15
        )
        yield from job.join()
        detector.stop()
        if detector.reseed_tickets:
            yield from manager.collect(detector.reseed_tickets)

    fleet.run(driver())
    assert job.verify()
    assert len(detector.reseeds) == 1
    reseed = detector.reseeds[0]
    new_rid = reseed[2]
    assert new_rid == job.n_replicas  # next_rid past the original replicas
    # The team ended the run back at full strength, on disjoint cards.
    assert len(job.comm.live[0]) == 2
    cards = [job.placement[(0, r)].key for r in job.comm.live[0]]
    assert len(set(cards)) == 2
    # The joiner was backfilled from the team log and nothing was delivered
    # twice anywhere.
    assert job.comm.backfilled > 0
    assert job.comm.ledger_balanced()
    assert all(n == 1 for n in job.comm.delivered_counts.values())
    assert team_membership_consistent(fleet.servers[0]) == []
    assert no_duplicate_delivery(fleet.servers[0]) == []


# ---------------------------------------------------------------------------
# Oracles: each wound is caught by exactly the right check
# ---------------------------------------------------------------------------


def _unlaunched_job():
    fleet = XeonPhiFleet("rack8")
    job = make_job(fleet)
    for (t, r), rep in job.replicas.items():
        job.comm.register(t, r, rep.card.node)
    return fleet.servers[0], job


def test_membership_oracle_catches_live_and_dropped_overlap():
    server, job = _unlaunched_job()
    job.comm.dropped[0].append(0)  # rid 0 still live too
    violations = team_membership_consistent(server)
    assert any("both live and dropped" in v.detail for v in violations)


def test_membership_oracle_catches_shared_card():
    server, job = _unlaunched_job()
    job.placement[(0, 1)] = job.placement[(0, 0)]
    violations = team_membership_consistent(server)
    assert any("share a card" in v.detail for v in violations)


def test_membership_oracle_catches_unfenced_dropped_replica():
    from types import SimpleNamespace

    server, job = _unlaunched_job()
    job.comm.drop_replica(0, 0, reason="test")
    job.replicas[(0, 0)].host_proc = SimpleNamespace(alive=True)
    violations = team_membership_consistent(server)
    assert any("never fenced" in v.detail for v in violations)


def test_membership_oracle_catches_untracked_replica():
    server, job = _unlaunched_job()
    job.comm.live[1].remove(1)  # placed, but neither live nor dropped
    violations = team_membership_consistent(server)
    assert any("placed but" in v.detail for v in violations)


def test_delivery_oracle_catches_double_delivery():
    server, job = _unlaunched_job()
    job.comm.delivered_counts[((0, 0), (1, ("halo", 0), 0))] = 2
    violations = no_duplicate_delivery(server)
    assert any("delivered != 1" in v.detail for v in violations)


def test_delivery_oracle_catches_ledger_imbalance():
    server, job = _unlaunched_job()
    job.comm.copies_sent += 1  # a copy that never landed in any bucket
    violations = no_duplicate_delivery(server)
    assert any("ledger unbalanced" in v.detail for v in violations)


def test_delivery_oracle_catches_substrate_conservation_break():
    server, job = _unlaunched_job()
    job.comm.transport.messages_sent += 1
    violations = no_duplicate_delivery(server)
    assert any("conservation broken" in v.detail for v in violations)


# ---------------------------------------------------------------------------
# Redundancy SLO: "replicas >= N"
# ---------------------------------------------------------------------------


def test_parse_slo_replicas_form():
    rule = parse_slo("replicas >= 2")
    assert isinstance(rule, RedundancySLO)
    assert rule.min_live == 2
    assert rule.describe() == {"rule": "redundancy", "min_live": 2}


def test_redundancy_slo_flags_only_degraded_teams():
    sim = Simulator()
    rec = TimeSeriesRecorder(sim)
    rec._series("replica.team.0.live").append(1.0, 2)
    rec._series("replica.team.0.live").append(2.0, 1)  # degraded
    rec._series("replica.team.1.live").append(2.0, 2)  # healthy
    rec._series("replica.live").append(2.0, 3)  # aggregate: not a team series
    breaches = RedundancySLO(min_live=2).evaluate(rec, 2.0)
    assert [b.key for b in breaches] == ["redundancy:team0"]
    assert breaches[0].value == 1
    assert breaches[0].threshold == 2.0


# ---------------------------------------------------------------------------
# Worst-case fuzz seeds (committed regressions)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scenario,seed", [
    # Seeds 1 and 5 of lagging_replica drop a replica while its re-seed
    # source is mid-COI-setup — the schedule that exposed the torn-snapshot
    # deadlock (a pause landing inside BUFFER_CREATE) this PR fixes.
    ("replication:lagging_replica", 1),
    ("replication:lagging_replica", 5),
    ("replication:card_failure", 1),
    ("replication:team_wipe", 1),
])
def test_worst_case_replication_seeds_stay_green(scenario, seed):
    result = run_scenario(scenario, seed=seed,
                          faults=default_faults(scenario, seed))
    assert result.ok, result.summary()


# ---------------------------------------------------------------------------
# Resilience study
# ---------------------------------------------------------------------------


def test_run_mode_replication_clean():
    out = run_mode("replication", faulted=False, iterations=4)
    assert out["verified"]
    assert out["restarts"] == 0 and out["drops"] == 0
    assert out["ledger_balanced"] and out["duplicate_deliveries"] == 0
    assert out["cards"] == 4  # 2 teams x R=2
    assert out["elapsed"] > 0 and isinstance(out["events"], int)


def test_run_mode_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown study mode"):
        run_mode("raid5", faulted=False)


def test_mode_result_reductions_and_table():
    row = ModeResult(mode="replication", iterations=12, cards=4,
                     clean_elapsed=0.5, elapsed=0.5, restarts=0, drops=1,
                     reseeds=0, verified=True)
    assert row.slowdown == 1.0
    assert row.it_per_card_s == pytest.approx(12 / (4 * 0.5))
    degenerate = ModeResult(mode="x", iterations=0, cards=0, clean_elapsed=0.0,
                            elapsed=0.0, restarts=0, drops=0, reseeds=0,
                            verified=False)
    assert degenerate.slowdown == 0.0 and degenerate.it_per_card_s == 0.0
    table = markdown_table([row])
    assert "| replication | 12 | 0.500 | 1.00x | 0 | 1 | 0 | 4 |" in table
    assert table.splitlines()[2].startswith("| mode |")
