"""Unit tests for COI's generic client/server channel machinery."""

import pytest

from repro.coi import COIError, ClientChannel, ServerLoop
from repro.coi import messages as m
from repro.hw import MB, HardwareParams, ServerNode
from repro.osim import boot_node
from repro.scif import ScifNetwork
from repro.sim import Simulator


def make_pair():
    """A connected (client ClientChannel, server SimProcess+ServerLoop)."""
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    host, phis = boot_node(node)
    net = ScifNetwork.of(node)
    listener = net.listen(phis[0], port=500)
    state = {"handled": []}

    def setup(sim):
        proc = yield from phis[0].spawn_process("srv", image_size=1 * MB)
        client_ep = yield from net.connect(host, 1, 500)
        server_ep = yield listener.accept()

        def handler(msg):
            state["handled"].append(msg)
            if msg.get("want_reply"):
                return {"type": m.REPLY, "echo": msg["x"]}
            return None
            yield  # pragma: no cover

        loop = ServerLoop(proc, server_ep, handler, name="test-srv")
        state["loop"] = loop
        state["client"] = ClientChannel(sim, client_ep, "test-client")
        state["proc"] = proc

    t = sim.spawn(setup(sim))
    sim.run_until(t.done)
    assert t.done.ok, t.done.exception
    return sim, state


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run_until(t.done)
    assert t.done.ok, t.done.exception
    return t.done.value


def test_rpc_roundtrip():
    sim, state = make_pair()

    def driver(sim):
        reply = yield from state["client"].rpc({"x": 42, "want_reply": True})
        return reply

    assert run(sim, driver(sim))["echo"] == 42
    assert state["loop"].messages_handled == 1


def test_notify_one_way():
    sim, state = make_pair()

    def driver(sim):
        yield from state["client"].notify({"x": 1})
        yield from state["client"].notify({"x": 2})
        yield sim.timeout(0.01)

    run(sim, driver(sim))
    assert [msg["x"] for msg in state["handled"]] == [1, 2]


def test_client_mutex_serializes_rpcs():
    sim, state = make_pair()
    order = []

    def caller(sim, tag):
        reply = yield from state["client"].rpc({"x": tag, "want_reply": True})
        order.append(reply["echo"])

    def driver(sim):
        for tag in range(4):
            sim.spawn(caller(sim, tag))
        yield sim.timeout(0.05)

    run(sim, driver(sim))
    assert order == [0, 1, 2, 3]  # FIFO through the client lock


def test_snapify_shutdown_quiesces_and_release_reopens():
    sim, state = make_pair()
    timeline = {}

    def late_rpc(sim):
        reply = yield from state["client"].rpc({"x": 9, "want_reply": True})
        timeline["rpc_done"] = sim.now

    def driver(sim):
        yield from state["client"].snapify_shutdown()
        assert state["loop"].shutdowns_seen == 1
        sim.spawn(late_rpc(sim))
        yield sim.timeout(0.5)
        timeline["released_at"] = sim.now
        state["client"].snapify_release()
        yield sim.timeout(0.05)

    run(sim, driver(sim))
    assert timeline["rpc_done"] >= timeline["released_at"]


def test_rpc_during_shutdown_window_blocks_not_errors():
    """The shut_down flag only rejects traffic that somehow *bypasses* the
    lock; normal callers just queue on the mutex."""
    sim, state = make_pair()

    def driver(sim):
        yield from state["client"].snapify_shutdown()
        # Direct misuse: bypass the mutex and check the flag trips.
        state["client"].mutex.release()  # simulate a buggy path
        with pytest.raises(COIError, match="quiesced"):
            yield from state["client"].rpc({"x": 1, "want_reply": True})
        # Restore the lock state so release() is balanced.
        assert state["client"].mutex.try_acquire("fix")
        state["client"].snapify_release()
        return "ok"

    assert run(sim, driver(sim)) == "ok"


def test_release_without_shutdown_rejected():
    sim, state = make_pair()
    with pytest.raises(COIError):
        state["client"].snapify_release()


def test_server_rebind_after_reset():
    """Kill the client endpoint: the server loop parks; rebinding a fresh
    endpoint revives it."""
    sim, state = make_pair()

    def driver(sim):
        # Reset the connection from the client side.
        state["client"].ep.close()
        yield sim.timeout(0.01)
        assert state["loop"].thread.alive  # parked, not dead
        # Build a fresh connection and rebind both sides.
        node = state["proc"].os.hw.node
        net = ScifNetwork.of(node)
        listener = net.listen(node.os, port=600)

        def connect_server(sim):
            ep = yield from net.connect(state["proc"].os, 0, 600)
            state["loop"].rebind(ep)

        sim.spawn(connect_server(sim))
        new_client_ep = yield listener.accept()
        state["client"].rebind(new_client_ep)
        yield sim.timeout(0.01)
        reply = yield from state["client"].rpc({"x": 5, "want_reply": True})
        return reply

    assert run(sim, driver(sim))["echo"] == 5
