"""Checkpoint-content plugins: the registry, write-plan cost accounting,
the four resource plugins (sockets, RAM-FS files, signals, RDMA windows),
the COI metadata carrier, incremental carriage, the bounded metadata scan,
and the agent's drain phase."""

import math
from types import SimpleNamespace

import pytest

from repro.blcr import (
    BASE_SMALL_RECORDS,
    BLCRError,
    BULK_CHUNK,
    ChainError,
    CheckpointPlugin,
    PluginError,
    PluginImage,
    PluginRegistry,
    ProcessContext,
    RECORDS_PER_THREAD,
    RdmaMigrateError,
    SocketRestoreError,
    capture_incremental,
    cr_checkpoint,
    cr_restart,
    cr_restore_context,
    reassemble,
    register_standard_plugins,
    replay_rdma_windows,
)
from repro.blcr.plugins import RDMA_PENDING_KEY, REGISTRY_RUNTIME_KEY
from repro.hw import MB, HardwareParams, ServerNode
from repro.osim import RegularFileFD, boot_node
from repro.osim import signals as sig
from repro.osim.sockets import UnixSocket
from repro.scif.endpoint import ScifNetwork
from repro.scif.registry import scif_register
from repro.sim import Simulator


def make_env():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    host_os, phi_oses = boot_node(node)
    return sim, node, host_os, phi_oses


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run()
    assert t.done.ok, t.done.exception
    return t.done.value


def spawn_bare(os_, name="plugged", image=4 * MB):
    """Sub-generator: a not-started process with a heap and a store."""
    proc = yield from os_.spawn_process(name, image_size=image, start=False)
    proc.map_region("heap", 2 * MB, data=["heap-data"])
    proc.store["who"] = name
    return proc


def roundtrip(host_os, proc, dst_os, path="/t/plug.ctx"):
    """Sub-generator: checkpoint ``proc`` to the host FS, kill it, restart
    on ``dst_os``; returns the restored process."""
    wfd = RegularFileFD(proc.sim, host_os.fs, path, "w")
    yield from cr_checkpoint(proc, wfd)
    wfd.close()
    proc.terminate(code=0)
    rfd = RegularFileFD(proc.sim, host_os.fs, path, "r")
    restored = yield from cr_restart(dst_os, rfd, name="restored", start=False)
    rfd.close()
    return restored


# ---------------------------------------------------------------------------
# Registry + accounting
# ---------------------------------------------------------------------------


def test_default_registry_is_builtins_only_and_plan_is_legacy():
    sim, node, host, phis = make_env()
    registry = PluginRegistry.of(phis[0])
    assert len(registry) == 2
    assert registry.extras == []
    assert PluginRegistry.of(phis[0]) is registry  # cached per OS

    def driver():
        proc = yield from spawn_bare(phis[0])
        return ProcessContext.capture(proc)

    ctx = run(sim, driver())
    # With only built-ins registered nothing rides as a plugin image and
    # the record count is the pre-plugin formula — the golden trace's
    # byte-identity depends on this.
    assert ctx.plugin_images == []
    assert ctx.n_small_records == (BASE_SMALL_RECORDS
                                   + RECORDS_PER_THREAD * ctx.nthreads
                                   + len(ctx.regions))


def test_register_replaces_by_name():
    sim, node, host, phis = make_env()
    registry = PluginRegistry.of(phis[0])

    class P(CheckpointPlugin):
        name = "probe"

    first, second = P(), P()
    registry.register(first)
    registry.register(second)
    assert registry.get("probe") is second
    assert sum(1 for p in registry if p.name == "probe") == 1


def test_per_process_registry_overrides_os_registry():
    sim, node, host, phis = make_env()
    override = PluginRegistry()

    def driver():
        proc = yield from spawn_bare(phis[0])
        proc.runtime[REGISTRY_RUNTIME_KEY] = override
        return proc

    proc = run(sim, driver())
    assert PluginRegistry.for_process(proc) is override


def test_unknown_plugin_image_is_a_typed_error():
    registry = PluginRegistry()
    with pytest.raises(PluginError, match="no such plugin registered"):
        registry.get("martian")


def test_plugin_images_feed_the_write_plan():
    sim, node, host, phis = make_env()

    def driver():
        proc = yield from spawn_bare(phis[0])
        return ProcessContext.capture(proc)

    ctx = run(sim, driver())
    small0, bulk0, plan0 = ctx.n_small_records, ctx.bulk_bytes, ctx.write_plan()
    ctx.plugin_images.append(PluginImage("x", records=3, bulk_bytes=9 * MB))
    assert ctx.n_small_records == small0 + 3
    assert ctx.bulk_bytes == bulk0 + 9 * MB
    plan = ctx.write_plan()
    assert len(plan) - len(plan0) == 3 + math.ceil(9 * MB / BULK_CHUNK)
    # Plugin bulk rides the tail of the plan in image order.
    assert plan[-1][0] == 9 * MB - 2 * BULK_CHUNK
    assert ctx.plugin_payload("x") is ctx.plugin_images[0].payload


# ---------------------------------------------------------------------------
# The acceptance round-trip: socket pair + file offset + pending signal,
# restored together on ANOTHER card.
# ---------------------------------------------------------------------------


def test_socket_file_signal_roundtrip_to_another_card():
    sim, node, host, phis = make_env()
    src, dst = phis[0], phis[1]
    register_standard_plugins(src)
    register_standard_plugins(dst)

    def handler(p, signum):
        p.store["sig_count"] = p.store.get("sig_count", 0) + 1
        return
        yield  # pragma: no cover - generator form

    def driver():
        proc = yield from spawn_bare(src)
        # 1. an open socket pair
        a, b = UnixSocket.pair(sim, 400 * MB, name="pp")
        proc.register_fd(a)
        proc.register_fd(b)
        # 2. a RAM-FS file read to its middle
        yield from src.fs.write("/t/data", 5 * 4096,
                                payload=[f"r{i}" for i in range(5)])
        fd = RegularFileFD(sim, src.fs, "/t/data", "r")
        proc.register_fd(fd)
        for i in range(2):
            assert (yield from fd.read(4096)) == f"r{i}"
        # 3. a blocked signal with two pending instances
        proc.install_signal_handler(sig.SIGUSR1, handler)
        proc.block_signal(sig.SIGUSR1)
        proc.deliver_signal(sig.SIGUSR1)
        proc.deliver_signal(sig.SIGUSR1)

        restored = yield from roundtrip(host, proc, dst)

        socks = restored.runtime["restored_sockets"]
        ra, rb = socks["pp.a"], socks["pp.b"]
        yield from ra.write(4096, record="ping")
        assert (yield from rb.read()) == "ping"

        rfile = restored.runtime["restored_files"]["/t/data"]
        assert dst.fs.exists("/t/data")  # content migrated inside the image
        assert rfile._read_cursor == 2
        assert (yield from rfile.read(4096)) == "r2"

        assert restored.pending_signals == [sig.SIGUSR1, sig.SIGUSR1]
        assert sig.SIGUSR1 in restored.blocked_signals
        restored.unblock_signal(sig.SIGUSR1)
        yield sim.timeout(0.01)
        assert restored.store["sig_count"] == 2
        assert restored.store["who"] == "plugged"
        return restored

    run(sim, driver())


def test_socket_orphan_half_refuses_restore():
    sim, node, host, phis = make_env()
    register_standard_plugins(phis[0])

    def driver():
        proc = yield from spawn_bare(phis[0])
        other = yield from phis[0].spawn_process("other", image_size=MB,
                                                 start=False)
        a, b = UnixSocket.pair(sim, 400 * MB, name="split")
        proc.register_fd(a)   # only one half is ours: the peer lives in
        other.register_fd(b)  # another process and cannot be rebuilt
        wfd = RegularFileFD(sim, host.fs, "/t/orphan.ctx", "w")
        yield from cr_checkpoint(proc, wfd)
        wfd.close()
        proc.terminate(code=0)
        rfd = RegularFileFD(sim, host.fs, "/t/orphan.ctx", "r")
        with pytest.raises(SocketRestoreError, match="cannot be reconnected"):
            yield from cr_restart(phis[0], rfd, start=False)

    run(sim, driver())


def test_listener_rebinds_on_restore_target():
    sim, node, host, phis = make_env()
    register_standard_plugins(phis[0])
    register_standard_plugins(phis[1])

    def driver():
        proc = yield from spawn_bare(phis[0])
        phis[0].sockets.listen("@svc", owner=proc)
        restored = yield from roundtrip(host, proc, phis[1])
        listener = restored.runtime["restored_sockets"]["listen:@svc"]
        assert phis[1].sockets.bound["@svc"] is listener
        assert listener.owner is restored
        # and the name is actually live: a connect on the target succeeds
        client = yield from phis[1].sockets.connect("@svc")
        assert client.address == "@svc"

    run(sim, driver())


# ---------------------------------------------------------------------------
# RDMA windows
# ---------------------------------------------------------------------------


def _rdma_proc(sim, node, host, src):
    proc = yield from spawn_bare(src, name="rdma")
    net = ScifNetwork.of(node)
    net.listen(host, 4242)
    ep = yield from net.connect(src, 0, 4242, proc=proc)
    yield from scif_register(ep, MB)
    yield from scif_register(ep, 2 * MB)
    return proc


def test_rdma_windows_replay_on_same_card():
    sim, node, host, phis = make_env()
    register_standard_plugins(phis[0])

    def driver():
        proc = yield from _rdma_proc(sim, node, host, phis[0])
        old_offsets = sorted(
            off for fd in proc.open_fds
            for off in getattr(fd, "windows", {})
        )
        restored = yield from roundtrip(host, proc, phis[0])
        pending = restored.runtime[RDMA_PENDING_KEY]
        assert [w["nbytes"] for w in pending] == [MB, 2 * MB]
        ep2 = yield from ScifNetwork.of(node).connect(phis[0], 0, 4242,
                                                      proc=restored)
        table = yield from replay_rdma_windows(restored, ep2)
        assert sorted(table) == old_offsets
        assert sum(ep2.windows.values()) == 3 * MB
        assert RDMA_PENDING_KEY not in restored.runtime
        assert restored.runtime["rdma_address_map"] == table
        # replay is idempotent once drained
        assert (yield from replay_rdma_windows(restored, ep2)) == table

    run(sim, driver())


def test_rdma_windows_refuse_cross_card_migration():
    sim, node, host, phis = make_env()
    register_standard_plugins(phis[0])
    register_standard_plugins(phis[1])

    def driver():
        proc = yield from _rdma_proc(sim, node, host, phis[0])
        wfd = RegularFileFD(sim, host.fs, "/t/rdma.ctx", "w")
        yield from cr_checkpoint(proc, wfd)
        wfd.close()
        proc.terminate(code=0)
        rfd = RegularFileFD(sim, host.fs, "/t/rdma.ctx", "r")
        with pytest.raises(RdmaMigrateError, match="cannot migrate"):
            yield from cr_restart(phis[1], rfd, start=False)

    run(sim, driver())


# ---------------------------------------------------------------------------
# COI metadata rides a plugin image, not the annotations dict
# ---------------------------------------------------------------------------


def test_coi_metadata_plugin_roundtrip():
    sim, node, host, phis = make_env()
    register_standard_plugins(phis[0])

    def driver():
        proc = yield from spawn_bare(phis[0])
        proc.runtime["coi"] = SimpleNamespace(
            binary=SimpleNamespace(name="mc.so"),
            functions_executed=7,
            _buffers={3, 1},
            eps={},
        )
        restored = yield from roundtrip(host, proc, phis[0])
        assert restored.runtime["coi_meta"] == {
            "binary": "mc.so",
            "functions_executed": 7,
            "buffers": [1, 3],
        }

    run(sim, driver())


# ---------------------------------------------------------------------------
# Bounded metadata scan (regression for the unbounded 100k-read loop)
# ---------------------------------------------------------------------------


def test_metadata_scan_bound_raises_typed_diagnostics():
    sim, node, host, phis = make_env()

    def driver():
        yield from host.fs.write("/t/garbage", 5 * 256,
                                 payload=["junk"] * 5)
        rfd = RegularFileFD(sim, host.fs, "/t/garbage", "r")
        with pytest.raises(BLCRError) as exc:
            yield from cr_restart(phis[0], rfd, start=False)
        msg = str(exc.value)
        assert "scan limit" in msg and "not a BLCR context" in msg

    run(sim, driver())
    # The bound derives from the file, not a hardwired huge constant: the
    # error reports a handful of reads, not 100 000.
    # (5 records + the derived slack, never more than the descriptor holds)


# ---------------------------------------------------------------------------
# Incremental chains carry plugin images
# ---------------------------------------------------------------------------


def test_incremental_chain_carries_and_checks_plugin_images():
    sim, node, host, phis = make_env()
    register_standard_plugins(phis[0])

    def driver():
        proc = yield from spawn_bare(phis[0])
        proc.block_signal(sig.SIGUSR2)
        proc.deliver_signal(sig.SIGUSR2)
        for region in proc.regions.values():
            region.enable_tracking()
        images = [capture_incremental(proc, "/t/pchain")]
        proc.region("heap").write(0, 4096)
        images.append(capture_incremental(proc, "/t/pchain"))
        return proc, images

    proc, images = run(sim, driver())
    assert [pi.plugin for pi in images[0].plugin_images] == ["signals"]
    # Deltas re-freeze plugin state wholesale (no dirty bitmap for them).
    assert [pi.plugin for pi in images[1].plugin_images] == ["signals"]
    ctx = reassemble(images, verify=True)
    assert [pi.plugin for pi in ctx.plugin_images] == ["signals"]
    assert ctx.plugin_payload("signals")["pending"] == [sig.SIGUSR2]

    def restore():
        restored = yield from cr_restore_context(phis[0], ctx, start=False)
        assert restored.pending_signals == [sig.SIGUSR2]
        assert sig.SIGUSR2 in restored.blocked_signals

    run(sim, restore())

    # Tampering with a plugin payload breaks the chain CRC.
    images[1].plugin_images[0].payload["pending"].append(sig.SIGUSR1)
    with pytest.raises(ChainError, match="CRC mismatch"):
        reassemble(images, verify=True)


# ---------------------------------------------------------------------------
# The agent's drain phase
# ---------------------------------------------------------------------------


def test_agent_invokes_drain_hooks_at_pause():
    from repro.snapify import snapify_pause, snapify_resume, snapify_t
    from repro.testbed import XeonPhiServer, offload_app

    server = XeonPhiServer()
    sim = server.sim
    app = offload_app(server, "MC", iterations=4)

    class DrainProbe(CheckpointPlugin):
        name = "drain_probe"

        def pre_pause(self, proc):
            proc.store["drained_at"] = proc.sim.now
            yield proc.sim.timeout(1e-6)

        def pre_checkpoint(self, proc):
            return None

    PluginRegistry.of(server.phi_os(0)).register(DrainProbe())

    def driver():
        yield from app.launch()
        yield sim.timeout(0.2)
        snap = snapify_t("/t/drain", coiproc=app.coiproc)
        yield from snapify_pause(snap)
        drained_at = app.coiproc.offload_proc.store.get("drained_at")
        yield from snapify_resume(snap)
        yield app.host_proc.main_thread.done
        return drained_at

    drained_at = server.run(driver(), name="driver")
    sim.run()
    assert drained_at is not None and drained_at > 0
    assert app.verify()


# ---------------------------------------------------------------------------
# Fuzz scenarios exist and hold
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["socket_restore", "ramfs_offsets",
                                  "signal_pending", "rdma_migrate"])
def test_plugin_fuzz_scenarios_hold(mode):
    from repro.check.scenarios import run_scenario, scenario_names

    assert f"plugin:{mode}" in scenario_names()
    for seed in (11, 12):  # one of each restore-target parity
        result = run_scenario(f"plugin:{mode}", seed=seed)
        assert result.ok, result.summary()
