"""Tests for checkpoint-interval math and the resilient runner."""

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import OPENMP_BENCHMARKS, OffloadApplication, expected_checksum
from repro.sched import (
    FaultInjector,
    ResilientRunner,
    daly_interval,
    expected_completion_time,
    young_interval,
)
from repro.testbed import XeonPhiServer


# ---------------------------------------------------------------------------
# Interval formulas
# ---------------------------------------------------------------------------


def test_young_formula():
    # sqrt(2 * 10 * 7200) = 379.47...
    assert young_interval(7200, 10) == pytest.approx(math.sqrt(2 * 10 * 7200))


def test_daly_close_to_young_when_cheap():
    m, c = 24 * 3600, 5.0
    assert daly_interval(m, c) == pytest.approx(young_interval(m, c), rel=0.02)


def test_daly_degenerates_when_checkpoint_expensive():
    assert daly_interval(100.0, 60.0) == 100.0


def test_interval_validation():
    with pytest.raises(ValueError):
        young_interval(-1, 1)
    with pytest.raises(ValueError):
        young_interval(1, 0)
    with pytest.raises(ValueError):
        expected_completion_time(100, 0, 1, 1, 1000)
    with pytest.raises(ValueError):
        expected_completion_time(-5, 10, 1, 1, 1000)


@settings(max_examples=40, deadline=None)
@given(
    mtbf=st.floats(min_value=100, max_value=1e6),
    cost=st.floats(min_value=0.1, max_value=30),
)
def test_property_young_interval_is_near_optimal(mtbf, cost):
    """Young's interval should (approximately) minimize the expected
    completion model — better than intervals 4x off in either direction."""
    t_opt = young_interval(mtbf, cost)
    work, restart = 10 * t_opt, cost
    best = expected_completion_time(work, t_opt, cost, restart, mtbf)
    low = expected_completion_time(work, t_opt / 4, cost, restart, mtbf)
    high = expected_completion_time(work, t_opt * 4, cost, restart, mtbf)
    assert best <= low * 1.02
    assert best <= high * 1.02


def test_expected_time_increases_with_failure_rate():
    times = [
        expected_completion_time(3600, 300, 10, 20, mtbf)
        for mtbf in (100_000, 10_000, 1_000)
    ]
    assert times[0] < times[1] < times[2]


# ---------------------------------------------------------------------------
# ResilientRunner
# ---------------------------------------------------------------------------


def make_app(server, iterations=80):
    profile = replace(OPENMP_BENCHMARKS["MC"], iterations=iterations)
    return OffloadApplication(server, profile)


def test_runner_without_failures_just_checkpoints():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = make_app(server, iterations=60)
    runner = ResilientRunner(server, app, injector, interval=0.5)

    def driver(sim):
        store = yield from runner.run()
        return store

    store = server.run(driver(server.sim))
    assert store["checksum"] == expected_checksum(60)
    assert runner.checkpoints_taken >= 1
    assert runner.restarts == 0


def test_runner_survives_card_failure():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = make_app(server, iterations=100)
    runner = ResilientRunner(server, app, injector, interval=0.4)

    def driver(sim):
        injector.schedule_card_failure(server.node.phis[0], at=1.3)
        store = yield from runner.run()
        return store

    store = server.run(driver(server.sim))
    assert store["checksum"] == expected_checksum(100)
    assert runner.restarts == 1
    # The job finished on the surviving card.
    assert app.host_proc.runtime["coi_handle"].offload_proc.os is server.phi_os(1)


def test_runner_survives_repeated_failures():
    """mic0 dies, the job moves to mic1, which also dies later... as long
    as one card is healthy at each failure, the job completes."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = make_app(server, iterations=150)
    runner = ResilientRunner(server, app, injector, interval=0.4)

    def driver(sim):
        injector.schedule_card_failure(server.node.phis[0], at=1.3)
        store = yield from runner.run()
        return store

    store = server.run(driver(server.sim))
    assert store["checksum"] == expected_checksum(150)
    assert runner.restarts >= 1


def test_runner_failure_before_first_checkpoint():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = make_app(server, iterations=400)
    runner = ResilientRunner(server, app, injector, interval=50.0)  # too lazy

    def driver(sim):
        injector.schedule_card_failure(server.node.phis[0], at=1.0)
        try:
            yield from runner.run()
        except RuntimeError as exc:
            return str(exc)

    msg = server.run(driver(server.sim))
    assert "before the first checkpoint" in msg


def test_runner_rejects_bad_interval():
    server = XeonPhiServer()
    with pytest.raises(ValueError):
        ResilientRunner(server, make_app(server), FaultInjector(server.sim),
                        interval=0)


def test_runner_rejects_bad_recovery_knobs():
    server = XeonPhiServer()
    app = make_app(server)
    injector = FaultInjector(server.sim)
    with pytest.raises(ValueError, match="detection latency"):
        ResilientRunner(server, app, injector, interval=0.5,
                        detection_latency=-0.1)
    with pytest.raises(ValueError, match="recovery attempt"):
        ResilientRunner(server, app, injector, interval=0.5,
                        max_recover_attempts=0)


def test_detection_latency_delays_the_restart():
    """The runner must not react faster than its failure-detection window:
    the restart lands at least ``detection_latency`` after the failure."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = make_app(server, iterations=100)
    runner = ResilientRunner(server, app, injector, interval=0.4,
                             detection_latency=0.5)

    def driver(sim):
        injector.schedule_card_failure(server.node.phis[0], at=1.3)
        store = yield from runner.run()
        return store

    store = server.run(driver(server.sim))
    assert store["checksum"] == expected_checksum(100)
    failure_t = next(e[1] for e in runner.events if e[0] == "failure")
    restart_t = next(e[2] for e in runner.events if e[0] == "restart")
    assert restart_t - failure_t >= 0.5


def test_recovery_gives_up_after_bounded_attempts():
    """Every card dead: each retry re-picks a card, finds none, backs off —
    and after ``max_recover_attempts`` the failure propagates instead of
    retrying forever."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = make_app(server, iterations=200)
    runner = ResilientRunner(server, app, injector, interval=0.4,
                             max_recover_attempts=3)
    out = {}

    def driver(sim):
        for phi in server.node.phis:
            injector.schedule_card_failure(phi, at=1.3)
        try:
            yield from runner.run()
        except RuntimeError as exc:
            out["error"] = str(exc)

    server.run(driver(server.sim))
    assert "no healthy coprocessor" in out["error"]
    retries = [e for e in runner.events if e[0] == "recover_retry"]
    assert len(retries) == 2  # attempts 1 and 2 retried; attempt 3 raised


def test_recovery_retry_is_rescued_by_a_repaired_card():
    """A retry after the back-off finds the repaired card and completes —
    the bounded-retry loop's success path."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = make_app(server, iterations=100)
    runner = ResilientRunner(server, app, injector, interval=0.4,
                             detection_latency=0.2, max_recover_attempts=5)

    def driver(sim):
        # Both cards die; mic1 comes back inside the retry horizon.
        injector.schedule_card_failure(server.node.phis[0], at=1.3)
        injector.schedule_card_failure(server.node.phis[1], at=1.3,
                                       repair_after=0.5)
        store = yield from runner.run()
        return store

    store = server.run(driver(server.sim))
    assert store["checksum"] == expected_checksum(100)
    assert runner.restarts >= 1
    assert any(e[0] == "recover_retry" for e in runner.events)


def test_runner_restart_from_scratch_policy():
    """With the relaunch policy, an early failure costs a full rerun but
    the job still completes correctly."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = make_app(server, iterations=120)
    runner = ResilientRunner(server, app, injector, interval=60.0,
                             restart_from_scratch=True)

    def driver(sim):
        injector.schedule_card_failure(server.node.phis[0], at=0.9)
        store = yield from runner.run()
        return store

    store = server.run(driver(server.sim))
    assert store["checksum"] == expected_checksum(120)
    assert runner.restarts == 1
    assert ("relaunch", pytest.approx(runner.events[-1][1])) == runner.events[-1]


def test_runner_survives_restore_from_same_snapshot_twice():
    """Two failures, one snapshot: both recoveries restore from the same
    directory (the aliasing-regression scenario) and the checksum holds."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = make_app(server, iterations=900)
    runner = ResilientRunner(server, app, injector, interval=2.0)

    def driver(sim):
        # First failure after checkpoint #0 (~t=2.8); the job restarts
        # around t=5.3. Second failure before checkpoint #1 (~t=7.5) kills
        # the restarted job too — BOTH recoveries restore from checkpoint #0.
        injector.schedule_card_failure(server.node.phis[0], at=3.0,
                                       repair_after=1.5)
        injector.schedule_card_failure(server.node.phis[0], at=6.5,
                                       repair_after=1.5)
        store = yield from runner.run()
        return store

    store = server.run(driver(server.sim))
    assert store["checksum"] == expected_checksum(900)
    assert runner.restarts >= 2
    # Both restores used checkpoint #0.
    restore_paths = [e[1] for e in runner.events if e[0] == "restart"]
    assert len(set(restore_paths)) == 1
