"""The four SCIF drain cases under fuzzed schedules.

Snapify's pause must drain all four SCIF channel cases (§4.3): (1) the
lifecycle mutex, (2) the DMA mutex, (3) the command/event/log channels,
and (4) the pipeline send/result rendezvous. One pause exercises all four;
here each property runs a full pause cycle under ≥50 seeded schedule
perturbations and asserts the drains happened, the channels emptied, and
every invariant oracle holds.

The ``WORST_CASE_SEEDS`` below are committed regressions: seeds observed to
produce the most-distinct interleavings of the drain (different trace
digests from the unseeded run). Hypothesis explores around them.
"""

from dataclasses import replace

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
from repro.check import check_all, run_scenario
from repro.obs.registry import MetricsRegistry
from repro.sim import Simulator
from repro.snapify import snapify_pause, snapify_resume, snapify_t
from repro.testbed import XeonPhiServer

#: Schedule seeds observed to perturb the drain interleaving away from the
#: unseeded order (distinct trace digests) — committed as regressions so
#: they run on every CI pass, not only when hypothesis rediscovers them.
WORST_CASE_SEEDS = (1, 3, 4, 2776709936, 4022250974)

DRAIN_COUNTERS = (
    "snapify.drain.case1",
    "snapify.drain.case2",
    "snapify.drain.case3",
    "snapify.drain.case4",
)

fuzz_settings = settings(
    max_examples=50,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _pause_cycle(seed):
    """Run launch -> pause -> (channels quiesced) -> resume -> completion
    under a perturbed schedule; return (server, app, probes)."""
    sim = Simulator(schedule_seed=seed)
    server = XeonPhiServer(sim=sim)
    profile = replace(OPENMP_BENCHMARKS["MC"], iterations=6)
    app = OffloadApplication(server, profile, iterations=6)
    probes = {}

    def driver(s):
        yield from app.launch()
        yield s.timeout(0.3)
        snap = snapify_t(snapshot_path="/drain/fz", coiproc=app.coiproc)
        yield from snapify_pause(snap)
        probes["channels_empty"] = app.coiproc.channels_empty()
        probes["paused"] = app.coiproc.paused
        yield from snapify_resume(snap)
        probes["paused_after"] = app.coiproc.paused
        yield app.host_proc.main_thread.done

    server.run(driver(sim))
    sim.run()  # settle daemons and monitors to quiescence
    return server, app, probes


def _assert_drained(server, app, probes):
    counters = MetricsRegistry.of(server.sim).counters
    for name in DRAIN_COUNTERS:
        assert name in counters and counters[name].value >= 1, (
            f"{name} never drained under this schedule"
        )
    assert probes["channels_empty"] is True
    assert probes["paused"] is True
    assert probes["paused_after"] is False
    assert app.verify()
    violations = check_all(server)
    assert not violations, "; ".join(map(str, violations))


@fuzz_settings
@given(seed=seeds)
@example(seed=WORST_CASE_SEEDS[0])
@example(seed=WORST_CASE_SEEDS[1])
@example(seed=WORST_CASE_SEEDS[2])
@example(seed=WORST_CASE_SEEDS[3])
@example(seed=WORST_CASE_SEEDS[4])
def test_all_four_drain_cases_under_fuzzed_schedules(seed):
    server, app, probes = _pause_cycle(seed)
    _assert_drained(server, app, probes)


def test_worst_case_seeds_really_perturb_the_drain():
    """At least one committed regression seed yields a schedule distinct
    from the unseeded run (they were selected for exactly that)."""
    base = run_scenario("swap", seed=None, capture_trace=True).trace_digest
    digests = {
        run_scenario("swap", seed=s, capture_trace=True).trace_digest
        for s in WORST_CASE_SEEDS
    }
    assert any(d != base for d in digests)


@fuzz_settings
@given(seed=seeds)
def test_swap_cycle_oracles_hold_under_fuzzed_schedules(seed):
    """The full swap-out/swap-in scenario (drain + capture + terminate +
    restore) stays oracle-clean under 50 perturbed schedules."""
    result = run_scenario("swap", seed=seed)
    assert result.ok, result.summary()
