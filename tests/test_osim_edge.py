"""Remaining OS-layer edge cases: FD misuse, region kinds, pipe teardown."""

import pytest

from repro.hw import MB, HardwareParams, ServerNode
from repro.osim import DuplexPipe, ProcessError, UnixPipe, boot_node
from repro.osim.process import MemoryRegion
from repro.sim import Simulator


def make_env():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    host_os, phi_oses = boot_node(node)
    return sim, host_os, phi_oses[0]


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run(check_deadlock=False)
    assert t.done.ok, t.done.exception
    return t.done.value


def test_region_kind_validation():
    with pytest.raises(ValueError):
        MemoryRegion("x", 10, kind="nonsense")
    with pytest.raises(ValueError):
        MemoryRegion("x", -1)


def test_region_clone_is_deep():
    r = MemoryRegion("x", 10, data={"a": [1]})
    c = r.clone()
    c.data["a"].append(2)
    assert r.data == {"a": [1]}


def test_spawn_thread_in_dead_process_rejected():
    sim, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("p")
        proc.terminate()
        with pytest.raises(ProcessError):
            proc.spawn_thread(iter(()), name="late")
        return "ok"

    assert run(sim, worker(sim)) == "ok"


def test_process_by_pid():
    sim, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("p")
        assert host.process_by_pid(proc.pid) is proc
        with pytest.raises(ProcessError):
            host.process_by_pid(424242)
        return "ok"

    assert run(sim, worker(sim)) == "ok"


def test_terminate_is_idempotent():
    sim, host, phi = make_env()

    def worker(sim):
        proc = yield from host.spawn_process("p")
        proc.terminate(code=3)
        proc.terminate(code=7)  # no-op; first exit code wins
        return proc.exit_code

    assert run(sim, worker(sim)) == 3


def test_pipe_close_unblocks_reader():
    sim, host, phi = make_env()
    pipe = UnixPipe(sim)

    def reader(sim):
        from repro.sim import ChannelClosed

        with pytest.raises(ChannelClosed):
            yield pipe.read_end.recv()
        return "unblocked"

    def closer(sim):
        yield sim.timeout(1)
        pipe.write_end.close()

    t = sim.spawn(reader(sim))
    sim.spawn(closer(sim))
    sim.run()
    assert t.done.value == "unblocked"


def test_duplex_pipe_close_propagates():
    sim, host, phi = make_env()
    dp = DuplexPipe(sim)
    dp.a.close()
    assert dp.a.closed

    def worker(sim):
        from repro.sim import ChannelClosed

        with pytest.raises(ChannelClosed):
            yield from dp.b.send("into the void")
        return "ok"

    assert run(sim, worker(sim)) == "ok"


def test_exit_watcher_sees_memory_already_released():
    sim, host, phi = make_env()
    seen = {}

    def watcher(proc):
        seen["footprint"] = proc.memory_footprint
        seen["os_process_bytes"] = host.memory.by_category.get("process", 0)

    host.exit_watchers.append(watcher)

    def worker(sim):
        proc = yield from host.spawn_process("p", image_size=10 * MB)
        proc.map_region("heap", 50 * MB)
        proc.terminate()

    run(sim, worker(sim))
    assert seen["footprint"] == 0
    assert seen["os_process_bytes"] == 0


def test_fd_registry_closed_on_terminate():
    sim, host, phi = make_env()
    from repro.osim import RegularFileFD

    def worker(sim):
        proc = yield from host.spawn_process("p")
        fd = RegularFileFD(sim, host.fs, "/f", "w")
        proc.register_fd(fd)
        proc.terminate()
        return fd

    fd = run(sim, worker(sim))
    assert fd.closed
