"""Tests for the SCIF layer: connections, messaging, RDMA, teardown."""

import pytest

from repro.hw import GB, MB, HardwareParams, ServerNode
from repro.osim import boot_node
from repro.scif import (
    ConnectionReset,
    ScifError,
    ScifNetwork,
    scif_register,
    scif_unregister,
    scif_vreadfrom,
    scif_vwriteto,
    scif_writeto,
)
from repro.sim import Simulator


def make_env(phis=2):
    sim = Simulator()
    node = ServerNode(sim, HardwareParams(phis_per_node=phis))
    host_os, phi_oses = boot_node(node)
    net = ScifNetwork.of(node)
    return sim, node, net, host_os, phi_oses


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run()
    assert t.done.ok, t.done.exception
    return t.done.value


def test_connect_and_message_roundtrip():
    sim, node, net, host, phis = make_env()
    listener = net.listen(phis[0], port=100)
    log = []

    def server(sim):
        ep = yield listener.accept()
        msg = yield ep.recv()
        log.append(msg)
        yield from ep.send({"reply": "ok"})

    def client(sim):
        ep = yield from net.connect(host, dst_node_id=1, dst_port=100)
        yield from ep.send({"cmd": "ping"})
        reply = yield ep.recv()
        return reply

    sim.spawn(server(sim))
    t = sim.spawn(client(sim))
    sim.run()
    assert log == [{"cmd": "ping"}]
    assert t.done.value == {"reply": "ok"}


def test_connect_refused_without_listener():
    sim, node, net, host, phis = make_env()

    def client(sim):
        yield sim.timeout(0)
        with pytest.raises(ScifError):
            yield from net.connect(host, dst_node_id=1, dst_port=999)
        return "ok"

    assert run(sim, client(sim)) == "ok"


def test_duplicate_listen_rejected():
    sim, node, net, host, phis = make_env()
    net.listen(phis[0], port=100)
    with pytest.raises(ScifError):
        net.listen(phis[0], port=100)


def test_rdma_register_and_vwriteto():
    sim, node, net, host, phis = make_env()
    listener = net.listen(phis[0], port=100)
    state = {}

    def offload_side(sim):
        ep = yield listener.accept()
        offset = yield from scif_register(ep, 256 * MB)
        state["offset"] = offset
        yield from ep.send({"offset": offset})
        msg = yield ep.recv()  # completion notification
        state["payload"] = msg

    def host_side(sim):
        ep = yield from net.connect(host, 1, 100)
        msg = yield ep.recv()
        t0 = sim.now
        yield from scif_vwriteto(ep, msg["offset"], 256 * MB, payload="weights")
        state["xfer_time"] = sim.now - t0
        yield from ep.send("weights")

    sim.spawn(offload_side(sim))
    sim.spawn(host_side(sim))
    sim.run()
    assert state["payload"] == "weights"
    # 256 MB over ~6 GB/s PCIe -> ~42 ms.
    assert state["xfer_time"] == pytest.approx(256 * MB / (6.0 * GB), rel=0.1)


def test_rdma_to_unregistered_offset_fails():
    sim, node, net, host, phis = make_env()
    listener = net.listen(phis[0], port=100)

    def offload_side(sim):
        ep = yield listener.accept()
        yield ep.recv()

    def host_side(sim):
        ep = yield from net.connect(host, 1, 100)
        with pytest.raises(ScifError, match="unregistered"):
            yield from scif_vwriteto(ep, 0xDEAD000, 1 * MB)
        yield from ep.send("done")
        return "ok"

    sim.spawn(offload_side(sim))
    t = sim.spawn(host_side(sim))
    sim.run()
    assert t.done.value == "ok"


def test_rdma_window_overrun_rejected():
    sim, node, net, host, phis = make_env()
    listener = net.listen(phis[0], port=100)

    def offload_side(sim):
        ep = yield listener.accept()
        offset = yield from scif_register(ep, 1 * MB)
        yield from ep.send(offset)
        yield ep.recv()

    def host_side(sim):
        ep = yield from net.connect(host, 1, 100)
        offset = yield ep.recv()
        with pytest.raises(ScifError, match="overruns"):
            yield from scif_vwriteto(ep, offset, 2 * MB)
        yield from ep.send("done")

    sim.spawn(offload_side(sim))
    sim.spawn(host_side(sim))
    sim.run()


def test_reregistration_returns_new_offset():
    """The property that forces Snapify's (old, new) address table."""
    sim, node, net, host, phis = make_env()
    listener = net.listen(phis[0], port=100)

    def offload_side(sim):
        ep = yield listener.accept()
        off1 = yield from scif_register(ep, 4 * MB)
        scif_unregister(ep, off1)
        off2 = yield from scif_register(ep, 4 * MB)
        return off1, off2

    def host_side(sim):
        yield from net.connect(host, 1, 100)

    t = sim.spawn(offload_side(sim))
    sim.spawn(host_side(sim))
    sim.run()
    off1, off2 = t.done.value
    assert off1 != off2


def test_writeto_requires_both_windows():
    sim, node, net, host, phis = make_env()
    listener = net.listen(phis[0], port=100)

    def offload_side(sim):
        ep = yield listener.accept()
        roff = yield from scif_register(ep, 4 * MB)
        yield from ep.send(roff)
        yield ep.recv()

    def host_side(sim):
        ep = yield from net.connect(host, 1, 100)
        roff = yield ep.recv()
        with pytest.raises(ScifError, match="not registered"):
            yield from scif_writeto(ep, 0x1234000, roff, 4 * MB)
        loff = yield from scif_register(ep, 4 * MB)
        yield from scif_writeto(ep, loff, roff, 4 * MB)
        yield from ep.send("done")

    sim.spawn(offload_side(sim))
    sim.spawn(host_side(sim))
    sim.run()


def test_readfrom_pulls_data():
    sim, node, net, host, phis = make_env()
    listener = net.listen(phis[0], port=100)
    state = {}

    def offload_side(sim):
        ep = yield listener.accept()
        roff = yield from scif_register(ep, 16 * MB)
        yield from ep.send(roff)
        yield ep.recv()

    def host_side(sim):
        ep = yield from net.connect(host, 1, 100)
        roff = yield ep.recv()
        payload = yield from scif_vreadfrom(ep, roff, 16 * MB, payload="results")
        state["got"] = payload
        yield from ep.send("done")

    sim.spawn(offload_side(sim))
    sim.spawn(host_side(sim))
    sim.run()
    assert state["got"] == "results"


def test_phi_to_phi_path_is_two_hops():
    sim, node, net, host, phis = make_env(phis=2)
    listener = net.listen(phis[1], port=100)
    state = {}

    def mic1_side(sim):
        ep = yield listener.accept()
        roff = yield from scif_register(ep, 600 * MB)
        yield from ep.send(roff)
        yield ep.recv()

    def mic0_side(sim):
        ep = yield from net.connect(phis[0], 2, 100)
        roff = yield ep.recv()
        t0 = sim.now
        yield from scif_vwriteto(ep, roff, 600 * MB)
        state["dt"] = sim.now - t0
        yield from ep.send("done")

    sim.spawn(mic1_side(sim))
    sim.spawn(mic0_side(sim))
    sim.run()
    # Device-to-device transfers are paced by the root complex's P2P rate,
    # far below the raw per-hop DMA bandwidth.
    params = node.params.pcie
    expected = 600 * MB / params.p2p_bw
    assert state["dt"] == pytest.approx(expected, rel=0.1)
    # ... and strictly slower than a single host<->device hop would be.
    assert state["dt"] > 600 * MB / params.dma_bw_d2h


def test_peer_process_death_resets_connection():
    sim, node, net, host, phis = make_env()
    listener = net.listen(phis[0], port=100)
    state = {}

    def offload_main(proc):
        ep = yield listener.accept()
        proc.runtime["ep"] = ep
        yield proc.sim.event("block-forever")

    def host_side(sim):
        offload = yield from phis[0].spawn_process("offload", main_factory=offload_main)
        ep = yield from net.connect(host, 1, 100, proc=None)
        yield sim.timeout(0.01)
        offload.terminate()
        # The peer endpoint was owned by the dead process context; our recv
        # must now fail with a connection reset rather than hang.
        try:
            yield ep.recv()
        except ConnectionReset:
            state["reset"] = True
        return "ok"

    # Endpoint ownership: attach server endpoints to the offload process.
    def offload_main_owned(proc):
        ep = yield listener.accept()
        proc.open_fds.append(ep)
        yield proc.sim.event("block-forever")

    def host_side2(sim):
        offload = yield from phis[0].spawn_process("offload", main_factory=offload_main_owned)
        ep = yield from net.connect(host, 1, 100)
        yield sim.timeout(0.01)
        offload.terminate()
        try:
            yield ep.recv()
        except ConnectionReset:
            state["reset"] = True
        return "ok"

    t = sim.spawn(host_side2(sim))
    sim.run()
    assert t.done.value == "ok"
    assert state.get("reset") is True


def test_endpoint_pending_counts_undelivered_messages():
    sim, node, net, host, phis = make_env()
    listener = net.listen(phis[0], port=100)
    state = {}

    def server(sim):
        ep = yield listener.accept()
        state["ep"] = ep
        yield sim.timeout(1.0)  # don't receive yet

    def client(sim):
        ep = yield from net.connect(host, 1, 100)
        yield from ep.send("m1")
        yield from ep.send("m2")
        yield sim.timeout(0.1)
        state["pending"] = state["ep"].pending

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run()
    assert state["pending"] == 2
