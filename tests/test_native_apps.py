"""Tests for the native (card-only) micro-benchmarks (repro.apps.native).

The Table 3 copy micro-benchmark and the Table 4 malloc-loop BLCR workload
back the evaluation benchmarks; these tests pin their semantics — every
method/direction moves the bytes and reports a positive elapsed time, the
relative ordering the paper measures holds (Snapify-IO beats scp), RAM-FS
pressure is cleaned up between runs, and a checkpointed malloc loop
restarts with its progress intact through each storage backend.
"""

import pytest

from repro.apps.native import MallocLoopBenchmark, copy_microbenchmark
from repro.hw import MB
from repro.hw.memory import MemoryExhausted
from repro.testbed import XeonPhiServer

COPY_METHODS = ["scp", "nfs", "snapify-io"]


@pytest.mark.parametrize("direction", ["to_host", "to_phi"])
def test_copy_moves_bytes_every_method(direction):
    server = XeonPhiServer()
    elapsed = {}

    def driver(sim):
        for method in COPY_METHODS:
            elapsed[method] = yield from copy_microbenchmark(
                server, method, direction, 64 * MB
            )

    server.run(driver(server.sim))
    assert all(t > 0 for t in elapsed.values())
    # Table 3's headline: Snapify-IO beats scp in both directions.
    assert elapsed["snapify-io"] < elapsed["scp"]


def test_copy_cleans_up_card_ramfs():
    server = XeonPhiServer()
    phi_mem = server.node.phis[0].memory
    before = phi_mem.by_category.get("ramfs", 0)

    def driver(sim):
        yield from copy_microbenchmark(server, "scp", "to_host", 32 * MB)

    server.run(driver(server.sim))
    assert phi_mem.by_category.get("ramfs", 0) == before


def test_copy_rejects_unknown_method():
    server = XeonPhiServer()

    def driver(sim):
        yield from copy_microbenchmark(server, "carrier-pigeon", "to_host", MB)

    with pytest.raises(ValueError, match="unknown method"):
        server.run(driver(server.sim))


@pytest.mark.parametrize("method", ["local", "nfs", "nfs-buffered-kernel",
                                    "nfs-buffered-user", "snapify-io"])
def test_malloc_loop_checkpoints_through_every_backend(method):
    server = XeonPhiServer()
    bench = MallocLoopBenchmark(server, malloc_bytes=64 * MB)

    def driver(sim):
        proc = yield from bench.start()
        assert proc.alive and proc.memory_footprint >= 64 * MB
        yield sim.timeout(0.1)
        elapsed = yield from bench.checkpoint(method)
        bench.stop()
        return elapsed

    elapsed = server.run(driver(server.sim))
    assert elapsed > 0
    assert not bench.proc.alive


@pytest.mark.parametrize("method", ["local", "nfs", "snapify-io"])
def test_malloc_loop_restart_preserves_progress(method):
    server = XeonPhiServer()
    bench = MallocLoopBenchmark(server, malloc_bytes=16 * MB)
    out = {}

    def driver(sim):
        yield from bench.start()
        yield sim.timeout(0.2)  # let the spin loop accumulate progress
        # The context captures the store as of checkpoint start; the live
        # loop keeps spinning while slow backends stream the image out.
        out["spins_at_ckpt"] = bench.proc.store["spins"]
        yield from bench.checkpoint(method)
        bench.stop()
        yield sim.timeout(0.05)
        if method != "local":
            server.host_os.fs.drop_caches()  # restart-after-failure is cold
        proc, elapsed = yield from bench.restart(method)
        out["restarted"] = proc
        out["elapsed"] = elapsed
        yield sim.timeout(0.1)  # the restored loop keeps spinning
        out["spins_after"] = proc.store["spins"]
        proc.terminate()

    server.run(driver(server.sim))
    assert out["elapsed"] > 0
    assert out["spins_at_ckpt"] > 0
    assert out["spins_after"] > out["spins_at_ckpt"]
    assert out["restarted"].os is server.phi_os(0)


def test_malloc_loop_local_checkpoint_can_oom():
    """Table 4's 'Local' column at 4 GB: the RAM-FS copy cannot fit next to
    the 4 GB heap on an 8 GB card."""
    from repro.hw.params import GB

    server = XeonPhiServer()
    bench = MallocLoopBenchmark(server, malloc_bytes=4 * GB)

    def driver(sim):
        yield from bench.start()
        yield sim.timeout(0.05)
        try:
            yield from bench.checkpoint("local")
        except MemoryExhausted:
            return "OOM"
        return "fit"

    assert server.run(driver(server.sim)) == "OOM"


def test_malloc_loop_rejects_unknown_methods():
    server = XeonPhiServer()
    bench = MallocLoopBenchmark(server, malloc_bytes=MB)

    def driver(sim):
        yield from bench.start()
        with pytest.raises(ValueError, match="unknown method"):
            yield from bench.checkpoint("tape")
        with pytest.raises(ValueError, match="unknown method"):
            yield from bench.restart("tape")
        bench.stop()

    server.run(driver(server.sim))
