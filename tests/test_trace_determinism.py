"""Golden-trace determinism test for a full snapshot (migrate) cycle.

The kernel optimizations are only admissible if they do not perturb event
ordering: seed + workload must produce the *same* interleaving. This test
replays a full Fig-10-style migrate cycle (launch → pause → capture →
restore on the second card → resume → run to completion) and compares a
digest of the run against ``tests/golden/snapshot_cycle_trace.json``, which
was captured with the pre-optimization kernel:

* every trace record (time, category, fields), repr-exact,
* the final simulated time, repr-exact,
* the total number of heap entries drawn from the tie-break counter — any
  change in what gets scheduled (or how often) shifts this,
* the full thread table (tid, name, completion).

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python tests/test_trace_determinism.py --regen
"""

import json
from dataclasses import replace
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "golden" / "snapshot_cycle_trace.json"


def snapshot_cycle_digest():
    """Run the migrate cycle and return a canonical, JSON-stable digest."""
    from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
    from repro.sim import Simulator
    from repro.snapify import MIGRATE, snapify_command
    from repro.testbed import XeonPhiServer

    sim = Simulator(trace=True)
    server = XeonPhiServer(sim=sim)
    profile = replace(OPENMP_BENCHMARKS["MC"], iterations=30)
    app = OffloadApplication(server, profile)

    def driver(s):
        yield from app.launch()
        yield s.timeout(0.3)
        done = snapify_command(app.host_proc, MIGRATE, engine=server.engine(1))
        yield done
        yield app.host_proc.main_thread.done

    server.run(driver(sim))
    assert app.verify(), "migrate cycle corrupted the application state"
    return {
        "records": [
            [repr(rec.time), rec.category, sorted((k, repr(v)) for k, v in rec.fields.items())]
            for rec in sim.trace.records
        ],
        "final_time": repr(sim.now),
        "scheduled_events": next(sim._seq),
        "threads": [[t.tid, t.name, t.done.triggered] for t in sim.threads],
    }


def _canonical(digest):
    return json.loads(json.dumps(digest))


def test_snapshot_cycle_trace_matches_golden():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert _canonical(snapshot_cycle_digest()) == golden


def test_snapshot_cycle_digest_is_stable_across_runs():
    assert snapshot_cycle_digest() == snapshot_cycle_digest()


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    if "--regen" in sys.argv:
        digest = snapshot_cycle_digest()
        GOLDEN_PATH.write_text(json.dumps(digest, indent=1) + "\n")
        print(f"regenerated {GOLDEN_PATH} ({digest['scheduled_events']} scheduled events)")
    else:
        print(__doc__)
