"""Unit tests for synchronization primitives: Mutex, Semaphore, Barrier, Condition."""

import pytest

from repro.sim import Barrier, Condition, Mutex, Semaphore, Simulator


def test_mutex_mutual_exclusion():
    sim = Simulator()
    mutex = Mutex(sim)
    inside = []
    max_inside = []

    def worker(sim, tag):
        yield mutex.acquire(owner=tag)
        inside.append(tag)
        max_inside.append(len(inside))
        yield sim.timeout(1)
        inside.remove(tag)
        mutex.release()

    for tag in range(5):
        sim.spawn(worker(sim, tag))
    sim.run()
    assert max(max_inside) == 1
    assert sim.now == 5  # fully serialized


def test_mutex_fifo_ordering():
    sim = Simulator()
    mutex = Mutex(sim)
    order = []

    def worker(sim, tag, arrive):
        yield sim.timeout(arrive)
        yield mutex.acquire(owner=tag)
        order.append(tag)
        yield sim.timeout(10)
        mutex.release()

    for tag, arrive in [("a", 0), ("b", 1), ("c", 2), ("d", 3)]:
        sim.spawn(worker(sim, tag, arrive))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_mutex_try_acquire():
    sim = Simulator()
    mutex = Mutex(sim)
    assert mutex.try_acquire("me")
    assert not mutex.try_acquire("you")
    assert mutex.owner == "me"
    mutex.release()
    assert mutex.try_acquire("you")


def test_mutex_release_unlocked_raises():
    sim = Simulator()
    mutex = Mutex(sim)
    with pytest.raises(RuntimeError):
        mutex.release()


def test_mutex_owner_tracking_across_handoff():
    sim = Simulator()
    mutex = Mutex(sim)
    owners = []

    def holder(sim):
        yield mutex.acquire(owner="first")
        owners.append(mutex.owner)
        yield sim.timeout(1)
        mutex.release()

    def waiter(sim):
        yield mutex.acquire(owner="second")
        owners.append(mutex.owner)
        mutex.release()

    sim.spawn(holder(sim))
    sim.spawn(waiter(sim))
    sim.run()
    assert owners == ["first", "second"]


def test_semaphore_counts():
    sim = Simulator()
    sem = Semaphore(sim, value=2)
    active = []
    peak = []

    def worker(sim, tag):
        yield sem.wait()
        active.append(tag)
        peak.append(len(active))
        yield sim.timeout(1)
        active.remove(tag)
        sem.post()

    for tag in range(6):
        sim.spawn(worker(sim, tag))
    sim.run()
    assert max(peak) == 2
    assert sim.now == 3


def test_semaphore_post_before_wait():
    sim = Simulator()
    sem = Semaphore(sim, value=0)
    sem.post(3)

    def worker(sim):
        yield sem.wait()
        yield sem.wait()
        yield sem.wait()
        return "got-all"

    t = sim.spawn(worker(sim))
    sim.run()
    assert t.done.value == "got-all"


def test_semaphore_negative_initial_value():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, value=-1)


def test_barrier_releases_all_at_once():
    sim = Simulator()
    barrier = Barrier(sim, parties=3)
    release_times = []

    def worker(sim, delay):
        yield sim.timeout(delay)
        yield barrier.wait()
        release_times.append(sim.now)

    for delay in (1, 5, 9):
        sim.spawn(worker(sim, delay))
    sim.run()
    assert release_times == [9, 9, 9]


def test_barrier_is_reusable_across_generations():
    sim = Simulator()
    barrier = Barrier(sim, parties=2)
    gens = []

    def worker(sim):
        g0 = yield barrier.wait()
        g1 = yield barrier.wait()
        gens.append((g0, g1))

    sim.spawn(worker(sim))
    sim.spawn(worker(sim))
    sim.run()
    assert gens == [(0, 1), (0, 1)]


def test_condition_wait_notify():
    sim = Simulator()
    mutex = Mutex(sim)
    cond = Condition(sim, mutex)
    state = {"ready": False}
    log = []

    def consumer(sim):
        yield mutex.acquire()
        while not state["ready"]:
            yield from cond.wait()
        log.append(("consumed", sim.now))
        mutex.release()

    def producer(sim):
        yield sim.timeout(4)
        yield mutex.acquire()
        state["ready"] = True
        cond.notify()
        mutex.release()

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert log == [("consumed", 4)]


def test_condition_wait_requires_lock():
    sim = Simulator()
    mutex = Mutex(sim)
    cond = Condition(sim, mutex)

    def bad(sim):
        yield from cond.wait()

    t = sim.spawn(bad(sim))
    sim.run()
    assert isinstance(t.done.exception, RuntimeError)


def test_condition_notify_all():
    sim = Simulator()
    mutex = Mutex(sim)
    cond = Condition(sim, mutex)
    woken = []

    def waiter(sim, tag):
        yield mutex.acquire()
        yield from cond.wait()
        woken.append(tag)
        mutex.release()

    def broadcaster(sim):
        yield sim.timeout(1)
        yield mutex.acquire()
        cond.notify_all()
        mutex.release()

    for tag in range(3):
        sim.spawn(waiter(sim, tag))
    sim.spawn(broadcaster(sim))
    sim.run()
    assert sorted(woken) == [0, 1, 2]
