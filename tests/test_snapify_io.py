"""Tests for Snapify-IO, the NFS baselines and scp."""

import pytest

from repro.blcr import cr_checkpoint, cr_restart
from repro.hw import GB, KB, MB, HardwareParams, ServerNode
from repro.osim import boot_node
from repro.scif import ScifNetwork
from repro.sim import Simulator
from repro.snapify_io import (
    NFSKernelBufferedFD,
    NFSMount,
    NFSUserBufferedFD,
    SnapifyIODaemon,
    scp_copy,
    snapifyio_open,
)


def make_env(phis=1):
    sim = Simulator()
    node = ServerNode(sim, HardwareParams(phis_per_node=phis))
    host_os, phi_oses = boot_node(node)
    ScifNetwork.of(node)

    def boot(sim):
        yield from SnapifyIODaemon.boot_all(node)

    t = sim.spawn(boot(sim))
    sim.run_until(t.done)
    assert t.done.ok, t.done.exception
    return sim, node, host_os, phi_oses


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run_until(t.done)
    assert t.done.ok, t.done.exception
    return t.done.value


def test_write_from_phi_to_host_creates_remote_file():
    sim, node, host, phis = make_env()

    def work(sim):
        fd = yield from snapifyio_open(phis[0], node=0, path="/snap/ctx", mode="w")
        yield from fd.write(100 * MB, record={"hdr": 1})
        yield from fd.write(50 * MB)
        yield from fd.finish()
        return fd

    fd = run(sim, work(sim))
    assert fd.finished
    f = host.fs.stat("/snap/ctx")
    assert f.size == 150 * MB
    assert f.payload == [{"hdr": 1}]


def test_read_remote_file_from_phi():
    sim, node, host, phis = make_env()

    def work(sim):
        yield from host.fs.write("/data/in", 64 * MB, payload=["r1", "r2"])
        fd = yield from snapifyio_open(phis[0], node=0, path="/data/in", mode="r")
        r1 = yield from fd.read(32 * MB)
        r2 = yield from fd.read(32 * MB)
        r3 = yield from fd.read(1 * MB)  # exhausted -> None
        fd.close()
        return r1, r2, r3

    assert run(sim, work(sim)) == ("r1", "r2", None)


def test_write_faster_than_read_for_same_size():
    """Paper: card->host writes outrun host->card reads (async host flush)."""
    sim, node, host, phis = make_env()
    times = {}

    def work(sim):
        t0 = sim.now
        fd = yield from snapifyio_open(phis[0], 0, "/f1", "w")
        yield from fd.write(1 * GB)
        yield from fd.finish()
        times["write"] = sim.now - t0
        t0 = sim.now
        fd = yield from snapifyio_open(phis[0], 0, "/f1", "r")
        yield from fd.read(1 * GB)
        fd.close()
        yield sim.timeout(0.001)
        times["read"] = sim.now - t0

    run(sim, work(sim))
    assert times["write"] < times["read"]
    # Order of magnitude: a second-ish for 1 GB, not milliseconds, not minutes.
    assert 0.3 < times["write"] < 3.0
    assert 0.3 < times["read"] < 5.0


def test_large_write_split_into_buffer_chunks():
    sim, node, host, phis = make_env()

    def work(sim):
        fd = yield from snapifyio_open(phis[0], 0, "/big", "w")
        yield from fd.write(37 * MB, record="only")  # not a 4 MB multiple
        yield from fd.finish()

    run(sim, work(sim))
    assert host.fs.stat("/big").size == 37 * MB
    assert host.fs.stat("/big").payload == ["only"]


def test_read_missing_remote_file_gives_eof():
    sim, node, host, phis = make_env()

    def work(sim):
        fd = yield from snapifyio_open(phis[0], 0, "/does/not/exist", "r")
        rec = yield from fd.read(1 * KB)
        fd.close()
        return rec

    assert run(sim, work(sim)) is None


def test_mode_enforcement():
    sim, node, host, phis = make_env()

    def work(sim):
        wfd = yield from snapifyio_open(phis[0], 0, "/f", "w")
        from repro.osim.fd import FDError

        with pytest.raises(FDError):
            yield from wfd.read(10)
        yield from wfd.finish()
        rfd = yield from snapifyio_open(phis[0], 0, "/f", "r")
        with pytest.raises(FDError):
            yield from rfd.write(10)
        rfd.close()
        return "ok"

    assert run(sim, work(sim)) == "ok"


def test_invalid_mode_rejected():
    sim, node, host, phis = make_env()

    def work(sim):
        from repro.snapify_io import SnapifyIOError

        with pytest.raises(SnapifyIOError):
            yield from snapifyio_open(phis[0], 0, "/f", "rw")
        return "ok"

    assert run(sim, work(sim)) == "ok"


def test_blcr_checkpoint_through_snapify_io():
    """The paper's headline integration: BLCR writes a card process's
    snapshot straight to the host FS through a Snapify-IO descriptor,
    and restarts from it — without staging in card memory."""
    sim, node, host, phis = make_env()

    def counting_main(proc):
        proc.store.setdefault("i", 0)
        while proc.store["i"] < 5:
            yield proc.sim.timeout(0.05)
            proc.store["i"] += 1

    def work(sim):
        proc = yield from phis[0].spawn_process(
            "native", image_size=1 * MB, main_factory=counting_main
        )
        proc.map_region("heap", 200 * MB, data={"key": "value"})
        yield sim.timeout(0.12)
        ramfs_before = phis[0].memory.by_category.get("ramfs", 0)
        fd = yield from snapifyio_open(phis[0], 0, "/snap/native.ctx", "w", proc=proc)
        yield from cr_checkpoint(proc, fd)
        yield from fd.finish()
        # No staging: card RAM-FS did not grow during the checkpoint.
        assert phis[0].memory.by_category.get("ramfs", 0) == ramfs_before
        proc.terminate()
        rfd = yield from snapifyio_open(phis[0], 0, "/snap/native.ctx", "r")
        restored = yield from cr_restart(phis[0], rfd)
        rfd.close()
        yield restored.main_thread.done
        return restored

    restored = run(sim, work(sim))
    assert restored.store["i"] == 5
    assert restored.region("heap").data == {"key": "value"}


# ---------------------------------------------------------------------------
# NFS baselines
# ---------------------------------------------------------------------------


def test_nfs_client_cache_absorbs_small_files():
    sim, node, host, phis = make_env()
    mount = NFSMount(phis[0], host.fs, node.params.nfs)

    def work(sim):
        t0 = sim.now
        yield from mount.write("/small", 1 * MB)
        return sim.now - t0

    dt = run(sim, work(sim))
    assert dt < 0.005  # absorbed at memcpy speed


def test_nfs_sync_writes_pay_per_call_latency():
    sim, node, host, phis = make_env()
    mount = NFSMount(phis[0], host.fs, node.params.nfs, sync_writes=True)

    def work(sim):
        t0 = sim.now
        for _ in range(100):
            yield from mount.write("/ctx", 256)  # BLCR-style small records
        return sim.now - t0

    dt = run(sim, work(sim))
    # 100 RPC round trips at >= 1.2 ms each.
    assert dt >= 100 * node.params.nfs.op_latency


def test_nfs_large_write_is_bandwidth_bound():
    sim, node, host, phis = make_env()
    mount = NFSMount(phis[0], host.fs, node.params.nfs, sync_writes=True)

    def work(sim):
        t0 = sim.now
        yield from mount.write("/big", 1 * GB)
        return sim.now - t0

    dt = run(sim, work(sim))
    expected = 1 * GB / node.params.nfs.write_bw
    assert dt == pytest.approx(expected, rel=0.35)


def test_nfs_read_costs_rpcs():
    sim, node, host, phis = make_env()
    mount = NFSMount(phis[0], host.fs, node.params.nfs)

    def work(sim):
        yield from host.fs.write("/data", 256 * MB, payload="blob")
        t0 = sim.now
        payload = yield from mount.read("/data")
        return payload, sim.now - t0

    payload, dt = run(sim, work(sim))
    assert payload == "blob"
    assert dt > 256 * MB / node.params.nfs.read_bw * 0.9


def test_kernel_buffering_beats_plain_nfs_for_small_writes():
    sim, node, host, phis = make_env()
    params = node.params.nfs

    def plain(sim):
        mount = NFSMount(phis[0], host.fs, params, sync_writes=True)
        t0 = sim.now
        for _ in range(500):
            yield from mount.write("/plain", 256)
        return sim.now - t0

    def buffered(sim):
        mount = NFSMount(phis[0], host.fs, params, sync_writes=True)
        fd = NFSKernelBufferedFD(mount, "/buf")
        t0 = sim.now
        for _ in range(500):
            yield from fd.write(256, record=None)
        yield from fd.flush()
        return sim.now - t0

    t_plain = run(sim, plain(sim))
    t_buf = run(sim, buffered(sim))
    assert t_buf < t_plain / 10


def test_user_buffering_between_plain_and_kernel():
    sim, node, host, phis = make_env()
    params = node.params.nfs

    def timed(fd_cls):
        mount = NFSMount(phis[0], host.fs, params, sync_writes=True)
        fd = fd_cls(mount, f"/{fd_cls.__name__}")

        def work(sim):
            t0 = sim.now
            for _ in range(300):
                yield from fd.write(4096)
            yield from fd.flush()
            return sim.now - t0

        return run(sim, work(sim))

    t_kernel = timed(NFSKernelBufferedFD)
    t_user = timed(NFSUserBufferedFD)
    assert t_kernel < t_user  # the user-space fix helps "to a lesser degree"


def test_nfs_namespace_is_shared_with_host():
    sim, node, host, phis = make_env()
    mount = NFSMount(phis[0], host.fs, node.params.nfs)

    def work(sim):
        yield from mount.write("/shared/file", 10 * MB, payload="from-card")

    run(sim, work(sim))
    assert host.fs.stat("/shared/file").payload == "from-card"
    mount.unlink("/shared/file")
    assert not host.fs.exists("/shared/file")


# ---------------------------------------------------------------------------
# scp
# ---------------------------------------------------------------------------


def test_scp_copy_and_timing():
    sim, node, host, phis = make_env()

    def work(sim):
        yield from phis[0].fs.write("/tmp/src", 1 * GB, payload="bits")
        t0 = sim.now
        yield from scp_copy(phis[0], host, "/tmp/src", "/dst", node.params.scp)
        return sim.now - t0

    dt = run(sim, work(sim))
    assert host.fs.stat("/dst").payload == "bits"
    # Encryption-bound: ~21 s for 1 GB at 48 MB/s.
    assert dt == pytest.approx(1 * GB / node.params.scp.bandwidth, rel=0.2)


def test_scp_vs_snapify_io_gap_at_1gb():
    """Table 3's headline: ~20-30x gap between scp and Snapify-IO at 1 GB."""
    sim, node, host, phis = make_env()
    times = {}

    def work(sim):
        yield from phis[0].fs.write("/tmp/f", 1 * GB)
        t0 = sim.now
        yield from scp_copy(phis[0], host, "/tmp/f", "/via-scp", node.params.scp)
        times["scp"] = sim.now - t0
        t0 = sim.now
        fd = yield from snapifyio_open(phis[0], 0, "/via-sio", "w")
        yield from fd.write(1 * GB)
        yield from fd.finish()
        times["sio"] = sim.now - t0

    run(sim, work(sim))
    ratio = times["scp"] / times["sio"]
    assert 15 < ratio < 45
