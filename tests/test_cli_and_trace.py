"""Tests for the snapify CLI model, protocol tracing, and the trace API."""

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
from repro.sim import Simulator
from repro.snapify import (
    MIGRATE,
    SWAP_IN,
    SWAP_OUT,
    SnapifyError,
    snapify_command,
)
from repro.testbed import XeonPhiServer


def make_app(server, iterations=25):
    profile = replace(OPENMP_BENCHMARKS["MC"], iterations=iterations)
    return OffloadApplication(server, profile)


# ---------------------------------------------------------------------------
# CLI error paths
# ---------------------------------------------------------------------------


def test_swap_in_without_swap_out_fails():
    server = XeonPhiServer()
    app = make_app(server)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.3)
        done = snapify_command(app.host_proc, SWAP_IN, engine=server.engine(0))
        try:
            yield done
        except SnapifyError as exc:
            return str(exc)

    msg = server.run(driver(server.sim))
    assert "nothing swapped out" in msg


def test_swap_in_requires_engine():
    server = XeonPhiServer()
    app = make_app(server)

    def driver(sim):
        yield from app.launch()
        with pytest.raises(SnapifyError, match="needs a target device"):
            snapify_command(app.host_proc, SWAP_IN)
        with pytest.raises(SnapifyError, match="needs a target device"):
            snapify_command(app.host_proc, MIGRATE)
        return "ok"

    assert server.run(driver(server.sim)) == "ok"


def test_double_swap_out_queues_behind_the_gate():
    """A second swap-out issued while the job is already swapped out blocks
    on the application gate until the swap-in, then executes — the job ends
    up swapped out again, and a final swap-in lets it finish correctly."""
    server = XeonPhiServer()
    app = make_app(server, iterations=50)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.3)
        first = snapify_command(app.host_proc, SWAP_OUT, snapshot_path="/c1")
        yield first
        second = snapify_command(app.host_proc, SWAP_OUT, snapshot_path="/c2")
        yield sim.timeout(2.0)
        blocked_while_out = not second.triggered
        done = snapify_command(app.host_proc, SWAP_IN, engine=server.engine(0))
        yield done
        # Now the queued second swap-out gets the gate and runs.
        yield second
        done = snapify_command(app.host_proc, SWAP_IN, engine=server.engine(0))
        yield done
        yield app.host_proc.main_thread.done
        return blocked_while_out

    assert server.run(driver(server.sim)) is True
    assert app.verify()


def test_migrate_to_same_device_is_legal():
    """Migration to the SAME card = swap-out + swap-in in place (the paper's
    scheduler might do this to defragment card memory)."""
    server = XeonPhiServer()
    app = make_app(server, iterations=20)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.3)
        done = snapify_command(app.host_proc, MIGRATE, engine=server.engine(0))
        new = yield done
        assert new.offload_proc.os is server.phi_os(0)
        yield app.host_proc.main_thread.done

    server.run(driver(server.sim))
    assert app.verify()


# ---------------------------------------------------------------------------
# Protocol tracing
# ---------------------------------------------------------------------------


def test_snapify_operations_are_traced():
    server = XeonPhiServer()
    app = make_app(server, iterations=30)

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.3)
        done = snapify_command(app.host_proc, MIGRATE, engine=server.engine(1))
        yield done
        yield app.host_proc.main_thread.done

    with server.sim.trace.capture():
        server.run(driver(server.sim))
    trace = server.sim.trace
    assert trace.find("snapify.pause")
    captures = trace.find("snapify.capture", terminate=True)
    assert len(captures) == 1
    restores = trace.find("snapify.restore", device=1)
    assert len(restores) == 1
    # Ordering: pause < capture < restore < resume.
    assert (
        trace.first_time("snapify.pause")
        < trace.first_time("snapify.capture")
        < trace.first_time("snapify.restore")
        < trace.first_time("snapify.resume")
    )


def test_tracer_api():
    sim = Simulator(trace=True)
    sim.trace.emit("cat", a=1)
    sim.trace.emit("cat", a=2)
    sim.trace.emit("dog", a=1)
    assert len(sim.trace.find("cat")) == 2
    assert len(sim.trace.find("cat", a=2)) == 1
    assert sim.trace.find("fish") == []
    assert sim.trace.first_time("dog") == 0.0
    assert sim.trace.last_time("nope") is None
    sink_hits = []
    sim.trace.sinks.append(lambda rec: sink_hits.append(rec.category))
    sim.trace.emit("cat", a=3)
    assert sink_hits == ["cat"]
    sim.trace.clear()
    assert sim.trace.records == []


def test_tracer_disabled_is_free():
    sim = Simulator(trace=False)
    sim.trace.emit("cat", a=1)
    assert sim.trace.records == []
