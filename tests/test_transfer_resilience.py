"""Transfer resilience: retry/backoff, resumable streams, fallback chain.

Covers the failure modes the Snapify-IO transfer path must survive (see
docs/architecture.md, "Transfer resilience"): bad/failed target nodes fail
fast, an abandoned write stream aborts instead of committing a truncated
file, interrupted transfers resume from the last durable boundary, the
TransferManager degrades Snapify-IO -> NFS -> scp, and connection resets
never leak RDMA staging-buffer registrations.
"""

import pytest

from repro.check.oracles import check_all
from repro.hw import GB, MB
from repro.hw.pcie import DEVICE_TO_HOST
from repro.obs.registry import MetricsRegistry
from repro.sched.faults import FaultInjector
from repro.sim.errors import SimError
from repro.snapify import transfer_snapshot
from repro.snapify.monitor import SnapifyError
from repro.snapify.ops import RETRYING, TRANSFERRING, OperationManager
from repro.snapify_io import (
    RetryPolicy,
    SnapifyIODaemon,
    SnapifyIOError,
    TransferFailed,
    TransferManager,
    scp_copy,
    snapifyio_open,
)
from repro.testbed import XeonPhiServer

#: Fast policy so retry-heavy tests stay quick in simulated time.
FAST = RetryPolicy(attempts=3, base_delay=0.01, multiplier=2.0,
                   max_delay=0.05, jitter=0.25)


# ---------------------------------------------------------------------------
# snapifyio_open fail-fast node validation
# ---------------------------------------------------------------------------


def test_open_unknown_node_fails_fast():
    server = XeonPhiServer()
    phi = server.phi_os(0)

    def driver(sim):
        with pytest.raises(SnapifyIOError, match="no SCIF node 9"):
            yield from snapifyio_open(phi, 9, "/x", "w")
        return sim.now

    t = server.run(driver(server.sim))
    # Fail-fast: no connect latency was paid, nothing hung.
    assert t < 0.01 + server.sim.now


def test_open_negative_node_rejected():
    """A negative id must not wrap through Python list indexing onto the
    wrong card."""
    server = XeonPhiServer()

    def driver(sim):
        with pytest.raises(SnapifyIOError, match="no SCIF node -1"):
            yield from snapifyio_open(server.phi_os(0), -1, "/x", "w")

    server.run(driver(server.sim))


def test_open_failed_card_fails_fast():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)

    def driver(sim):
        injector.fail_now(server.node.phis[1])
        with pytest.raises(SnapifyIOError, match="failed|no Snapify-IO daemon"):
            yield from snapifyio_open(server.host_os, 2, "/x", "w")

    server.run(driver(server.sim))


def test_node_failure_between_connect_and_first_write():
    """The target card dies after the open handshake: the first write (or
    the commit wait) must surface a clean error, not hang or commit."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)

    def driver(sim):
        fd = yield from snapifyio_open(server.host_os, 1, "/dead/x", "w")
        injector.fail_now(server.node.phis[0])
        with pytest.raises(SimError):
            yield from fd.write(64 * MB)
            yield from fd.finish()
        fd.close()

    server.run(driver(server.sim))
    host_daemon = SnapifyIODaemon.of(server.host_os)
    assert "/dead/x" not in host_daemon.commits


# ---------------------------------------------------------------------------
# Abort semantics: an abandoned write stream never commits
# ---------------------------------------------------------------------------


def test_close_unfinished_write_aborts_not_commits():
    server = XeonPhiServer()
    phi = server.phi_os(0)

    def driver(sim):
        fd = yield from snapifyio_open(phi, 0, "/ab/x", "w")
        yield from fd.write(32 * MB)
        fd.close()  # abandoned: no finish()
        yield sim.timeout(0.05)  # let the abort marker drain

    server.run(driver(server.sim))
    host_daemon = SnapifyIODaemon.of(server.host_os)
    assert "/ab/x" not in host_daemon.commits
    assert MetricsRegistry.of(server.sim).snapshot()["counters"]["snapifyio.aborts"] == 1


def test_process_exit_mid_write_emits_abort_record():
    """A card process dying mid-write (FDs torn down by terminate) must
    record the abort in the trace and never commit the truncated stream."""
    from repro.sim.kernel import Simulator

    sim = Simulator(trace=True)
    server = XeonPhiServer(sim=sim)
    phi = server.phi_os(0)

    def driver(sim):
        def victim_main(proc):
            fd = yield from snapifyio_open(phi, 0, "/ab/victim", "w", proc=proc)
            yield from fd.write(1 * GB)
            yield from fd.finish()

        proc = yield from phi.spawn_process("victim", image_size=1 * MB,
                                            main_factory=victim_main)
        yield sim.timeout(0.3)  # mid-transfer
        proc.terminate(code=137)
        yield sim.timeout(0.1)

    server.run(driver(sim))
    aborts = sim.trace.find("io.abort")
    assert len(aborts) == 1
    assert aborts[0].fields["path"] == "/ab/victim"
    assert "/ab/victim" not in SnapifyIODaemon.of(server.host_os).commits


# ---------------------------------------------------------------------------
# Resume protocol
# ---------------------------------------------------------------------------


def test_link_flap_transfer_retries_and_resumes():
    """A transient link flap mid-transfer: the TransferManager re-opens with
    resume and the destination file still arrives exact."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    server.fault_injector = injector
    src = server.phi_os(0)

    def driver(sim):
        yield from src.fs.write("/fl/src", 512 * MB, payload=["flap-payload"])
        injector.schedule_link_flap(server.node.phis[0], at=sim.now + 0.02,
                                    up_after=0.03)
        result = yield from transfer_snapshot(
            src, 0, "/fl/src", "/fl/dst", manager=TransferManager(policy=FAST)
        )
        return result

    result = server.run(driver(server.sim))
    assert result.ok
    assert result.attempts > 1  # the flap genuinely interrupted the stream
    f = server.host_os.fs.stat("/fl/dst")
    assert f.size == 512 * MB
    assert f.payload == ["flap-payload"]
    # The operation bounced through RETRYING and spent time there.
    assert result.phases.get("retrying", 0) > 0
    assert not check_all(server)


def test_resume_handshake_skips_durable_prefix():
    """An explicit resume open re-streams only the bytes past the partial:
    the daemon reports its durable offset and the descriptor skips it."""
    server = XeonPhiServer()
    phi = server.phi_os(0)

    def driver(sim):
        fd = yield from snapifyio_open(phi, 0, "/rs/x", "w")
        yield from fd.write(96 * MB)
        fd.close()  # abort; the partial stays
        yield sim.timeout(0.05)
        partial = server.host_os.fs.stat("/rs/x").size
        assert 0 < partial <= 96 * MB
        fd = yield from snapifyio_open(phi, 0, "/rs/x", "w", resume=True)
        assert fd._skip == partial
        yield from fd.write(128 * MB, record="resumed")
        yield from fd.finish()

    server.run(driver(server.sim))
    f = server.host_os.fs.stat("/rs/x")
    assert f.size == 128 * MB
    assert f.payload == ["resumed"]
    assert SnapifyIODaemon.of(server.host_os).commits["/rs/x"] == 128 * MB


# ---------------------------------------------------------------------------
# Fallback chain permutations
# ---------------------------------------------------------------------------


def _transfer(server, policy=FAST, size=64 * MB, dst="/fb/dst"):
    src = server.phi_os(0)

    def driver(sim):
        yield from src.fs.write("/fb/src", size, payload=["fb"])
        result = yield from transfer_snapshot(
            src, 0, "/fb/src", dst, manager=TransferManager(policy=policy)
        )
        return result

    return server.run(driver(server.sim))


def test_fallback_none_needed():
    server = XeonPhiServer()
    server.fault_injector = FaultInjector(server.sim)
    result = _transfer(server)
    assert result.ok and result.channel == "snapifyio" and result.attempts == 1
    assert "retrying" not in result.phases
    assert server.host_os.fs.stat("/fb/dst").size == 64 * MB
    assert not check_all(server)


def test_fallback_to_nfs_when_io_daemon_down():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    server.fault_injector = injector
    injector.crash_io_daemon_now(server.host_os)
    result = _transfer(server)
    assert result.ok and result.channel == "nfs"
    f = server.host_os.fs.stat("/fb/dst")
    assert f.size == 64 * MB and f.payload == ["fb"]
    counters = MetricsRegistry.of(server.sim).snapshot()["counters"]
    assert counters["snapifyio.fallbacks"] >= 1
    assert not check_all(server)


def test_fallback_to_scp_when_io_and_nfs_down():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    server.fault_injector = injector
    injector.crash_io_daemon_now(server.host_os)
    server.node.os.fs.exported = False  # NFS export stopped
    result = _transfer(server)
    assert result.ok and result.channel == "scp"
    f = server.host_os.fs.stat("/fb/dst")
    assert f.size == 64 * MB and f.payload == ["fb"]
    assert not check_all(server)


def test_all_channels_down_fails_cleanly_with_cause_chain():
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    server.fault_injector = injector
    injector.crash_io_daemon_now(server.host_os)
    server.node.os.fs.exported = False
    injector.flap_link_now(server.node.phis[0])  # stays down: scp unreachable
    src = server.phi_os(0)

    def driver(sim):
        yield from src.fs.write("/fb/src", 64 * MB, payload=["fb"])
        try:
            yield from transfer_snapshot(
                src, 0, "/fb/src", "/fb/dst", manager=TransferManager(policy=FAST)
            )
        except TransferFailed as exc:
            return exc
        raise AssertionError("transfer unexpectedly succeeded")

    failure = server.run(driver(server.sim))
    # The aggregated cause chain names every channel that was tried.
    msg = str(failure)
    assert "snapifyio" in msg and "nfs" in msg and "scp" in msg
    result = OperationManager.of(server.sim).last_result
    assert result.kind == "transfer" and not result.ok
    assert result.state == "FAILED"
    # Nothing was ever committed: the fallback attempts may leave a voided
    # (truncated) destination behind, but never a full-size impostor and
    # never a commits-ledger entry claiming it durable.
    if server.host_os.fs.exists("/fb/dst"):
        assert server.host_os.fs.stat("/fb/dst").size < 64 * MB
    daemon = getattr(server.host_os, "snapify_io_daemon", None)
    if daemon is not None:
        assert "/fb/dst" not in daemon.commits
    assert not check_all(server)


# ---------------------------------------------------------------------------
# State machine: the RETRYING edge
# ---------------------------------------------------------------------------


def test_retrying_edge_legal_only_from_transferring():
    server = XeonPhiServer()
    mgr = OperationManager.of(server.sim)
    op = mgr.begin("transfer")
    with pytest.raises(SnapifyError):
        op.transition(RETRYING)  # REQUESTED -> RETRYING is illegal
    op.transition(TRANSFERRING)
    op.transition(RETRYING)
    op.transition(TRANSFERRING)  # and back: the one permitted cycle
    op.complete()
    assert op.result.ok


# ---------------------------------------------------------------------------
# Staging-buffer registrations survive resets
# ---------------------------------------------------------------------------


def test_connection_reset_releases_staging_registrations():
    """Endpoints killed mid-RDMA (daemon crash) must free their staging
    windows — the leak class the staging_buffers_released oracle pins."""
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    server.fault_injector = injector
    src = server.phi_os(0)

    def driver(sim):
        def writer(sim):
            try:
                fd = yield from snapifyio_open(src, 0, "/lk/x", "w")
                yield from fd.write(1 * GB)
                yield from fd.finish()
            except SimError:
                pass

        sim.spawn(writer(sim), daemon=True)
        yield sim.timeout(0.05)  # mid-transfer, staging buffers registered
        injector.crash_io_daemon_now(server.host_os)
        yield sim.timeout(0.1)

    server.run(driver(server.sim))
    for label, mem in (("host", server.node.memory),
                       ("mic0", server.node.phis[0].memory)):
        assert mem.by_category.get("rdma_staging", 0) == 0, label
    assert not check_all(server)


# ---------------------------------------------------------------------------
# scp rides the PCIe link
# ---------------------------------------------------------------------------


def test_scp_traffic_counts_against_the_link():
    server = XeonPhiServer()
    phi = server.phi_os(0)
    link = server.node.phis[0].link._direction(DEVICE_TO_HOST)

    def driver(sim):
        yield from phi.fs.write("/scp/src", 128 * MB)
        before = link.bytes_transferred
        yield from scp_copy(phi, server.host_os, "/scp/src", "/scp/dst",
                            server.node.params.scp)
        return link.bytes_transferred - before

    moved = server.run(driver(server.sim))
    assert moved >= 128 * MB  # every scp byte crossed the wire
    assert server.host_os.fs.stat("/scp/dst").size == 128 * MB


def test_scp_contends_with_concurrent_rdma():
    """An RDMA stream sharing the wire with scp is strictly slower than the
    same stream alone: scp's chunks occupy the FIFO link between cipher
    pacing gaps, and every RDMA burst that lands behind one waits. (The
    converse — scp slowed by RDMA — is invisible by design: the cipher is
    ~100x slower than the wire, so sub-pace link waits are absorbed.)"""
    def rdma_time(with_scp):
        server = XeonPhiServer()
        phi = server.phi_os(0)

        def driver(sim):
            yield from phi.fs.write("/ct/src", 256 * MB)

            def scp_load(s):
                yield from scp_copy(phi, server.host_os, "/ct/src", "/ct/dst",
                                    server.node.params.scp)

            if with_scp:
                sim.spawn(scp_load(sim), daemon=True)
            t0 = sim.now
            fd = yield from snapifyio_open(phi, 0, "/ct/load", "w")
            yield from fd.write(2 * GB)
            yield from fd.finish()
            return sim.now - t0

        return server.run(driver(server.sim))

    assert rdma_time(True) > rdma_time(False)
