"""Unit tests for UNIX-domain sockets: pairs, the per-OS namespace,
listener ownership, and the failure surface (bind collisions, EOF, EPIPE,
connection refused) the socket checkpoint plugin leans on."""

import pytest

from repro.hw import MB, HardwareParams, ServerNode
from repro.osim import boot_node
from repro.osim.sockets import SocketError, SocketNamespace, UnixSocket
from repro.sim import Simulator

BW = 400 * MB


def make_env():
    sim = Simulator()
    node = ServerNode(sim, HardwareParams())
    host_os, phi_oses = boot_node(node)
    return sim, host_os, phi_oses[0]


def run(sim, gen):
    t = sim.spawn(gen)
    sim.run()
    assert t.done.ok, t.done.exception
    return t.done.value


def test_pair_preserves_datagram_order():
    sim = Simulator()
    a, b = UnixSocket.pair(sim, BW, name="p")

    def driver():
        for i in range(5):
            yield from a.write(4096, record=f"dg{i}")
        got = []
        for _ in range(5):
            got.append((yield from b.read()))
        return got

    assert run(sim, driver()) == [f"dg{i}" for i in range(5)]
    assert a.bytes_written == 5 * 4096
    assert b.bytes_read == 5 * 4096


def test_read_returns_none_on_peer_close():
    sim = Simulator()
    a, b = UnixSocket.pair(sim, BW, name="p")

    def driver():
        yield from a.write(1024, record="last")
        assert b._rx.qsize == 1
        # Close is abrupt teardown: in-flight datagrams are dropped and
        # every subsequent read sees EOF — which is why the checkpoint
        # plugin's drain hook empties queues *before* the pause.
        a.close()
        eof = yield from b.read()
        nbytes, rec = yield from b.read_datagram()
        return eof, (nbytes, rec)

    eof, dg = run(sim, driver())
    assert eof is None
    assert dg == (0, None)


def test_write_to_closed_peer_raises_epipe():
    sim = Simulator()
    a, b = UnixSocket.pair(sim, BW, name="p")
    b.close()

    def driver():
        yield from a.write(1024, record="x")

    t = sim.spawn(driver())
    sim.run()
    assert not t.done.ok
    assert isinstance(t.done.exception, SocketError)
    assert "EPIPE" in str(t.done.exception)


def test_bind_collision_raises():
    sim = Simulator()
    ns = SocketNamespace(sim, default_bandwidth=BW)
    ns.listen("@svc")
    with pytest.raises(SocketError, match="already in use"):
        ns.listen("@svc")


def test_connect_refused_without_listener():
    sim = Simulator()
    ns = SocketNamespace(sim, default_bandwidth=BW)
    gen = ns.connect("@nobody")
    with pytest.raises(SocketError, match="connection refused"):
        next(gen)


def test_connect_sets_address_and_backlog_queues_until_accept():
    sim = Simulator()
    ns = SocketNamespace(sim, default_bandwidth=BW)
    listener = ns.listen("@svc")

    def driver():
        client = yield from ns.connect("@svc")
        # Datagrams sent before accept queue on the server half.
        yield from client.write(2048, record="early")
        server = yield listener.accept()
        rec = yield from server.read()
        return client, server, rec

    client, server, rec = run(sim, driver())
    assert client.address == "@svc"
    assert server.address == "@svc"
    assert rec == "early"


def test_listener_close_frees_address():
    sim = Simulator()
    ns = SocketNamespace(sim, default_bandwidth=BW)
    listener = ns.listen("@svc")
    assert ns.bound["@svc"] is listener
    listener.close()
    assert "@svc" not in ns.bound
    ns.listen("@svc")  # the name is reusable after close


def test_process_exit_releases_owned_listeners():
    sim, host, phi = make_env()

    def driver():
        proc = yield from phi.spawn_process("svc", image_size=1 * MB,
                                            start=False)
        listener = phi.sockets.listen("@owned", owner=proc)
        assert proc.listeners == [listener]
        assert phi.sockets.bound["@owned"].owner is proc
        proc.terminate(code=0)
        assert proc.listeners == []
        assert "@owned" not in phi.sockets.bound
        gen = phi.sockets.connect("@owned")
        with pytest.raises(SocketError, match="connection refused"):
            next(gen)

    run(sim, driver())
