"""Protocol tests for Snapify's pause / capture / resume / restore."""

import pytest

from repro.coi import COIDaemon, OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.snapify import (
    snapify_capture,
    snapify_pause,
    snapify_restore,
    snapify_resume,
    snapify_t,
    snapify_wait,
)
from repro.snapify.constants import context_path, libs_path, localstore_path
from repro.snapify.monitor import SnapifyService
from repro.testbed import XeonPhiServer


def accumulate_effect(ctx, args):
    """result += sum(buffer payload); models an iterative kernel step."""
    data = ctx.buffer_payload(args["buf"]) or 0
    ctx.store["acc"] = ctx.store.get("acc", 0) + data
    return ctx.store["acc"]


def make_binary():
    return OffloadBinary(
        name="snapify_test.so",
        image_size=8 * MB,
        functions={
            "step": OffloadFunction("step", duration=0.05, effect=accumulate_effect),
            "slow": OffloadFunction("slow", duration=1.0, effect=accumulate_effect),
        },
    )


def launch(server, binary=None, buffer_mb=64):
    binary = binary or make_binary()
    out = {}

    def setup(sim):
        host_proc = yield from server.host_os.spawn_process("app", image_size=4 * MB)
        coiproc = yield from server.engine(0).process_create(host_proc, binary)
        buf = yield from coiproc.buffer_create(buffer_mb * MB)
        yield from coiproc.buffer_write(buf, payload=7)
        out["host_proc"], out["coiproc"], out["buf"] = host_proc, coiproc, buf

    server.run(setup(server.sim))
    return out


def test_pause_empties_channels_and_saves_local_store():
    server = XeonPhiServer()
    env = launch(server, buffer_mb=128)
    coiproc = env["coiproc"]
    snap = snapify_t(snapshot_path="/snap/t1", coiproc=coiproc)

    def driver(sim):
        yield from snapify_pause(snap)
        assert coiproc.channels_empty()
        yield from snapify_resume(snap)

    server.run(driver(server.sim))
    # Local store + libs landed in the snapshot directory on the host.
    host_fs = server.host_os.fs
    assert host_fs.stat(localstore_path("/snap/t1")).size >= 128 * MB
    assert host_fs.exists(libs_path("/snap/t1"))
    assert snap.sizes["local_store"] == 128 * MB
    assert snap.timings["pause"] > 0


def test_pause_blocks_new_offload_calls_until_resume():
    server = XeonPhiServer()
    env = launch(server)
    coiproc, buf = env["coiproc"], env["buf"]
    snap = snapify_t(snapshot_path="/snap/t2", coiproc=coiproc)
    times = {}

    def app_call(sim):
        r = yield from coiproc.run_function("step", {"buf": buf.buf_id})
        times["call_done"] = sim.now
        times["result"] = r

    def driver(sim):
        yield from snapify_pause(snap)
        times["paused"] = sim.now
        sim.spawn(app_call(sim))
        yield sim.timeout(2.0)
        times["pre_resume"] = sim.now
        yield from snapify_resume(snap)
        yield sim.timeout(1.0)

    server.run(driver(server.sim))
    assert times["call_done"] > times["pre_resume"]
    assert times["result"] == 7


def test_capture_is_nonblocking_and_wait_joins():
    server = XeonPhiServer()
    env = launch(server)
    coiproc = env["coiproc"]
    snap = snapify_t(snapshot_path="/snap/t3", coiproc=coiproc)
    times = {}

    def driver(sim):
        yield from snapify_pause(snap)
        t0 = sim.now
        yield from snapify_capture(snap, terminate=False)
        times["capture_returned"] = sim.now - t0
        yield from snapify_wait(snap)
        times["wait_done"] = sim.now - t0
        yield from snapify_resume(snap)

    server.run(driver(server.sim))
    # Non-blocking: returns in microseconds; the wait takes real time.
    assert times["capture_returned"] < 0.01
    assert times["wait_done"] > times["capture_returned"]
    assert server.host_os.fs.stat(context_path("/snap/t3")).size == snap.sizes["offload_snapshot"]
    assert coiproc.offload_proc.alive  # terminate=False


def test_capture_requires_pause_first():
    server = XeonPhiServer()
    env = launch(server)
    snap = snapify_t(snapshot_path="/snap/t4", coiproc=env["coiproc"])

    def driver(sim):
        from repro.snapify import SnapifyError

        with pytest.raises(SnapifyError):
            yield from snapify_capture(snap, terminate=False)
        return "ok"

    assert server.run(driver(server.sim)) == "ok"


def test_capture_with_terminate_kills_offload_as_expected_exit():
    server = XeonPhiServer()
    env = launch(server)
    coiproc = env["coiproc"]
    snap = snapify_t(snapshot_path="/snap/t5", coiproc=coiproc)

    def driver(sim):
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=True)
        yield from snapify_wait(snap)
        yield sim.timeout(0.01)

    server.run(driver(server.sim))
    assert not coiproc.offload_proc.alive
    assert coiproc.dead
    daemon = COIDaemon.of(server.node.phis[0])
    # Snapify's bookkeeping prevents the §3 misclassification hazard.
    assert daemon.entries[coiproc.offload_proc.pid].state == "terminated"


def test_monitor_thread_lifecycle():
    """The daemon's monitor thread exists only while requests are active."""
    server = XeonPhiServer()
    env = launch(server)
    coiproc = env["coiproc"]
    daemon = COIDaemon.of(server.node.phis[0])

    def driver(sim):
        snap = snapify_t(snapshot_path="/snap/t6", coiproc=coiproc)
        yield from snapify_pause(snap)
        svc = SnapifyService.of(daemon)
        assert svc.monitor_running
        yield from snapify_resume(snap)
        yield sim.timeout(0.01)
        assert not svc.monitor_running
        # A second cycle spawns a fresh monitor thread.
        snap2 = snapify_t(snapshot_path="/snap/t6b", coiproc=coiproc)
        yield from snapify_pause(snap2)
        yield from snapify_resume(snap2)
        yield sim.timeout(0.01)
        return SnapifyService.of(daemon).monitor_spawn_count

    assert server.run(driver(server.sim)) == 2


def test_snapshot_during_inflight_function_is_consistent():
    """The §4.1 case-4 guarantee: a snapshot taken while an offload function
    executes captures a state from which the function completes exactly once."""
    server = XeonPhiServer()
    env = launch(server)
    coiproc, buf, host_proc = env["coiproc"], env["buf"], env["host_proc"]
    out = {}

    def driver(sim):
        seq = yield from coiproc.start_function("slow", {"buf": buf.buf_id})
        yield sim.timeout(0.3)  # mid-execution (duration 1.0)
        snap = snapify_t(snapshot_path="/snap/t7", coiproc=coiproc)
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=True)  # swap-out style
        yield from snapify_wait(snap)
        # Restore on the OTHER card and resume.
        new = yield from snapify_restore(snap, server.engine(1), host_proc)
        yield from snapify_resume(snap)
        result = yield new.wait_result(seq)
        out["result"] = result
        out["card_store"] = new.offload_proc.store.get("acc")
        out["device"] = new.offload_proc.os

    server.run(driver(server.sim))
    # Effect applied exactly once: acc == 7, result == 7.
    assert out["result"] == 7
    assert out["card_store"] == 7
    assert out["device"] is server.phi_os(1)


def test_restore_reregisters_buffers_with_address_translation():
    server = XeonPhiServer()
    env = launch(server)
    coiproc, buf, host_proc = env["coiproc"], env["buf"], env["host_proc"]
    old_offset = buf.rdma_offset

    def driver(sim):
        snap = snapify_t(snapshot_path="/snap/t8", coiproc=coiproc)
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=True)
        yield from snapify_wait(snap)
        new = yield from snapify_restore(snap, server.engine(1), host_proc)
        yield from snapify_resume(snap)
        # The stale handle's offset now translates to a fresh window.
        assert new.translate_offset(old_offset) != old_offset
        # RDMA through the old handle object still works.
        yield from new.buffer_write(buf, payload=99)
        data = yield from new.buffer_read(buf)
        return data

    assert server.run(driver(server.sim)) == 99


def test_restore_preserves_local_store_content():
    server = XeonPhiServer()
    env = launch(server, buffer_mb=32)
    coiproc, buf, host_proc = env["coiproc"], env["buf"], env["host_proc"]

    def driver(sim):
        yield from coiproc.buffer_write(buf, payload={"tensor": [1, 2, 3]})
        snap = snapify_t(snapshot_path="/snap/t9", coiproc=coiproc)
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=True)
        yield from snapify_wait(snap)
        new = yield from snapify_swapin_helper(snap, server, host_proc)
        data = yield from new.buffer_read(new.buffers[buf.buf_id])
        return data

    def snapify_swapin_helper(snap, server, host_proc):
        new = yield from snapify_restore(snap, server.engine(0), host_proc)
        yield from snapify_resume(snap)
        return new

    assert server.run(driver(server.sim)) == {"tensor": [1, 2, 3]}


def test_rdma_with_stale_offset_and_no_table_fails():
    """Ablation of the (old, new) address table: without translation, RDMA
    against a pre-restore offset is rejected by SCIF."""
    server = XeonPhiServer()
    env = launch(server)
    coiproc, buf, host_proc = env["coiproc"], env["buf"], env["host_proc"]

    def driver(sim):
        snap = snapify_t(snapshot_path="/snap/t10", coiproc=coiproc)
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=True)
        yield from snapify_wait(snap)
        new = yield from snapify_restore(snap, server.engine(0), host_proc)
        yield from snapify_resume(snap)
        new.rdma_address_map.clear()  # sabotage the lookup table
        from repro.scif import ScifError

        with pytest.raises(ScifError, match="unregistered"):
            yield from new.buffer_write(buf, payload=1)
        return "ok"

    assert server.run(driver(server.sim)) == "ok"


def test_resume_after_plain_capture_continues_execution():
    server = XeonPhiServer()
    env = launch(server)
    coiproc, buf = env["coiproc"], env["buf"]

    def driver(sim):
        r1 = yield from coiproc.run_function("step", {"buf": buf.buf_id})
        snap = snapify_t(snapshot_path="/snap/t11", coiproc=coiproc)
        yield from snapify_pause(snap)
        yield from snapify_capture(snap, terminate=False)
        yield from snapify_wait(snap)
        yield from snapify_resume(snap)
        r2 = yield from coiproc.run_function("step", {"buf": buf.buf_id})
        return r1, r2

    assert server.run(driver(server.sim)) == (7, 14)
