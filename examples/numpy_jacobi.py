#!/usr/bin/env python
"""Real numerical data through the snapshot pipeline.

The simulation models *time* and *hardware*, but payloads are real Python
objects — here, numpy arrays smoothed by a Jacobi kernel "on the card".
A mid-solve migration to the other coprocessor is bit-exact: the migrated
solve finishes with exactly the array a failure-free solve produces.

Run:  python examples/numpy_jacobi.py
"""

import numpy as np

from repro.coi import OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.snapify.usecases import snapify_migration
from repro.testbed import XeonPhiServer, offload_process

N = 65536
STEPS = 30


def jacobi_step(ctx, args):
    x = ctx.buffer_payload(args["buf"])
    s = x.copy()
    s[1:-1] = (x[:-2] + 2 * x[1:-1] + x[2:]) / 4.0
    ctx.set_buffer_payload(args["buf"], s)
    return float(np.abs(s - x).max())  # residual


def main() -> None:
    server = XeonPhiServer()
    binary = OffloadBinary(
        "jacobi_mic.so", 4 * MB,
        {"step": OffloadFunction("step", duration=8e-3, effect=jacobi_step)},
    )
    rng = np.random.default_rng(42)
    x0 = rng.normal(size=N)

    # Reference: plain numpy, no simulation.
    ref = x0.copy()
    for _ in range(STEPS):
        s = ref.copy()
        s[1:-1] = (ref[:-2] + 2 * ref[1:-1] + ref[2:]) / 4.0
        ref = s

    def scenario(sim):
        coiproc, [buf] = yield from offload_process(
            server, "jacobi", binary, buffers=[(N * 8, x0.copy())]
        )
        print(f"solving: {N}-point Jacobi, {STEPS} steps, offloaded to mic0")

        for k in range(STEPS):
            residual = yield from coiproc.run_function("step", {"buf": buf.buf_id})
            if k == STEPS // 2:
                print(f"[{sim.now:6.2f}s] step {k}: residual {residual:.3e} — "
                      "migrating the solver to mic1 mid-run...")
                coiproc, _ = yield from snapify_migration(
                    coiproc, server.engine(1), snapshot_path="/jacobi/mig"
                )
                buf = coiproc.buffers[buf.buf_id]
        result = yield from coiproc.buffer_read(buf)
        print(f"[{sim.now:6.2f}s] done on "
              f"{'mic1' if coiproc.offload_proc.os is server.phi_os(1) else 'mic0'}; "
              f"final residual {residual:.3e}")
        return result

    result = server.run(scenario(server.sim))
    np.testing.assert_array_equal(result, ref)
    print("migrated solve is BIT-EXACT against the pure-numpy reference ✓")


if __name__ == "__main__":
    main()
