#!/usr/bin/env python
"""Quickstart: checkpoint and restart an offload application.

Boots a simulated Xeon Phi server (host + 2 coprocessors, COI daemons,
Snapify-IO daemons), runs an offload benchmark, takes a Snapify checkpoint
mid-run, kills *both* processes, and restarts the whole application from
the snapshot directory — finishing with the same checksum a failure-free
run produces.

Run:  python examples/quickstart.py [--trace-json PATH]

With ``--trace-json PATH`` the run executes with tracing enabled and the
full record stream (spans, metrics, protocol markers) is exported as Chrome
trace-event JSON — CI uploads this as its workflow artifact.
"""

import sys

from repro.apps import expected_checksum
from repro.metrics import fmt_bytes, fmt_time
from repro.sim import Simulator
from repro.snapify import checkpoint_offload_app, restart_offload_app, snapify_t
from repro.testbed import XeonPhiServer, offload_app


def main() -> None:
    trace_json = None
    if "--trace-json" in sys.argv:
        trace_json = sys.argv[sys.argv.index("--trace-json") + 1]
    server = XeonPhiServer(sim=Simulator(trace=trace_json is not None))
    print(f"booted {server.node.name}: host + {len(server.node.phis)} Xeon Phi cards")

    # A conjugate-gradient style offload benchmark, shortened for the demo.
    app = offload_app(server, "CG", iterations=200)

    def scenario(sim):
        yield from app.launch()
        print(f"[{sim.now:7.3f}s] launched {app.name}: host process "
              f"pid={app.host_proc.pid}, offload process on mic0")

        yield sim.timeout(1.0)
        print(f"[{sim.now:7.3f}s] {app.host_proc.store['iter']} iterations done; "
              "taking a checkpoint...")

        snap = snapify_t(snapshot_path="/snapshots/demo", coiproc=app.coiproc)
        yield from checkpoint_offload_app(snap)
        print(f"[{sim.now:7.3f}s] checkpoint complete in "
              f"{fmt_time(snap.timings['checkpoint_total'])}:")
        for part in ("host_snapshot", "offload_snapshot", "local_store"):
            print(f"            {part:18s} {fmt_bytes(snap.sizes[part])}")

        yield sim.timeout(0.5)
        print(f"[{sim.now:7.3f}s] simulating a crash: killing the application")
        app.host_proc.terminate(code=1)
        yield sim.timeout(0.1)

        print(f"[{sim.now:7.3f}s] restarting from /snapshots/demo ...")
        result = yield from restart_offload_app(
            server.host_os, "/snapshots/demo", server.engine(0)
        )
        print(f"[{sim.now:7.3f}s] restart done in "
              f"{fmt_time(result.snap.timings['restart_total'])} "
              f"(host {fmt_time(result.snap.timings['host_restart'])}, "
              f"offload {fmt_time(result.snap.timings['offload_restore'])})")

        yield result.host_proc.main_thread.done
        checksum = result.host_proc.store["checksum"]
        print(f"[{sim.now:7.3f}s] application finished; checksum={checksum}")
        assert checksum == expected_checksum(app.iterations), "WRONG RESULT"
        print("checksum matches the failure-free run — snapshot was consistent ✓")

    server.run(scenario(server.sim))

    if trace_json is not None:
        from repro.obs import validate_trace_events, write_chrome_trace

        doc = write_chrome_trace(server.sim.trace, trace_json)
        n = validate_trace_events(doc)
        print(f"wrote {trace_json}: {n} trace events — load it at ui.perfetto.dev")


if __name__ == "__main__":
    main()
