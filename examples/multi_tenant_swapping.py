#!/usr/bin/env python
"""Multi-tenant card sharing via process swapping.

The Xeon Phi's 8 GB (with pinned COI buffers the OS cannot page) caps how
many offload jobs fit on a card — §1's motivation for process swapping. A
COSMIC-style scheduler keeps a big tenant and a burst of small tenants on
one card by swapping the big one out to host storage under pressure and
back in when the burst drains. Both tenants finish with correct results.

Run:  python examples/multi_tenant_swapping.py
"""

from repro.hw import GB, MB
from repro.metrics import fmt_bytes
from repro.sched import SwapScheduler
from repro.testbed import XeonPhiServer, offload_app


def main() -> None:
    server = XeonPhiServer()
    phi = server.node.phis[0]
    sched = SwapScheduler(server, device=0, headroom=256 * MB)

    # Tenant A: a big sample-sort job (~2 GB of card state).
    big = offload_app(server, "SS", iterations=120, name="sample-sort")

    # Tenant B: a burst job that "needs" most of the card.
    burst = offload_app(server, "FT", iterations=40, name="fft-burst")

    def scenario(sim):
        yield from big.launch()
        yield sim.timeout(1.5)  # let sample-sort make some progress first
        sched.register(big.host_proc, footprint=2 * GB)
        print(f"[{sim.now:6.2f}s] sample-sort resident; card free memory: "
              f"{fmt_bytes(phi.memory.available)}")

        print(f"[{sim.now:6.2f}s] fft-burst arrives claiming 7 GB -> make room")
        victims = yield from sched.make_room(incoming=7 * GB)
        print(f"[{sim.now:6.2f}s] swapped out: "
              f"{[v.host_proc.name for v in victims]}; card free memory: "
              f"{fmt_bytes(phi.memory.available)}")

        yield from burst.launch()
        frozen_iter = big.host_proc.store["iter"]
        yield burst.host_proc.main_thread.done
        assert big.host_proc.store["iter"] == frozen_iter, "victim ran while swapped!"
        print(f"[{sim.now:6.2f}s] fft-burst finished "
              f"(correct: {burst.verify()}); sample-sort was frozen at "
              f"iteration {frozen_iter}")

        returned = yield from sched.job_finished(burst.host_proc)
        print(f"[{sim.now:6.2f}s] swapped back in: "
              f"{[j.host_proc.name for j in returned]}")

        yield big.host_proc.main_thread.done
        print(f"[{sim.now:6.2f}s] sample-sort finished (correct: {big.verify()})")
        print(f"swap events: {sched.swap_events}")

    server.run(scenario(server.sim))
    assert big.verify() and burst.verify()
    print("both tenants produced correct checksums ✓")


if __name__ == "__main__":
    main()
