#!/usr/bin/env python
"""Periodic checkpointing with an optimal interval, under real failures.

Ties the stack together the way an HPC operator would: measure the cost of
one Snapify checkpoint, plug it with the card MTBF into Young's formula,
and run a long offload job under injected coprocessor failures. The job
loses at most one interval of work per failure and finishes with the
correct checksum.

Run:  python examples/resilient_run.py
"""

from repro.apps import expected_checksum
from repro.metrics import fmt_time
from repro.sched import FaultInjector, ResilientRunner, young_interval
from repro.snapify import checkpoint_offload_app, snapify_t
from repro.testbed import XeonPhiServer, offload_app


def measure_checkpoint_cost() -> float:
    """One throwaway run to measure the checkpoint cost for this app."""
    server = XeonPhiServer()
    app = offload_app(server, "KM", iterations=10_000)

    def probe(sim):
        yield from app.launch()
        yield sim.timeout(0.5)
        snap = snapify_t(snapshot_path="/probe", coiproc=app.coiproc)
        yield from checkpoint_offload_app(snap)
        return snap.timings["checkpoint_total"]

    return server.run(probe(server.sim))


def main() -> None:
    cost = measure_checkpoint_cost()
    mtbf = 6.0  # seconds — absurdly flaky cards, scaled to the demo's length
    interval = young_interval(mtbf, cost)
    print(f"measured checkpoint cost: {fmt_time(cost)}; card MTBF {mtbf:.0f} s "
          f"-> Young interval {fmt_time(interval)}")

    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    app = offload_app(server, "KM", iterations=2500)  # ~11 s of work
    runner = ResilientRunner(server, app, injector, interval=interval)

    def scenario(sim):
        # Card failures roughly every MTBF, alternating cards so one is
        # always healthy.
        injector.schedule_card_failure(server.node.phis[0], at=5.0)
        store = yield from runner.run()
        return store

    store = server.run(scenario(server.sim))
    print(f"job finished at t={server.now:.1f}s with "
          f"{runner.checkpoints_taken} checkpoints and {runner.restarts} restart(s)")
    for ev in runner.events:
        print(f"    {ev}")
    assert store["checksum"] == expected_checksum(app.iterations)
    print("checksum correct despite the card failure ✓")


if __name__ == "__main__":
    main()
