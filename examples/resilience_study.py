#!/usr/bin/env python
"""Checkpoint/restart vs. replication vs. hybrid, under a card failure.

Runs the same two-rank NAS-MZ-shaped job three ways on a simulated rack —
periodically checkpointed (restart on failure), TeaMPI-style replicated
(R=2, the survivor carries on), and replicated with heartbeat-driven
re-seeding (a MAINTENANCE-lane clone restores team strength) — each clean
and with one card killed mid-run, and prints the useful-work throughput
table. In CI the table also lands in the job's step summary.

Run:  python examples/resilience_study.py
"""

import os

from repro.sched import markdown_table, resilience_study


def main() -> None:
    rows = resilience_study()
    table = markdown_table(rows)
    print(table)

    by_mode = {r.mode: r for r in rows}
    cr = by_mode["checkpoint_restart"]
    rep = by_mode["replication"]
    hyb = by_mode["hybrid"]

    assert all(r.verified for r in rows), "a mode finished with a bad checksum"
    # Replication's pitch: the failure costs zero restarts and (almost)
    # zero wall-clock — the surviving replica never even pauses.
    assert rep.restarts == 0 and rep.drops == 1, rep
    assert rep.slowdown < 1.1, f"replication slowdown {rep.slowdown:.2f}x"
    # C/R pays the full detection + restore + re-execution round-trip.
    assert cr.restarts >= 1, cr
    assert cr.elapsed > rep.elapsed, "C/R should not beat replication here"
    # The hybrid additionally re-seeds the lost replica, so the team ends
    # the run at full strength (redundancy restored for the next failure).
    assert hyb.restarts == 0 and hyb.reseeds >= 1, hyb
    print("replication survived with zero restarts; hybrid re-seeded the "
          "lost replica ✓")

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(table + "\n")
        print(f"wrote study table to step summary ({summary})")


if __name__ == "__main__":
    main()
