#!/usr/bin/env python
"""Snapify-IO as a standalone remote-file service (the Table 3 scenario).

A native process on the Xeon Phi writes and reads host files through
``snapifyio_open`` — standard descriptor in hand, RDMA underneath — and the
same copies are timed over scp and NFS for comparison.

Run:  python examples/snapify_io_copy.py
"""

from repro.apps.native import copy_microbenchmark
from repro.hw.params import GB, MB
from repro.metrics import ResultTable, fmt_bytes, fmt_time
from repro.snapify_io import snapifyio_open
from repro.testbed import XeonPhiServer


def main() -> None:
    # --- the API itself -----------------------------------------------------
    server = XeonPhiServer()
    phi = server.phi_os(0)

    def api_demo(sim):
        fd = yield from snapifyio_open(phi, node=0, path="/results/out.dat", mode="w")
        yield from fd.write(64 * MB, record={"batch": 1})
        yield from fd.write(64 * MB, record={"batch": 2})
        yield from fd.finish()
        print(f"card process wrote {fmt_bytes(128 * MB)} to the host file "
              f"system in {fmt_time(sim.now)} (file: /results/out.dat)")

        fd = yield from snapifyio_open(phi, node=0, path="/results/out.dat", mode="r")
        first = yield from fd.read(64 * MB)
        fd.close()
        print(f"read back first record: {first}")

    server.run(api_demo(server.sim))
    f = server.host_os.fs.stat("/results/out.dat")
    assert f.size == 128 * MB and f.payload == [{"batch": 1}, {"batch": 2}]

    # --- head-to-head with scp and NFS ----------------------------------------
    table = ResultTable(
        "copying a card file to the host (fresh testbed per cell)",
        ["size", "scp", "nfs", "snapify-io"],
    )
    for size in (16 * MB, 256 * MB, 1 * GB):
        row = [fmt_bytes(size)]
        for method in ("scp", "nfs", "snapify-io"):
            bench_server = XeonPhiServer()

            def driver(sim, method=method, size=size):
                elapsed = yield from copy_microbenchmark(
                    bench_server, method, "to_host", size
                )
                return elapsed

            row.append(fmt_time(bench_server.run(driver(bench_server.sim))))
        table.add_row(*row)
    table.show()


if __name__ == "__main__":
    main()
