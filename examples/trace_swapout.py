#!/usr/bin/env python
"""Trace a swap-out/swap-in cycle and print its phase breakdown.

Runs an offload benchmark with tracing enabled, swaps the offload process
out to host storage and back in, then rebuilds the causal span tree the
operation emitted and prints the paper's Figure-9-style component table
for each direction. Optionally exports the whole run as Chrome trace-event
JSON for ui.perfetto.dev.

Run:  python examples/trace_swapout.py [trace.json]
"""

import sys

from repro.metrics import fmt_bytes, fmt_time
from repro.obs import MetricsRegistry, PhaseBreakdown, write_chrome_trace
from repro.sim import Simulator
from repro.snapify import SWAP_IN, SWAP_OUT, snapify_command
from repro.testbed import XeonPhiServer, offload_app


def main() -> None:
    sim = Simulator(trace=True)
    server = XeonPhiServer(sim=sim)
    app = offload_app(server, "MC", iterations=60)

    def scenario(sim):
        yield from app.launch()
        yield sim.timeout(0.5)
        print(f"[{sim.now:7.3f}s] swapping {app.name} out to host storage...")
        yield snapify_command(app.host_proc, SWAP_OUT, snapshot_path="/swap/demo")
        print(f"[{sim.now:7.3f}s] swapped out; card memory released")
        yield snapify_command(app.host_proc, SWAP_IN, engine=server.engine(0))
        print(f"[{sim.now:7.3f}s] swapped back in; letting the app finish")
        yield app.host_proc.main_thread.done

    server.run(scenario(sim))
    assert app.verify(), "swap cycle corrupted the application"

    for root in ("snapify.swapout", "snapify.swapin"):
        print()
        print(PhaseBreakdown.from_trace(sim.trace, root).render())

    snap = MetricsRegistry.of(sim).snapshot()
    moved = snap["gauges"].get("link.node0.pcie0.d2h.bytes", 0)
    print(f"\nPCIe d2h traffic over the whole run: {fmt_bytes(moved)}; "
          f"simulated time {fmt_time(sim.now)}")

    if len(sys.argv) > 1:
        write_chrome_trace(sim.trace, sys.argv[1])
        print(f"wrote {sys.argv[1]} — load it at ui.perfetto.dev")


if __name__ == "__main__":
    main()
