#!/usr/bin/env python
"""Proactive migration away from a failing coprocessor.

§1: "by using fault prediction methods, it is possible to avoid imminent
coprocessor failures by proactively migrating processes to other healthy
coprocessors." Two jobs run on mic0; a correctable-error storm (degradation
telemetry) precedes the card's death, the predictor evacuates both jobs to
mic1 via Snapify migration, and they finish correctly. A third, unwarned
job on a separate server shows the counterfactual: it dies with its card.

Run:  python examples/proactive_migration.py
"""

from repro.sched import FaultInjector, ProactiveMigrator
from repro.testbed import XeonPhiServer, offload_app


def main() -> None:
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    migrator = ProactiveMigrator(server, injector)

    jobs = [
        offload_app(server, "KM", iterations=2500, device=0, name="kmeans"),
        offload_app(server, "MC", iterations=400, device=0, name="montecarlo"),
    ]

    def scenario(sim):
        for job in jobs:
            yield from job.launch()
            migrator.track(job.host_proc, device=0)
        print(f"[{sim.now:6.2f}s] kmeans + montecarlo running on mic0")

        yield sim.timeout(0.5)
        t_fail = sim.now + 6.0
        print(f"[{sim.now:6.2f}s] telemetry: correctable-error storm on mic0 "
              f"(card will die at t={t_fail:.1f}s)")
        injector.schedule_card_failure(server.node.phis[0], at=t_fail,
                                       warning_lead=5.8)

        for job in jobs:
            yield job.host_proc.main_thread.done
        print(f"[{sim.now:6.2f}s] both jobs finished")
        for name, src, dst, when in migrator.migrations_done:
            print(f"    migrated {name}: mic{src} -> mic{dst} at t={when:.2f}s")

    server.run(scenario(server.sim))
    for job in jobs:
        assert job.verify(), f"{job.name} lost work!"
        assert job.coiproc.offload_proc.os is server.phi_os(1)
    assert injector.is_failed(server.node.phis[0])
    print("mic0 is dead, both jobs completed correctly on mic1 ✓")


if __name__ == "__main__":
    main()
