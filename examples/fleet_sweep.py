#!/usr/bin/env python
"""Fleet control plane: mixed load + health sweeps across a rack of cards.

Boots a `rack8` fleet (four dual-Phi servers, 8 cards), then drives it the
way a cluster operator would:

1. a health sweep probes every card through the same admission machinery
   as real work;
2. `fleet_sweep` pushes a mixed checkpoint / swap / migrate load — four
   keyed operations per card — through an admission-controlled
   `FleetManager` (global in-flight cap + per-card cap, priorities
   maintenance > swap > background);
3. a card is killed and the load repeated: the dead card's operations
   fail *keyed*, everyone else's complete, and the closing health sweep
   flags the failure.

Run:  python examples/fleet_sweep.py
"""

from repro.sched.faults import FaultInjector
from repro.snapify.fleet import FleetManager, fleet_sweep
from repro.testbed import XeonPhiFleet


def main() -> None:
    fleet = XeonPhiFleet("rack8")
    topo = fleet.topology
    print(f"booted fleet '{topo.name}': {topo.n_nodes} nodes x "
          f"{topo.phis_per_node} Phis = {topo.cards} cards ({topo.description})")

    manager = FleetManager(fleet, max_in_flight=8, per_card_limit=2)
    injector = FaultInjector(fleet.sim)

    def drive(sim):
        print(f"\n[{sim.now:7.3f}s] probing every card...")
        print((yield from manager.health_sweep()).summary())

        print(f"\n[{sim.now:7.3f}s] mixed sweep: 4 ops/card "
              f"(caps: {manager.max_in_flight} in flight, "
              f"{manager.per_card_limit}/card)")
        result = yield from fleet_sweep(fleet, manager, ops_per_card=4)
        result.raise_on_error()
        print(result.summary())
        for card, tickets in sorted(result.by_card().items()):
            kinds = ",".join(sorted({t.kind for t in tickets}))
            print(f"  {card}: {len(tickets)} ops ok ({kinds})")
        print(f"  high-water marks: {manager.hwm_in_flight} in flight "
              f"(cap {manager.max_in_flight}), "
              f"{max(manager.hwm_per_card.values())} per card "
              f"(cap {manager.per_card_limit})")

        dead = fleet.cards()[0]
        print(f"\n[{sim.now:7.3f}s] killing card {dead.key}; sweeping again...")
        injector.fail_now(fleet.phi(dead))
        result = yield from fleet_sweep(fleet, manager, ops_per_card=4)
        print(result.summary())
        own = [t for t in result.failures.values() if t.card.key == dead.key]
        assert len(own) == 4, "expected all of the dead card's ops to fail"
        # Collateral is confined to the dead card's node (its sibling's
        # migration targets the dead card); the other three nodes complete.
        assert all(t.card.node == dead.node for t in result.failures.values())

        after = yield from manager.health_sweep()
        print(f"\n{after.summary()}")
        assert [h.card for h in after.failed] == [dead.key]
        assert manager.quiescent(), "fleet left queued or in-flight work"
        print("\npartial failure stayed keyed and confined to the dead "
              "card's node; admission caps held throughout ✓")

    fleet.run(drive(fleet.sim))


if __name__ == "__main__":
    main()
