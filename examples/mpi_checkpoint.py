#!/usr/bin/env python
"""Coordinated checkpoint/restart of an MPI offload job (Fig. 11 setting).

Runs LU-MZ with 4 ranks on a 4-node Xeon Phi cluster, takes periodic
coordinated checkpoints, then kills the entire job and restarts every rank
from the latest checkpoint. All ranks finish with correct checksums.

Run:  python examples/mpi_checkpoint.py
"""

from repro.metrics import fmt_bytes, fmt_time
from repro.mpi import mpi_checkpoint, mpi_restart
from repro.testbed import XeonPhiCluster, mz_job


def main() -> None:
    cluster = XeonPhiCluster(n_nodes=4)
    job = mz_job(cluster, "LU-MZ", n_ranks=4, iterations=120)

    def scenario(sim):
        yield from job.launch()
        print(f"[{sim.now:6.2f}s] LU-MZ class C launched: 4 ranks, one per node, "
              "each offloading to its Xeon Phi")

        latest = None
        for k in range(2):
            yield sim.timeout(1.5)
            report = yield from mpi_checkpoint(job, f"/snap/lu_mz_{k}")
            latest = f"/snap/lu_mz_{k}"
            size = report["rank_snapshot_bytes"][0]
            print(f"[{sim.now:6.2f}s] coordinated checkpoint #{k}: "
                  f"{fmt_time(report['elapsed'])}, {fmt_bytes(size)}/rank "
                  f"(iterations: {[r.host_proc.store['iter'] for r in job.ranks]})")
            ops = ", ".join(f"op{res.op_id}:{res.state} {fmt_time(res.elapsed)}"
                            for res in report["operations"])
            print(f"            per-rank operations: {ops}")

        yield sim.timeout(0.5)
        print(f"[{sim.now:6.2f}s] cluster-wide failure: all ranks die")
        for rank in job.ranks:
            rank.host_proc.terminate(code=1)
        yield sim.timeout(0.1)
        for server in cluster.servers:
            server.host_os.fs.drop_caches()

        report = yield from mpi_restart(job, latest)
        print(f"[{sim.now:6.2f}s] restarted all ranks from {latest} in "
              f"{fmt_time(report['elapsed'])}")

        yield from job.join()
        print(f"[{sim.now:6.2f}s] job completed; per-rank iterations: "
              f"{[r.host_proc.store['iter'] for r in job.ranks]}")

    cluster.run(scenario(cluster.sim))
    assert job.verify(), "a rank produced a wrong checksum"
    print("every rank finished with the correct checksum ✓")


if __name__ == "__main__":
    main()
