"""Well-known SCIF port numbers used by the simulated MPSS stack."""

#: The COI daemon listens on the same fixed port on every card, which is why
#: the paper picks it as the pause coordinator ("each daemon listens to the
#: same fixed SCIF port number").
COI_DAEMON_PORT = 100

#: Each Snapify-IO daemon's remote server thread listens here.
SNAPIFY_IO_PORT = 200

#: Base for dynamically assigned client ports.
EPHEMERAL_BASE = 1024
