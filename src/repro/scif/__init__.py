"""SCIF: the Symmetric Communications Interface of MPSS (simulated)."""

from .endpoint import ConnectionReset, ScifEndpoint, ScifError, ScifListener, ScifNetwork
from .ports import COI_DAEMON_PORT, EPHEMERAL_BASE, SNAPIFY_IO_PORT
from .rdma import scif_readfrom, scif_vreadfrom, scif_vwriteto, scif_writeto
from .registry import RdmaRegistry, scif_register, scif_unregister

__all__ = [
    "COI_DAEMON_PORT",
    "ConnectionReset",
    "EPHEMERAL_BASE",
    "RdmaRegistry",
    "SNAPIFY_IO_PORT",
    "ScifEndpoint",
    "ScifError",
    "ScifListener",
    "ScifNetwork",
    "scif_readfrom",
    "scif_register",
    "scif_unregister",
    "scif_vreadfrom",
    "scif_vwriteto",
    "scif_writeto",
]
