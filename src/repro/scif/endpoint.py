"""SCIF endpoints: message passing and connections over PCIe.

SCIF (Symmetric Communications Interface) is MPSS's lowest-level IPC: the
host is SCIF node 0, each coprocessor is node 1..N, and endpoints connect
(node, port) pairs. We reproduce the API surface the paper's stack uses —
``connect``/``accept``/``send``/``recv`` plus the RDMA family in
:mod:`repro.scif.rdma` — with transfer costs charged to the PCIe link model.

Endpoint teardown matters: when a process dies (or is terminated by
``snapify_capture(terminate=True)``), its endpoints reset and the peer's
pending receives fail with :class:`ConnectionReset` — the condition
``snapify_restore()`` must repair by reconnecting all channels.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..hw.node import ServerNode
from ..hw.pcie import DEVICE_TO_HOST, HOST_TO_DEVICE, PCIeLink
from ..obs.registry import MetricsRegistry
from ..sim.channel import Channel
from ..sim.errors import SimError
from ..sim.events import Event
from .ports import EPHEMERAL_BASE

if TYPE_CHECKING:  # pragma: no cover
    from ..osim.process import OSInstance, SimProcess
    from ..sim.kernel import Simulator


class ScifError(SimError):
    """SCIF-level failure."""


class _SyncEnvelope:
    """Wrapper carrying the receipt-acknowledgement event of a sync send."""

    __slots__ = ("msg", "ack")

    def __init__(self, msg: Any, ack: Event):
        self.msg = msg
        self.ack = ack


class ConnectionReset(ScifError):
    """The peer endpoint vanished (its process died or closed)."""


def _segments(src_os: "OSInstance", dst_os: "OSInstance") -> List[Tuple[PCIeLink, str]]:
    """PCIe path between two OS instances on the same node.

    host->phi and phi->host are one hop; phi->phi is store-and-forward
    through host memory (two hops), matching MPSS's P2P implementation.
    """
    src_hw = getattr(src_os, "hw", None)
    dst_hw = getattr(dst_os, "hw", None)
    if src_hw is None or dst_hw is None:
        raise ScifError("OS instance not attached to hardware (boot_node first)")
    if src_os is dst_os:
        return []
    if isinstance(src_hw, ServerNode) and not isinstance(dst_hw, ServerNode):
        return [(dst_hw.link, HOST_TO_DEVICE)]
    if not isinstance(src_hw, ServerNode) and isinstance(dst_hw, ServerNode):
        return [(src_hw.link, DEVICE_TO_HOST)]
    if not isinstance(src_hw, ServerNode) and not isinstance(dst_hw, ServerNode):
        return [(src_hw.link, DEVICE_TO_HOST), (dst_hw.link, HOST_TO_DEVICE)]
    raise ScifError("host-to-host SCIF connections are not part of the model")


class ScifNetwork:
    """Per-node SCIF fabric: the (node_id, port) listener registry."""

    def __init__(self, node: ServerNode):
        self.node = node
        self.sim = node.sim
        self._listeners: Dict[Tuple[int, int], Channel] = {}
        self._ephemeral = itertools.count(EPHEMERAL_BASE)
        self.endpoints: List["ScifEndpoint"] = []
        reg = MetricsRegistry.of(self.sim)
        self._m_connects = reg.counter(f"scif.{node.name}.connections")
        reg.gauge(f"scif.{node.name}.open_endpoints",
                  lambda: sum(1 for ep in self.endpoints if not ep.closed))
        reg.gauge(f"scif.{node.name}.pending_messages",
                  lambda: sum(ep.pending for ep in self.endpoints if not ep.closed))

    @staticmethod
    def of(node: ServerNode) -> "ScifNetwork":
        net = getattr(node, "scif", None)
        if net is None:
            net = ScifNetwork(node)
            node.scif = net  # type: ignore[attr-defined]
        return net

    def os_for_scif_node(self, scif_node_id: int) -> "OSInstance":
        peer = self.node.scif_peer(scif_node_id)
        os = peer.os
        if os is None:
            raise ScifError(f"SCIF node {scif_node_id} has no booted OS")
        return os

    # -- listening ------------------------------------------------------------
    def listen(self, os: "OSInstance", port: int) -> "ScifListener":
        scif_node_id = self._node_id_of(os)
        key = (scif_node_id, port)
        if key in self._listeners:
            raise ScifError(f"SCIF port {key} already bound")
        backlog = Channel(self.sim, name=f"scif.listen:{key}")
        self._listeners[key] = backlog
        return ScifListener(self, key, backlog)

    def _node_id_of(self, os: "OSInstance") -> int:
        hw = getattr(os, "hw", None)
        if hw is self.node:
            return 0
        for phi in self.node.phis:
            if hw is phi:
                return phi.scif_node_id
        raise ScifError(f"{os.name} is not on node {self.node.name}")

    def has_listener(self, dst_node_id: int, dst_port: int) -> bool:
        """True if something is bound on (node, port) — the fail-fast probe
        ``snapifyio_open`` uses instead of hanging in the handshake."""
        return (dst_node_id, dst_port) in self._listeners

    # -- connecting --------------------------------------------------------------
    def connect(
        self,
        src_os: "OSInstance",
        dst_node_id: int,
        dst_port: int,
        proc: Optional["SimProcess"] = None,
    ):
        """Sub-generator: connect; returns the client :class:`ScifEndpoint`."""
        key = (dst_node_id, dst_port)
        backlog = self._listeners.get(key)
        if backlog is None:
            raise ScifError(f"connection refused: SCIF {key}")
        dst_os = self.os_for_scif_node(dst_node_id)
        for os_ in (src_os, dst_os):
            if getattr(getattr(os_, "hw", None), "link_down", False):
                raise ScifError(f"connect: PCIe link down on {os_.name}")
        client = ScifEndpoint(self.sim, src_os, port=next(self._ephemeral), proc=proc)
        server = ScifEndpoint(self.sim, dst_os, port=dst_port)
        client._attach(server)
        server._attach(client)
        self._m_connects.inc()
        self.endpoints.append(client)
        self.endpoints.append(server)
        # Connection handshake: one control message each way.
        for link, direction in _segments(src_os, dst_os):
            yield from link.message(direction)
        for link, direction in _segments(dst_os, src_os):
            yield from link.message(direction)
        yield backlog.send(server)
        return client


class ScifListener:
    def __init__(self, net: ScifNetwork, key: Tuple[int, int], backlog: Channel):
        self._net = net
        self.key = key
        self._backlog = backlog

    def accept(self) -> Event:
        """Event yielding the next accepted server-side endpoint."""
        return self._backlog.recv()

    def close(self) -> None:
        self._net._listeners.pop(self.key, None)
        self._backlog.close()


class ScifEndpoint:
    """One end of a SCIF connection."""

    def __init__(self, sim: "Simulator", os: "OSInstance", port: int,
                 proc: Optional["SimProcess"] = None):
        self.sim = sim
        self.os = os
        self.port = port
        # Endpoint ids are per-simulator, like thread ids: a process-global
        # counter would make eids (and every ep-derived event name and error
        # message) depend on how many simulators ran earlier, breaking
        # byte-identical replay of fuzz runs.
        ids = getattr(sim, "_scif_eids", None)
        if ids is None:
            ids = sim._scif_eids = itertools.count(1)
        self.eid = next(ids)
        self.proc = proc
        self.peer: Optional["ScifEndpoint"] = None
        self._rx = Channel(sim, name=f"scif.ep{self.eid}.rx")
        self._m_msgs = MetricsRegistry.of(sim).counter("scif.messages")
        self.closed = False
        #: offset -> window size; see repro.scif.registry
        self.windows: Dict[int, int] = {}
        if proc is not None:
            # Duck-typed cleanup: SimProcess.terminate() calls close().
            proc.open_fds.append(self)  # type: ignore[arg-type]

    def _attach(self, peer: "ScifEndpoint") -> None:
        self.peer = peer

    # -- messaging -------------------------------------------------------------
    def send(self, msg: Any, nbytes: int = 64):
        """Sub-generator: scif_send() of a control message."""
        if self.closed:
            raise ScifError(f"ep{self.eid}: send on closed endpoint")
        peer = self.peer
        if peer is None or peer.closed:
            raise ConnectionReset(f"ep{self.eid}: peer gone")
        for link, direction in _segments(self.os, peer.os):
            yield from link.message(direction, nbytes)
        if not _segments(self.os, peer.os):
            yield self.sim.timeout(1e-6)  # loopback
        self._m_msgs.inc()
        yield peer._rx.send(msg)

    def send_sync(self, msg: Any, nbytes: int = 64):
        """Sub-generator: *rendezvous* send — completes only once the peer
        has actually received the message.

        Snapify's case-4 drain relies on this: the COI pipeline's two send
        sites are "transformed ... to be blocking calls", so holding the
        send locks guarantees the pipeline channel is empty. The receipt
        confirmation costs an extra control message in the reverse
        direction — the per-call price Fig. 9 measures.
        """
        ack = Event(self.sim, name=f"ep{self.eid}.sync-ack")
        yield from self.send(_SyncEnvelope(msg, ack), nbytes)
        yield ack
        peer = self.peer
        if peer is not None and not peer.closed:
            for link, direction in _segments(peer.os, self.os):
                yield from link.message(direction)

    def recv(self) -> Event:
        """Event for the next scif_recv() message (sync sends unwrapped)."""
        if self.closed:
            raise ScifError(f"ep{self.eid}: recv on closed endpoint")
        ev = Event(self.sim, name=f"ep{self.eid}.recv")
        inner = self._rx.recv()

        def on_inner(inner_ev: Event) -> None:
            if ev.triggered:
                return
            if not inner_ev.ok:
                ev.fail(inner_ev.exception)
                return
            item = inner_ev._value
            if isinstance(item, _SyncEnvelope):
                item.ack.succeed(None)
                ev.succeed(item.msg)
            else:
                ev.succeed(item)

        inner.add_callback(on_inner)
        return ev

    @property
    def pending(self) -> int:
        """Messages queued but not received (drain-invariant probe)."""
        return self._rx.qsize

    # -- teardown ---------------------------------------------------------------
    @staticmethod
    def _fail_queued_sync_acks(channel: Channel, reason: str) -> None:
        for item in list(channel._items):
            if isinstance(item, _SyncEnvelope) and not item.ack.triggered:
                item.ack.fail(ConnectionReset(reason))

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.windows:
            # Release the pinned-page accounting for every window still
            # registered: a reset connection must not strand staging bytes
            # (the `staging_buffers_released` oracle pins this).
            self.os.memory.free(sum(self.windows.values()), "rdma_staging")
        self.windows.clear()
        self._fail_queued_sync_acks(self._rx, f"ep{self.eid} closed")
        self._rx.close(ConnectionReset(f"ep{self.eid} closed"))
        peer = self.peer
        if peer is not None and not peer.closed:
            self._fail_queued_sync_acks(peer._rx, f"peer ep{self.eid} closed")
            peer._rx.close(ConnectionReset(f"peer ep{self.eid} closed"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ScifEndpoint {self.eid} on {self.os.name} port={self.port}>"
