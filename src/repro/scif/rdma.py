"""SCIF RDMA verbs.

Four transfer functions mirror the real API (§2 of the paper):

* ``scif_vwriteto`` / ``scif_vreadfrom`` — local side is an arbitrary
  virtual buffer, remote side must be a registered window.
* ``scif_writeto`` / ``scif_readfrom`` — both sides registered (fastest
  path; used by COI for buffer transfers).

All verbs move ``nbytes`` across the PCIe path between the two endpoints'
OS instances and can carry an optional real ``payload`` that materializes at
the destination (the caller decides where to put it — RDMA is zero-copy, so
the verbs just return it).
"""

from __future__ import annotations

from typing import Any

from .endpoint import ScifEndpoint, ScifError, _segments
from .registry import check_local_window, check_remote_window


def _rdma_transfer(ep: ScifEndpoint, nbytes: int, toward_peer: bool):
    if ep.closed:
        raise ScifError(f"ep{ep.eid}: RDMA on closed endpoint")
    peer = ep.peer
    if peer is None or peer.closed:
        raise ScifError(f"ep{ep.eid}: RDMA with no live peer")
    if nbytes < 0:
        raise ScifError("negative RDMA size")
    src_os, dst_os = (ep.os, peer.os) if toward_peer else (peer.os, ep.os)
    segs = _segments(src_os, dst_os)
    if not segs:
        # Loopback RDMA: charge a memcpy on the local pool.
        yield ep.sim.timeout(ep.os.memory.memcpy_time(nbytes))
        return
    t0 = ep.sim.now
    for link, direction in segs:
        yield from link.rdma(direction, nbytes)
    if len(segs) == 2:
        # Device-to-device: the root complex paces P2P traffic far below
        # the raw per-hop DMA rate.
        p2p_bw = segs[0][0].params.p2p_bw
        floor = nbytes / p2p_bw
        elapsed = ep.sim.now - t0
        if elapsed < floor:
            yield ep.sim.timeout(floor - elapsed)


def scif_vwriteto(ep: ScifEndpoint, remote_offset: int, nbytes: int, payload: Any = None):
    """Sub-generator: push local virtual memory into the peer's window."""
    check_remote_window(ep, remote_offset, nbytes)
    yield from _rdma_transfer(ep, nbytes, toward_peer=True)
    return payload


def scif_vreadfrom(ep: ScifEndpoint, remote_offset: int, nbytes: int, payload: Any = None):
    """Sub-generator: pull the peer's window into local virtual memory."""
    check_remote_window(ep, remote_offset, nbytes)
    yield from _rdma_transfer(ep, nbytes, toward_peer=False)
    return payload


def scif_writeto(ep: ScifEndpoint, local_offset: int, remote_offset: int, nbytes: int, payload: Any = None):
    """Sub-generator: registered-to-registered push."""
    check_local_window(ep, local_offset, nbytes)
    check_remote_window(ep, remote_offset, nbytes)
    yield from _rdma_transfer(ep, nbytes, toward_peer=True)
    return payload


def scif_readfrom(ep: ScifEndpoint, local_offset: int, remote_offset: int, nbytes: int, payload: Any = None):
    """Sub-generator: registered-to-registered pull."""
    check_local_window(ep, local_offset, nbytes)
    check_remote_window(ep, remote_offset, nbytes)
    yield from _rdma_transfer(ep, nbytes, toward_peer=False)
    return payload
