"""RDMA window registration.

``scif_register()`` pins a memory range and returns an *offset* — the
address used by the RDMA verbs. Offsets are allocated from a per-OS counter
that never resets, so re-registering the same buffer after a process is
restored yields a *different* offset. That detail forces Snapify's
(old, new) address lookup table (§4.3), and our tests exercise it.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from ..hw.node import ServerNode
from .endpoint import ScifEndpoint, ScifError

if TYPE_CHECKING:  # pragma: no cover
    from ..osim.process import OSInstance

_PAGE = 4096


class RdmaRegistry:
    """Per-OS allocator of RDMA window offsets."""

    def __init__(self, os: "OSInstance"):
        self.os = os
        self._next = itertools.count(0x1_0000)

    @staticmethod
    def of(os: "OSInstance") -> "RdmaRegistry":
        reg = getattr(os, "rdma_registry", None)
        if reg is None:
            reg = RdmaRegistry(os)
            os.rdma_registry = reg  # type: ignore[attr-defined]
        return reg

    def allocate_offset(self, nbytes: int) -> int:
        pages = max(1, (nbytes + _PAGE - 1) // _PAGE)
        base = next(self._next)
        # Advance past the window so offsets never collide.
        for _ in range(pages):
            next(self._next)
        return base * _PAGE


def _pcie_params(os: "OSInstance"):
    hw = getattr(os, "hw", None)
    if isinstance(hw, ServerNode):
        return hw.params.pcie
    if hw is not None:
        return hw.node.params.pcie
    raise ScifError(f"{os.name}: OS not attached to hardware")


def scif_register(ep: ScifEndpoint, nbytes: int):
    """Sub-generator: register ``nbytes`` on ``ep``; returns the offset.

    Charges the page-pinning cost locally (no PCIe traffic), and accounts
    the pinned range against the OS's physical memory under the
    ``rdma_staging`` category so leaked registrations are visible to the
    memory-accounting and ``staging_buffers_released`` oracles. The bytes
    are released by ``scif_unregister`` or by ``ScifEndpoint.close()``.
    """
    if ep.closed:
        raise ScifError(f"ep{ep.eid}: register on closed endpoint")
    if nbytes <= 0:
        raise ScifError("cannot register an empty window")
    params = _pcie_params(ep.os)
    cost = params.register_latency_fixed + params.register_latency_per_mb * (
        nbytes / (1024 * 1024)
    )
    yield ep.sim.timeout(cost)
    ep.os.memory.allocate(nbytes, "rdma_staging")
    offset = RdmaRegistry.of(ep.os).allocate_offset(nbytes)
    ep.windows[offset] = nbytes
    return offset


def scif_unregister(ep: ScifEndpoint, offset: int) -> None:
    if offset not in ep.windows:
        raise ScifError(f"ep{ep.eid}: unregister of unknown offset {offset:#x}")
    ep.os.memory.free(ep.windows[offset], "rdma_staging")
    del ep.windows[offset]


def check_remote_window(ep: ScifEndpoint, remote_offset: int, nbytes: int) -> None:
    """Validate that the peer registered ``remote_offset`` for >= nbytes."""
    peer = ep.peer
    if peer is None or peer.closed:
        raise ScifError(f"ep{ep.eid}: no live peer for RDMA")
    size = peer.windows.get(remote_offset)
    if size is None:
        raise ScifError(
            f"ep{ep.eid}: RDMA to unregistered remote offset {remote_offset:#x} "
            "(stale address after restore?)"
        )
    if nbytes > size:
        raise ScifError(
            f"ep{ep.eid}: RDMA of {nbytes} bytes overruns window of {size} bytes"
        )


def check_local_window(ep: ScifEndpoint, local_offset: int, nbytes: int) -> None:
    size = ep.windows.get(local_offset)
    if size is None:
        raise ScifError(f"ep{ep.eid}: local offset {local_offset:#x} not registered")
    if nbytes > size:
        raise ScifError(
            f"ep{ep.eid}: RDMA of {nbytes} bytes overruns local window of {size} bytes"
        )
