"""Invariant oracles: conservation properties checked after every run.

Each oracle takes a quiesced :class:`~repro.testbed.XeonPhiServer` and
returns a list of :class:`Violation` (empty = invariant holds). Oracles are
deliberately *schedule-independent*: they assert what must be true at
quiescence no matter which legal interleaving got us there, which is what
makes them usable as fuzzing oracles (see :mod:`repro.check.fuzz`).

The properties come straight from the protocol's obligations (PAPER.md
§4–5): pause drains without losing messages, capture stages through
Snapify-IO and releases the staging copy, resume un-pauses everything it
paused, and the per-daemon monitor thread exists only while requests are
in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import XeonPhiServer


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which oracle, and what it saw."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


def _pools(server: "XeonPhiServer"):
    """(label, memory, os) for the host and every card."""
    yield "host", server.node.memory, server.host_os
    for i, phi in enumerate(server.node.phis):
        yield f"mic{i}", phi.memory, phi.os


def memory_accounting(server: "XeonPhiServer") -> List[Violation]:
    """Every memory pool balances: used == sum of categories, within capacity.

    Catches double-frees, leaked allocations, and accounting drift between a
    pool's total and its per-category ledger.
    """
    out: List[Violation] = []
    for label, mem, _os in _pools(server):
        cat_sum = sum(mem.by_category.values())
        if mem.used != cat_sum:
            out.append(Violation(
                "memory_accounting",
                f"{label}: used={mem.used} but categories sum to {cat_sum} "
                f"({dict(mem.by_category)})",
            ))
        if not 0 <= mem.used <= mem.capacity:
            out.append(Violation(
                "memory_accounting",
                f"{label}: used={mem.used} outside [0, capacity={mem.capacity}]",
            ))
        for cat, held in mem.by_category.items():
            if held < 0:
                out.append(Violation(
                    "memory_accounting", f"{label}: category {cat!r} negative ({held})"
                ))
    return out


def process_accounting(server: "XeonPhiServer") -> List[Violation]:
    """The 'process' category equals the live processes' mapped footprint.

    A mismatch means a terminated process leaked regions (or a live one was
    double-unmapped) — exactly the bug class restore/kill races produce.
    """
    out: List[Violation] = []
    for label, mem, os in _pools(server):
        live = sum(p.memory_footprint for p in os.processes.values())
        held = mem.by_category.get("process", 0)
        if live != held:
            out.append(Violation(
                "process_accounting",
                f"{label}: live process footprint {live} != accounted {held}",
            ))
    return out


def ramfs_accounting(server: "XeonPhiServer") -> List[Violation]:
    """Card RAM-FS bytes equal the 'ramfs' memory category.

    The RAM disk's files ARE physical card memory (§3), so the file system's
    ledger and the memory pool's ledger must agree byte-for-byte.
    """
    out: List[Violation] = []
    for i, phi in enumerate(server.node.phis):
        fs_bytes = phi.os.fs.total_bytes()
        held = phi.memory.by_category.get("ramfs", 0)
        if fs_bytes != held:
            out.append(Violation(
                "ramfs_accounting",
                f"mic{i}: ramfs files hold {fs_bytes} bytes but memory "
                f"accounts {held}",
            ))
    return out


def scif_conservation(server: "XeonPhiServer") -> List[Violation]:
    """No SCIF message is lost or duplicated across drain.

    For every *open* endpoint at quiescence: nothing may still be queued
    (pause promised to drain), and the receive channel's counters must
    balance — sent == received + queued. Closed endpoints are exempt:
    close() legally discards in-flight messages (the peer observes
    ``ConnectionReset`` instead).
    """
    from ..scif.endpoint import ScifNetwork

    out: List[Violation] = []
    net = ScifNetwork.of(server.node)
    for ep in net.endpoints:
        if ep.closed:
            continue
        rx = ep._rx
        if rx.sent_count != rx.received_count + rx.qsize:
            out.append(Violation(
                "scif_conservation",
                f"ep{ep.eid}: sent={rx.sent_count} != "
                f"received={rx.received_count} + queued={rx.qsize}",
            ))
        if ep.pending:
            out.append(Violation(
                "scif_conservation",
                f"ep{ep.eid}: {ep.pending} message(s) still queued at quiescence",
            ))
    return out


def nothing_left_paused(server: "XeonPhiServer") -> List[Violation]:
    """Every paused process was resumed or deliberately killed.

    Walks all live processes on every OS: a host-side :class:`COIProcess`
    handle or a card-side :class:`CardRuntime` still flagged ``paused`` at
    quiescence means a pause leaked past its resume.
    """
    out: List[Violation] = []
    for label, _mem, os in _pools(server):
        for proc in os.processes.values():
            handle = proc.runtime.get("coi_handle")
            if handle is not None and getattr(handle, "paused", False):
                out.append(Violation(
                    "nothing_left_paused",
                    f"{label}: host handle for {proc.name!r} still paused",
                ))
            card = proc.runtime.get("coi")
            if card is not None and getattr(card, "paused", False):
                out.append(Violation(
                    "nothing_left_paused",
                    f"{label}: card runtime of {proc.name!r} still paused",
                ))
    return out


def monitor_quiescent(server: "XeonPhiServer") -> List[Violation]:
    """Monitor threads exist only while requests are active (§4.2).

    At quiescence every live COI daemon must have an empty active-request
    table and no monitor thread. Daemons whose process died (card failure)
    are exempt — their flags died with them.
    """
    out: List[Violation] = []
    for daemon in server.coi_daemons:
        proc = daemon.proc
        if proc is None or proc.pid not in proc.os.processes:
            continue  # daemon died with its card
        svc = daemon.runtime.get("snapify")
        if svc is None:
            continue
        if svc.active:
            out.append(Violation(
                "monitor_quiescent",
                f"{proc.name}: {len(svc.active)} request(s) still active "
                f"(pids {sorted(svc.active)})",
            ))
        if svc.monitor_running:
            out.append(Violation(
                "monitor_quiescent", f"{proc.name}: monitor thread still running"
            ))
    return out


def staging_drained(server: "XeonPhiServer") -> List[Violation]:
    """Snapify-IO staging copies on the cards are released.

    Local stores staged on a card's RAM-FS (migration's direct path) are
    transient: once the buffers are recreated on the target, the staging
    file must be unlinked or it permanently eats card memory. Host-side
    snapshot files are durable by design and not checked here.
    """
    out: List[Violation] = []
    for i, phi in enumerate(server.node.phis):
        stale = [p for p in phi.os.fs.listdir("/") if p.endswith("/localstore")]
        if stale:
            out.append(Violation(
                "staging_drained", f"mic{i}: staging file(s) not released: {stale}"
            ))
    return out


def no_crashed_threads(server: "XeonPhiServer") -> List[Violation]:
    """No simulated thread died with an unhandled infrastructure exception.

    Threads may legitimately die with the *documented* error surface —
    teardown (:class:`ThreadKilled`), torn-down waits (:class:`Interrupted`),
    and the protocol's own error types (SCIF resets, Snapify/COI failure
    reports) that fault injection is supposed to produce. Anything else — a
    KeyError in a protocol handler, a failed internal invariant — is a bug
    the schedule exposed.
    """
    from ..coi.services import COIError
    from ..scif.endpoint import ScifError
    from ..sim.errors import Interrupted, ThreadKilled
    from ..snapify.monitor import SnapifyError

    benign = (ThreadKilled, Interrupted, ScifError, SnapifyError, COIError)
    out: List[Violation] = []
    for thread, exc in server.sim.failed_threads():
        if isinstance(exc, benign):
            continue
        out.append(Violation(
            "no_crashed_threads", f"thread {thread.name!r} died: {exc!r}"
        ))
    return out


def operations_quiescent(server: "XeonPhiServer") -> List[Violation]:
    """No Snapify operation is left in a non-terminal state at quiescence.

    Every operation the :class:`~repro.snapify.ops.OperationManager` issued
    must have reached DONE or FAILED — a REQUESTED/PAUSING/CAPTURING/…
    operation at quiescence is a leaked or wedged control-plane action.
    Operations whose processes are gone (the card died under them, or the
    run deliberately killed the app) are exempt: nobody is left to finish
    them, and the failure surfaced through the protocol's error path.
    """
    from ..snapify.ops import OperationManager

    mgr = OperationManager.peek(server.sim)
    if mgr is None:
        return []
    out: List[Violation] = []
    for op in mgr.non_terminal():
        if op.abandoned():
            continue
        out.append(Violation(
            "operations_quiescent",
            f"op {op.op_id} ({op.kind}, pid {op.pid}) left in {op.state}",
        ))
    return out


def no_truncated_commits(server: "XeonPhiServer") -> List[Violation]:
    """No committed remote file is shorter than its committed length.

    The Snapify-IO write protocol's core durability promise: a ``done/ok``
    reply means every byte of the stream is applied. Each daemon's commit
    ledger records the byte total it confirmed; a committed file that is
    missing or shorter than its ledger entry means a truncated stream was
    acknowledged — the exact bug the abort/resume protocol exists to
    prevent. (A *longer* file is fine — a later transfer may legitimately
    overwrite the path — and a *missing* file is fine too: consumers
    legitimately unlink committed staging files once applied, e.g.
    migration's card-to-card local store after restore.)
    """
    out: List[Violation] = []
    for label, _mem, os in _pools(server):
        daemon = getattr(os, "snapify_io_daemon", None)
        if daemon is None:
            continue
        for path, total in daemon.commits.items():
            if not os.fs.exists(path):
                continue  # consumed and unlinked: not a truncation
            if os.fs.stat(path).size < total:
                out.append(Violation(
                    "no_truncated_commits",
                    f"{label}: {path} committed at {total} bytes but holds "
                    f"{os.fs.stat(path).size}",
                ))
    return out


def staging_buffers_released(server: "XeonPhiServer") -> List[Violation]:
    """RDMA staging-buffer accounting matches the open registration windows.

    Every byte in a pool's ``rdma_staging`` category must be backed by a
    window on a currently *open* SCIF endpoint of that OS, and a closed
    endpoint must hold no windows — a mismatch means a connection reset (or
    daemon crash) leaked a registration, the bug class transient link flaps
    expose.
    """
    from ..scif.endpoint import ScifNetwork

    out: List[Violation] = []
    net = ScifNetwork.of(server.node)
    for label, mem, os in _pools(server):
        held = mem.by_category.get("rdma_staging", 0)
        windows = 0
        for ep in net.endpoints:
            if ep.os is not os:
                continue
            if ep.closed:
                if ep.windows:
                    out.append(Violation(
                        "staging_buffers_released",
                        f"{label}: closed ep{ep.eid} still holds "
                        f"{len(ep.windows)} registered window(s)",
                    ))
                continue
            windows += sum(ep.windows.values())
        if held != windows:
            out.append(Violation(
                "staging_buffers_released",
                f"{label}: rdma_staging accounts {held} bytes but open "
                f"endpoints register {windows}",
            ))
    return out


def retry_accounting(server: "XeonPhiServer") -> List[Violation]:
    """Retry/fallback counters are consistent with the injected faults.

    A run in which the fault injector executed nothing must not have
    retried, degraded, or aborted anything: nonzero resilience counters on
    a clean run mean the transfer path is failing (and recovering) on its
    own, which would silently mask real regressions.
    """
    from ..obs.registry import MetricsRegistry

    injector = getattr(server, "fault_injector", None)
    if injector is None or injector.injected:
        return []  # faults ran (or no injector attached): retries are legal
    counters = MetricsRegistry.of(server.sim).snapshot()["counters"]
    out: List[Violation] = []
    for name in ("snapifyio.retries", "snapifyio.fallbacks", "snapifyio.aborts"):
        n = counters.get(name, 0)
        if n:
            out.append(Violation(
                "retry_accounting",
                f"{name} = {n} with no injected faults",
            ))
    return out


def fleet_admission_caps(server: "XeonPhiServer") -> List[Violation]:
    """No fleet manager ever exceeded its admission caps.

    The high-water marks are recorded at admission time, so they witness
    every interleaving the run explored: a mark above the configured cap
    means the admission controller let an operation through that it was
    supposed to queue.
    """
    from ..snapify.fleet import FleetManager

    out: List[Violation] = []
    for mgr in FleetManager.all_of(server.sim):
        if mgr.hwm_in_flight > mgr.max_in_flight:
            out.append(Violation(
                "fleet_admission_caps",
                f"{mgr.name}: in-flight high-water {mgr.hwm_in_flight} "
                f"exceeds cap {mgr.max_in_flight}",
            ))
        for card, hwm in sorted(mgr.hwm_per_card.items()):
            if hwm > mgr.per_card_limit:
                out.append(Violation(
                    "fleet_admission_caps",
                    f"{mgr.name}: card {card} high-water {hwm} exceeds "
                    f"per-card limit {mgr.per_card_limit}",
                ))
    return out


def fleet_no_starvation(server: "XeonPhiServer") -> List[Violation]:
    """Every submitted fleet ticket reached a terminal state.

    A ticket still QUEUED or RUNNING at quiescence was starved (the pump
    never admitted it) or leaked (its runner died without finishing it) —
    either way the caller's ``collect`` would have hung on it.
    """
    from ..snapify.fleet import TICKET_TERMINAL, FleetManager

    out: List[Violation] = []
    for mgr in FleetManager.all_of(server.sim):
        for t in mgr.tickets:
            if t.state not in TICKET_TERMINAL:
                card = t.card.key if t.card is not None else "-"
                out.append(Violation(
                    "fleet_no_starvation",
                    f"{mgr.name}: ticket {t.key!r} ({t.kind}, {card}) "
                    f"left {t.state}",
                ))
    return out


def fleet_quiescent(server: "XeonPhiServer") -> List[Violation]:
    """Fleet managers hold no work at quiescence.

    At the end of a run every queue must be empty and the in-flight count
    zero; a nonzero count with no runnable work is a leaked admission slot
    (``_finish`` never ran), which would silently shrink the fleet's
    effective concurrency.
    """
    from ..snapify.fleet import FleetManager

    out: List[Violation] = []
    for mgr in FleetManager.all_of(server.sim):
        if mgr.in_flight:
            out.append(Violation(
                "fleet_quiescent",
                f"{mgr.name}: {mgr.in_flight} operation(s) still in flight",
            ))
        depth = mgr.queue_depth()
        if depth:
            out.append(Violation(
                "fleet_quiescent",
                f"{mgr.name}: {depth} operation(s) still queued",
            ))
    return out


def delta_chain_reconstructs(server: "XeonPhiServer") -> List[Violation]:
    """Every incremental chain in the memory tier reassembles cleanly.

    The incremental format's core correctness promise: the base image plus
    the recorded deltas, replayed in epoch order with CRC and fingerprint
    verification on, must reproduce exactly the state a full capture at the
    same epoch would have recorded. A chain that fails to reassemble —
    CRC mismatch, epoch gap, fingerprint divergence — means a capture
    committed a link it cannot stand behind, no matter which interleaving
    (partner deaths, demotion races) produced it.
    """
    from ..blcr import ChainError, reassemble
    from ..snapify_io.memtier import MemoryTier

    tier = MemoryTier.peek(server.sim)
    if tier is None:
        return []
    out: List[Violation] = []
    for path, entry in sorted(tier.chains.items()):
        if not entry.links:
            continue
        try:
            reassemble(entry.images, verify=True)
        except ChainError as exc:
            out.append(Violation(
                "delta_chain_reconstructs",
                f"{path}: {len(entry.links)}-link chain does not "
                f"reassemble: {exc}",
            ))
    return out


def partner_copy_consistent(server: "XeonPhiServer") -> List[Violation]:
    """The tier's replication ledger never counts a torn partner image.

    Two obligations, audited per chain link and per card:

    * a link marked ``replicated`` whose partner copies are all torn has
      committed a half-streamed image as its surviving replica — the exact
      corruption the mid-copy health checks exist to prevent (losing an
      intact replica later to a card *death* is legal; tearing one during
      the stream and still counting it is not);
    * each registered card's ``snap_tier`` memory category must equal the
      bytes of the intact copies the ledger homes there — drift means a
      torn/released copy kept its allocation or an intact one was freed.
    """
    from ..snapify_io.memtier import TIER_CATEGORY, MemoryTier

    tier = MemoryTier.peek(server.sim)
    if tier is None:
        return []
    out: List[Violation] = []
    ledger_bytes: dict = {}
    for path, entry in sorted(tier.chains.items()):
        for link in entry.links:
            for copy in link.copies:
                if copy.intact:
                    ledger_bytes[copy.home] = (
                        ledger_bytes.get(copy.home, 0) + copy.nbytes
                    )
            partners = [c for c in link.copies if c.role == "partner"]
            torn = [c for c in partners if c.torn]
            if link.replicated and torn and not any(
                c.intact or c.lost or c.released for c in partners
            ):
                out.append(Violation(
                    "partner_copy_consistent",
                    f"{path}: epoch {link.image.epoch} marked replicated "
                    f"but its only partner image(s) are torn "
                    f"({[c.home for c in torn]})",
                ))
    for key in tier._order:
        mem = tier._mem_of(key)
        if mem is None:
            continue
        held = mem.by_category.get(TIER_CATEGORY, 0)
        expected = ledger_bytes.get(key, 0)
        if held != expected:
            out.append(Violation(
                "partner_copy_consistent",
                f"{key}: snap_tier accounts {held} bytes but the ledger's "
                f"intact copies there total {expected}",
            ))
    return out


def socket_listeners_owned(server: "XeonPhiServer") -> List[Violation]:
    """Every bound socket name with an owner belongs to a *live* process.

    A listener re-bound by the socket checkpoint plugin (or bound by any
    process) is released when its owner terminates; a name still bound to a
    dead owner at quiescence is a namespace leak — the next restore of the
    same image would fail its re-bind with a spurious collision.
    """
    out: List[Violation] = []
    for label, _mem, os in _pools(server):
        for address, listener in os.sockets.bound.items():
            owner = listener.owner
            if owner is not None and not owner.alive:
                out.append(Violation(
                    "socket_listeners_owned",
                    f"{label}: listener {address!r} still bound to dead "
                    f"process {owner.name}",
                ))
    return out


def restored_files_consistent(server: "XeonPhiServer") -> List[Violation]:
    """Plugin-restored RAM-FS descriptors point at real files, mid-range.

    For every live process the ramfs_files plugin restored descriptors for:
    the backing file must exist on that OS's file system and the read cursor
    must sit within the record stream — a cursor past the end means the
    restore resurrected an offset the content does not cover.
    """
    out: List[Violation] = []
    for label, _mem, os in _pools(server):
        for proc in os.processes.values():
            for path, fd in proc.runtime.get("restored_files", {}).items():
                if not os.fs.exists(path):
                    out.append(Violation(
                        "restored_files_consistent",
                        f"{label}/{proc.name}: restored fd for missing file "
                        f"{path!r}",
                    ))
                if fd._read_cursor > len(fd._records):
                    out.append(Violation(
                        "restored_files_consistent",
                        f"{label}/{proc.name}: {path!r} cursor "
                        f"{fd._read_cursor} beyond {len(fd._records)} records",
                    ))
    return out


def pending_signals_blocked(server: "XeonPhiServer") -> List[Violation]:
    """A queued signal at quiescence is only legal while it is blocked.

    Signals queue exclusively because the mask blocks them; once unblocked
    they must have been delivered. A pending signal whose number is not in
    the blocked mask at quiescence is a lost delivery — exactly the bug the
    signals checkpoint plugin exists to prevent across restore.
    """
    out: List[Violation] = []
    for label, _mem, os in _pools(server):
        for proc in os.processes.values():
            stuck = [s for s in proc.pending_signals
                     if s not in proc.blocked_signals]
            if stuck:
                out.append(Violation(
                    "pending_signals_blocked",
                    f"{label}/{proc.name}: signal(s) {stuck} pending but not "
                    "blocked — delivery was lost",
                ))
    return out


def rdma_windows_replayed(server: "XeonPhiServer") -> List[Violation]:
    """No live restored process still carries un-replayed RDMA window specs.

    The RDMA plugin stashes captured windows in
    ``runtime["rdma_restore_pending"]`` for the program to re-register via
    :func:`~repro.blcr.plugins.replay_rdma_windows`. Specs still pending at
    quiescence mean the restored process ran to quiescence without its
    windows — its RDMA operations were silently un-backed.
    """
    out: List[Violation] = []
    for label, _mem, os in _pools(server):
        for proc in os.processes.values():
            pending = proc.runtime.get("rdma_restore_pending")
            if pending:
                out.append(Violation(
                    "rdma_windows_replayed",
                    f"{label}/{proc.name}: {len(pending)} RDMA window(s) "
                    "captured but never re-registered after restore",
                ))
    return out


def team_membership_consistent(server: "XeonPhiServer") -> List[Violation]:
    """Replication-team membership is coherent at quiescence.

    For every :class:`~repro.mpi.replication.ReplicatedJob` on the
    simulator: no replica is both live and dropped, live replicas of one
    team occupy pairwise-distinct cards (the anti-affinity contract), every
    dropped replica's host process is fenced (not still running), and every
    replica the job ever placed is accounted for as live or dropped.
    """
    from ..mpi.replication import ReplicatedJob

    out: List[Violation] = []
    for job in ReplicatedJob.all_of(server.sim):
        comm = job.comm
        for team in range(job.n_teams):
            live = comm.live[team]
            dropped = comm.dropped[team]
            overlap = [r for r in live if r in dropped]
            if overlap:
                out.append(Violation(
                    "team_membership_consistent",
                    f"{job.name} team {team}: replicas {overlap} both live "
                    f"and dropped",
                ))
            cards = [job.placement[(team, r)].key for r in live
                     if (team, r) in job.placement]
            if len(set(cards)) != len(cards):
                out.append(Violation(
                    "team_membership_consistent",
                    f"{job.name} team {team}: live replicas share a card "
                    f"({cards})",
                ))
            for r in dropped:
                rep = job.replicas.get((team, r))
                proc = rep.host_proc if rep is not None else None
                if proc is not None and proc.alive:
                    out.append(Violation(
                        "team_membership_consistent",
                        f"{job.name} team {team}: dropped replica {r} was "
                        "never fenced (host process still alive)",
                    ))
            placed = sorted(r for (t, r) in job.replicas if t == team)
            tracked = sorted(live + dropped)
            if placed != tracked:
                out.append(Violation(
                    "team_membership_consistent",
                    f"{job.name} team {team}: replicas {placed} placed but "
                    f"{tracked} tracked as live+dropped",
                ))
    return out


def no_duplicate_delivery(server: "XeonPhiServer") -> List[Violation]:
    """Message accounting balances and nothing was delivered twice.

    Replica layer: every ``(replica, message)`` pair in a
    :class:`~repro.mpi.replication.TeamComm` was delivered exactly once
    (fan-out duplicates suppressed, re-seed backfill included) and the copy
    ledger balances. Substrate layer: every
    :class:`~repro.mpi.runtime.MPIComm` conserves messages —
    ``sent == consumed + pending`` — with duplicate re-sends counted in
    ``messages_dropped``, never in ``messages_sent``.
    """
    from ..mpi.replication import TeamComm
    from ..mpi.runtime import MPIComm

    out: List[Violation] = []
    for comm in TeamComm.all_of(server.sim):
        dups = {k: n for k, n in comm.delivered_counts.items() if n != 1}
        if dups:
            sample = next(iter(dups.items()))
            out.append(Violation(
                "no_duplicate_delivery",
                f"{len(dups)} replica message(s) delivered != 1 time "
                f"(e.g. {sample[0]} x{sample[1]})",
            ))
        if not comm.ledger_balanced():
            out.append(Violation(
                "no_duplicate_delivery",
                f"team copy ledger unbalanced: sent={comm.copies_sent} "
                f"backfilled={comm.backfilled} delivered={comm.delivered} "
                f"suppressed={comm.suppressed} "
                f"dropped_dead={comm.dropped_dead}",
            ))
    for mpi in MPIComm.all_of(server.sim):
        expect = mpi.messages_consumed + mpi.pending_messages()
        if mpi.messages_sent != expect:
            out.append(Violation(
                "no_duplicate_delivery",
                f"MPI message conservation broken: sent="
                f"{mpi.messages_sent} != consumed({mpi.messages_consumed}) "
                f"+ pending({mpi.pending_messages()}) "
                f"[dropped={mpi.messages_dropped}]",
            ))
    return out


#: All oracles, in check order. ``check_all`` runs every one of these.
ORACLES: List[Callable[["XeonPhiServer"], List[Violation]]] = [
    memory_accounting,
    process_accounting,
    ramfs_accounting,
    scif_conservation,
    nothing_left_paused,
    monitor_quiescent,
    staging_drained,
    operations_quiescent,
    no_truncated_commits,
    staging_buffers_released,
    retry_accounting,
    fleet_admission_caps,
    fleet_no_starvation,
    fleet_quiescent,
    delta_chain_reconstructs,
    partner_copy_consistent,
    socket_listeners_owned,
    restored_files_consistent,
    pending_signals_blocked,
    rdma_windows_replayed,
    team_membership_consistent,
    no_duplicate_delivery,
    no_crashed_threads,
]


def check_all(server: "XeonPhiServer") -> List[Violation]:
    """Run every oracle against a quiesced server; return all violations."""
    out: List[Violation] = []
    for oracle in ORACLES:
        out.extend(oracle(server))
    return out
