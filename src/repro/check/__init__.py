"""Schedule-exploration fuzzing and protocol invariant oracles.

The determinism of the simulation kernel (seed + workload → one schedule) is
a double-edged sword: it makes every run replayable, but by itself it
exercises exactly one interleaving per workload. This package turns that
determinism into systematic exploration:

* :mod:`repro.check.oracles` — machine-checked conservation properties of
  the Snapify protocol (memory accounting balances, SCIF messages are
  neither lost nor duplicated, paused processes resume or die deliberately,
  staging drains, monitor threads exit).
* :mod:`repro.check.scenarios` — self-contained checkpoint / restart /
  swap / migrate workloads parameterized by ``(schedule_seed, faults)``.
* :mod:`repro.check.fuzz` — the sweep driver: seeds × scenarios × fault
  plans, every run checked against every oracle.
* :mod:`repro.check.artifact` — minimal repro artifacts: a failing run
  serializes to a JSON file that replays with one command.

Entry points: ``snapify fuzz`` (see :mod:`repro.obs.cli`) and
``tests/test_schedule_fuzz.py``.
"""

from .artifact import ReproArtifact
from .fuzz import FuzzReport, fuzz, replay_artifact
from .oracles import ORACLES, Violation, check_all
from .scenarios import CHECKPOINT_FAULT_PHASES, SCENARIOS, RunResult, run_scenario

__all__ = [
    "CHECKPOINT_FAULT_PHASES",
    "FuzzReport",
    "ORACLES",
    "ReproArtifact",
    "RunResult",
    "SCENARIOS",
    "Violation",
    "check_all",
    "fuzz",
    "replay_artifact",
    "run_scenario",
]
