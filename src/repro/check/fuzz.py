"""The fuzz driver: sweep seeds × scenarios × fault plans, check oracles.

The sweep itself is deterministic: the fault plan for a given (scenario,
seed) pair is a fixed function of the pair, so a fuzz campaign is fully
described by its scenario list and seed range — and any failure it finds is
already a replayable triple (see :mod:`repro.check.artifact`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .artifact import ReproArtifact
from .scenarios import RunResult, run_scenario, scenario_names

#: Scenarios that only ever touch card 0, leaving card 1 free to fail.
_SPARE_CARD_SCENARIOS = ("checkpoint", "restart", "swap")


def default_faults(scenario: str, seed: int) -> List[Dict[str, Any]]:
    """The deterministic per-(scenario, seed) fault plan of the default sweep.

    Every third seed runs fault-free; the rest fail the *spare* card (the
    one the workload does not use) mid-run — with and without a repair — to
    prove an unrelated card failure never perturbs a protocol in flight.
    Scenarios that use both cards (migrate) and the phase-injection
    scenarios (checkpoint_fault:*) carry their fault in the scenario itself.
    The plugin:* sweep runs fault-free by design (it falls through to the
    empty plan): its adversary is the seed's restore-target parity, not an
    injected failure.
    """
    base, _, mode = scenario.partition(":")
    if base == "transfer_fault":
        return _transfer_faults(mode, seed)
    if base == "incremental":
        return _incremental_faults(mode, seed)
    if base == "fleet":
        # Every third seed kills one fleet card mid-sweep (card choice and
        # timing walk with the seed); the rest run clean, so the sweep
        # covers both the all-DONE and the partial-failure surface.
        if seed % 3 != 1:
            return []
        return [{"kind": "fleet_card_failure", "card": seed % 64,
                 "at": 2.5 + 0.1 * (seed % 5)}]
    if base == "replication":
        return _replication_faults(mode, seed)
    if base not in _SPARE_CARD_SCENARIOS:
        return []
    variant = seed % 3
    if variant == 0:
        return []
    fault: Dict[str, Any] = {"device": 1, "at": 0.4 + 0.05 * (seed % 7)}
    if variant == 2:
        fault["warning_lead"] = 0.1
        fault["repair_after"] = 0.5
    return [fault]


def _transfer_faults(mode: str, seed: int) -> List[Dict[str, Any]]:
    """Deterministic fault plans for the ``transfer_fault:<mode>`` sweep.

    The scenario starts its transfer 0.3 s after boot with a ~1 s retry
    horizon per channel, so the windows below land before, inside, and
    after the transfer as the seed varies:

    * ``flap`` — the card's PCIe link flaps transiently and comes back:
      Snapify-IO should retry/resume and still carry the file.
    * ``daemon_crash`` — the host Snapify-IO daemon crashes and restarts:
      retries either land after the restart or degrade to NFS.
    * ``fallback`` — a daemon endpoint dies for good: the chain must
      degrade and the file must still arrive.
    * ``cascade`` — Snapify-IO, NFS, and the link are all taken down: the
      transfer must fail *cleanly* with the aggregated cause chain.
    """
    if mode == "flap":
        return [{"kind": "link_flap", "device": 0,
                 "at": 0.31 + 0.01 * (seed % 8),
                 "up_after": 0.05 + 0.05 * (seed % 3)}]
    if mode == "daemon_crash":
        return [{"kind": "io_daemon_crash", "node": 0,
                 "at": 0.3 + 0.02 * (seed % 6),
                 "restart_after": 0.08 + 0.04 * (seed % 2)}]
    if mode == "fallback":
        return [{"kind": "io_daemon_crash", "node": seed % 2,
                 "at": 0.3 + 0.02 * (seed % 5)}]
    if mode == "cascade":
        return [
            {"kind": "io_daemon_crash", "node": 0, "at": 0.3},
            {"kind": "nfs_down", "at": 0.3 + 0.01 * (seed % 4)},
            {"kind": "link_flap", "device": 0, "at": 0.32 + 0.01 * (seed % 4)},
        ]
    raise ValueError(f"unknown transfer_fault mode {mode!r}")


def _incremental_faults(mode: str, seed: int) -> List[Dict[str, Any]]:
    """Deterministic fault plans for the ``incremental:<mode>`` sweep.

    The scenario runs three capture epochs on card 0 starting ~0.3 s after
    boot, each replicated to the partner card 1, then (``demotion_race``
    only) submits a BACKGROUND demotion ticket with a ~3 s retry horizon:

    * ``delta_chain`` — fault-free: the base+delta ledger itself is the
      artifact under test; the ``delta_chain_reconstructs`` oracle must
      reassemble it byte-for-byte.
    * ``partner_loss`` — the partner card dies inside the capture window
      (sometimes coming back): a replication caught mid-stream leaves a
      torn copy that must be dropped, never counted as a surviving copy.
    * ``demotion_race`` — the NFS export flaps across the demotion ticket's
      retry horizon: the demote must either land a complete chain file
      after the export returns or fail cleanly with the chain still
      memory-resident.
    """
    if mode == "delta_chain":
        return []
    if mode == "partner_loss":
        fault: Dict[str, Any] = {"device": 1,
                                 "at": 0.32 + 0.04 * (seed % 8)}
        if seed % 2 == 1:
            fault["repair_after"] = 0.3 + 0.1 * (seed % 3)
        return [fault]
    if mode == "demotion_race":
        return [{"kind": "nfs_down", "at": 0.35 + 0.1 * (seed % 6),
                 "restore_after": 0.5 + 0.5 * (seed % 4)}]
    raise ValueError(f"unknown incremental mode {mode!r}")


def _replication_faults(mode: str, seed: int) -> List[Dict[str, Any]]:
    """Deterministic fault plans for the ``replication:<mode>`` sweep.

    Fault times are offsets after the replicated job launches; the job
    runs ~0.4 s of halo-exchange iterations, so the windows walk across
    early, mid, and late (sometimes post-completion) run phases as the
    seed varies. Every third seed runs clean so the sweep also covers the
    fault-free fan-out/dedup surface:

    * ``card_failure`` — one replica's card dies (occasionally repaired):
      its team must finish on the survivor with zero restarts.
    * ``team_wipe`` — both replicas of team 0 die a beat apart: the run
      must end with a clean ReplicationError, never a deadlock.
    * ``lagging_replica`` — one replica's link flaps long enough for the
      heartbeat to drop it; the detector re-seeds the team from the
      healthy replica through the fleet's MAINTENANCE lane.
    """
    if seed % 3 == 0:
        return []
    if mode == "card_failure":
        fault: Dict[str, Any] = {
            "kind": "replica_card_failure", "team": seed % 2,
            "replica": (seed // 3) % 2, "at": 0.1 + 0.05 * (seed % 6),
        }
        if seed % 4 == 2:
            fault["repair_after"] = 0.3 + 0.1 * (seed % 3)
        return [fault]
    if mode == "team_wipe":
        at = 0.1 + 0.04 * (seed % 5)
        return [
            {"kind": "replica_card_failure", "team": 0, "replica": 0,
             "at": at},
            {"kind": "replica_card_failure", "team": 0, "replica": 1,
             "at": at + 0.02 + 0.02 * (seed % 4)},
        ]
    if mode == "lagging_replica":
        return [{"kind": "replica_link_flap", "team": seed % 2,
                 "replica": (seed // 2) % 2, "at": 0.1 + 0.05 * (seed % 5),
                 "up_after": 0.2 + 0.1 * (seed % 3)}]
    raise ValueError(f"unknown replication mode {mode!r}")


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    runs: List[RunResult] = field(default_factory=list)
    artifact_paths: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[RunResult]:
        return [r for r in self.runs if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {len(self.runs)} runs, "
            f"{len(self.runs) - len(self.failures)} ok, {len(self.failures)} failed"
        ]
        for r in self.failures:
            lines.append(f"  FAIL {r.summary()}")
        for p in self.artifact_paths:
            lines.append(f"  artifact: {p}")
        return "\n".join(lines)


def fuzz(
    scenarios: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = range(10),
    *,
    faults_for: Callable[[str, int], List[Dict[str, Any]]] = default_faults,
    artifact_dir: Optional[str] = None,
    fail_fast: bool = False,
    progress: Optional[Callable[[RunResult], None]] = None,
) -> FuzzReport:
    """Sweep every scenario under every seed; oracle-check each run.

    Failures (oracle violations, deadlocks, crashes) are collected in the
    report; with ``artifact_dir``, each failure also writes a repro
    artifact. ``progress`` is called after every run (the CLI uses it for
    live output).
    """
    if scenarios is None:
        scenarios = scenario_names()
    report = FuzzReport()
    for scenario in scenarios:
        for seed in seeds:
            result = run_scenario(scenario, seed=seed, faults=faults_for(scenario, seed))
            report.runs.append(result)
            if progress is not None:
                progress(result)
            if not result.ok:
                if artifact_dir is not None:
                    art = ReproArtifact.from_result(result)
                    os.makedirs(artifact_dir, exist_ok=True)
                    path = os.path.join(artifact_dir, art.filename())
                    report.artifact_paths.append(art.save(path))
                    flight = art.save_flight(
                        os.path.join(artifact_dir, art.flight_filename())
                    )
                    if flight is not None:
                        report.artifact_paths.append(flight)
                if fail_fast:
                    return report
    return report


def replay_artifact(path: str, *, capture_trace: bool = False) -> Tuple[ReproArtifact, RunResult]:
    """Re-run the exact (scenario, seed, faults) triple an artifact records."""
    art = ReproArtifact.load(path)
    result = run_scenario(
        art.scenario, seed=art.seed, faults=art.faults, capture_trace=capture_trace
    )
    return art, result
