"""Fuzzable end-to-end scenarios: one (seed, faults) triple → one run.

Each scenario boots a fresh :class:`~repro.testbed.XeonPhiServer` on a
kernel seeded with ``schedule_seed``, drives one of the paper's use cases
(checkpoint, restart-after-failure, swap cycle, migration, or a checkpoint
with a card failure at a chosen phase boundary), quiesces, and checks every
invariant oracle. The whole run is a pure function of
``(scenario, seed, faults)`` — the replay guarantee the fuzzer's repro
artifacts rely on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..apps import OffloadApplication, expected_checksum
from ..blcr.plugins import PluginError
from ..coi import OffloadBinary, OffloadFunction
from ..coi.services import COIError
from ..hw import MB
from ..hw.memory import MemoryExhausted
from ..scif.endpoint import ConnectionReset, ScifError
from ..sched.faults import FaultInjector
from ..sim.errors import DeadlockError, Interrupted, ThreadKilled
from ..sim.kernel import Simulator
from ..snapify import (
    MIGRATE,
    SWAP_IN,
    SWAP_OUT,
    SnapifyError,
    checkpoint_offload_app,
    restart_offload_app,
    snapify_capture,
    snapify_command,
    snapify_pause,
    snapify_resume,
    snapify_t,
    snapify_wait,
    snapshot_application,
)
from ..snapify.ops import OperationManager
from ..snapify.usecases import transfer_snapshot
from ..snapify_io import RetryPolicy, SnapifyIOError, TransferFailed, TransferManager
from ..testbed import XeonPhiServer, offload_app
from .oracles import Violation, check_all

#: Errors a faulted run may legitimately surface instead of completing:
#: the protocol's documented failure reports, not crashes.
CLEAN_ERRORS = (SnapifyError, COIError, ScifError, ConnectionReset, MemoryExhausted,
                SnapifyIOError, PluginError)

#: Phase boundaries at which ``checkpoint_fault`` injects the card failure.
CHECKPOINT_FAULT_PHASES = (
    "before_pause",
    "after_pause",
    "after_capture",
    "after_wait",
    "after_resume",
)

#: Fault shapes the ``transfer_fault`` scenario is fuzzed under (the mode
#: rides in the name, ``transfer_fault:<mode>``; the fuzzer derives the
#: per-seed fault plan from it — see :func:`repro.check.fuzz.default_faults`).
TRANSFER_FAULT_MODES = ("flap", "daemon_crash", "fallback", "cascade")

#: Fault shapes of the ``incremental:<mode>`` sweep: clean delta chains, the
#: partner card dying mid-replication, and the NFS demotion path flapping
#: under the background demotion ticket.
INCREMENTAL_MODES = ("delta_chain", "partner_loss", "demotion_race")

#: Resource classes of the ``plugin:<mode>`` sweep — one checkpoint-content
#: plugin each (sockets, RAM-FS file offsets, pending signals, RDMA
#: windows). Plugin scenarios run fault-free: the adversary is the seed's
#: restore-target parity (same card vs cross card), not an injected fault.
PLUGIN_MODES = ("socket_restore", "ramfs_offsets", "signal_pending",
                "rdma_migrate")

#: Fault shapes of the ``replication:<mode>`` sweep — a replica's card
#: dying under its team (the survivors must carry the run), both replicas
#: of one team dying (the wipe must surface as a clean ReplicationError),
#: and a replica lagging behind a flapped link (heartbeat drop + re-seed
#: through the fleet's MAINTENANCE lane).
REPLICATION_MODES = ("card_failure", "team_wipe", "lagging_replica")

ITERATIONS = 8
_GRACE = 5.0  # simulated seconds a faulted app may take to surface its error


@dataclass
class RunResult:
    """Everything the fuzzer (and a repro artifact) needs about one run."""

    scenario: str
    seed: Optional[int]
    faults: Tuple[Dict[str, Any], ...]
    ok: bool
    outcome: str  # completed | faulted | clean_error | deadlock | crash
    violations: List[Violation] = field(default_factory=list)
    error: Optional[str] = None
    error_type: Optional[str] = None
    final_time: float = 0.0
    waitfor: List[Dict[str, Any]] = field(default_factory=list)
    trace_digest: Optional[str] = None
    #: describe() dicts of every Snapify operation the run issued — failed
    #: seeds name the operation (id, kind, pid, state) that wedged.
    operations: List[Dict[str, Any]] = field(default_factory=list)
    #: Flight-recorder post-mortem bundle (recent events + active ops +
    #: alert state + metric snapshot), attached only to failed runs — see
    #: :func:`repro.obs.recorder.postmortem_bundle`.
    postmortem: Optional[Dict[str, Any]] = None

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        bits = [f"{self.scenario} seed={self.seed}: {verdict} ({self.outcome})"]
        if self.error:
            bits.append(f"error={self.error}")
        bits.extend(str(v) for v in self.violations)
        if not self.ok:
            stuck = [o for o in self.operations
                     if o.get("state") not in ("DONE", "FAILED")]
            bits.extend(
                f"op {o['op']} ({o['kind']}, pid {o['pid']}) in {o['state']}"
                for o in stuck
            )
        return "; ".join(bits)


def _mk_app(server: XeonPhiServer, name: str = "fuzzapp") -> OffloadApplication:
    return offload_app(server, "MC", iterations=ITERATIONS, name=name)


def _verify_violation(app: OffloadApplication) -> List[Violation]:
    if app.verify():
        return []
    return [Violation("result_correct", "application checksum mismatch after run")]


# ---------------------------------------------------------------------------
# Scenario drivers — generators run in the simulated host context.
# Each returns {"outcome": ..., "violations": [...]}.
# ---------------------------------------------------------------------------


def _checkpoint(server, app, injector, phase, faults):
    sim = server.sim
    yield from app.launch()
    yield sim.timeout(0.3)
    snap = snapify_t("/fz/ckpt", coiproc=app.coiproc)
    yield from checkpoint_offload_app(snap)
    yield app.host_proc.main_thread.done
    return {"outcome": "completed", "violations": _verify_violation(app)}


def _restart(server, app, injector, phase, faults):
    sim = server.sim
    yield from app.launch()
    yield sim.timeout(0.3)
    snap = snapify_t("/fz/restart", coiproc=app.coiproc)
    yield from checkpoint_offload_app(snap)
    yield sim.timeout(0.05)
    app.host_proc.terminate(code=1)
    yield sim.timeout(0.05)
    result = yield from restart_offload_app(server.host_os, "/fz/restart", server.engine(0))
    yield result.host_proc.main_thread.done
    store = result.host_proc.store
    bad = []
    if store.get("checksum") != expected_checksum(ITERATIONS):
        bad.append(Violation("result_correct", "restarted run produced wrong checksum"))
    return {"outcome": "completed", "violations": bad}


def _swap(server, app, injector, phase, faults):
    sim = server.sim
    yield from app.launch()
    yield sim.timeout(0.3)
    yield snapify_command(app.host_proc, SWAP_OUT, snapshot_path="/fz/swap")
    yield sim.timeout(0.2)
    yield snapify_command(app.host_proc, SWAP_IN, engine=server.engine(0))
    yield app.host_proc.main_thread.done
    return {"outcome": "completed", "violations": _verify_violation(app)}


def _migrate(server, app, injector, phase, faults):
    sim = server.sim
    yield from app.launch()
    yield sim.timeout(0.3)
    yield snapify_command(app.host_proc, MIGRATE, engine=server.engine(1))
    yield app.host_proc.main_thread.done
    return {"outcome": "completed", "violations": _verify_violation(app)}


def _checkpoint_fault(server, app, injector, phase, faults):
    """Checkpoint with the card failing at one exact phase boundary.

    The acceptable outcomes are: the checkpoint completes anyway (failure
    landed after the critical phase), or a clean documented error surfaces
    and the app is deliberately killed. A hang or an internal crash is a
    protocol bug.
    """
    if phase not in CHECKPOINT_FAULT_PHASES:
        raise ValueError(f"unknown checkpoint_fault phase {phase!r}")
    sim = server.sim
    yield from app.launch()
    yield sim.timeout(0.3)
    phi = server.node.phis[0]
    snap = snapify_t("/fz/ckptf", coiproc=app.coiproc)
    try:
        if phase == "before_pause":
            injector.fail_now(phi)
        yield from snapify_pause(snap)
        if phase == "after_pause":
            injector.fail_now(phi)
        yield from snapify_capture(snap, terminate=False)
        if phase == "after_capture":
            injector.fail_now(phi)
        yield from snapify_wait(snap)
        if phase == "after_wait":
            injector.fail_now(phi)
        yield from snapify_resume(snap)
        if phase == "after_resume":
            injector.fail_now(phi)
    except CLEAN_ERRORS as exc:
        app.host_proc.terminate(code=1)
        return {"outcome": "faulted", "error": repr(exc), "violations": []}
    # The protocol survived the injection point; the app itself may still
    # have lost its card. Give it a bounded grace window, then kill.
    try:
        yield sim.any_of([app.host_proc.main_thread.done, sim.timeout(_GRACE)])
    except (CLEAN_ERRORS + (Interrupted, ThreadKilled)) as exc:
        app.host_proc.terminate(code=1)
        return {"outcome": "faulted", "error": repr(exc), "violations": []}
    if not app.host_proc.main_thread.done.triggered:
        app.host_proc.terminate(code=1)
        return {"outcome": "faulted", "error": "app stalled after fault; killed",
                "violations": []}
    if app.host_proc.main_thread.done.ok:
        return {"outcome": "completed", "violations": _verify_violation(app)}
    return {"outcome": "faulted", "violations": []}


def _dual_binary(dev: int) -> OffloadBinary:
    return OffloadBinary(
        name=f"dual{dev}.so",
        image_size=8 * MB,
        functions={"step": OffloadFunction("step", duration=0.05)},
    )


def _concurrent_checkpoint(server, app, injector, phase, faults):
    """Concurrent snapshots: two applications on card 0 plus one host
    process with an offload process on *each* card, all captured at once
    through :func:`snapshot_application`. Exercises the operation-id demux
    (several completions interleave on shared infrastructure) and the
    ``(pid, op_id)``-keyed daemon table across two daemons."""
    sim = server.sim
    app2 = _mk_app(server, name="fuzzapp2")
    yield from app.launch()
    yield from app2.launch()
    host = yield from server.host_os.spawn_process("dualcard", image_size=4 * MB)
    dual = []
    for dev in (0, 1):
        cp = yield from server.engine(dev).process_create(host, _dual_binary(dev))
        buf = yield from cp.buffer_create(8 * MB)
        yield from cp.buffer_write(buf, payload=dev + 1)
        dual.append(cp)
    yield sim.timeout(0.3)

    snaps = [
        snapify_t("/fz/cc/app1", coiproc=app.coiproc),
        snapify_t("/fz/cc/app2", coiproc=app2.coiproc),
        snapify_t("/fz/cc/dual0", coiproc=dual[0]),
        snapify_t("/fz/cc/dual1", coiproc=dual[1]),
    ]
    expected_pids = [s.coiproc.offload_proc.pid for s in snaps]
    results = yield from snapshot_application(snaps, kind="checkpoint")

    bad: List[Violation] = []
    for snap, pid, res in zip(snaps, expected_pids, results):
        if res is None or not res.ok:
            bad.append(Violation(
                "concurrent_checkpoint",
                f"{snap.snapshot_path}: operation failed ({res and res.error})",
            ))
            continue
        if res.pid != pid:
            bad.append(Violation(
                "concurrent_checkpoint",
                f"{snap.snapshot_path}: result attributed to pid {res.pid}, "
                f"expected {pid}",
            ))
        if res.sizes.get("offload_snapshot", 0) <= 0:
            bad.append(Violation(
                "concurrent_checkpoint",
                f"{snap.snapshot_path}: empty offload snapshot",
            ))
    yield app.host_proc.main_thread.done
    yield app2.host_proc.main_thread.done
    bad.extend(_verify_violation(app))
    bad.extend(_verify_violation(app2))
    return {"outcome": "completed", "violations": bad}


def _transfer_fault(server, app, injector, phase, faults):
    """A snapshot transfer off card 0 under transient transfer-path faults.

    ``phase`` carries the fault mode (see :data:`TRANSFER_FAULT_MODES`);
    the actual fault plan arrives through ``faults`` and was scheduled by
    :func:`run_scenario` before we start. Acceptable outcomes: the transfer
    completes (possibly on a degraded channel — the destination file must
    then be exact), or the whole chain is down and the operation fails
    *cleanly* with the aggregated cause chain and no committed destination
    file. Anything else — a truncated commit, a wedged operation, a leaked
    staging buffer — the oracles catch.
    """
    sim = server.sim
    src_os = server.phi_os(0)
    src_path, dst_path = "/fz/tf_src", "/fz/tf_dst"
    size = 256 * MB
    yield from src_os.fs.write(src_path, size, payload=["tf-payload"])
    yield sim.timeout(0.3)
    # Tuned so the fuzzer's fault windows land inside the retry horizon:
    # 4 attempts spanning roughly a second of backoff per channel.
    policy = RetryPolicy(attempts=4, base_delay=0.04, multiplier=2.0,
                         max_delay=0.5, jitter=0.25)
    bad: List[Violation] = []
    try:
        result = yield from transfer_snapshot(
            src_os, 0, src_path, dst_path, kind="transfer-fault",
            manager=TransferManager(policy=policy),
        )
    except TransferFailed as exc:
        # The whole chain was down: the failure must be loud AND the
        # destination must never have been committed.
        host_daemon = getattr(server.host_os, "snapify_io_daemon", None)
        if host_daemon is not None and dst_path in host_daemon.commits:
            bad.append(Violation(
                "transfer_fault",
                f"{dst_path} committed although the transfer failed: {exc}",
            ))
        return {"outcome": "faulted", "error": repr(exc), "violations": bad}
    if not server.host_os.fs.exists(dst_path):
        bad.append(Violation("transfer_fault", f"{dst_path} missing after ok"))
    elif server.host_os.fs.stat(dst_path).size != size:
        bad.append(Violation(
            "transfer_fault",
            f"{dst_path} holds {server.host_os.fs.stat(dst_path).size} bytes, "
            f"expected {size}",
        ))
    elif server.host_os.fs.stat(dst_path).payload != ["tf-payload"]:
        bad.append(Violation(
            "transfer_fault", f"{dst_path} payload corrupted across transfer"
        ))
    if result.channel == "snapifyio":
        host_daemon = getattr(server.host_os, "snapify_io_daemon", None)
        if host_daemon is None or host_daemon.commits.get(dst_path) != size:
            bad.append(Violation(
                "transfer_fault",
                f"{dst_path}: snapifyio success without a matching commit entry",
            ))
    return {"outcome": "completed", "violations": bad}


def _fleet(server, app, injector, phase, faults):
    """The fleet control plane under mixed load, optionally losing cards.

    Boots a named fleet topology (``phase``, default ``rack8``) on the
    scenario's kernel, schedules any ``fleet_card_failure`` faults against
    its cards, then drives health sweep → :func:`~repro.snapify.fleet.
    fleet_sweep` → health sweep through one :class:`~repro.snapify.fleet.
    FleetManager`. On a clean run every ticket must land DONE; once the
    injector has actually killed a card, per-ticket failures are the
    *expected* partial-failure surface and only the invariants (admission
    caps, no starvation, quiescence — plus every per-server oracle over the
    whole fleet) decide the verdict.
    """
    from ..snapify.fleet import DONE, FleetManager, fleet_sweep
    from ..testbed import XeonPhiFleet

    sim = server.sim
    fleet = XeonPhiFleet(phase or "rack8", sim=sim)
    manager = FleetManager(fleet, max_in_flight=8, per_card_limit=2)
    cards = fleet.cards()
    for f in faults:
        if f.get("kind") != "fleet_card_failure":
            continue
        card = cards[f["card"] % len(cards)]
        injector.schedule_card_failure(fleet.phi(card), at=sim.now + f["at"])

    yield from manager.health_sweep()  # baseline probe of every card
    result = yield from fleet_sweep(fleet, manager, ops_per_card=4)
    after = yield from manager.health_sweep()

    bad: List[Violation] = []
    if not injector.injected:
        for key, t in result.tickets.items():
            if t.state != DONE:
                bad.append(Violation(
                    "fleet_result",
                    f"{key} failed with no injected fault: {t.error}",
                ))
        if after.failed:
            bad.append(Violation(
                "fleet_result",
                f"health sweep reports dead cards on a clean run: "
                f"{[h.card for h in after.failed]}",
            ))
    return {
        "outcome": "completed" if result.ok else "faulted",
        "violations": bad,
        "servers": fleet.servers,
    }


def _replication(server, app, injector, phase, faults):
    """A replicated (TeaMPI-style) job under replica-targeted faults.

    Boots a ``rack8`` fleet on the scenario's kernel and runs a two-team,
    R=2 :class:`~repro.mpi.replication.ReplicatedJob` under its heartbeat
    detector. ``replica_card_failure`` / ``replica_link_flap`` faults name
    a (team, replica) — the builder resolves them against the job's actual
    placement. The ``lagging_replica`` mode re-seeds dropped replicas
    through a :class:`~repro.snapify.fleet.FleetManager` MAINTENANCE
    ticket. A single replica loss must be invisible (the job completes and
    verifies, zero restarts); a full team wipe must surface as a clean
    ``faulted`` outcome, never a crash or deadlock. The
    ``team_membership_consistent`` and ``no_duplicate_delivery`` oracles
    judge membership and message accounting afterwards.
    """
    from ..apps.workloads import NAS_MZ_BENCHMARKS
    from ..mpi.replication import (
        HeartbeatDetector,
        ReplicatedJob,
        ReplicationError,
    )
    from ..snapify.fleet import FleetManager
    from ..testbed import XeonPhiFleet

    if phase not in REPLICATION_MODES:
        raise ValueError(f"unknown replication mode {phase!r}")
    sim = server.sim
    fleet = XeonPhiFleet("rack8", sim=sim)
    job = ReplicatedJob(fleet, NAS_MZ_BENCHMARKS["SP-MZ"], n_teams=2,
                        n_replicas=2, iterations=6)
    reseed = phase == "lagging_replica"
    manager = FleetManager(fleet) if reseed else None
    detector = HeartbeatDetector(job, interval=0.05, misses=2,
                                 reseed=reseed, manager=manager)
    yield from job.launch()
    detector.start()
    for f in faults:
        kind = f.get("kind")
        if kind not in ("replica_card_failure", "replica_link_flap"):
            continue
        key = (f["team"] % job.n_teams, f["replica"] % job.n_replicas)
        phi = fleet.phi(job.placement[key])
        if kind == "replica_card_failure":
            injector.schedule_card_failure(
                phi, at=sim.now + f["at"],
                repair_after=f.get("repair_after"),
            )
        else:
            injector.schedule_link_flap(
                phi, at=sim.now + f["at"], up_after=f.get("up_after"),
            )

    outcome = "completed"
    try:
        yield from job.join()
    except ReplicationError:
        # A team lost every replica: abort the survivors (they would block
        # forever on halos from the wiped team) and report a clean fault.
        outcome = "faulted"
        job.abort()
    detector.stop()
    if manager is not None and detector.reseed_tickets:
        yield from manager.collect(detector.reseed_tickets)

    bad: List[Violation] = []
    if outcome == "completed" and not job.verify():
        bad.append(Violation(
            "replication",
            "job completed without a verified checksum in every team",
        ))
    if not injector.injected:
        if outcome != "completed":
            bad.append(Violation(
                "replication", "team wiped with no injected fault"
            ))
        if detector.drops:
            bad.append(Violation(
                "replication",
                f"replicas dropped with no injected fault: {detector.drops}",
            ))
    return {
        "outcome": outcome,
        "violations": bad,
        "servers": fleet.servers,
    }


def _incremental(server, app, injector, phase, faults):
    """Incremental dirty-page checkpoints into the in-memory partner tier.

    Drives three capture epochs of one app (base + two deltas), dirtying a
    few percent of the offload process's pages between epochs, with card 1
    as the round-robin partner. ``phase`` selects the stress mode — clean
    (``delta_chain``), the partner card dying mid-replication
    (``partner_loss``: the torn copy must be dropped, never counted), or
    the NFS export flapping under the BACKGROUND demotion ticket
    (``demotion_race``: a failed demotion must leave the chain
    memory-resident, a succeeded one an intact chain file). The
    ``delta_chain_reconstructs`` and ``partner_copy_consistent`` oracles
    judge the ledger afterwards, whatever the interleaving did.
    """
    from ..snapify import FleetManager
    from ..snapify.fleet import DONE as TICKET_DONE
    from ..snapify.fleet import FAILED as TICKET_FAILED
    from ..snapify.ops import capture_sequence
    from ..snapify_io.memtier import MemoryTier

    if phase not in INCREMENTAL_MODES:
        raise ValueError(f"unknown incremental mode {phase!r}")
    sim = server.sim
    tier = MemoryTier.of(sim)
    tier.register_server(server)
    yield from app.launch()
    yield sim.timeout(0.3)
    snap = snapify_t("/fz/inc", coiproc=app.coiproc, incremental=True)
    proc = app.coiproc.offload_proc
    bad: List[Violation] = []
    for epoch in range(3):
        try:
            yield from capture_sequence(snap)
        except CLEAN_ERRORS as exc:
            app.host_proc.terminate(code=1)
            return {"outcome": "faulted", "error": repr(exc), "violations": bad}
        # Dirty a few percent of every region at a seed-independent but
        # epoch-walking offset, page straddles included.
        for region in proc.regions.values():
            span = max(1, region.size // 25)
            offset = (epoch * 7919 * 4096) % max(1, region.size - span)
            region.write(offset, span)
        yield sim.timeout(0.1)

    entry = tier.lookup("/fz/inc")
    if entry is None or len(entry.links) != 3:
        bad.append(Violation(
            "incremental",
            f"expected a 3-link chain in the tier, found "
            f"{len(entry.links) if entry else 'no entry'}",
        ))
    if phase == "demotion_race":
        manager = FleetManager(sim=sim, name="incfleet")
        ticket = manager.submit_demotion("demote:/fz/inc", "/fz/inc",
                                         server.host_os)
        result = yield from manager.collect([ticket])
        t = result.tickets["demote:/fz/inc"]
        if t.state == TICKET_DONE:
            if entry is not None and not entry.demoted:
                bad.append(Violation(
                    "incremental",
                    "demotion ticket DONE but the chain is not marked demoted",
                ))
        elif t.state == TICKET_FAILED:
            # NFS stayed down past the retry horizon: acceptable, but the
            # chain must still be fully memory-resident.
            if entry is not None and entry.demoted:
                bad.append(Violation(
                    "incremental",
                    f"demotion ticket FAILED ({t.error}) but the chain is "
                    "marked demoted",
                ))
    yield app.host_proc.main_thread.done
    return {"outcome": "completed", "violations": bad + _verify_violation(app)}


def _plugin(server, app, injector, phase, faults):
    """One checkpoint-content plugin round-tripping its resource class.

    ``phase`` picks the resource (see :data:`PLUGIN_MODES`). The driver
    builds a bare process on card 0 owning exactly that resource, captures
    it with :func:`~repro.blcr.cr_checkpoint` through a host-FS descriptor,
    terminates the source, then restores on card 0 or card 1 — the schedule
    seed's parity decides, so the fuzz sweep exercises both targets. The
    quiescence oracles (``socket_listeners_owned``,
    ``restored_files_consistent``, ``pending_signals_blocked``,
    ``rdma_windows_replayed``) judge the aftermath; the driver itself
    asserts the resource actually works again. Cross-card restores of
    namespace sockets and RDMA windows must refuse with the typed
    :class:`~repro.blcr.plugins.PluginError` — silently dropping the
    resource is the bug class this scenario exists to catch.
    """
    from ..blcr import cr_checkpoint, cr_restart
    from ..blcr.plugins import (
        RDMA_PENDING_KEY,
        register_standard_plugins,
        replay_rdma_windows,
    )
    from ..osim import signals as sig
    from ..osim.fd import RegularFileFD
    from ..osim.sockets import UnixSocket
    from ..scif.endpoint import ScifNetwork

    if phase not in PLUGIN_MODES:
        raise ValueError(f"unknown plugin mode {phase!r}")
    sim = server.sim
    cross = bool((sim.schedule_seed or 0) % 2)
    src_os = server.phi_os(0)
    dst_os = server.phi_os(1) if cross else src_os
    register_standard_plugins(src_os)
    register_standard_plugins(dst_os)
    bad: List[Violation] = []

    proc = yield from src_os.spawn_process("plugproc", image_size=4 * MB,
                                           start=False)
    proc.map_region("heap", 2 * MB, data=["plug-heap"])
    proc.store["mode"] = phase
    client_name = ramfs_path = None

    if phase == "socket_restore":
        a, b = UnixSocket.pair(sim, src_os.sockets.default_bandwidth,
                               name="plugpair")
        proc.register_fd(a)
        proc.register_fd(b)
        yield from a.write(8192, record="warm")
        if (yield from b.read()) != "warm":
            bad.append(Violation("plugin", "socket pair broken before capture"))
        # A long-lived service owns the listener, so the name survives the
        # checkpointed process's death and a same-card reconnect can land.
        srv = yield from src_os.spawn_process("plugsrv", image_size=MB,
                                              start=False)
        src_os.sockets.listen("@plug", owner=srv)
        client = yield from src_os.sockets.connect("@plug")
        proc.register_fd(client)
        client_name = client.name
    elif phase == "ramfs_offsets":
        ramfs_path = "/plug/data"
        yield from src_os.fs.write(ramfs_path, 6 * 4096,
                                   payload=[f"rec{i}" for i in range(6)])
        fd = RegularFileFD(sim, src_os.fs, ramfs_path, "r")
        proc.register_fd(fd)
        for i in range(2):  # leave the cursor mid-file
            if (yield from fd.read(4096)) != f"rec{i}":
                bad.append(Violation("plugin", "ramfs read wrong before capture"))
    elif phase == "signal_pending":
        def _bump(p, signum):
            p.store["sig_count"] = p.store.get("sig_count", 0) + 1
            return
            yield  # pragma: no cover - generator form

        proc.install_signal_handler(sig.SIGUSR1, _bump)
        proc.block_signal(sig.SIGUSR1)
        proc.deliver_signal(sig.SIGUSR1)
        proc.deliver_signal(sig.SIGUSR1)
    else:  # rdma_migrate
        from ..scif.registry import scif_register

        net = ScifNetwork.of(server.node)
        net.listen(server.host_os, 3971)
        ep = yield from net.connect(src_os, 0, 3971, proc=proc)
        yield from scif_register(ep, MB)
        yield from scif_register(ep, 2 * MB)

    yield sim.timeout(0.05)
    ckpt_path = f"/fz/plug_{phase}"
    wfd = RegularFileFD(sim, server.host_os.fs, ckpt_path, "w")
    yield from cr_checkpoint(proc, wfd)
    wfd.close()
    proc.terminate(code=0)
    yield sim.timeout(0.05)

    rfd = RegularFileFD(sim, server.host_os.fs, ckpt_path, "r")
    expect_refusal = cross and phase in ("socket_restore", "rdma_migrate")
    try:
        restored = yield from cr_restart(dst_os, rfd, name="plugproc.r",
                                         start=False)
    except PluginError as exc:
        rfd.close()
        if not expect_refusal:
            bad.append(Violation(
                "plugin", f"{phase}: restore on {dst_os.name} refused "
                f"unexpectedly: {exc!r}",
            ))
        return {"outcome": "faulted", "error": repr(exc), "violations": bad}
    rfd.close()
    if expect_refusal:
        bad.append(Violation(
            "plugin",
            f"{phase}: cross-card restore succeeded but must refuse (the "
            "resource is pinned to the source card)",
        ))
        return {"outcome": "completed", "violations": bad}

    if restored.store.get("mode") != phase:
        bad.append(Violation("plugin", "store lost across restore"))
    if phase == "socket_restore":
        socks = restored.runtime.get("restored_sockets", {})
        ra, rb = socks.get("plugpair.a"), socks.get("plugpair.b")
        if ra is None or rb is None:
            bad.append(Violation("plugin", "socket pair not restored"))
        else:
            yield from ra.write(4096, record="ping")
            if (yield from rb.read()) != "ping":
                bad.append(Violation(
                    "plugin", "restored pair dropped a datagram"))
        rc = socks.get(client_name)
        if rc is None or rc.address != "@plug":
            bad.append(Violation(
                "plugin", f"namespace client {client_name!r} not reconnected"))
    elif phase == "ramfs_offsets":
        rfile = restored.runtime.get("restored_files", {}).get(ramfs_path)
        if rfile is None or rfile._read_cursor != 2:
            bad.append(Violation(
                "plugin",
                f"read cursor lost: {rfile and rfile._read_cursor!r}",
            ))
        elif (yield from rfile.read(4096)) != "rec2":
            bad.append(Violation(
                "plugin", "restored file resumed at the wrong record"))
    elif phase == "signal_pending":
        if restored.pending_signals != [sig.SIGUSR1, sig.SIGUSR1]:
            bad.append(Violation(
                "plugin",
                f"pending signals lost: {restored.pending_signals}",
            ))
        if sig.SIGUSR1 not in restored.blocked_signals:
            bad.append(Violation("plugin", "blocked mask lost across restore"))
        restored.unblock_signal(sig.SIGUSR1)
        yield sim.timeout(0.01)
        if restored.store.get("sig_count", 0) != 2:
            bad.append(Violation(
                "plugin",
                f"queued signals not delivered after unblock "
                f"(sig_count={restored.store.get('sig_count')})",
            ))
    else:  # rdma_migrate, same card
        pending = restored.runtime.get(RDMA_PENDING_KEY)
        if not pending or len(pending) != 2:
            bad.append(Violation(
                "plugin", f"RDMA windows not stashed for replay: {pending!r}"))
        else:
            net = ScifNetwork.of(server.node)
            ep2 = yield from net.connect(dst_os, 0, 3971, proc=restored)
            table = yield from replay_rdma_windows(restored, ep2)
            if len(table) != 2 or sum(ep2.windows.values()) != 3 * MB:
                bad.append(Violation(
                    "plugin",
                    f"window replay incomplete: map={table!r}, "
                    f"registered={sum(ep2.windows.values())}",
                ))
    return {"outcome": "completed", "violations": bad}


SCENARIOS = {
    "checkpoint": _checkpoint,
    "restart": _restart,
    "swap": _swap,
    "migrate": _migrate,
    "concurrent_checkpoint": _concurrent_checkpoint,
    "checkpoint_fault": _checkpoint_fault,
    "transfer_fault": _transfer_fault,
    "fleet": _fleet,
    "incremental": _incremental,
    "plugin": _plugin,
    "replication": _replication,
}


def scenario_names() -> List[str]:
    """All runnable names, with parameterized scenarios expanded."""
    names = [n for n in SCENARIOS
             if n not in ("checkpoint_fault", "transfer_fault", "fleet",
                          "incremental", "plugin", "replication")]
    names.extend(f"checkpoint_fault:{p}" for p in CHECKPOINT_FAULT_PHASES)
    names.extend(f"transfer_fault:{m}" for m in TRANSFER_FAULT_MODES)
    names.append("fleet:rack8")
    names.extend(f"incremental:{m}" for m in INCREMENTAL_MODES)
    names.extend(f"plugin:{m}" for m in PLUGIN_MODES)
    names.extend(f"replication:{m}" for m in REPLICATION_MODES)
    return names


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def _trace_digest(sim: Simulator) -> str:
    """Digest of the full event trace + final clock: byte-identical replay
    of a (seed, scenario, faults) triple means byte-identical digests."""
    h = hashlib.sha256()
    for rec in sim.trace.records:
        h.update(repr(rec).encode())
        h.update(b"\n")
    h.update(f"t={sim.now!r}".encode())
    return h.hexdigest()


def normalize_faults(faults: Sequence[Dict[str, Any]]) -> Tuple[Dict[str, Any], ...]:
    """Canonical, JSON-stable form of a fault plan."""
    return tuple({k: f[k] for k in sorted(f)} for f in faults)


def run_scenario(
    name: str,
    seed: Optional[int] = None,
    faults: Sequence[Dict[str, Any]] = (),
    *,
    capture_trace: bool = False,
) -> RunResult:
    """Run one scenario under one schedule seed and fault plan.

    ``name`` is a scenario key, optionally parameterized —
    ``checkpoint_fault:<phase>``, ``transfer_fault:<mode>``,
    ``incremental:<mode>``, ``plugin:<mode>``, or ``replication:<mode>``.
    ``faults`` entries are dicts dispatched on
    their ``"kind"`` (default ``card_failure``): ``card_failure`` takes
    ``{"device", "at"}`` plus optional ``"warning_lead"`` /
    ``"repair_after"``; ``link_flap`` takes ``{"device", "at"}`` plus
    optional ``"up_after"``; ``io_daemon_crash`` takes ``{"node", "at"}``
    (SCIF numbering: 0 = host) plus optional ``"restart_after"``;
    ``nfs_down`` takes ``{"at"}`` plus optional ``"restore_after"``.
    ``replica_card_failure`` / ``replica_link_flap`` name a
    ``{"team", "replica"}`` instead of a device — the replication builder
    resolves them against its own placement. Entries with ``"phase"``
    select the injection boundary of the ``checkpoint_fault`` scenario.
    """
    base, _, phase = name.partition(":")
    try:
        builder = SCENARIOS[base]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r} (have {sorted(SCENARIOS)})") from None
    faults = normalize_faults(faults)
    sim = Simulator(schedule_seed=seed, trace=capture_trace)
    server = XeonPhiServer(sim=sim)
    injector = FaultInjector(sim)
    server.fault_injector = injector  # the retry_accounting oracle audits it
    app = _mk_app(server)
    phase = phase or next((f["phase"] for f in faults if "phase" in f), None)
    for f in faults:
        if "phase" in f:
            continue
        # Fault times are offsets after testbed boot (boot itself consumes
        # simulated time, deterministically per seed).
        kind = f.get("kind", "card_failure")
        if kind in ("fleet_card_failure", "replica_card_failure",
                    "replica_link_flap"):
            continue  # fleet/replica-relative; their builders schedule them
        if kind == "card_failure":
            injector.schedule_card_failure(
                server.node.phis[f["device"]],
                at=sim.now + f["at"],
                warning_lead=f.get("warning_lead"),
                repair_after=f.get("repair_after"),
            )
        elif kind == "link_flap":
            injector.schedule_link_flap(
                server.node.phis[f["device"]],
                at=sim.now + f["at"],
                up_after=f.get("up_after"),
            )
        elif kind == "io_daemon_crash":
            os_ = server.host_os if f["node"] == 0 else server.phi_os(f["node"] - 1)
            injector.schedule_io_daemon_crash(
                os_, at=sim.now + f["at"],
                restart_after=f.get("restart_after"),
            )
        elif kind == "nfs_down":
            injector.schedule_nfs_outage(
                server.node, at=sim.now + f["at"],
                restore_after=f.get("restore_after"),
            )
        else:
            raise ValueError(f"unknown fault kind {kind!r}")

    outcome = "crash"
    error = error_type = None
    waitfor: List[Dict[str, Any]] = []
    extra: List[Violation] = []
    extra_servers: List[XeonPhiServer] = []
    try:
        result = server.run(builder(server, app, injector, phase, faults),
                            name=f"fuzz:{name}")
        outcome = result.get("outcome", "completed")
        error = result.get("error")
        extra = result.get("violations", [])
        extra_servers = result.get("servers", [])
        sim.run(check_deadlock=True)  # settle: daemons drain, monitors exit
    except DeadlockError as exc:
        outcome, error, error_type = "deadlock", str(exc), "DeadlockError"
        waitfor = exc.waitfor or sim.wait_for_graph()
    except CLEAN_ERRORS as exc:
        outcome, error, error_type = "clean_error", repr(exc), type(exc).__name__
    except Exception as exc:  # noqa: BLE001 - fuzzing boundary
        outcome, error, error_type = "crash", repr(exc), type(exc).__name__

    violations = extra + check_all(server)
    for extra_server in extra_servers:
        violations.extend(check_all(extra_server))
    # Fleet scenarios check many servers on one kernel; sim-wide oracles
    # (fleet caps, crashed threads) repeat verbatim per server — keep one.
    violations = list(dict.fromkeys(violations))
    ok = not violations and outcome in ("completed", "faulted", "clean_error")
    mgr = OperationManager.peek(sim)
    operations = [op.describe() for op in mgr.operations.values()] if mgr else []
    postmortem = None
    if not ok:
        from ..obs.recorder import postmortem_bundle

        postmortem = postmortem_bundle(sim)
    return RunResult(
        scenario=name,
        seed=seed,
        faults=faults,
        ok=ok,
        outcome=outcome,
        violations=violations,
        error=error,
        error_type=error_type,
        final_time=sim.now,
        waitfor=waitfor,
        trace_digest=_trace_digest(sim) if capture_trace else None,
        operations=operations,
        postmortem=postmortem,
    )
