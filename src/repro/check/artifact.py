"""Minimal repro artifacts: a failing fuzz run as a one-command replay.

An artifact is a small JSON file holding exactly the inputs that determine
a run — scenario name, schedule seed, fault plan — plus the observed
failure (outcome, error, violations, wait-for graph) for human triage.
Because runs are pure functions of those inputs, replaying the artifact
reproduces the failure byte-for-byte::

    PYTHONPATH=src python -m repro.obs.cli fuzz --replay <artifact.json>
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

FORMAT_VERSION = 1


@dataclass
class ReproArtifact:
    """The (inputs, observation) pair of one failing run."""

    scenario: str
    seed: Optional[int]
    faults: Tuple[Dict[str, Any], ...] = ()
    outcome: str = "crash"
    error: Optional[str] = None
    error_type: Optional[str] = None
    violations: List[str] = field(default_factory=list)
    waitfor: List[Dict[str, Any]] = field(default_factory=list)
    final_time: float = 0.0
    #: describe() dicts of the run's Snapify operations (id, kind, pid,
    #: state, error) — triage starts from the operation that wedged.
    operations: List[Dict[str, Any]] = field(default_factory=list)
    #: Flight-recorder post-mortem bundle of the failing run (recent trace
    #: records per category, active ops, alert state, metric snapshot).
    postmortem: Optional[Dict[str, Any]] = None
    version: int = FORMAT_VERSION

    @classmethod
    def from_result(cls, result) -> "ReproArtifact":
        """Build from a :class:`repro.check.scenarios.RunResult`."""
        return cls(
            scenario=result.scenario,
            seed=result.seed,
            faults=result.faults,
            outcome=result.outcome,
            error=result.error,
            error_type=result.error_type,
            violations=[str(v) for v in result.violations],
            waitfor=result.waitfor,
            final_time=result.final_time,
            operations=list(getattr(result, "operations", [])),
            postmortem=getattr(result, "postmortem", None),
        )

    # -- persistence -------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    def save(self, path: str) -> str:
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ReproArtifact":
        with open(path) as f:
            data = json.load(f)
        data.pop("version", None)
        known = {k: data[k] for k in data if k in cls.__dataclass_fields__}
        art = cls(**known)
        art.faults = tuple(art.faults)
        return art

    def replay_command(self, path: str) -> str:
        """The one command that reproduces this failure."""
        return f"PYTHONPATH=src python -m repro.obs.cli fuzz --replay {path}"

    def filename(self) -> str:
        """Stable, filesystem-safe name for this artifact."""
        scen = self.scenario.replace(":", "-")
        return f"repro_{scen}_seed{self.seed}.json"

    def flight_filename(self) -> str:
        """Name of the sibling flight-recorder bundle dump."""
        scen = self.scenario.replace(":", "-")
        return f"repro_{scen}_seed{self.seed}.flight.json"

    def save_flight(self, path: str) -> Optional[str]:
        """Write the post-mortem bundle alone (CI uploads it as an
        artifact); returns the path, or None when the run had no bundle."""
        if self.postmortem is None:
            return None
        with open(path, "w") as f:
            json.dump(self.postmortem, f, indent=2, sort_keys=True)
            f.write("\n")
        return path
