"""TeaMPI-style replication: each logical rank runs a *team* of replicas.

Checkpoint/restart pays a detection + restore round-trip on every failure;
replication hides failures entirely by running R copies of every logical
rank on disjoint cards and letting the survivors carry on. The pieces:

* :func:`plan_replica_placement` — anti-affinity placement in the style of
  :meth:`repro.snapify.fleet.FleetManager.partner_for`: every replica of a
  team on a distinct card, preferring distinct nodes.
* :class:`TeamComm` — a replica-aware communicator layered over
  :class:`~repro.mpi.runtime.MPIComm`. Every send fans out to every live
  replica of the destination team; receivers deduplicate by
  ``(src_team, tag, sequence)`` and deliver the first arrival. A per-team
  message log lets a re-seeded replica backfill messages it missed.
* :class:`ReplicatedJob` / :class:`TeamReplica` — the NAS-MZ-shaped
  workload run as teams on a :class:`~repro.testbed.XeonPhiFleet`, with
  the BLCR-restore branch the re-seed path relies on.
* :class:`HeartbeatDetector` — a sim-clock heartbeat that drops dead
  replicas from their team (emitting ``replica.*`` metrics and trace
  records) and, when enabled, re-seeds a lost replica from a healthy one
  through the fleet's MAINTENANCE lane
  (:meth:`repro.snapify.fleet.FleetManager.submit_reseed`).

Nothing here touches the default simulation path: building none of these
objects leaves traces, metrics, and schedules byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..coi.engine import COIEngine
from ..obs.registry import MetricsRegistry
from ..osim.process import SimProcess
from ..sim.errors import SimError
from ..sim.events import Event
from .runtime import MPIComm, MPIError

if TYPE_CHECKING:  # pragma: no cover
    from ..apps.workloads import MZProfile
    from ..sim.core import Simulator
    from ..snapify.fleet import CardRef, FleetManager, FleetTicket
    from ..testbed import XeonPhiFleet


class ReplicationError(SimError):
    """A replication team lost every replica (or could not be placed)."""


#: Replica key: (team, replica id).
RKey = Tuple[int, int]


def plan_replica_placement(
    cards: List["CardRef"],
    n_teams: int,
    n_replicas: int,
    *,
    partner_for: Optional[Callable[[Any], Optional[str]]] = None,
) -> Dict[RKey, "CardRef"]:
    """Anti-affinity placement: every replica of a team on its own card.

    Replicas of one team land on distinct nodes when the fleet allows it
    (falling back to distinct cards on a shared node), so a single card —
    or node — failure never takes a whole team down. ``partner_for`` may
    inject the fleet's own partner policy
    (:meth:`~repro.snapify.fleet.FleetManager.partner_for`): when it names
    an unused card, that card is preferred for the next replica.
    """
    if n_teams * n_replicas > len(cards):
        raise ReplicationError(
            f"{n_teams} teams x {n_replicas} replicas > {len(cards)} cards"
        )
    by_key = {c.key: c for c in cards}
    placement: Dict[RKey, "CardRef"] = {}
    used: List["CardRef"] = []
    cursor = 0

    def scan(team_cards: List["CardRef"], node_disjoint: bool):
        for i in range(len(cards)):
            c = cards[(cursor + i) % len(cards)]
            if c in used:
                continue
            if node_disjoint and any(c.node == tc.node for tc in team_cards):
                continue
            return c
        return None

    for t in range(n_teams):
        team_cards: List["CardRef"] = []
        for r in range(n_replicas):
            pick = None
            if r > 0 and partner_for is not None:
                hint = by_key.get(partner_for(team_cards[-1]) or "")
                if hint is not None and hint not in used and all(
                    hint.node != tc.node for tc in team_cards
                ):
                    pick = hint
            if pick is None:
                pick = scan(team_cards, node_disjoint=True)
            if pick is None:
                pick = scan(team_cards, node_disjoint=False)
            if pick is None:
                raise ReplicationError("not enough cards for placement")
            used.append(pick)
            team_cards.append(pick)
            cursor = (cards.index(pick) + 1) % len(cards)
            placement[(t, r)] = pick
    return placement


class TeamComm:
    """Replica-aware communicator: per-team fan-out, first-arrival dedup.

    Physical copies ride the node fabric through a plain
    :class:`~repro.mpi.runtime.MPIComm` (one rank per node), so every copy
    pays real transfer time and the substrate's conservation counters see
    it. Each copy carries a unique transport tag; the replica-level
    deduplication key is ``(src_team, tag, sequence)`` where the sequence
    number counts repeated uses of a tag — deterministic replicas agree on
    it without coordination.
    """

    #: Simulator attribute holding every team communicator (oracles).
    _ATTR = "mpi_team_comms"

    def __init__(self, fleet: "XeonPhiFleet", n_teams: int):
        self.sim = fleet.sim
        self.n_teams = n_teams
        self.transport = MPIComm(fleet, len(fleet.cluster.nodes))
        #: team -> replica ids, in join order (never iterate a set here:
        #: membership order feeds the deterministic schedule).
        self.live: Dict[int, List[int]] = {t: [] for t in range(n_teams)}
        self.dropped: Dict[int, List[int]] = {t: [] for t in range(n_teams)}
        self.node_of: Dict[RKey, int] = {}
        self._mailbox: Dict[RKey, Dict[Any, Any]] = {}
        self._seen: Dict[RKey, set] = {}
        #: (replica key, dedup key) -> waiting event
        self._waiters: Dict[Tuple[RKey, Any], Event] = {}
        self._send_seq: Dict[Any, int] = {}
        self._recv_seq: Dict[Any, int] = {}
        #: dst team -> {dedup key: payload}; replayed into re-seeded joiners.
        self._log: Dict[int, Dict[Any, Any]] = {t: {} for t in range(n_teams)}
        # Copy ledger. Every physical copy (and every backfill replay) ends
        # in exactly one bucket, so at any instant:
        #   copies_sent + backfilled == delivered + suppressed + dropped_dead
        self.copies_sent = 0
        self.delivered = 0
        self.suppressed = 0
        self.dropped_dead = 0
        self.backfilled = 0
        #: (replica key, dedup key) -> times delivered; the
        #: no_duplicate_delivery oracle asserts every value is exactly 1.
        self.delivered_counts: Dict[Tuple[RKey, Any], int] = {}
        comms = getattr(self.sim, self._ATTR, None)
        if comms is None:
            comms = []
            setattr(self.sim, self._ATTR, comms)
        comms.append(self)

    @classmethod
    def all_of(cls, sim: "Simulator") -> List["TeamComm"]:
        return list(getattr(sim, cls._ATTR, ()))

    # -- membership -------------------------------------------------------------
    def register(self, team: int, rid: int, node: int) -> None:
        """Add a replica to its team's live set (initial launch)."""
        key = (team, rid)
        if rid not in self.live[team]:
            self.live[team].append(rid)
        self.node_of[key] = node
        self._mailbox.setdefault(key, {})
        self._seen.setdefault(key, set())

    def drop_replica(self, team: int, rid: int, *, reason: str = "") -> None:
        """Remove a replica from its team; its pending recvs are forgotten."""
        if rid in self.live[team]:
            self.live[team].remove(rid)
        if rid not in self.dropped[team]:
            self.dropped[team].append(rid)
        key = (team, rid)
        for wk in [wk for wk in self._waiters if wk[0] == key]:
            del self._waiters[wk]
        self.sim.trace.emit("replica.drop", team=team, rid=rid, reason=reason)

    def join_replica(self, team: int, rid: int, node: int, *,
                     backfill: bool = True) -> None:
        """Admit a (re-seeded) replica with a fresh mailbox; optionally
        replay the team's message log so it can re-receive what it missed."""
        key = (team, rid)
        if rid in self.dropped[team]:
            self.dropped[team].remove(rid)
        if rid not in self.live[team]:
            self.live[team].append(rid)
        self.node_of[key] = node
        self._mailbox[key] = {}
        self._seen[key] = set()
        self.sim.trace.emit("replica.join", team=team, rid=rid, node=node)
        if backfill:
            for dkey, payload in self._log[team].items():
                self.backfilled += 1
                self._arrive(team, rid, dkey, payload)

    # -- messaging --------------------------------------------------------------
    def team_send(self, src_team: int, src_rid: int, dst_team: int, tag: Any,
                  nbytes: int, payload: Any = None):
        """Sub-generator: fan one logical message out to every live replica
        of ``dst_team``; receivers keep the first copy per dedup key."""
        skey = (src_team, src_rid, dst_team, tag)
        seq = self._send_seq.get(skey, 0)
        self._send_seq[skey] = seq + 1
        dkey = (src_team, tag, seq)
        self._log[dst_team].setdefault(dkey, payload)
        src_node = self.node_of[(src_team, src_rid)]
        for rid in list(self.live[dst_team]):
            if rid not in self.live[dst_team]:
                # Dropped while we were transferring an earlier copy.
                continue
            dst_node = self.node_of[(dst_team, rid)]
            ckey = ("tc", src_team, src_rid, dst_team, rid, tag, seq)
            yield from self.transport.send(src_node, dst_node, ckey, nbytes,
                                           payload)
            # Eager transport: the copy is already queued (or handed to a
            # waiter we never register), so this recv resolves immediately.
            ev = self.transport.recv(dst_node, src_node, ckey)
            self.copies_sent += 1
            self._arrive(dst_team, rid, dkey, ev.value)

    def _arrive(self, dst_team: int, rid: int, dkey: Any, payload: Any) -> None:
        key = (dst_team, rid)
        if rid not in self.live[dst_team]:
            self.dropped_dead += 1
            return
        seen = self._seen[key]
        if dkey in seen:
            self.suppressed += 1
            return
        seen.add(dkey)
        self.delivered += 1
        self.delivered_counts[(key, dkey)] = (
            self.delivered_counts.get((key, dkey), 0) + 1
        )
        waiter = self._waiters.pop((key, dkey), None)
        if waiter is not None and not waiter.triggered and not waiter.abandoned:
            waiter.succeed(payload)
        else:
            self._mailbox[key][dkey] = payload

    def team_recv(self, dst_team: int, dst_rid: int, src_team: int, tag: Any):
        """Sub-generator: the next ``(src_team, tag)`` message for a replica."""
        key = (dst_team, dst_rid)
        rkey = (key, src_team, tag)
        seq = self._recv_seq.get(rkey, 0)
        self._recv_seq[rkey] = seq + 1
        dkey = (src_team, tag, seq)
        box = self._mailbox[key]
        if dkey in box:
            return box.pop(dkey)
        old = self._waiters.get((key, dkey))
        if old is not None and not old.triggered and not old.abandoned:
            raise MPIError(f"double team recv on {key}/{dkey}")
        ev = Event(self.sim, name=f"team.recv:{key}:{dkey}")
        self._waiters[(key, dkey)] = ev
        value = yield ev
        return value

    # -- introspection ----------------------------------------------------------
    def pending_copies(self) -> int:
        """Delivered-but-unconsumed copies across every replica mailbox."""
        return sum(len(box) for box in self._mailbox.values())

    def ledger_balanced(self) -> bool:
        """The copy-conservation identity (see the ledger comment above)."""
        return (self.copies_sent + self.backfilled
                == self.delivered + self.suppressed + self.dropped_dead)


class TeamReplica:
    """One replica: a host process + offload process pinned to one card."""

    def __init__(self, job: "ReplicatedJob", team: int, rid: int,
                 card: "CardRef"):
        self.job = job
        self.team = team
        self.rid = rid
        self.card = card
        self.sim = job.sim
        self.server = job.fleet.server(card.node)
        self.host_heap = job.host_heap
        self.local_store = job.local_store
        self.binary = job.binary
        self.host_proc: Optional[SimProcess] = None

    @property
    def key(self) -> RKey:
        return (self.team, self.rid)

    def launch(self):
        self.host_proc = yield from self.server.host_os.spawn_process(
            f"{self.job.name}.t{self.team}.r{self.rid}",
            image_size=16 * 1024 * 1024,
            main_factory=self._main_factory(),
        )
        return self.host_proc

    def _main_factory(self):
        replica = self

        def main(proc: SimProcess):
            yield from replica._program(proc)

        return main

    def _program(self, proc: SimProcess):
        job, profile, comm = self.job, self.job.profile, self.job.comm
        store = proc.store
        # A re-seeded clone runs this very closure (captured from its
        # source replica), so identity comes from the process runtime the
        # integrator stamped, not from ``self``.
        team = proc.runtime.get("replica_team", self.team)
        rid = proc.runtime.get("replica_rid", self.rid)
        if store.get("_blcr_restored"):
            coiproc = proc.runtime.pop("coi_restored_handle")
            proc.runtime["coi_handle"] = coiproc
        else:
            store["iter"] = 0
            store["checksum"] = 0
            proc.map_region("heap", self.host_heap)
            engine = COIEngine(self.server.node, self.card.device)
            coiproc = yield from engine.process_create(proc, self.binary)
            proc.runtime["coi_handle"] = coiproc
            buf = yield from coiproc.buffer_create(self.local_store)
            store["buf_id"] = buf.buf_id
            yield from coiproc.run_function_keyed("init", "init")

        nxt = (team + 1) % job.n_teams
        prv = (team - 1) % job.n_teams
        buf_id = store["buf_id"]
        while store["iter"] < job.iterations:
            i = store["iter"]
            # Ring halo exchange between teams. Both replicas send the same
            # logical message; receivers keep the first arrival, and a
            # restarted replica's re-sends are suppressed the same way.
            if job.n_teams > 1:
                yield from comm.team_send(team, rid, nxt, ("halo", i),
                                          profile.exchange_bytes, payload=i)
                yield from comm.team_recv(team, rid, prv, ("halo", i))
            buf = coiproc.buffers[buf_id]
            yield from coiproc.buffer_write(buf, payload=i, nbytes=min(
                profile.exchange_bytes, buf.size))
            result = yield from coiproc.run_function_keyed(
                ("it", i), "iterate", {"i": i, "buf": buf_id}
            )
            store["checksum"] = result
            store["iter"] = i + 1
        store["finished"] = True


class ReplicatedJob:
    """An NAS-MZ-shaped job run as ``n_teams`` teams of ``n_replicas``."""

    #: Simulator attribute listing every replicated job (oracle discovery).
    _ATTR = "replicated_jobs"

    def __init__(self, fleet: "XeonPhiFleet", profile: "MZProfile",
                 n_teams: int, n_replicas: int = 2,
                 iterations: Optional[int] = None,
                 partner_for: Optional[Callable[[Any], Optional[str]]] = None):
        from ..apps.nas_mz import build_mz_binary
        from ..apps.workloads import mz_rank_footprint

        self.fleet = fleet
        self.sim = fleet.sim
        self.profile = profile
        self.name = f"{profile.name}x{n_replicas}"
        self.n_teams = n_teams
        self.n_replicas = n_replicas
        self.iterations = (iterations if iterations is not None
                           else profile.iterations)
        host_heap, offload_heap, local_store = mz_rank_footprint(
            profile, n_teams
        )
        self.host_heap = host_heap
        self.local_store = local_store
        self.binary = build_mz_binary(profile, offload_heap)
        self.placement = plan_replica_placement(
            fleet.cards(), n_teams, n_replicas, partner_for=partner_for
        )
        self.comm = TeamComm(fleet, n_teams)
        self.replicas: Dict[RKey, TeamReplica] = {
            key: TeamReplica(self, key[0], key[1], card)
            for key, card in self.placement.items()
        }
        jobs = getattr(self.sim, self._ATTR, None)
        if jobs is None:
            jobs = []
            setattr(self.sim, self._ATTR, jobs)
        jobs.append(self)

    @classmethod
    def all_of(cls, sim: "Simulator") -> List["ReplicatedJob"]:
        return list(getattr(sim, cls._ATTR, ()))

    # -- lifecycle --------------------------------------------------------------
    def launch(self):
        """Sub-generator: start every replica and register team membership."""
        for key, rep in self.replicas.items():
            self.comm.register(key[0], key[1], rep.card.node)
            yield from rep.launch()

    def join(self):
        """Sub-generator: wait until every team has one finished replica.

        Individual replica deaths are absorbed (their team carries on); a
        team losing *every* replica raises :class:`ReplicationError`.
        """
        while True:
            pending: List[Event] = []
            for t in range(self.n_teams):
                team_done = False
                candidates: List[Event] = []
                for (tt, _rid), rep in self.replicas.items():
                    if tt != t or rep.host_proc is None:
                        continue
                    done = rep.host_proc.main_thread.done
                    if done.triggered:
                        if done.ok and rep.host_proc.store.get("finished"):
                            team_done = True
                    else:
                        candidates.append(done)
                if team_done:
                    continue
                if not candidates:
                    raise ReplicationError(
                        f"team {t} lost every replica"
                    )
                pending.extend(candidates)
            if not pending:
                return
            try:
                yield self.sim.any_of(pending)
            except Exception:
                pass  # a replica died; re-evaluate team membership

    def abort(self) -> None:
        """Terminate every still-running replica (team-wipe cleanup)."""
        for rep in self.replicas.values():
            proc = rep.host_proc
            if proc is not None and proc.alive:
                proc.terminate(code=1)

    # -- re-seed integration -----------------------------------------------------
    def next_rid(self, team: int) -> int:
        return 1 + max(rid for (t, rid) in self.replicas if t == team)

    def adopt_replica(self, team: int, rid: int, card: "CardRef",
                      host_proc: SimProcess) -> TeamReplica:
        """Integrate a restored clone as a new replica of ``team``.

        Must run in the same no-yield window as the restart that produced
        ``host_proc`` (before its main thread is scheduled): the runtime
        stamp below is what the restored program reads as its identity.
        """
        rep = TeamReplica(self, team, rid, card)
        rep.host_proc = host_proc
        host_proc.runtime["replica_team"] = team
        host_proc.runtime["replica_rid"] = rid
        self.replicas[(team, rid)] = rep
        self.placement[(team, rid)] = card
        self.comm.join_replica(team, rid, card.node)
        return rep

    # -- results ----------------------------------------------------------------
    def verify(self) -> bool:
        """Every team finished, and every finished replica checksums clean."""
        from ..apps.offload import expected_checksum

        want = expected_checksum(self.iterations)
        team_ok = {t: False for t in range(self.n_teams)}
        for (t, _rid), rep in self.replicas.items():
            proc = rep.host_proc
            if proc is None or not proc.store.get("finished"):
                continue
            if proc.store.get("checksum") != want:
                return False
            team_ok[t] = True
        return all(team_ok.values())

    def useful_iterations(self) -> int:
        """Logical progress: the best replica's iteration count per team."""
        best = {t: 0 for t in range(self.n_teams)}
        for (t, _rid), rep in self.replicas.items():
            if rep.host_proc is not None:
                best[t] = max(best[t], rep.host_proc.store.get("iter", 0))
        return sum(best.values())

    def executed_iterations(self) -> int:
        """Total iterations burned across every replica (redundancy cost)."""
        return sum(
            rep.host_proc.store.get("iter", 0)
            for rep in self.replicas.values()
            if rep.host_proc is not None
        )


class HeartbeatDetector:
    """Sim-clock heartbeat over a replicated job's teams.

    Every ``interval`` sim-seconds each live replica is probed (host
    process, offload handle, card, link). ``misses`` consecutive failed
    probes drop the replica from its team — fencing a zombie that is
    technically still running — without interrupting the survivors. With
    ``reseed`` enabled, a degraded team is restored to full strength by
    cloning a healthy replica through the fleet's MAINTENANCE lane.
    """

    def __init__(self, job: ReplicatedJob, *, interval: float = 0.05,
                 misses: int = 2, reseed: bool = False,
                 manager: Optional["FleetManager"] = None,
                 snapshot_root: str = "/replication"):
        if reseed and manager is None:
            raise ValueError("re-seeding needs a FleetManager")
        self.job = job
        self.sim = job.sim
        self.interval = interval
        self.misses = misses
        self.reseed = reseed
        self.manager = manager
        self.snapshot_root = snapshot_root
        self._miss: Dict[RKey, int] = {}
        self._stopped = False
        self._thread = None
        #: Teams with a re-seed ticket in flight (one at a time per team).
        self._reseeding: Dict[int, "FleetTicket"] = {}
        self.reseed_tickets: List["FleetTicket"] = []
        #: (what, team, rid, sim-time) tuples, in detection order.
        self.events: List[tuple] = []
        registry = MetricsRegistry.of(self.sim)
        self.m_beats = registry.counter("replica.heartbeats")
        self.m_misses = registry.counter("replica.misses")
        self.m_drops = registry.counter("replica.drops")
        self.m_reseeds = registry.counter("replica.reseeds")
        registry.gauge("replica.live", self._live_total)
        for t in range(job.n_teams):
            registry.gauge(f"replica.team.{t}.live",
                           lambda t=t: len(self.job.comm.live[t]))

    def _live_total(self) -> int:
        return sum(len(rids) for rids in self.job.comm.live.values())

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        self._thread = self.sim.spawn(self._run(), name="heartbeat")

    def stop(self) -> None:
        self._stopped = True

    @property
    def drops(self) -> List[tuple]:
        return [e for e in self.events if e[0] == "drop"]

    @property
    def reseeds(self) -> List[tuple]:
        return [e for e in self.events if e[0] == "reseed"]

    # -- probe loop -------------------------------------------------------------
    def _run(self):
        while not self._stopped and not self._all_terminal():
            yield self.sim.timeout(self.interval)
            if self._stopped:
                break
            self.m_beats.inc()
            for team in range(self.job.n_teams):
                for rid in list(self.job.comm.live[team]):
                    self._probe(team, rid)
            self._collect_reseeds()

    def _all_terminal(self) -> bool:
        procs = [rep.host_proc for rep in self.job.replicas.values()]
        if any(p is None for p in procs):
            return False
        if self._reseeding:
            return False
        return all(p.main_thread.done.triggered for p in procs)

    def _healthy(self, rep: TeamReplica) -> bool:
        proc = rep.host_proc
        if proc is None:
            return True  # not launched yet: nothing to probe
        done = proc.main_thread.done
        if done.triggered:
            return bool(done.ok and proc.store.get("finished"))
        phi = self.job.fleet.phi(rep.card)
        if getattr(phi, "failed", False) or getattr(phi, "link_down", False):
            return False
        if not proc.alive:
            return False
        handle = proc.runtime.get("coi_handle")
        if handle is not None and (handle.dead or not handle.offload_proc.alive):
            return False
        return True

    def _probe(self, team: int, rid: int) -> None:
        key = (team, rid)
        rep = self.job.replicas.get(key)
        if rep is None:
            return
        if self._healthy(rep):
            self._miss.pop(key, None)
            return
        count = self._miss.get(key, 0) + 1
        self._miss[key] = count
        self.m_misses.inc()
        self.sim.trace.emit("replica.miss", team=team, rid=rid, count=count)
        self.events.append(("miss", team, rid, self.sim.now))
        if count < self.misses:
            return
        self._miss.pop(key, None)
        self.job.comm.drop_replica(team, rid, reason="heartbeat")
        proc = rep.host_proc
        if proc is not None and proc.alive:
            # Fence: a zombie behind a flapped link must not resurface and
            # double-deliver after the team moved on without it.
            proc.terminate(code=1)
        self.m_drops.inc()
        self.events.append(("drop", team, rid, self.sim.now))
        if self.reseed:
            self._submit_reseed(team)

    # -- re-seed path -----------------------------------------------------------
    def _submit_reseed(self, team: int) -> None:
        from ..snapify.fleet import CardRef

        if team in self._reseeding:
            return
        if len(self.job.comm.live[team]) >= self.job.n_replicas:
            return
        source = None
        for rid in self.job.comm.live[team]:
            rep = self.job.replicas[(team, rid)]
            if rep.host_proc is not None and rep.host_proc.alive:
                source = rep
                break
        if source is None:
            return
        # The clone restores against the source's node-local host context,
        # so the target card must share the source's node (card-disjoint
        # from every live replica, as the membership oracle demands).
        fleet = self.job.fleet
        team_cards = [self.job.replicas[(team, rid)].card
                      for rid in self.job.comm.live[team]]
        target = None
        for d in range(fleet.topology.phis_per_node):
            card = CardRef(node=source.card.node, device=d)
            phi = fleet.phi(card)
            if getattr(phi, "failed", False) or getattr(phi, "link_down", False):
                continue
            if any(card.key == tc.key for tc in team_cards):
                continue
            target = card
            break
        if target is None:
            self.sim.trace.emit("replica.reseed_skipped", team=team,
                                reason="no spare card on source node")
            return
        new_rid = self.job.next_rid(team)
        path = f"{self.snapshot_root}/t{team}_r{new_rid}"
        job = self.job

        def integrate(result):
            job.adopt_replica(team, new_rid, target, result.host_proc)
            self.m_reseeds.inc()
            self.events.append(("reseed", team, new_rid, self.sim.now))
            self.sim.trace.emit("replica.reseed", team=team, rid=new_rid,
                                card=target.key, source=source.rid)

        ticket = self.manager.submit_reseed(
            f"reseed:t{team}.r{new_rid}",
            coiproc=source.host_proc.runtime["coi_handle"],
            host_os=source.server.host_os,
            engine_to=fleet.engine(target),
            snapshot_path=path,
            card=target,
            integrate=integrate,
        )
        self._reseeding[team] = ticket
        self.reseed_tickets.append(ticket)

    def _collect_reseeds(self) -> None:
        finished = [t for t, ticket in self._reseeding.items()
                    if ticket.done.triggered]
        for t in finished:
            del self._reseeding[t]
