"""MPI substrate, coordinated checkpoint/restart, and team replication."""

from .cr import mpi_checkpoint, mpi_restart, rank_snapshot_path
from .replication import (
    HeartbeatDetector,
    ReplicatedJob,
    ReplicationError,
    TeamComm,
    TeamReplica,
    plan_replica_placement,
)
from .runtime import MPIComm, MPIError

__all__ = [
    "HeartbeatDetector",
    "MPIComm",
    "MPIError",
    "ReplicatedJob",
    "ReplicationError",
    "TeamComm",
    "TeamReplica",
    "mpi_checkpoint",
    "mpi_restart",
    "plan_replica_placement",
    "rank_snapshot_path",
]
