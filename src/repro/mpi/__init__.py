"""MPI substrate and coordinated checkpoint/restart for offload jobs."""

from .cr import mpi_checkpoint, mpi_restart, rank_snapshot_path
from .runtime import MPIComm, MPIError

__all__ = ["MPIComm", "MPIError", "mpi_checkpoint", "mpi_restart", "rank_snapshot_path"]
