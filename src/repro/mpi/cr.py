"""Coordinated checkpoint/restart for MPI offload jobs (Fig. 11).

The paper rides BLCR-integrated MPI runtimes: the MPI layer quiesces its
channels, then every rank checkpoints (host process via BLCR, offload
process via Snapify). We model the same structure with an explicit
coordination protocol: ranks park at an iteration boundary (where all MPI
channels are provably empty), every rank's host+offload pair is captured
*in parallel*, and the job resumes. Restart rebuilds every rank from its
snapshot directory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..sim.events import Event
from ..snapify.api import snapify_t
from ..snapify.ops import OperationManager
from ..snapify.usecases import checkpoint_offload_app, restart_offload_app

if TYPE_CHECKING:  # pragma: no cover
    from ..apps.nas_mz import MZJob


def rank_snapshot_path(prefix: str, rank: int) -> str:
    return f"{prefix}/rank{rank}"


def mpi_checkpoint(job: "MZJob", path_prefix: str):
    """Sub-generator: coordinated checkpoint of every rank.

    Returns a dict with per-rank timings and sizes. The elapsed wall time is
    the max across ranks (they checkpoint concurrently, one per node).
    """
    sim = job.sim
    t0 = sim.now

    # 1. Quiesce the MPI layer: all ranks park at an iteration boundary.
    job.park_requested = True
    job.parked = 0
    job.all_parked = Event(sim, "mpi.all-parked")
    job.release_event = Event(sim, "mpi.release")
    yield job.all_parked
    assert job.comm.pending_messages() == 0, "MPI channels not drained"

    # 2. Capture every rank in parallel: one pre-issued operation per rank,
    #    demultiplexed by correlation id, awaited through the manager.
    mgr = OperationManager.of(sim)
    snaps: Dict[int, snapify_t] = {}
    ops = []
    for rank in job.ranks:
        snap = snapify_t(
            snapshot_path=rank_snapshot_path(path_prefix, rank.rank),
            coiproc=rank.host_proc.runtime["coi_handle"],
        )
        snaps[rank.rank] = snap
        ops.append(mgr.begin("checkpoint", snap))

        def _one(snap=snap):
            yield from checkpoint_offload_app(snap)

        sim.spawn(_one(), name="ckpt-rank")
    results = yield from mgr.wait_all(ops)

    # 3. Release the job.
    job.park_requested = False
    job.release_event.succeed(None)
    job.all_parked = None
    job.release_event = None

    elapsed = sim.now - t0
    return {
        "elapsed": elapsed,
        "operations": results,
        "per_rank": {
            r: dict(snaps[r].timings, **{f"size_{k}": v for k, v in snaps[r].sizes.items()})
            for r in snaps
        },
        "rank_snapshot_bytes": {
            r: snaps[r].sizes.get("host_snapshot", 0)
            + snaps[r].sizes.get("offload_snapshot", 0)
            + snaps[r].sizes.get("local_store", 0)
            for r in snaps
        },
    }


def mpi_restart(job: "MZJob", path_prefix: str):
    """Sub-generator: restart every rank of a failed job from its snapshot.

    The caller is responsible for having terminated the old processes (or
    they died with their nodes). Returns {'elapsed': wall time}.
    """
    sim = job.sim
    t0 = sim.now
    done_events: List[Event] = []
    restarted: List = []
    for rank in job.ranks:
        done = Event(sim, f"restart.rank{rank.rank}")
        done_events.append(done)

        def _one(rank=rank, done=done):
            result = yield from restart_offload_app(
                rank.server.host_os,
                rank_snapshot_path(path_prefix, rank.rank),
                rank.server.engine(0),
            )
            rank.host_proc = result.host_proc
            restarted.append(result)
            done.succeed(None)

        sim.spawn(_one(), name="restart-rank")
    yield sim.all_of(done_events)
    return {"elapsed": sim.now - t0,
            "operations": [r.result for r in restarted]}
