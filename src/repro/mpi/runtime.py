"""A small MPI substrate over the simulated cluster fabric.

Point-to-point messages are *tagged* and matched by (source, tag): restarted
ranks may legitimately re-send a message another rank already consumed, and
tag matching makes the duplicate harmless — the property the coordinated
checkpoint protocol of :mod:`repro.mpi.cr` relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

from ..sim.errors import SimError
from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import XeonPhiCluster


class MPIError(SimError):
    """MPI substrate failure."""


class MPIComm:
    """Communicator binding one rank per cluster node."""

    def __init__(self, cluster: "XeonPhiCluster", n_ranks: int):
        if n_ranks > len(cluster):
            raise MPIError(f"{n_ranks} ranks > {len(cluster)} nodes")
        self.cluster = cluster
        self.sim = cluster.sim
        self.n_ranks = n_ranks
        #: (dst, src, tag) -> payload (delivered, unconsumed)
        self._delivered: Dict[Tuple[int, int, Any], Any] = {}
        #: (dst, src, tag) -> waiting event
        self._waiters: Dict[Tuple[int, int, Any], Event] = {}
        self.messages_sent = 0

    def send(self, src: int, dst: int, tag: Any, nbytes: int, payload: Any = None):
        """Sub-generator: eager tagged send (re-sends of a consumed tag are
        dropped on the floor, making restart-induced duplicates safe)."""
        self._check_rank(src)
        self._check_rank(dst)
        yield from self.cluster.cluster.transfer(src, dst, nbytes)
        self.messages_sent += 1
        key = (dst, src, tag)
        waiter = self._waiters.pop(key, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(payload)
        else:
            self._delivered.setdefault(key, payload)

    def recv(self, dst: int, src: int, tag: Any) -> Event:
        """Event for the (src, tag) message addressed to ``dst``."""
        self._check_rank(src)
        self._check_rank(dst)
        key = (dst, src, tag)
        ev = Event(self.sim, name=f"mpi.recv:{key}")
        if key in self._delivered:
            ev.succeed(self._delivered.pop(key))
        else:
            if key in self._waiters and not self._waiters[key].triggered:
                raise MPIError(f"double recv on {key}")
            self._waiters[key] = ev
        return ev

    def pending_messages(self) -> int:
        """Delivered-but-unconsumed messages (drain probe for checkpoints)."""
        return len(self._delivered)

    def _check_rank(self, r: int) -> None:
        if not (0 <= r < self.n_ranks):
            raise MPIError(f"bad rank {r}")
