"""A small MPI substrate over the simulated cluster fabric.

Point-to-point messages are *tagged* and matched by (source, tag): restarted
ranks may legitimately re-send a message another rank already consumed, and
tag matching makes the duplicate harmless — the property the coordinated
checkpoint protocol of :mod:`repro.mpi.cr` relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from ..sim.errors import SimError
from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Simulator
    from ..testbed import XeonPhiCluster


class MPIError(SimError):
    """MPI substrate failure."""


class MPIComm:
    """Communicator binding one rank per cluster node."""

    #: Simulator attribute holding every communicator (oracle discovery).
    _ATTR = "mpi_comms"

    def __init__(self, cluster: "XeonPhiCluster", n_ranks: int):
        if n_ranks > len(cluster):
            raise MPIError(f"{n_ranks} ranks > {len(cluster)} nodes")
        self.cluster = cluster
        self.sim = cluster.sim
        self.n_ranks = n_ranks
        #: (dst, src, tag) -> payload (delivered, unconsumed)
        self._delivered: Dict[Tuple[int, int, Any], Any] = {}
        #: (dst, src, tag) -> waiting event
        self._waiters: Dict[Tuple[int, int, Any], Event] = {}
        #: Messages accepted by the substrate (delivered to a waiter or
        #: queued); duplicate re-sends dropped on the floor count in
        #: ``messages_dropped`` instead, so at quiescence
        #: ``messages_sent == messages_consumed + pending_messages()``.
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_consumed = 0
        comms = getattr(self.sim, self._ATTR, None)
        if comms is None:
            comms = []
            setattr(self.sim, self._ATTR, comms)
        comms.append(self)

    @classmethod
    def all_of(cls, sim: "Simulator") -> List["MPIComm"]:
        """Every communicator built on ``sim`` (oracle discovery hook)."""
        return list(getattr(sim, cls._ATTR, ()))

    def send(self, src: int, dst: int, tag: Any, nbytes: int, payload: Any = None):
        """Sub-generator: eager tagged send (re-sends of a still-delivered
        tag are dropped on the floor, making restart-induced duplicates
        safe)."""
        self._check_rank(src)
        self._check_rank(dst)
        yield from self.cluster.cluster.transfer(src, dst, nbytes)
        key = (dst, src, tag)
        waiter = self._waiters.pop(key, None)
        if waiter is not None and waiter.abandoned:
            # The receiving rank died mid-recv: its event has no thread left
            # to resume. Succeeding it would vanish the payload, so re-queue
            # the message for whoever (e.g. a restarted rank) recvs next.
            waiter = None
        if waiter is not None and not waiter.triggered:
            self.messages_sent += 1
            self.messages_consumed += 1
            waiter.succeed(payload)
        elif key in self._delivered:
            self.messages_dropped += 1
        else:
            self.messages_sent += 1
            self._delivered[key] = payload

    def recv(self, dst: int, src: int, tag: Any) -> Event:
        """Event for the (src, tag) message addressed to ``dst``."""
        self._check_rank(src)
        self._check_rank(dst)
        key = (dst, src, tag)
        ev = Event(self.sim, name=f"mpi.recv:{key}")
        if key in self._delivered:
            self.messages_consumed += 1
            ev.succeed(self._delivered.pop(key))
        else:
            stale = self._waiters.get(key)
            if stale is not None and not stale.triggered and not stale.abandoned:
                raise MPIError(f"double recv on {key}")
            self._waiters[key] = ev
        return ev

    def pending_messages(self) -> int:
        """Delivered-but-unconsumed messages (drain probe for checkpoints)."""
        return len(self._delivered)

    def drop_stale_waiters(self) -> int:
        """Forget waiters whose rank died mid-recv; returns how many.

        ``send`` already re-queues around an abandoned waiter, so this sweep
        is pure hygiene for long-lived communicators that churn ranks.
        """
        stale = [k for k, ev in self._waiters.items() if ev.abandoned]
        for k in stale:
            del self._waiters[k]
        return len(stale)

    def _check_rank(self, r: int) -> None:
        if not (0 <= r < self.n_ranks):
            raise MPIError(f"bad rank {r}")
