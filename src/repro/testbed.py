"""Turn-key simulated testbeds.

Booting the full stack (hardware node, host + card OSes, COI daemons,
Snapify-IO daemons) takes a dozen steps; examples, tests and benchmarks all
need it. :class:`XeonPhiServer` assembles one server; :class:`XeonPhiCluster`
assembles the 4-node MPI testbed of §7.

The module-level helpers carry the topology boilerplate the demos share:
:func:`offload_app` builds an offload benchmark from its catalog name,
:func:`offload_process` spawns a raw host + offload process pair with
pre-populated buffers, and :func:`mz_job` stands up an MPI NAS-MZ job on a
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .coi.daemon import COIDaemon
from .coi.engine import COIEngine
from .hw.cluster import Cluster
from .hw.node import ServerNode
from .hw.params import HardwareParams
from .osim.boot import boot_node
from .osim.process import OSInstance
from .scif.endpoint import ScifNetwork
from .sim.kernel import SimGen, Simulator
from .snapify_io.daemon import SnapifyIODaemon


class XeonPhiServer:
    """A booted single-node testbed: OSes, COI daemons, Snapify-IO daemons."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        params: Optional[HardwareParams] = None,
        name: str = "node0",
        node: Optional[ServerNode] = None,
    ):
        self.sim = sim or Simulator()
        if params is None:
            from .calibration import paper_testbed

            params = paper_testbed()
        self.params = params
        self.node = node or ServerNode(self.sim, self.params, name=name)
        self.host_os, self.phi_oses = boot_node(self.node)
        ScifNetwork.of(self.node)
        self.coi_daemons: List[COIDaemon] = []
        self.io_daemons: List[SnapifyIODaemon] = []
        self._boot()

    def _boot(self) -> None:
        def setup(sim):
            for phi in self.node.phis:
                daemon = yield from COIDaemon.boot(phi)
                self.coi_daemons.append(daemon)
            daemons = yield from SnapifyIODaemon.boot_all(self.node)
            self.io_daemons.extend(daemons)

        self.run(setup(self.sim))

    # -- conveniences ------------------------------------------------------------
    def engine(self, device: int = 0) -> COIEngine:
        """COIEngine for card ``device`` (0-based)."""
        return COIEngine(self.node, device)

    def phi_os(self, device: int = 0) -> OSInstance:
        return self.phi_oses[device]

    def run(self, gen: SimGen, name: str = "driver") -> Any:
        """Run a driver generator to completion; return its value."""
        t = self.sim.spawn(gen, name=name)
        self.sim.run_until(t.done)
        return t.done.value

    @property
    def now(self) -> float:
        return self.sim.now


class XeonPhiCluster:
    """The paper's MPI testbed: ``n_nodes`` single-Phi servers on a fabric."""

    def __init__(
        self,
        n_nodes: int = 4,
        params: Optional[HardwareParams] = None,
        sim: Optional[Simulator] = None,
    ):
        self.sim = sim or Simulator()
        if params is None:
            from .calibration import mpi_cluster_testbed

            # Fig. 11's cluster: one Xeon Phi (8 GB) per node.
            params = mpi_cluster_testbed()
        self.params = params
        self.cluster = Cluster(self.sim, self.params, n_nodes=n_nodes)
        self.servers: List[XeonPhiServer] = [
            XeonPhiServer(sim=self.sim, params=self.params, node=node)
            for node in self.cluster.nodes
        ]

    def __len__(self) -> int:
        return len(self.servers)

    def server(self, i: int) -> XeonPhiServer:
        return self.servers[i]

    def run(self, gen: SimGen, name: str = "driver") -> Any:
        t = self.sim.spawn(gen, name=name)
        self.sim.run_until(t.done)
        return t.done.value


# ---------------------------------------------------------------------------
# Fleet topologies — pre-baked, reproducible multi-node layouts (the gem5
# standard-library idea: CI and demos name a topology instead of hand-rolling
# node counts, so "rack32" means the same 32 cards everywhere).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetTopology:
    """A named fleet layout: how many servers, how many Phis per server."""

    name: str
    n_nodes: int
    phis_per_node: int
    description: str = ""

    @property
    def cards(self) -> int:
        return self.n_nodes * self.phis_per_node


FLEET_TOPOLOGIES: Dict[str, FleetTopology] = {
    t.name: t
    for t in (
        FleetTopology("dev2", 1, 2, "the paper's single dual-Phi server"),
        FleetTopology("rack8", 4, 2, "four dual-Phi servers (one rack unit)"),
        FleetTopology("rack32", 8, 4, "eight quad-Phi servers (a full rack)"),
        FleetTopology("pod64", 16, 4, "sixteen quad-Phi servers (two racks)"),
        FleetTopology("hall128", 16, 8, "sixteen 8-Phi servers (machine hall)"),
    )
}


class XeonPhiFleet:
    """A booted multi-node, multi-Phi fleet built from a named topology.

    Like :class:`XeonPhiCluster` but sized for fleet-control-plane work:
    many cards per node, addressed uniformly by :class:`~repro.snapify.
    fleet.CardRef` so one :class:`~repro.snapify.fleet.FleetManager` can
    drive every card behind one key space.
    """

    def __init__(self, topology: Any = "rack32",
                 sim: Optional[Simulator] = None,
                 params: Optional[HardwareParams] = None):
        if isinstance(topology, str):
            try:
                topology = FLEET_TOPOLOGIES[topology]
            except KeyError:
                known = ", ".join(sorted(FLEET_TOPOLOGIES))
                raise ValueError(
                    f"unknown fleet topology {topology!r} (known: {known})"
                ) from None
        self.topology: FleetTopology = topology
        self.sim = sim or Simulator()
        if params is None:
            from .calibration import paper_testbed

            params = paper_testbed(phis_per_node=topology.phis_per_node)
        self.params = params
        self.cluster = Cluster(self.sim, self.params, n_nodes=topology.n_nodes)
        self.servers: List[XeonPhiServer] = [
            XeonPhiServer(sim=self.sim, params=self.params, node=node)
            for node in self.cluster.nodes
        ]

    def __len__(self) -> int:
        return self.topology.cards

    def cards(self) -> List[Any]:
        """Every card in the fleet as a CardRef, node-major order."""
        from .snapify.fleet import CardRef

        return [
            CardRef(node=n, device=d)
            for n in range(self.topology.n_nodes)
            for d in range(self.topology.phis_per_node)
        ]

    def server(self, node: int) -> XeonPhiServer:
        return self.servers[node]

    def phi(self, card: Any):
        """The PhiDevice behind a CardRef."""
        return self.servers[card.node].node.phis[card.device]

    def engine(self, card: Any) -> COIEngine:
        return self.servers[card.node].engine(card.device)

    def run(self, gen: SimGen, name: str = "driver") -> Any:
        t = self.sim.spawn(gen, name=name)
        self.sim.run_until(t.done)
        return t.done.value


# ---------------------------------------------------------------------------
# Topology helpers — the per-demo boilerplate, shared.
# ---------------------------------------------------------------------------


def offload_app(server: XeonPhiServer, benchmark: str, *,
                iterations: Optional[int] = None, device: int = 0,
                name: Optional[str] = None, snapify_enabled: bool = True):
    """An :class:`~repro.apps.OffloadApplication` built from the named
    OPENMP benchmark profile (``"CG"``, ``"MC"``, ``"KM"``…), optionally
    shortened to ``iterations``."""
    from .apps import OPENMP_BENCHMARKS, OffloadApplication

    return OffloadApplication(
        server, OPENMP_BENCHMARKS[benchmark], device=device,
        iterations=iterations, name=name, snapify_enabled=snapify_enabled,
    )


def offload_process(server: XeonPhiServer, name: str, binary, *,
                    device: int = 0, image_size: Optional[int] = None,
                    buffers=()):
    """Sub-generator: spawn a host process, create its offload process from
    ``binary`` on card ``device``, and populate one COI buffer per
    ``(size, payload)`` entry of ``buffers``. Returns ``(coiproc, bufs)``.

    This is the hand-rolled prologue of every raw-API demo and protocol
    test; snapshot handles take the returned ``coiproc`` directly.
    """
    if image_size is None:
        image_size = 4 * 1024 * 1024
    host_proc = yield from server.host_os.spawn_process(name, image_size=image_size)
    coiproc = yield from server.engine(device).process_create(host_proc, binary)
    bufs = []
    for size, payload in buffers:
        buf = yield from coiproc.buffer_create(size)
        yield from coiproc.buffer_write(buf, payload=payload)
        bufs.append(buf)
    return coiproc, bufs


def mz_job(cluster: "XeonPhiCluster", benchmark: str, *, n_ranks: int = 4,
           iterations: Optional[int] = None):
    """An MPI NAS-MZ job (one rank per node) from its catalog name."""
    from .apps import NAS_MZ_BENCHMARKS
    from .apps.nas_mz import MZJob

    return MZJob(cluster, NAS_MZ_BENCHMARKS[benchmark], n_ranks=n_ranks,
                 iterations=iterations)
