"""Result tables for the benchmark harness.

Every benchmark prints a :class:`ResultTable` whose rows pair our measured
(simulated) values with the paper's reported values or qualitative claims,
so ``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation
section in readable form. EXPERIMENTS.md is written from the same tables.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from .hw.params import GB, KB, MB


def fmt_bytes(n: float) -> str:
    if n >= GB:
        return f"{n / GB:.2f} GB"
    if n >= MB:
        return f"{n / MB:.1f} MB"
    if n >= KB:
        return f"{n / KB:.1f} KB"
    return f"{int(n)} B"


def fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


class ResultTable:
    """A fixed-column text table with a title and optional notes."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.notes: List[str] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append([str(v) for v in values])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")
