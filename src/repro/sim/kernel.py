"""The discrete-event simulation kernel.

The kernel runs *simulated threads* — Python generators that ``yield``
:class:`~repro.sim.events.Event` objects to block. Scheduling is strictly
deterministic: ties in simulated time are broken by a per-simulator sequence
counter, so a given seed and workload always produce the same interleaving.

Threads compose with ``yield from``, which is how the higher layers (OS,
SCIF, COI, Snapify) build blocking "system calls" out of one another.

Hot-path notes
--------------
Every simulated action in the whole stack funnels through ``Thread._step``
and the run loops below, so this module trades a little beauty for speed:

* ``Thread`` uses ``__slots__`` and parks itself directly in an event's
  callback list (see :class:`~repro.sim.events._ThreadWaiter`) — no resume
  closure is allocated per wait.
* Yielding an already-triggered event skips waiter registration entirely
  and re-schedules the thread straight onto the heap.
* ``_ready``/``spawn`` push heap entries inline instead of going through
  :meth:`Simulator.schedule`, and the run loops bind ``heappop`` locally.
* The bound ``_step`` method is created once per thread (``_bstep``), not
  once per resume.

None of this may change wakeup ordering: heap entries remain
``(time, seq, fn, args)`` with ``seq`` drawn in the same places as the
straightforward implementation, so trace orderings are byte-identical.

Thread IDs are drawn from a **per-simulator** counter (``Simulator._tids``),
so the interleaving — and any trace output derived from thread names — of a
given workload does not depend on how many simulators ran earlier in the
process.

Schedule exploration
--------------------
``Simulator(schedule_seed=N)`` turns the tie-break counter into a seeded
*perturbed* key stream: entries that collide at the same simulated time are
popped in a pseudo-random (but fully deterministic and replayable) order
instead of insertion order. Every perturbed schedule is still a legal
execution — time ordering is untouched; only the order of semantically
concurrent wakeups changes — which is what the :mod:`repro.check` fuzzer
sweeps to hunt protocol races. ``schedule_seed=None`` (the default) keeps
the plain counter and is byte-identical to the unseeded kernel, as the
golden-trace test proves.
"""

from __future__ import annotations

import itertools
import random
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from .errors import DeadlockError, Interrupted, SimTimeLimit, ThreadKilled
from .events import PENDING, SUCCEEDED, AllOf, AnyOf, Event, Timeout, _ThreadWaiter
from .trace import Tracer

SimGen = Generator[Event, Any, Any]


def _perturbed_seq(seed: int):
    """Seeded replacement for the tie-break counter.

    Yields ``(random 32-bit key, n)`` tuples: the random key shuffles the pop
    order of same-timestamp heap entries, while the trailing counter keeps
    every key unique so the heap never falls through to comparing callables.
    Keys are drawn in execution order from a private PRNG, so the same seed
    always produces the same perturbation — replayable by construction.
    """
    rng = random.Random(seed)
    bits = rng.getrandbits
    for n in itertools.count():
        yield (bits(32), n)


class Thread(_ThreadWaiter):
    """A simulated thread of execution.

    Wraps a generator. The thread's completion is itself observable through
    :attr:`done`, an event that succeeds with the generator's return value or
    fails with its uncaught exception — making ``join`` a plain event wait.
    """

    __slots__ = ("sim", "gen", "tid", "name", "done", "daemon", "_waiting_on", "_bstep")

    def __init__(self, sim: "Simulator", gen: SimGen, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.tid = next(sim._tids)
        self.name = name or f"thread-{self.tid}"
        self.done = Event(sim, name=f"done:{self.name}")
        self._waiting_on: Optional[Event] = None
        self.daemon = False  # daemon threads don't count for quiescence
        self._bstep = self._step  # bind once; scheduled on every resume

    # -- state -------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.done._state is PENDING

    @property
    def blocked_on(self) -> Optional[Event]:
        return self._waiting_on

    # -- kernel stepping ----------------------------------------------------
    def _step(self, send_value: Any = None, throw_exc: Optional[BaseException] = None) -> None:
        if self.done._state is not PENDING:
            # Killed/finished while a resumption was already scheduled.
            return
        self._waiting_on = None
        try:
            if throw_exc is not None:
                target = self.gen.throw(throw_exc)
            else:
                target = self.gen.send(send_value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - thread death is reported
            self.sim.trace.emit("thread.error", thread=self.name, error=repr(exc))
            self.sim._dead_threads.append((self, exc))
            self.done.fail(exc)
            if self.sim.strict:
                raise
            return
        if isinstance(target, Event):
            state = target._state
            if state is PENDING:
                # Park directly in the event's waiter list: no closure.
                self._waiting_on = target
                callbacks = target._callbacks
                if callbacks is None:
                    target._callbacks = [self]
                else:
                    callbacks.append(self)
            else:
                # Already-triggered fast path: straight back onto the heap.
                sim = self.sim
                if state is SUCCEEDED:
                    args = (target._value, None)
                else:
                    args = (None, target._exc)
                heappush(sim._heap, (sim.now, next(sim._seq), self._bstep, args))
            return
        exc2 = TypeError(
            f"thread {self.name!r} yielded {target!r}; threads must yield Event objects"
        )
        self.sim._dead_threads.append((self, exc2))
        self.done.fail(exc2)
        if self.sim.strict:
            raise exc2

    # -- control ------------------------------------------------------------
    def interrupt(self, cause: object = None) -> None:
        """Interrupt the thread if it is blocked.

        The blocked ``yield`` raises :class:`Interrupted` inside the thread.
        Interrupting a thread that is not blocked (running or finished) is a
        no-op, matching the fire-and-forget nature of signal delivery.
        """
        if self.done._state is not PENDING:
            return
        ev = self._waiting_on
        if ev is None:
            return
        self._waiting_on = None
        ev.remove_callback(self)
        self.sim._ready(self, None, Interrupted(cause))

    def kill(self) -> None:
        """Destroy the thread without running it further.

        Cleanup clauses (``finally``) in the generator run via ``close()``;
        the done event fails with :class:`ThreadKilled`.
        """
        if self.done._state is not PENDING:
            return
        ev = self._waiting_on
        if ev is not None:
            ev.remove_callback(self)
            self._waiting_on = None
        try:
            self.gen.close()
        except BaseException:  # pragma: no cover - generator misbehaviour
            pass
        if self.done._state is PENDING:
            self.done.fail(ThreadKilled(self.name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if not self.alive else ("blocked" if self._waiting_on else "ready")
        return f"<Thread {self.name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        t = sim.spawn(worker(sim), name="worker")
        sim.run()
        assert sim.now == 1.5 and t.done.value == "done"
    """

    def __init__(
        self,
        *,
        strict: bool = False,
        trace: bool = False,
        schedule_seed: Optional[int] = None,
    ):
        self.now: float = 0.0
        self._heap: List = []
        self.schedule_seed = schedule_seed
        if schedule_seed is None:
            self._seq = itertools.count()
        else:
            self._seq = _perturbed_seq(schedule_seed)
        self._tids = itertools.count(1)
        self.strict = strict
        self.trace = Tracer(self, enabled=trace)
        self.threads: List[Thread] = []
        self._dead_threads: List = []

    # -- low-level scheduling ------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heappush(self._heap, (self.now + delay, next(self._seq), fn, args))

    def _ready(self, thread: Thread, value: Any, exc: Optional[BaseException]) -> None:
        heappush(self._heap, (self.now, next(self._seq), thread._bstep, (value, exc)))

    # -- thread / event factories ---------------------------------------------
    def spawn(self, gen: SimGen, name: str = "", daemon: bool = False) -> Thread:
        """Create a thread from a generator and schedule its first step."""
        if not hasattr(gen, "send"):
            raise TypeError("spawn() needs a generator (call the generator function)")
        t = Thread(self, gen, name=name)
        t.daemon = daemon
        self.threads.append(t)
        heappush(self._heap, (self.now, next(self._seq), t._bstep, (None, None)))
        return t

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, list(events))

    # -- run loop ------------------------------------------------------------
    def run(self, until: Optional[float] = None, *, check_deadlock: bool = True) -> float:
        """Run until quiescence (or simulated time ``until``).

        Returns the final simulated time. With ``check_deadlock`` (default),
        raises :class:`DeadlockError` if the heap drains while non-daemon
        threads are still blocked — the classic symptom of a protocol bug
        such as an un-released lock or an un-drained channel.
        """
        heap = self._heap
        pop = heappop
        if until is None:
            while heap:
                t, _, fn, args = pop(heap)
                self.now = t
                fn(*args)
        else:
            while heap:
                t = heap[0][0]
                if t > until:
                    self.now = until
                    return until
                # Batch-dispatch every entry at this timestamp: the horizon
                # check above need not be repeated for same-time entries.
                self.now = t
                while heap and heap[0][0] == t:
                    entry = pop(heap)
                    entry[2](*entry[3])
        if check_deadlock:
            stuck = [
                th
                for th in self.threads
                if th.alive and not th.daemon and th.blocked_on is not None
            ]
            if stuck:
                names = ", ".join(
                    f"{th.name} on {th.blocked_on and th.blocked_on.name!r}" for th in stuck[:12]
                )
                raise DeadlockError(
                    f"{len(stuck)} thread(s) blocked at t={self.now:g}: {names}",
                    waitfor=self.wait_for_graph(),
                )
        return self.now

    def run_until(self, event: Event, *, limit: float = 1e12) -> Any:
        """Run until ``event`` triggers; return its value (or raise its error)."""
        heap = self._heap
        pop = heappop
        while event._state is PENDING:
            if not heap:
                raise DeadlockError(
                    f"event {event.name!r} can never trigger (heap empty)",
                    waitfor=self.wait_for_graph(),
                )
            t, _, fn, args = pop(heap)
            if t > limit:
                raise SimTimeLimit(f"exceeded t={limit:g} waiting for {event.name!r}")
            self.now = t
            fn(*args)
        return event.value

    # -- diagnostics -----------------------------------------------------------
    def failed_threads(self) -> List:
        """(thread, exception) pairs for threads that died with an error."""
        return list(self._dead_threads)

    def wait_for_graph(self) -> List[Dict[str, Any]]:
        """Edges for every currently-blocked thread: who waits on what.

        Each edge is ``{"thread", "tid", "daemon", "event", "owner"}``; the
        owner is resolved when the blocking event exposes ``owner_info``
        (mutex acquires do — see :class:`repro.sim.sync._AcquireEvent`),
        else ``None``. Edges are sorted by tid, so the dump is stable across
        perturbed schedules that block the same thread set.
        """
        edges: List[Dict[str, Any]] = []
        for th in self.threads:
            if not th.alive:
                continue
            ev = th._waiting_on
            if ev is None:
                continue
            edges.append(
                {
                    "thread": th.name,
                    "tid": th.tid,
                    "daemon": th.daemon,
                    "event": ev.name,
                    "owner": getattr(ev, "owner_info", None),
                }
            )
        edges.sort(key=lambda e: e["tid"])
        return edges
