"""The discrete-event simulation kernel.

The kernel runs *simulated threads* — Python generators that ``yield``
:class:`~repro.sim.events.Event` objects to block. Scheduling is strictly
deterministic: ties in simulated time are broken by a global sequence
counter, so a given seed and workload always produce the same interleaving.

Threads compose with ``yield from``, which is how the higher layers (OS,
SCIF, COI, Snapify) build blocking "system calls" out of one another.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from .errors import DeadlockError, Interrupted, SimTimeLimit, ThreadKilled
from .events import AllOf, AnyOf, Event, Timeout
from .trace import Tracer

SimGen = Generator[Event, Any, Any]


class Thread:
    """A simulated thread of execution.

    Wraps a generator. The thread's completion is itself observable through
    :attr:`done`, an event that succeeds with the generator's return value or
    fails with its uncaught exception — making ``join`` a plain event wait.
    """

    _ids = itertools.count(1)

    def __init__(self, sim: "Simulator", gen: SimGen, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.tid = next(Thread._ids)
        self.name = name or f"thread-{self.tid}"
        self.done = Event(sim, name=f"done:{self.name}")
        self._waiting_on: Optional[Event] = None
        self._resume_cb: Optional[Callable[[Event], None]] = None
        self.daemon = False  # daemon threads don't count for quiescence

    # -- state -------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self.done.triggered

    @property
    def blocked_on(self) -> Optional[Event]:
        return self._waiting_on

    # -- kernel stepping ----------------------------------------------------
    def _step(self, send_value: Any = None, throw_exc: Optional[BaseException] = None) -> None:
        if self.done.triggered:
            # Killed/finished while a resumption was already scheduled.
            return
        self._waiting_on = None
        self._resume_cb = None
        try:
            if throw_exc is not None:
                target = self.gen.throw(throw_exc)
            else:
                target = self.gen.send(send_value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - thread death is reported
            self.sim.trace.emit("thread.error", thread=self.name, error=repr(exc))
            self.sim._dead_threads.append((self, exc))
            self.done.fail(exc)
            if self.sim.strict:
                raise
            return
        if not isinstance(target, Event):
            exc2 = TypeError(
                f"thread {self.name!r} yielded {target!r}; threads must yield Event objects"
            )
            self.sim._dead_threads.append((self, exc2))
            self.done.fail(exc2)
            if self.sim.strict:
                raise exc2
            return
        self._wait_on(target)

    def _wait_on(self, event: Event) -> None:
        self._waiting_on = event

        def resume(ev: Event) -> None:
            # A stale callback (thread was interrupted/killed meanwhile).
            if self._resume_cb is not resume:
                return
            # Clear wait state now so a signal landing between the event
            # trigger and the actual step cannot double-resume the thread.
            self._waiting_on = None
            self._resume_cb = None
            if ev.ok:
                self.sim._ready(self, ev._value, None)
            else:
                self.sim._ready(self, None, ev.exception)

        self._resume_cb = resume
        event.add_callback(resume)

    # -- control ------------------------------------------------------------
    def interrupt(self, cause: object = None) -> None:
        """Interrupt the thread if it is blocked.

        The blocked ``yield`` raises :class:`Interrupted` inside the thread.
        Interrupting a thread that is not blocked (running or finished) is a
        no-op, matching the fire-and-forget nature of signal delivery.
        """
        if not self.alive or self._waiting_on is None:
            return
        ev = self._waiting_on
        cb = self._resume_cb
        if cb is not None:
            ev.remove_callback(cb)
        self._waiting_on = None
        self._resume_cb = None
        self.sim._ready(self, None, Interrupted(cause))

    def kill(self) -> None:
        """Destroy the thread without running it further.

        Cleanup clauses (``finally``) in the generator run via ``close()``;
        the done event fails with :class:`ThreadKilled`.
        """
        if not self.alive:
            return
        if self._waiting_on is not None and self._resume_cb is not None:
            self._waiting_on.remove_callback(self._resume_cb)
        self._waiting_on = None
        self._resume_cb = None
        try:
            self.gen.close()
        except BaseException:  # pragma: no cover - generator misbehaviour
            pass
        if not self.done.triggered:
            self.done.fail(ThreadKilled(self.name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if not self.alive else ("blocked" if self._waiting_on else "ready")
        return f"<Thread {self.name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        t = sim.spawn(worker(sim), name="worker")
        sim.run()
        assert sim.now == 1.5 and t.done.value == "done"
    """

    def __init__(self, *, strict: bool = False, trace: bool = False):
        self.now: float = 0.0
        self._heap: List = []
        self._seq = itertools.count()
        self.strict = strict
        self.trace = Tracer(self, enabled=trace)
        self.threads: List[Thread] = []
        self._dead_threads: List = []

    # -- low-level scheduling ------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn, args))

    def _ready(self, thread: Thread, value: Any, exc: Optional[BaseException]) -> None:
        self.schedule(0.0, thread._step, value, exc)

    # -- thread / event factories ---------------------------------------------
    def spawn(self, gen: SimGen, name: str = "", daemon: bool = False) -> Thread:
        """Create a thread from a generator and schedule its first step."""
        if not hasattr(gen, "send"):
            raise TypeError("spawn() needs a generator (call the generator function)")
        t = Thread(self, gen, name=name)
        t.daemon = daemon
        self.threads.append(t)
        self.schedule(0.0, t._step, None, None)
        return t

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, list(events))

    # -- run loop ------------------------------------------------------------
    def run(self, until: Optional[float] = None, *, check_deadlock: bool = True) -> float:
        """Run until quiescence (or simulated time ``until``).

        Returns the final simulated time. With ``check_deadlock`` (default),
        raises :class:`DeadlockError` if the heap drains while non-daemon
        threads are still blocked — the classic symptom of a protocol bug
        such as an un-released lock or an un-drained channel.
        """
        while self._heap:
            t, _, fn, args = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = t
            fn(*args)
        if check_deadlock:
            stuck = [
                th for th in self.threads if th.alive and not th.daemon and th.blocked_on is not None
            ]
            if stuck:
                names = ", ".join(
                    f"{th.name} on {th.blocked_on and th.blocked_on.name!r}" for th in stuck[:12]
                )
                raise DeadlockError(f"{len(stuck)} thread(s) blocked at t={self.now:g}: {names}")
        return self.now

    def run_until(self, event: Event, *, limit: float = 1e12) -> Any:
        """Run until ``event`` triggers; return its value (or raise its error)."""
        while not event.triggered:
            if not self._heap:
                raise DeadlockError(f"event {event.name!r} can never trigger (heap empty)")
            t, _, fn, args = heapq.heappop(self._heap)
            if t > limit:
                raise SimTimeLimit(f"exceeded t={limit:g} waiting for {event.name!r}")
            self.now = t
            fn(*args)
        return event.value

    # -- diagnostics -----------------------------------------------------------
    def failed_threads(self) -> List:
        """(thread, exception) pairs for threads that died with an error."""
        return list(self._dead_threads)
