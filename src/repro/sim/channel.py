"""FIFO message channels.

Channels are the in-simulation transport that UNIX pipes, UNIX sockets and
SCIF message streams are built from. ``send`` returns an event (so bounded
channels can exert back-pressure) and ``recv`` returns an event that succeeds
with the oldest message.

The drain step of Snapify's pause protocol is checkable because channels
expose their occupancy: a *consistent* global snapshot requires every
channel between the participating processes to be empty.

Hot-path notes
--------------
A send/recv pair is the innermost operation of every offload call, so the
common cases are fast paths that allocate nothing beyond the result event:

* The event names ``send:<chan>``/``recv:<chan>`` are interpolated once per
  channel, not once per operation.
* An unbounded ``send`` with no blocked receiver appends and triggers the
  result event inline — no waiter tuple, no callback list (the event's
  callback list is lazily allocated and stays ``None``).
* A ``recv`` on a non-empty channel pops and triggers inline; the blocked-
  sender scan only runs when a sender is actually parked.
* Direct handoff (send meeting a parked receiver) triggers the receiver's
  event without intermediate objects.

The wakeup *order* of the straightforward implementation is preserved
exactly — trace orderings are part of the kernel's determinism contract.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from .errors import SimError
from .events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


class ChannelClosed(SimError):
    """Raised from a recv/send on a closed channel."""


class Channel:
    """An ordered, reliable message channel.

    ``capacity=None`` means unbounded (sends always complete immediately).
    """

    __slots__ = (
        "sim",
        "name",
        "capacity",
        "_items",
        "_recv_waiters",
        "_send_waiters",
        "closed",
        "_close_error",
        "sent_count",
        "received_count",
        "_send_name",
        "_recv_name",
    )

    def __init__(self, sim: "Simulator", name: str = "chan", capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._recv_waiters: Deque[Event] = deque()
        self._send_waiters: Deque[tuple[Event, Any]] = deque()
        self.closed = False
        self._close_error: Optional[SimError] = None
        self.sent_count = 0
        self.received_count = 0
        self._send_name = f"send:{name}"
        self._recv_name = f"recv:{name}"

    # -- introspection (used by drain-invariant checks) ---------------------
    @property
    def qsize(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet received (queued + blocked senders)."""
        return len(self._items) + len(self._send_waiters)

    # -- operations ----------------------------------------------------------
    def send(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event succeeds once it is accepted."""
        ev = Event(self.sim, name=self._send_name)
        if self.closed:
            ev.fail(self._close_error or ChannelClosed(self.name))
            return ev
        self.sent_count += 1
        # Direct handoff to the oldest blocked receiver keeps FIFO intact.
        # Skip receivers whose thread was interrupted/killed while waiting,
        # or the message would vanish into the void.
        recv_waiters = self._recv_waiters
        while recv_waiters:
            recv_ev = recv_waiters.popleft()
            if recv_ev._state is not PENDING or not recv_ev._callbacks:
                continue  # triggered elsewhere, or abandoned
            self.received_count += 1
            recv_ev.succeed(item)
            ev.succeed(None)
            return ev
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._send_waiters.append((ev, item))
        else:
            self._items.append(item)
            ev.succeed(None)
        return ev

    def recv(self) -> Event:
        """The returned event succeeds with the oldest message."""
        ev = Event(self.sim, name=self._recv_name)
        if self._items:
            self.received_count += 1
            ev.succeed(self._items.popleft())
            if self._send_waiters:
                self._admit_blocked_sender()
        elif self.closed:
            ev.fail(self._close_error or ChannelClosed(self.name))
        else:
            self._recv_waiters.append(ev)
        return ev

    def try_recv(self) -> tuple[bool, Any]:
        """Non-blocking receive; (True, item) or (False, None)."""
        if self._items:
            self.received_count += 1
            item = self._items.popleft()
            if self._send_waiters:
                self._admit_blocked_sender()
            return True, item
        return False, None

    def _admit_blocked_sender(self) -> None:
        while self._send_waiters:
            ev, item = self._send_waiters.popleft()
            if ev._state is not PENDING or not ev._callbacks:
                continue  # triggered elsewhere, or abandoned
            self._items.append(item)
            ev.succeed(None)
            return

    def close(self, error: Optional[SimError] = None) -> None:
        """Close the channel; pending and future operations fail.

        Used to model connection teardown when a process on one side is
        terminated (e.g. an offload process being swapped out).
        """
        if self.closed:
            return
        self.closed = True
        err = error or ChannelClosed(self.name)
        self._close_error = err
        for ev in self._recv_waiters:
            if not ev.triggered:
                ev.fail(err)
        self._recv_waiters.clear()
        for ev, _ in self._send_waiters:
            if not ev.triggered:
                ev.fail(err)
        self._send_waiters.clear()
        self._items.clear()
