"""Structured tracing for the simulation: records and causal spans.

Protocol tests assert on trace event ordering (e.g. "no RDMA transfer occurs
between pause-complete and resume"), so the tracer keeps structured records
rather than formatted strings.

Tracing is off by default and must cost nothing on the hot path: instead of
branching on an ``enabled`` flag inside :meth:`Tracer.emit`, the tracer
swaps ``emit`` itself (an instance attribute shadowing the class) between a
module-level no-op and the real recording method whenever ``enabled`` is
assigned. Disabled emits are a single no-op call with no record allocation.
:meth:`Tracer.span` gets the same treatment: with tracing off it is a
module-level function returning the shared :data:`NULL_SPAN`, so span sites
neither allocate nor draw a span id.

Spans
-----
A :class:`Span` is a pair of trace records (``span.begin`` / ``span.end``)
linked by a *span id* drawn from a per-tracer (hence per-simulator) counter,
so a given workload always produces the same ids. Causality is explicit:
the creator passes ``parent`` — either a :class:`Span` or a bare span id
that rode along in a protocol message — which is how one checkpoint's tree
crosses the host-process / COI-daemon / offload-process boundaries. The
span tree of a whole operation is rebuilt from the records by
:mod:`repro.obs.phases` and exported to Chrome trace-event JSON by
:mod:`repro.obs.export`.

Sinks
-----
``Tracer.sinks`` callables observe records as they are emitted — but only
*emitted* records: the disabled tracer's emit is a no-op, so a sink attached
while ``enabled`` is ``False`` sees nothing until the tracer is enabled.
Tests that need a window of tracing should use :meth:`Tracer.capture`
instead of flipping ``enabled`` and calling ``clear()`` by hand.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.6f}] {self.category}: {kv}"


class Span:
    """An open interval of simulated time with a causal parent.

    Created by :meth:`Tracer.span`; closed by :meth:`finish`. The begin and
    end records carry the span id, so the tree is reconstructible from the
    flat record list alone. ``span_id`` is safe to embed in protocol
    messages — the receiving layer passes it back as ``parent``.
    """

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "start", "end")

    def __init__(self, tracer: Optional["Tracer"], span_id: int, parent_id: int,
                 name: str, start: float):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None

    def finish(self, **fields: Any) -> None:
        """Close the span, emitting its ``span.end`` record."""
        tracer = self._tracer
        if tracer is None or self.end is not None:
            return
        self.end = tracer._sim.now
        tracer.emit("span.end", span=self.span_id, name=self.name, **fields)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.end is None else f"end={self.end:g}"
        return f"<Span {self.span_id} {self.name!r} start={self.start:g} {state}>"


#: The disabled-tracer span: finish() is a no-op and span_id is 0 (= "no
#: parent"), so code can unconditionally embed ``sp.span_id`` in messages.
NULL_SPAN = Span(None, 0, 0, "", 0.0)

ParentLike = Union[Span, int, None]


def _noop_emit(category: str, **fields: Any) -> None:
    """Disabled-tracer emit: swallow the call as cheaply as possible."""


def _noop_span(name: str, parent: ParentLike = None, **fields: Any) -> Span:
    """Disabled-tracer span(): no allocation, no id drawn."""
    return NULL_SPAN


class _Capture:
    """Context manager for :meth:`Tracer.capture`."""

    __slots__ = ("_tracer", "_prior")

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer
        self._prior = False

    def __enter__(self) -> "Tracer":
        self._prior = self._tracer.enabled
        self._tracer.enabled = True
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.enabled = self._prior


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, sim: "Simulator", enabled: bool = False):
        self._sim = sim
        self.records: List[TraceRecord] = []
        self.sinks: List[Callable[[TraceRecord], None]] = []
        #: Per-category record index kept in emit order; find()/first_time()/
        #: last_time() scan only their category instead of every record.
        self._by_category: Dict[str, List[TraceRecord]] = {}
        #: Per-tracer span ids: deterministic for a given workload, and one
        #: tracer per simulator means no cross-instance leakage.
        self._span_ids = itertools.count(1)
        self._enabled = False
        self.emit: Callable[..., None] = _noop_emit
        self.span: Callable[..., Span] = _noop_span
        self.enabled = enabled  # property setter installs the right emit

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, on: bool) -> None:
        on = bool(on)
        self._enabled = on
        # Hoist the check out of the hot path: swap the bound methods.
        if on:
            self.emit = self._emit
            self.span = self._span
        else:
            self.emit = _noop_emit
            self.span = _noop_span

    def _emit(self, category: str, **fields: Any) -> None:
        rec = TraceRecord(self._sim.now, category, fields)
        self.records.append(rec)
        bucket = self._by_category.get(category)
        if bucket is None:
            self._by_category[category] = [rec]
        else:
            bucket.append(rec)
        for sink in self.sinks:
            sink(rec)

    def _span(self, name: str, parent: ParentLike = None, **fields: Any) -> Span:
        if parent is None:
            parent_id = 0
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = int(parent)
        sp = Span(self, next(self._span_ids), parent_id, name, self._sim.now)
        self._emit("span.begin", span=sp.span_id, parent=parent_id, name=name, **fields)
        return sp

    def capture(self, clear: bool = False) -> _Capture:
        """``with tracer.capture():`` — enable tracing inside the block.

        The prior ``enabled`` state is restored on exit; records emitted in
        the block stay in :attr:`records` for inspection. ``clear=True``
        drops previously collected records on entry, so the block starts
        from an empty trace.
        """
        if clear:
            self.clear()
        return _Capture(self)

    def clear(self) -> None:
        self.records.clear()
        self._by_category.clear()

    def find(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose fields contain all of ``match``."""
        bucket = self._by_category.get(category)
        if not bucket:
            return []
        if not match:
            return list(bucket)
        items = match.items()
        return [rec for rec in bucket
                if all(rec.fields.get(k) == v for k, v in items)]

    def first_time(self, category: str, **match: Any) -> Optional[float]:
        bucket = self._by_category.get(category)
        if not bucket:
            return None
        items = match.items()
        for rec in bucket:
            if all(rec.fields.get(k) == v for k, v in items):
                return rec.time
        return None

    def last_time(self, category: str, **match: Any) -> Optional[float]:
        bucket = self._by_category.get(category)
        if not bucket:
            return None
        items = match.items()
        for rec in reversed(bucket):
            if all(rec.fields.get(k) == v for k, v in items):
                return rec.time
        return None
