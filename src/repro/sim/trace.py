"""Structured tracing for the simulation.

Protocol tests assert on trace event ordering (e.g. "no RDMA transfer occurs
between pause-complete and resume"), so the tracer keeps structured records
rather than formatted strings.

Tracing is off by default and must cost nothing on the hot path: instead of
branching on an ``enabled`` flag inside :meth:`Tracer.emit`, the tracer
swaps ``emit`` itself (an instance attribute shadowing the class) between a
module-level no-op and the real recording method whenever ``enabled`` is
assigned. Disabled emits are a single no-op call with no record allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.6f}] {self.category}: {kv}"


def _noop_emit(category: str, **fields: Any) -> None:
    """Disabled-tracer emit: swallow the call as cheaply as possible."""


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, sim: "Simulator", enabled: bool = False):
        self._sim = sim
        self.records: List[TraceRecord] = []
        self.sinks: List[Callable[[TraceRecord], None]] = []
        self._enabled = False
        self.emit: Callable[..., None] = _noop_emit
        self.enabled = enabled  # property setter installs the right emit

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, on: bool) -> None:
        on = bool(on)
        self._enabled = on
        # Hoist the check out of the hot path: swap the bound method.
        self.emit = self._emit if on else _noop_emit

    def _emit(self, category: str, **fields: Any) -> None:
        rec = TraceRecord(self._sim.now, category, fields)
        self.records.append(rec)
        for sink in self.sinks:
            sink(rec)

    def clear(self) -> None:
        self.records.clear()

    def find(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose fields contain all of ``match``."""
        out = []
        for rec in self.records:
            if rec.category != category:
                continue
            if all(rec.fields.get(k) == v for k, v in match.items()):
                out.append(rec)
        return out

    def first_time(self, category: str, **match: Any) -> Optional[float]:
        recs = self.find(category, **match)
        return recs[0].time if recs else None

    def last_time(self, category: str, **match: Any) -> Optional[float]:
        recs = self.find(category, **match)
        return recs[-1].time if recs else None
