"""Structured tracing for the simulation.

Protocol tests assert on trace event ordering (e.g. "no RDMA transfer occurs
between pause-complete and resume"), so the tracer keeps structured records
rather than formatted strings. Tracing is off by default and costs one
attribute check per emit when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.6f}] {self.category}: {kv}"


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, sim: "Simulator", enabled: bool = False):
        self._sim = sim
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self.sinks: List[Callable[[TraceRecord], None]] = []

    def emit(self, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        rec = TraceRecord(self._sim.now, category, fields)
        self.records.append(rec)
        for sink in self.sinks:
            sink(rec)

    def clear(self) -> None:
        self.records.clear()

    def find(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose fields contain all of ``match``."""
        out = []
        for rec in self.records:
            if rec.category != category:
                continue
            if all(rec.fields.get(k) == v for k, v in match.items()):
                out.append(rec)
        return out

    def first_time(self, category: str, **match: Any) -> Optional[float]:
        recs = self.find(category, **match)
        return recs[0].time if recs else None

    def last_time(self, category: str, **match: Any) -> Optional[float]:
        recs = self.find(category, **match)
        return recs[-1].time if recs else None
