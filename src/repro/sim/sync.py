"""Synchronization primitives for simulated threads.

All primitives hand off deterministically in FIFO order (no barging): when a
mutex is released, ownership transfers directly to the oldest waiter. This
mirrors the fairness assumptions Snapify's drain protocol makes about COI's
internal locks, and it keeps simulated schedules reproducible.

Usage pattern (inside a simulated thread)::

    yield mutex.acquire()
    try:
        ...critical section...
    finally:
        mutex.release()
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from .events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


class _AcquireEvent(Event):
    """Mutex-acquire event that knows which lock it is queued on.

    The extra slot lets :meth:`Simulator.wait_for_graph` resolve the current
    holder of the contended lock without the kernel importing this module
    (resolution is duck-typed on ``owner_info``) and without burdening the
    plain :class:`Event` hot path.
    """

    __slots__ = ("mutex",)

    def __init__(self, mutex: "Mutex"):
        super().__init__(mutex.sim, name=mutex._acquire_name)
        self.mutex = mutex

    @property
    def owner_info(self) -> Optional[str]:
        """Describe the current lock holder, or None if unowned."""
        m = self.mutex
        if not m.locked:
            return None
        owner = m.owner
        if owner is None:
            return f"mutex {m.name!r} (anonymous holder)"
        name = getattr(owner, "name", None)
        return f"mutex {m.name!r} holder {name or owner!r}"


class Mutex:
    """A non-reentrant FIFO mutual-exclusion lock.

    Acquire/release sit on the offload hot path (Snapify's drain locks), so
    the event name is interpolated once per mutex and the cancelled-waiter
    scan reads event state directly instead of going through properties.
    """

    def __init__(self, sim: "Simulator", name: str = "mutex"):
        self.sim = sim
        self.name = name
        self.locked = False
        self.owner: Optional[object] = None
        self._waiters: Deque[tuple[Event, Optional[object]]] = deque()
        self._acquire_name = f"acquire:{name}"

    def acquire(self, owner: Optional[object] = None) -> Event:
        """Return an event that succeeds once the caller holds the lock."""
        ev = _AcquireEvent(self)
        if not self.locked:
            self.locked = True
            self.owner = owner
            ev.succeed(self)
        else:
            self._waiters.append((ev, owner))
        return ev

    def try_acquire(self, owner: Optional[object] = None) -> bool:
        """Non-blocking acquire; True on success."""
        if self.locked:
            return False
        self.locked = True
        self.owner = owner
        return True

    def release(self) -> None:
        if not self.locked:
            raise RuntimeError(f"release of unlocked mutex {self.name!r}")
        # Drop cancelled waiters: triggered elsewhere, or abandoned by an
        # interrupted/killed thread.
        while self._waiters:
            ev, owner = self._waiters.popleft()
            if ev._state is not PENDING or not ev._callbacks:
                continue
            self.owner = owner
            ev.succeed(self)
            return
        self.locked = False
        self.owner = None

    @property
    def queue_length(self) -> int:
        return sum(1 for ev, _ in self._waiters if not ev.triggered)


class Semaphore:
    """Counting semaphore with FIFO wakeups."""

    def __init__(self, sim: "Simulator", value: int = 0, name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self.value = value
        self._waiters: Deque[Event] = deque()
        self._wait_name = f"sem.wait:{name}"

    def wait(self) -> Event:
        """P(): event succeeds once a unit has been consumed."""
        ev = Event(self.sim, name=self._wait_name)
        if self.value > 0:
            self.value -= 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def post(self, n: int = 1) -> None:
        """V(): release ``n`` units, waking waiters FIFO."""
        for _ in range(n):
            woke = False
            while self._waiters:
                ev = self._waiters.popleft()
                if ev._state is not PENDING or not ev._callbacks:
                    continue
                ev.succeed(self)
                woke = True
                break
            if not woke:
                self.value += 1


class Barrier:
    """All ``parties`` threads block until the last one arrives."""

    def __init__(self, sim: "Simulator", parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs >= 1 party")
        self.sim = sim
        self.name = name
        self.parties = parties
        self._generation = 0
        self._waiting: list[Event] = []

    def wait(self) -> Event:
        ev = Event(self.sim, name=f"barrier:{self.name}@{self._generation}")
        self._waiting.append(ev)
        if len(self._waiting) == self.parties:
            waiters, self._waiting = self._waiting, []
            gen = self._generation
            self._generation += 1
            for w in waiters:
                w.succeed(gen)
        return ev


class Condition:
    """Condition variable paired with an external :class:`Mutex`.

    ``wait()`` must be called with the mutex held; it atomically releases the
    mutex and re-acquires it before the returned generator completes.
    Because releasing and re-acquiring cannot be expressed as a single event,
    ``wait`` is a sub-generator: use ``yield from cond.wait()``.
    """

    def __init__(self, sim: "Simulator", mutex: Mutex, name: str = "cond"):
        self.sim = sim
        self.mutex = mutex
        self.name = name
        self._waiters: Deque[Event] = deque()

    def wait(self):
        if not self.mutex.locked:
            raise RuntimeError(f"Condition.wait on {self.name!r} without the mutex held")
        ev = Event(self.sim, name=f"cond.wait:{self.name}")
        self._waiters.append(ev)
        self.mutex.release()
        yield ev
        yield self.mutex.acquire()

    def notify(self, n: int = 1) -> None:
        for _ in range(n):
            while self._waiters:
                ev = self._waiters.popleft()
                if not ev.triggered and not ev.abandoned:
                    ev.succeed(None)
                    break
            else:
                return

    def notify_all(self) -> None:
        self.notify(len(self._waiters))
