"""Exception hierarchy for the discrete-event simulation kernel.

Every error raised by the kernel or by simulated OS/hardware layers derives
from :class:`SimError`, so callers can distinguish simulation-infrastructure
failures from plain Python bugs.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation errors."""


class Interrupted(SimError):
    """Raised inside a thread that was interrupted while blocked.

    The ``cause`` attribute carries the object passed to
    :meth:`repro.sim.kernel.Thread.interrupt` (often an exception or a
    simulated signal), mirroring how a POSIX ``EINTR`` carries no payload but
    the surrounding runtime knows why the wait was abandoned.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class ThreadKilled(SimError):
    """Raised inside a thread generator when its process is being destroyed."""


class DeadlockError(SimError):
    """The event heap ran dry while live threads were still blocked."""


class SimTimeLimit(SimError):
    """``Simulator.run(until=...)`` hit its time limit before quiescence."""
