"""Exception hierarchy for the discrete-event simulation kernel.

Every error raised by the kernel or by simulated OS/hardware layers derives
from :class:`SimError`, so callers can distinguish simulation-infrastructure
failures from plain Python bugs.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation errors."""


class Interrupted(SimError):
    """Raised inside a thread that was interrupted while blocked.

    The ``cause`` attribute carries the object passed to
    :meth:`repro.sim.kernel.Thread.interrupt` (often an exception or a
    simulated signal), mirroring how a POSIX ``EINTR`` carries no payload but
    the surrounding runtime knows why the wait was abandoned.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class ThreadKilled(SimError):
    """Raised inside a thread generator when its process is being destroyed."""


def render_waitfor(waitfor) -> str:
    """Render a wait-for graph (list of edge dicts) as an indented dump.

    Each edge is ``{"thread", "tid", "daemon", "event", "owner"}`` as produced
    by :meth:`repro.sim.kernel.Simulator.wait_for_graph`. The format is pinned
    by ``tests/test_waitfor_graph.py``; keep the two in sync.
    """
    if not waitfor:
        return "  (no blocked threads)"
    lines = []
    for edge in waitfor:
        mark = " [daemon]" if edge.get("daemon") else ""
        owner = edge.get("owner")
        held = f" held by {owner}" if owner else ""
        lines.append(
            f"  {edge['thread']} (tid={edge['tid']}){mark}"
            f" -> waiting on {edge['event']!r}{held}"
        )
    return "\n".join(lines)


class DeadlockError(SimError):
    """The event heap ran dry while live threads were still blocked.

    Carries the wait-for graph at the moment of the deadlock in ``waitfor``
    (a list of thread → blocking-event → owner edges); the graph is rendered
    into the message so a bare traceback already names the lock holders.
    """

    def __init__(self, message: str, waitfor=None):
        if waitfor:
            message = f"{message}\nwait-for graph:\n{render_waitfor(waitfor)}"
        super().__init__(message)
        self.waitfor = list(waitfor) if waitfor else []


class SimTimeLimit(SimError):
    """``Simulator.run(until=...)`` hit its time limit before quiescence."""
