"""Events: the single blocking primitive of the simulation kernel.

A simulated thread blocks by ``yield``-ing an :class:`Event`. The kernel
resumes the thread when the event *triggers* — either successfully (the
thread's ``yield`` expression evaluates to the event's value) or with a
failure (the stored exception is re-raised at the ``yield`` site).

All higher-level primitives (timeouts, locks, channels, pipes, RDMA
completions, process exits) bottom out in events, which keeps the kernel's
scheduling rules in one place and makes the whole stack deterministic.

Hot-path notes
--------------
Events are the single most-allocated object in a simulation, so this module
is tuned accordingly:

* ``_callbacks`` is lazily allocated (``None`` until the first waiter), so
  an event that triggers before anyone waits — the common case for channel
  sends — never allocates a list.
* Simulated threads register themselves *directly* in the callback list
  (they subclass the :class:`_ThreadWaiter` marker) instead of allocating a
  resume closure per wait; :meth:`Event._fire` hands them straight back to
  the scheduler.
* State comparisons use ``is`` against the interned module-level constants.

Ordering is load-bearing: waiters and callbacks live in one list and fire
in registration order, so optimizations here must never reorder wakeups —
trace orderings are part of the kernel's contract (seed + workload → same
interleaving).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"


class _ThreadWaiter:
    """Marker base for objects that wait on events without a closure.

    :class:`~repro.sim.kernel.Thread` subclasses this; :meth:`Event._fire`
    resumes such waiters through the scheduler directly instead of calling
    them. The marker lives here (not in ``kernel``) to avoid an import cycle.
    """

    __slots__ = ()


class Event:
    """A one-shot occurrence that threads can wait on.

    Events trigger exactly once. Waiters registered after the trigger are
    resumed immediately (at the current simulation time), so there is no
    lost-wakeup hazard.
    """

    __slots__ = ("sim", "name", "_state", "_value", "_exc", "_callbacks")

    #: Wait-for-graph hook: subclasses that gate a shared resource (e.g. the
    #: mutex-acquire event in :mod:`repro.sim.sync`) override this with a
    #: property describing the current holder. ``Simulator.wait_for_graph``
    #: reads it to label deadlock edges; plain events have no owner.
    owner_info: Optional[str] = None

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._state = PENDING
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        # Lazily allocated: None means "no waiter has ever registered".
        self._callbacks: Optional[List[Any]] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state is not PENDING

    @property
    def ok(self) -> bool:
        return self._state is SUCCEEDED

    @property
    def value(self) -> Any:
        if self._state is PENDING:
            raise RuntimeError(f"event {self.name!r} has not triggered yet")
        if self._state is FAILED:
            raise self._exc  # type: ignore[misc]
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters."""
        if self._state is not PENDING:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._state = SUCCEEDED
        self._value = value
        if self._callbacks is not None:
            self._fire()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, waking all waiters."""
        if self._state is not PENDING:
            raise RuntimeError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = FAILED
        self._exc = exc
        if self._callbacks is not None:
            self._fire()
        return self

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if not callbacks:
            return
        if self._state is SUCCEEDED:
            value, exc = self._value, None
        else:
            value, exc = None, self._exc
        sim = self.sim
        for cb in callbacks:
            if isinstance(cb, _ThreadWaiter):
                # Slot-based resume: the thread parked itself here; skip it
                # if it was interrupted/killed and re-targeted meanwhile.
                if cb._waiting_on is self:
                    cb._waiting_on = None
                    sim._ready(cb, value, exc)
            else:
                cb(self)

    # -- waiter registration (kernel API) ----------------------------------
    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb``; invoked immediately if already triggered."""
        if self._state is not PENDING:
            cb(self)
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)

    def remove_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._callbacks is not None:
            try:
                self._callbacks.remove(cb)
            except ValueError:
                pass

    @property
    def abandoned(self) -> bool:
        """Pending with no listeners: its only waiter was interrupted/killed.

        Handoff primitives (mutexes, semaphores, channels) must skip
        abandoned waiters or ownership/messages leak into the void.
        """
        return self._state is PENDING and not self._callbacks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Event {self.name!r} {self._state}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    The name is the static string ``"timeout"`` rather than an interpolated
    ``timeout(1.5)`` — timer storms allocate millions of these and the
    f-string was measurable on the hot path. ``repr()`` still shows the
    delay for debugging.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        super().__init__(sim, name="timeout")
        self.delay = delay
        sim.schedule(delay, self.succeed, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout {self.delay:g} {self._state}>"


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is the ``(index, event)`` pair of the first trigger. A failure
    of the first-triggering event propagates.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim, name=f"anyof[{len(events)}]")
        self.events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self.events):
            ev.add_callback(self._make_cb(i))

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if self.triggered:
                return
            if ev.ok:
                self.succeed((index, ev))
            else:
                self.fail(ev.exception)  # type: ignore[arg-type]

        return cb


class AllOf(Event):
    """Triggers when every one of ``events`` has triggered successfully.

    The value is the list of all event values, in order. The first failure
    fails the composite immediately.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim, name=f"allof[{len(events)}]")
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])
