"""Deterministic discrete-event simulation kernel.

This package is the substrate of the whole reproduction: simulated threads
(generators yielding :class:`Event` objects), a deterministic scheduler,
synchronization primitives with FIFO handoff, and message channels.
"""

from .channel import Channel, ChannelClosed
from .errors import DeadlockError, Interrupted, SimError, SimTimeLimit, ThreadKilled
from .events import AllOf, AnyOf, Event, Timeout
from .kernel import Simulator, Thread
from .sync import Barrier, Condition, Mutex, Semaphore
from .trace import NULL_SPAN, Span, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Channel",
    "ChannelClosed",
    "Condition",
    "DeadlockError",
    "Event",
    "Interrupted",
    "Mutex",
    "NULL_SPAN",
    "Semaphore",
    "SimError",
    "SimTimeLimit",
    "Simulator",
    "Span",
    "Thread",
    "ThreadKilled",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
