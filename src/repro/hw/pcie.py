"""PCIe link model.

A link direction is a FIFO bandwidth resource: a transfer of ``nbytes``
occupies the direction for ``latency + nbytes / bandwidth`` seconds, and
concurrent transfers queue. Control messages and RDMA share the same wire,
so a bulk RDMA delays small messages behind it — exactly the contention that
makes "drain before snapshot" measurable in the pause phase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs.registry import MetricsRegistry
from ..sim.sync import Mutex
from .params import PCIeParams

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

HOST_TO_DEVICE = "h2d"
DEVICE_TO_HOST = "d2h"


class BandwidthLink:
    """A FIFO, serially-occupied bandwidth resource."""

    def __init__(self, sim: "Simulator", bandwidth: float, name: str = "link"):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = bandwidth
        self.name = name
        self._mutex = Mutex(sim, name=f"link:{name}")
        self.bytes_transferred = 0
        self.transfer_count = 0
        #: total time the wire spent occupied (for utilization gauges).
        self.busy_time = 0.0
        reg = MetricsRegistry.of(sim)
        reg.gauge(f"link.{name}.bytes", lambda: self.bytes_transferred)
        reg.gauge(f"link.{name}.transfers", lambda: self.transfer_count)
        reg.gauge(f"link.{name}.utilization", self.utilization)

    def occupy(self, nbytes: int, extra_latency: float = 0.0):
        """Sub-generator: hold the link for the duration of the transfer."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        yield self._mutex.acquire()
        try:
            duration = extra_latency + nbytes / self.bandwidth
            yield self.sim.timeout(duration)
            self.bytes_transferred += nbytes
            self.transfer_count += 1
            self.busy_time += duration
        finally:
            self._mutex.release()

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the wire was occupied."""
        now = self.sim.now
        return self.busy_time / now if now > 0 else 0.0

    @property
    def busy(self) -> bool:
        return self._mutex.locked


class PCIeLink:
    """Full-duplex PCIe connection between the host and one Phi card."""

    def __init__(self, sim: "Simulator", params: PCIeParams, name: str = "pcie"):
        self.sim = sim
        self.params = params
        self.name = name
        self.h2d = BandwidthLink(sim, params.dma_bw_h2d, name=f"{name}.h2d")
        self.d2h = BandwidthLink(sim, params.dma_bw_d2h, name=f"{name}.d2h")

    def _direction(self, direction: str) -> BandwidthLink:
        if direction == HOST_TO_DEVICE:
            return self.h2d
        if direction == DEVICE_TO_HOST:
            return self.d2h
        raise ValueError(f"unknown direction {direction!r}")

    def message(self, direction: str, nbytes: int = 64):
        """Sub-generator: deliver a small control message."""
        link = self._direction(direction)
        yield from link.occupy(nbytes, extra_latency=self.params.message_latency)

    def rdma(self, direction: str, nbytes: int):
        """Sub-generator: one RDMA transfer (already-registered memory)."""
        link = self._direction(direction)
        yield from link.occupy(nbytes, extra_latency=self.params.rdma_op_latency)

    def register_cost(self, nbytes: int) -> float:
        """Time to pin+register ``nbytes`` for RDMA (paid locally, no wire)."""
        p = self.params
        return p.register_latency_fixed + p.register_latency_per_mb * (nbytes / (1024 * 1024))
