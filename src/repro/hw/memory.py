"""Physical memory accounting.

The Xeon Phi's limited (8/16 GB) GDDR5 is central to the paper: the RAM-based
file system competes with live processes for the same pool, which is why
local snapshots are infeasible for large apps (Table 4's ``Local`` column
fails at 4 GB) and why Snapify-IO must stream snapshots off the card with a
small bounded buffer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..obs.registry import MetricsRegistry
from ..sim.errors import SimError
from .params import MemoryParams

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator


class MemoryExhausted(SimError):
    """An allocation exceeded the pool's physical capacity."""

    def __init__(self, pool: str, requested: int, available: int):
        super().__init__(
            f"{pool}: requested {requested} bytes, only {available} available"
        )
        self.pool = pool
        self.requested = requested
        self.available = available


class PhysicalMemory:
    """A fixed-capacity memory pool with per-category accounting.

    Categories ("process", "ramfs", "buffer", ...) let tests assert *where*
    the memory went — e.g. that a locally-stored snapshot shows up as ramfs
    pressure.
    """

    def __init__(self, sim: "Simulator", params: MemoryParams, name: str = "mem"):
        self.sim = sim
        self.params = params
        self.name = name
        self.capacity = params.capacity
        self.used = 0
        self.peak = 0
        self.by_category: Dict[str, int] = {}
        reg = MetricsRegistry.of(sim)
        reg.gauge(f"mem.{name}.used", lambda: self.used)
        reg.gauge(f"mem.{name}.peak", lambda: self.peak)
        reg.gauge(f"mem.{name}.occupancy",
                  lambda: self.used / self.capacity if self.capacity else 0.0)

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def allocate(self, nbytes: int, category: str = "process") -> None:
        if nbytes < 0:
            raise ValueError("negative allocation")
        if nbytes > self.available:
            raise MemoryExhausted(self.name, nbytes, self.available)
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        self.by_category[category] = self.by_category.get(category, 0) + nbytes

    def free(self, nbytes: int, category: str = "process") -> None:
        if nbytes < 0:
            raise ValueError("negative free")
        held = self.by_category.get(category, 0)
        if nbytes > held:
            raise ValueError(
                f"{self.name}: freeing {nbytes} from category {category!r} "
                f"which holds only {held}"
            )
        self.used -= nbytes
        self.by_category[category] = held - nbytes

    def can_allocate(self, nbytes: int) -> bool:
        return nbytes <= self.available

    def memcpy_time(self, nbytes: int) -> float:
        """Time for a single-stream copy of ``nbytes`` within this pool."""
        return nbytes / self.params.memcpy_bw

    def memcpy(self, nbytes: int):
        """Sub-generator that charges the copy time to the caller."""
        yield self.sim.timeout(self.memcpy_time(nbytes))
