"""Hardware models: PCIe, memory pools, disks, nodes and clusters."""

from .cluster import Cluster
from .memory import MemoryExhausted, PhysicalMemory
from .node import DEVICE_TO_HOST, HOST_TO_DEVICE, PhiDevice, ServerNode
from .params import (
    GB,
    KB,
    MB,
    DiskParams,
    HardwareParams,
    HostParams,
    MemoryParams,
    NetworkParams,
    NFSParams,
    PCIeParams,
    PhiParams,
    ScpParams,
    SnapifyIOParams,
    describe,
)
from .pcie import BandwidthLink, PCIeLink
from .storage import HostDisk

__all__ = [
    "BandwidthLink",
    "Cluster",
    "DEVICE_TO_HOST",
    "DiskParams",
    "GB",
    "HOST_TO_DEVICE",
    "HardwareParams",
    "HostDisk",
    "HostParams",
    "KB",
    "MB",
    "MemoryExhausted",
    "MemoryParams",
    "NFSParams",
    "NetworkParams",
    "PCIeLink",
    "PCIeParams",
    "PhiDevice",
    "PhiParams",
    "PhysicalMemory",
    "ScpParams",
    "ServerNode",
    "SnapifyIOParams",
    "describe",
]
