"""Hardware parameter sets.

All bandwidths are bytes/second, latencies are seconds, and sizes are bytes.
The defaults here are deliberately *neutral*; the values used to reproduce
the paper's tables live in :mod:`repro.calibration`, which documents how each
number was anchored to the paper's testbed (Table 2) or public Xeon Phi-era
specifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class PCIeParams:
    """One PCIe x16 Gen2 link between the host and one Xeon Phi card."""

    #: DMA bandwidth host -> device (SCIF RDMA, large transfers).
    dma_bw_h2d: float = 6.0 * GB
    #: DMA bandwidth device -> host.
    dma_bw_d2h: float = 6.5 * GB
    #: One-way latency for a small control message (scif_send of bytes).
    message_latency: float = 10e-6
    #: Per-RDMA-operation setup cost (descriptor ring, doorbell).
    rdma_op_latency: float = 25e-6
    #: Cost of registering one page run for RDMA, per MB (pinning pages).
    register_latency_per_mb: float = 30e-6
    #: Fixed cost of any registration call.
    register_latency_fixed: float = 80e-6
    #: Effective end-to-end bandwidth of device-to-device (peer-to-peer)
    #: transfers through the root complex — notoriously far below the
    #: host-device DMA rate on Xeon Phi era platforms.
    p2p_bw: float = 1.2 * GB


@dataclass(frozen=True)
class DiskParams:
    """Host secondary storage (spinning disk / entry SSD of the 2014 era)."""

    read_bw: float = 500 * MB
    write_bw: float = 350 * MB
    op_latency: float = 100e-6
    #: Writeback cache limit; writes beyond this throttle to disk speed.
    dirty_limit: int = 4 * GB


@dataclass(frozen=True)
class MemoryParams:
    """A physical memory pool (host DRAM or Phi GDDR5)."""

    capacity: int = 16 * GB
    #: Single-stream memcpy bandwidth. Phi cores are slow scalar cores, so
    #: this is far below the aggregate 352 GB/s stream figure.
    memcpy_bw: float = 2.0 * GB


@dataclass(frozen=True)
class PhiParams:
    """One Xeon Phi coprocessor (5110P-like)."""

    cores: int = 60
    threads_per_core: int = 4
    memory: MemoryParams = field(default_factory=lambda: MemoryParams(capacity=8 * GB))
    #: RAM-backed file system overhead factor on top of memcpy.
    ramfs_write_factor: float = 1.3
    #: Time to fork+exec a process on the card.
    process_spawn_latency: float = 120e-3
    #: Time to dynamically load the offload library into a process.
    dyld_latency: float = 60e-3
    #: BLCR kernel-side cost per 4 KiB page when walking/copying process
    #: memory on the card's slow in-order cores (charged on checkpoint,
    #: restart and local-store streaming).
    blcr_page_cost: float = 0.0


@dataclass(frozen=True)
class HostParams:
    """The host side of one node."""

    cores: int = 12
    memory: MemoryParams = field(default_factory=lambda: MemoryParams(capacity=32 * GB, memcpy_bw=6.0 * GB))
    disk: DiskParams = field(default_factory=DiskParams)
    process_spawn_latency: float = 30e-3


@dataclass(frozen=True)
class NetworkParams:
    """Inter-node fabric for the MPI experiments (IB QDR-like)."""

    bandwidth: float = 3.2 * GB
    latency: float = 2e-6


@dataclass(frozen=True)
class NFSParams:
    """NFS mount of the host file system on the card (over PCIe net device).

    NFS-over-PCIe rides a virtual ethernet device, so its streaming
    bandwidth is far below raw DMA and every RPC pays a round-trip.
    """

    write_bw: float = 180 * MB
    read_bw: float = 330 * MB
    #: Per-RPC overhead (the killer for BLCR's many small writes).
    op_latency: float = 1.2e-3
    #: Client-side write-back cache: writes up to this total are absorbed
    #: at memcpy speed before the slow path starts (why NFS wins at 1 MB).
    client_cache: int = 2 * MB
    #: Maximum bytes per RPC (wsize/rsize).
    rpc_size: int = 1 * MB


@dataclass(frozen=True)
class ScpParams:
    """scp between card and host: single-stream ssh with encryption.

    Throughput is bounded by one slow Phi core doing AES+MAC.
    """

    bandwidth: float = 48 * MB
    connection_setup: float = 0.35
    per_file_overhead: float = 0.05


@dataclass(frozen=True)
class SnapifyIOParams:
    """Tunables of the Snapify-IO daemons."""

    #: RDMA staging buffer per connection (the paper picks 4 MB).
    buffer_size: int = 4 * MB
    #: UNIX-socket copy bandwidth on the card (user <-> daemon).
    socket_bw_phi: float = 1.7 * GB
    #: UNIX-socket copy bandwidth on the host.
    socket_bw_host: float = 5.0 * GB
    #: Cost of establishing the local socket + remote SCIF connection.
    connect_latency: float = 1.5e-3
    #: Ack the RDMA pull before the host file write (the paper's design).
    #: Ablation: False serializes the file write into the transfer loop.
    async_flush: bool = True
    #: Transfer-resilience knobs. With these at their defaults and no faults
    #: injected the pipeline takes exactly the legacy code path (golden-trace
    #: rule): the retry loop only diverges on an exception, and timeouts of
    #: ``None`` schedule no extra events.
    #: Attempts per channel before the fallback chain degrades.
    retry_attempts: int = 3
    #: Exponential backoff: base delay, growth factor, cap.
    retry_base_delay: float = 5e-3
    retry_multiplier: float = 2.0
    retry_max_delay: float = 0.25
    #: Jitter fraction (+/-) applied to each backoff delay; drawn from a
    #: per-simulator RNG seeded by ``schedule_seed`` so runs stay replayable.
    retry_jitter: float = 0.25
    #: Daemon-side wait bound on peer acks/commits; ``None`` = wait forever
    #: (legacy behavior, no extra events on the fault-free path).
    reply_timeout: float | None = None


@dataclass(frozen=True)
class HardwareParams:
    """Everything needed to instantiate a simulated Xeon Phi server."""

    host: HostParams = field(default_factory=HostParams)
    phi: PhiParams = field(default_factory=PhiParams)
    pcie: PCIeParams = field(default_factory=PCIeParams)
    network: NetworkParams = field(default_factory=NetworkParams)
    nfs: NFSParams = field(default_factory=NFSParams)
    scp: ScpParams = field(default_factory=ScpParams)
    snapify_io: SnapifyIOParams = field(default_factory=SnapifyIOParams)
    phis_per_node: int = 2

    def with_(self, **kwargs) -> "HardwareParams":
        """Functional update helper for ablation sweeps."""
        return replace(self, **kwargs)


def describe(params: HardwareParams) -> Dict[str, str]:
    """Human-readable summary used by benchmark harness headers."""
    return {
        "pcie dma h2d": f"{params.pcie.dma_bw_h2d / GB:.1f} GB/s",
        "pcie dma d2h": f"{params.pcie.dma_bw_d2h / GB:.1f} GB/s",
        "phi memory": f"{params.phi.memory.capacity / GB:.0f} GB",
        "host disk write": f"{params.host.disk.write_bw / MB:.0f} MB/s",
        "nfs write": f"{params.nfs.write_bw / MB:.0f} MB/s",
        "scp": f"{params.scp.bandwidth / MB:.0f} MB/s",
        "snapify-io buffer": f"{params.snapify_io.buffer_size / MB:.0f} MB",
    }
