"""A Xeon Phi server node: host + coprocessors + the links between them.

SCIF numbering follows MPSS convention: the host is SCIF node 0 and the
coprocessors are SCIF nodes 1..N.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from .memory import PhysicalMemory
from .params import HardwareParams
from .pcie import PCIeLink, DEVICE_TO_HOST, HOST_TO_DEVICE
from .storage import HostDisk

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator


class PhiDevice:
    """One Xeon Phi coprocessor: cores, GDDR5 memory, PCIe uplink."""

    def __init__(self, sim: "Simulator", node: "ServerNode", index: int):
        self.sim = sim
        self.node = node
        self.index = index  # 0-based card index on the node
        self.scif_node_id = index + 1
        params = node.params.phi
        self.params = params
        self.memory = PhysicalMemory(
            sim, params.memory, name=f"{node.name}.mic{index}.mem"
        )
        self.link = PCIeLink(sim, node.params.pcie, name=f"{node.name}.pcie{index}")
        #: Transient link fault (FaultInjector link flap): while True, new
        #: SCIF connections and PCIe-routed transfers to/from this card fail.
        self.link_down = False
        #: Set by the OS layer when it boots a kernel on this card.
        self.os = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PhiDevice {self.node.name}/mic{self.index}>"


class ServerNode:
    """One host machine with ``phis_per_node`` coprocessors attached."""

    def __init__(self, sim: "Simulator", params: HardwareParams, name: str = "node0"):
        self.sim = sim
        self.params = params
        self.name = name
        self.memory = PhysicalMemory(sim, params.host.memory, name=f"{name}.host.mem")
        self.disk = HostDisk(
            sim,
            params.host.disk,
            memcpy_bw=params.host.memory.memcpy_bw,
            name=f"{name}.disk",
        )
        self.phis: List[PhiDevice] = [
            PhiDevice(sim, self, i) for i in range(params.phis_per_node)
        ]
        #: Set by the OS layer when it boots the host kernel.
        self.os = None

    def phi(self, index: int) -> PhiDevice:
        return self.phis[index]

    def scif_peer(self, scif_node_id: int):
        """Resolve a SCIF node id to (host | PhiDevice).

        Bounds are checked explicitly: a negative id would otherwise wrap
        through Python list indexing and silently resolve to the wrong card.
        """
        if scif_node_id == 0:
            return self
        if not 1 <= scif_node_id <= len(self.phis):
            raise ValueError(
                f"{self.name}: no SCIF node {scif_node_id} "
                f"(valid: 0..{len(self.phis)})"
            )
        return self.phis[scif_node_id - 1]

    def link_to_phi(self, index: int) -> PCIeLink:
        return self.phis[index].link

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ServerNode {self.name} phis={len(self.phis)}>"


# Re-export direction constants next to the node types for convenience.
__all__ = ["PhiDevice", "ServerNode", "HOST_TO_DEVICE", "DEVICE_TO_HOST"]
