"""Multi-node cluster with an interconnect, for the MPI experiments (Fig. 11)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from .node import ServerNode
from .params import HardwareParams
from .pcie import BandwidthLink

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator


class Cluster:
    """``n_nodes`` Xeon Phi servers joined by a switched fabric.

    The fabric is modeled as one full-duplex NIC per node (ingress and
    egress bandwidth resources); the switch core is assumed non-blocking,
    which matches small InfiniBand clusters like the paper's 4-node testbed.
    """

    def __init__(self, sim: "Simulator", params: HardwareParams, n_nodes: int = 4):
        if n_nodes < 1:
            raise ValueError("cluster needs >= 1 node")
        self.sim = sim
        self.params = params
        self.nodes: List[ServerNode] = [
            ServerNode(sim, params, name=f"node{i}") for i in range(n_nodes)
        ]
        bw = params.network.bandwidth
        self._tx: Dict[int, BandwidthLink] = {
            i: BandwidthLink(sim, bw, name=f"node{i}.nic.tx") for i in range(n_nodes)
        }
        self._rx: Dict[int, BandwidthLink] = {
            i: BandwidthLink(sim, bw, name=f"node{i}.nic.rx") for i in range(n_nodes)
        }

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> ServerNode:
        return self.nodes[index]

    def transfer(self, src: int, dst: int, nbytes: int):
        """Sub-generator: move ``nbytes`` from node ``src`` to node ``dst``.

        Same-node transfers are free (shared memory). Cross-node transfers
        pay the wire latency once and occupy the sender's egress and the
        receiver's ingress sequentially — a slight pessimism that stands in
        for store-and-forward switching.
        """
        if src == dst:
            return
        lat = self.params.network.latency
        yield from self._tx[src].occupy(nbytes, extra_latency=lat)
        yield from self._rx[dst].occupy(0, extra_latency=0.0)
