"""Host secondary storage: a disk behind a write-back page cache.

The asynchronous flush matters for fidelity: the paper observes that
Snapify-IO writes (Phi -> host) outrun reads because the host-side daemon
"flushes the file to the secondary storage asynchronously. Thus the write
operation on the host runs parallel to the data transfer." We model a
dirty-byte pool drained by a background flusher thread; writers only block
when the dirty limit is hit, and ``fsync`` waits for a full drain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..obs.registry import MetricsRegistry
from ..sim.events import Event
from .params import DiskParams, MB

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

_FLUSH_CHUNK = 16 * MB


class HostDisk:
    """Disk with page-cache semantics.

    ``write(nbytes)`` is absorbed at memory-copy speed until the dirty limit
    is reached, after which writers throttle to disk speed. ``read`` hits
    either the cache (memcpy speed) or the platter.
    """

    def __init__(
        self,
        sim: "Simulator",
        params: DiskParams,
        memcpy_bw: float,
        name: str = "disk",
    ):
        self.sim = sim
        self.params = params
        self.memcpy_bw = memcpy_bw
        self.name = name
        self.dirty = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self._flusher_started = False
        self._work_available: Event = sim.event(f"{name}.work")
        self._drain_waiters: List[Event] = []
        reg = MetricsRegistry.of(sim)
        reg.gauge(f"disk.{name}.dirty", lambda: self.dirty)
        reg.gauge(f"disk.{name}.queue_depth", lambda: len(self._drain_waiters))
        reg.gauge(f"disk.{name}.bytes_written", lambda: self.bytes_written)
        reg.gauge(f"disk.{name}.bytes_read", lambda: self.bytes_read)

    # -- background flusher ----------------------------------------------------
    def _ensure_flusher(self) -> None:
        if self._flusher_started:
            return
        self._flusher_started = True
        self.sim.spawn(self._flusher(), name=f"{self.name}.flusher", daemon=True)

    def _flusher(self):
        while True:
            if self.dirty == 0:
                self._work_available = self.sim.event(f"{self.name}.work")
                yield self._work_available
                continue
            chunk = min(self.dirty, _FLUSH_CHUNK)
            yield self.sim.timeout(self.params.op_latency + chunk / self.params.write_bw)
            self.dirty -= chunk
            self._wake_drain_waiters()

    def _wake_drain_waiters(self) -> None:
        still_waiting: List[Event] = []
        for ev in self._drain_waiters:
            if ev.triggered:
                continue
            ev.succeed(None)
        self._drain_waiters = still_waiting

    def _kick(self) -> None:
        if not self._work_available.triggered:
            self._work_available.succeed(None)

    # -- I/O operations ----------------------------------------------------------
    def write(self, nbytes: int, sync: bool = False):
        """Sub-generator: write ``nbytes`` (async by default).

        Synchronous writes (O_SYNC / kernel direct writes) bypass the cache
        and pace at platter speed; they do NOT wait for other writers' dirty
        data (separate request streams on the same device).
        """
        if nbytes < 0:
            raise ValueError("negative write")
        self._ensure_flusher()
        if sync:
            yield self.sim.timeout(self.params.op_latency + nbytes / self.params.write_bw)
            self.bytes_written += nbytes
            return
        remaining = nbytes
        while remaining > 0:
            room = self.params.dirty_limit - self.dirty
            if room <= 0:
                # Throttled: wait for the flusher to free cache space.
                ev = self.sim.event(f"{self.name}.drain")
                self._drain_waiters.append(ev)
                yield ev
                continue
            take = min(remaining, room)
            yield self.sim.timeout(take / self.memcpy_bw)
            self.dirty += take
            self.bytes_written += take
            remaining -= take
            self._kick()

    def fsync(self):
        """Sub-generator: block until all dirty data reaches the platter."""
        self._ensure_flusher()
        while self.dirty > 0:
            ev = self.sim.event(f"{self.name}.fsync")
            self._drain_waiters.append(ev)
            yield ev

    def read(self, nbytes: int, cached: bool = False):
        """Sub-generator: read ``nbytes`` from cache or platter."""
        if nbytes < 0:
            raise ValueError("negative read")
        if cached:
            yield self.sim.timeout(nbytes / self.memcpy_bw)
        else:
            yield self.sim.timeout(self.params.op_latency + nbytes / self.params.read_bw)
        self.bytes_read += nbytes
