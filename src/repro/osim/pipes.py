"""UNIX pipes.

The COI daemon opens a pipe to the offload process during
``snapify_pause()`` and all subsequent snapshot control traffic (pause /
capture / resume / restore acknowledgements) flows over it. Pipes are
message-preserving and cheap; their cost is a fixed per-message latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..sim.channel import Channel
from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

#: Same-kernel pipe write+wakeup cost.
PIPE_LATENCY = 2e-6


class PipeEnd:
    """One end of a unidirectional pipe."""

    def __init__(self, sim: "Simulator", channel: Channel, writable: bool):
        self.sim = sim
        self._channel = channel
        self.writable = writable

    def send(self, msg: Any):
        """Sub-generator: write one message."""
        if not self.writable:
            raise RuntimeError("send on the read end of a pipe")
        yield self.sim.timeout(PIPE_LATENCY)
        yield self._channel.send(msg)

    def recv(self) -> Event:
        """Event that succeeds with the next message."""
        if self.writable:
            raise RuntimeError("recv on the write end of a pipe")
        return self._channel.recv()

    def try_recv(self):
        if self.writable:
            raise RuntimeError("recv on the write end of a pipe")
        return self._channel.try_recv()

    @property
    def qsize(self) -> int:
        return self._channel.qsize

    def close(self) -> None:
        self._channel.close()

    @property
    def closed(self) -> bool:
        return self._channel.closed


class UnixPipe:
    """A unidirectional pipe: ``write_end`` -> ``read_end``."""

    def __init__(self, sim: "Simulator", name: str = "pipe"):
        self.name = name
        self._channel = Channel(sim, name=name)
        self.write_end = PipeEnd(sim, self._channel, writable=True)
        self.read_end = PipeEnd(sim, self._channel, writable=False)


class DuplexPipe:
    """A pair of pipes used as a bidirectional control channel.

    ``a`` and ``b`` are the two endpoints; each has blocking ``send``/``recv``
    toward the other. This models the daemon<->offload-process pipe pair of
    the Snapify pause protocol.
    """

    class Endpoint:
        def __init__(self, out_end: PipeEnd, in_end: PipeEnd):
            self._out = out_end
            self._in = in_end

        def send(self, msg: Any):
            yield from self._out.send(msg)

        def recv(self) -> Event:
            return self._in.recv()

        def try_recv(self):
            return self._in.try_recv()

        @property
        def pending(self) -> int:
            return self._in.qsize

        def close(self) -> None:
            self._out.close()
            self._in.close()

        @property
        def closed(self) -> bool:
            return self._out.closed or self._in.closed

    def __init__(self, sim: "Simulator", name: str = "dpipe"):
        fwd = UnixPipe(sim, name=f"{name}.fwd")
        bwd = UnixPipe(sim, name=f"{name}.bwd")
        self.a = DuplexPipe.Endpoint(fwd.write_end, bwd.read_end)
        self.b = DuplexPipe.Endpoint(bwd.write_end, fwd.read_end)
