"""Simulated file systems.

Files carry a *modeled size* (drives simulated I/O time and memory
accounting) and an optional *payload* (a real Python object used for
correctness assertions — e.g. a checkpoint context whose records must
round-trip). Two concrete file systems exist:

* :class:`HostFileSystem` — backed by the node's disk + page cache.
* :class:`RamFileSystem` — the Xeon Phi's RAM-disk root: every byte written
  is charged against the card's physical memory, which is the capacity
  pressure at the heart of the paper's storage problem.
"""

from __future__ import annotations

import posixpath
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..sim.errors import SimError
from ..hw.memory import PhysicalMemory
from ..hw.storage import HostDisk

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator


class FSError(SimError):
    """File-system level failure (missing path, etc.)."""


class File:
    """Metadata + payload for one simulated file."""

    __slots__ = ("path", "size", "payload", "in_page_cache")

    def __init__(self, path: str, size: int = 0, payload: Any = None):
        self.path = path
        self.size = size
        self.payload = payload
        self.in_page_cache = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<File {self.path} {self.size}B>"


class FileSystem:
    """Base: a flat namespace of POSIX-ish paths with timed operations.

    ``write``/``read`` are sub-generators so they charge simulated time;
    metadata operations (exists/stat/unlink) are instantaneous, matching
    their negligible real cost relative to data movement.
    """

    def __init__(self, sim: "Simulator", name: str = "fs"):
        self.sim = sim
        self.name = name
        self._files: Dict[str, File] = {}

    # -- namespace ----------------------------------------------------------
    @staticmethod
    def _norm(path: str) -> str:
        if not path.startswith("/"):
            raise FSError(f"paths must be absolute: {path!r}")
        return posixpath.normpath(path)

    def exists(self, path: str) -> bool:
        return self._norm(path) in self._files

    def stat(self, path: str) -> File:
        f = self._files.get(self._norm(path))
        if f is None:
            raise FSError(f"{self.name}: no such file {path!r}")
        return f

    def listdir(self, prefix: str) -> List[str]:
        prefix = self._norm(prefix).rstrip("/") + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def create(self, path: str) -> File:
        path = self._norm(path)
        if path in self._files:
            # POSIX O_TRUNC semantics: recreate empty.
            self._discard(self._files[path])
        f = File(path)
        self._files[path] = f
        return f

    def unlink(self, path: str) -> None:
        path = self._norm(path)
        f = self._files.pop(path, None)
        if f is None:
            raise FSError(f"{self.name}: unlink of missing file {path!r}")
        self._discard(f)

    def rename(self, old: str, new: str) -> None:
        """Metadata-only move: the backing bytes stay where they are (same
        file system), so no I/O time is charged and no memory accounting
        changes. An existing target is replaced, per POSIX rename."""
        old = self._norm(old)
        new = self._norm(new)
        f = self._files.pop(old, None)
        if f is None:
            raise FSError(f"{self.name}: rename of missing file {old!r}")
        existing = self._files.get(new)
        if existing is not None:
            self._discard(existing)
        f.path = new
        self._files[new] = f

    def total_bytes(self) -> int:
        return sum(f.size for f in self._files.values())

    # -- data plane (overridden) ---------------------------------------------
    def _discard(self, f: File) -> None:
        """Release whatever backs the file's bytes."""

    def write(self, path: str, nbytes: int, payload: Any = None, sync: bool = False):
        """Sub-generator: append ``nbytes`` to ``path`` (creating it)."""
        raise NotImplementedError

    def read(self, path: str, nbytes: Optional[int] = None):
        """Sub-generator: read ``nbytes`` (default: whole file); returns payload."""
        raise NotImplementedError

    def _get_or_create(self, path: str) -> File:
        path = self._norm(path)
        f = self._files.get(path)
        if f is None:
            f = File(path)
            self._files[path] = f
        return f


class HostFileSystem(FileSystem):
    """The host's disk-backed file system (with page cache)."""

    def __init__(self, sim: "Simulator", disk: HostDisk, name: str = "hostfs"):
        super().__init__(sim, name)
        self.disk = disk

    def write(self, path: str, nbytes: int, payload: Any = None, sync: bool = False):
        f = self._get_or_create(path)
        yield from self.disk.write(nbytes, sync=sync)
        f.size += nbytes
        if payload is not None:
            f.payload = payload
        f.in_page_cache = True

    def read(self, path: str, nbytes: Optional[int] = None):
        f = self.stat(path)
        n = f.size if nbytes is None else min(nbytes, f.size)
        yield from self.disk.read(n, cached=f.in_page_cache)
        f.in_page_cache = True
        return f.payload

    def fsync(self, path: str):
        self.stat(path)  # must exist
        yield from self.disk.fsync()

    def drop_caches(self) -> None:
        """Evict the page cache (echo 3 > drop_caches): restart-after-failure
        benchmarks read their snapshots cold."""
        for f in self._files.values():
            f.in_page_cache = False


class RamFileSystem(FileSystem):
    """The Xeon Phi's RAM-disk: file bytes are physical card memory."""

    def __init__(
        self,
        sim: "Simulator",
        memory: PhysicalMemory,
        write_factor: float = 1.3,
        name: str = "ramfs",
    ):
        super().__init__(sim, name)
        self.memory = memory
        self.write_factor = write_factor

    def _discard(self, f: File) -> None:
        if f.size:
            self.memory.free(f.size, "ramfs")

    def write(self, path: str, nbytes: int, payload: Any = None, sync: bool = False):
        f = self._get_or_create(path)
        # Allocation can raise MemoryExhausted: local snapshots of large
        # processes genuinely cannot fit (Table 4 'Local' at 4 GB).
        self.memory.allocate(nbytes, "ramfs")
        try:
            yield self.sim.timeout(self.memory.memcpy_time(nbytes) * self.write_factor)
        except BaseException:
            # Torn write: the writer died (card failure kills its thread
            # mid-copy) — roll the charge back so the pool matches the
            # files that actually exist. Thread.kill() closes the
            # generator synchronously, so this runs deterministically.
            self.memory.free(nbytes, "ramfs")
            raise
        f.size += nbytes
        if payload is not None:
            f.payload = payload

    def read(self, path: str, nbytes: Optional[int] = None):
        f = self.stat(path)
        n = f.size if nbytes is None else min(nbytes, f.size)
        yield self.sim.timeout(self.memory.memcpy_time(n))
        return f.payload
