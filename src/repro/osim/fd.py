"""File descriptors: the transport abstraction checkpoint tools write through.

BLCR (see :mod:`repro.blcr`) serializes a process context as a stream of
records pushed through *any* FileDescriptor. This is exactly the integration
point the paper exploits: "the file descriptor created by Snapify-IO can be
directly passed to BLCR for saving and retrieving snapshots." Concrete FDs:

* :class:`RegularFileFD` — a file on a local file system.
* pipe/socket FDs in :mod:`repro.osim.pipes` / :mod:`repro.osim.sockets`.
* the Snapify-IO client FD in :mod:`repro.snapify_io.library`.

Each ``write(nbytes, record)`` charges the transport's simulated cost and
carries an optional real payload record; ``read(nbytes)`` returns the next
record. Record boundaries are preserved (datagram-style), which models
BLCR's self-delimiting context format without byte-level bookkeeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

from ..sim.errors import SimError
from .fs import FileSystem

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator


class FDError(SimError):
    """Misuse of a file descriptor (closed, wrong mode, exhausted)."""


class FileDescriptor:
    """Abstract record-stream descriptor."""

    def __init__(self, sim: "Simulator", name: str = "fd"):
        self.sim = sim
        self.name = name
        self.closed = False
        self.bytes_written = 0
        self.bytes_read = 0

    def _check_open(self) -> None:
        if self.closed:
            raise FDError(f"{self.name}: I/O on closed descriptor")

    def write(self, nbytes: int, record: Any = None):
        """Sub-generator: write ``nbytes`` carrying optional ``record``."""
        raise NotImplementedError

    def read(self, nbytes: int):
        """Sub-generator: read ``nbytes``; returns the next record."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources. Plain method: closing never blocks; transports
        needing a handshake (e.g. Snapify-IO) expose an explicit drain event."""
        self.closed = True


class RegularFileFD(FileDescriptor):
    """Descriptor over a file in a simulated file system.

    Write mode truncates (O_WRONLY|O_CREAT|O_TRUNC); read mode iterates the
    file's stored records sequentially.
    """

    def __init__(self, sim: "Simulator", fs: FileSystem, path: str, mode: str,
                 sync: bool = False):
        super().__init__(sim, name=f"file:{path}")
        if mode not in ("r", "w"):
            raise ValueError(f"mode must be 'r' or 'w', got {mode!r}")
        self.fs = fs
        self.path = path
        self.mode = mode
        #: Synchronous writes (O_SYNC-ish): every write waits for the media.
        #: Host-side BLCR context writes behave this way in practice.
        self.sync = sync
        self._records: List[Any] = []
        self._read_cursor = 0
        if mode == "w":
            fs.create(path)
        else:
            f = fs.stat(path)
            self._records = list(f.payload) if isinstance(f.payload, list) else (
                [] if f.payload is None else [f.payload]
            )

    def write(self, nbytes: int, record: Any = None):
        self._check_open()
        if self.mode != "w":
            raise FDError(f"{self.name}: write on read-only descriptor")
        yield from self.fs.write(self.path, nbytes, sync=self.sync)
        if record is not None:
            self._records.append(record)
        self.bytes_written += nbytes

    def read(self, nbytes: int):
        self._check_open()
        if self.mode != "r":
            raise FDError(f"{self.name}: read on write-only descriptor")
        result = yield from self.fs.read(self.path, nbytes)  # noqa: F841 - charge time
        self.bytes_read += nbytes
        if self._read_cursor < len(self._records):
            rec = self._records[self._read_cursor]
            self._read_cursor += 1
            return rec
        return None

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.mode == "w":
            # Persist the record stream as the file payload.
            self.fs.stat(self.path).payload = self._records
