"""Simulated OS substrate: processes, signals, pipes, sockets, file systems."""

from . import signals
from .boot import boot_host, boot_node, boot_phi
from .fd import FDError, FileDescriptor, RegularFileFD
from .fs import File, FileSystem, FSError, HostFileSystem, RamFileSystem
from .pipes import DuplexPipe, PipeEnd, UnixPipe
from .process import MemoryRegion, OSInstance, ProcessError, SimProcess
from .sockets import Listener, SocketError, SocketNamespace, UnixSocket

__all__ = [
    "DuplexPipe",
    "FDError",
    "File",
    "FileDescriptor",
    "FileSystem",
    "FSError",
    "HostFileSystem",
    "Listener",
    "MemoryRegion",
    "OSInstance",
    "PipeEnd",
    "ProcessError",
    "RamFileSystem",
    "RegularFileFD",
    "SimProcess",
    "SocketError",
    "SocketNamespace",
    "UnixPipe",
    "UnixSocket",
    "boot_host",
    "boot_node",
    "boot_phi",
    "signals",
]
