"""UNIX-domain sockets.

The Snapify-IO library talks to its local daemon over a UNIX socket whose
descriptor is what ``snapifyio_open()`` hands back to the caller (and hence
to BLCR). Data copied through a socket costs memcpy-class bandwidth —
non-trivial on the Phi's slow scalar cores, which is why the socket stage is
one of the pipeline bottlenecks of Snapify-IO's end-to-end throughput.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..sim.channel import Channel
from ..sim.errors import SimError
from ..sim.events import Event
from .fd import FileDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator


class SocketError(SimError):
    """Connection failures and misuse."""


class _Datagram:
    __slots__ = ("nbytes", "record")

    def __init__(self, nbytes: int, record: Any):
        self.nbytes = nbytes
        self.record = record


class UnixSocket(FileDescriptor):
    """One endpoint of a connected UNIX socket pair.

    ``write(nbytes, record)`` charges ``nbytes / bandwidth`` (the copy into
    the kernel buffer) and delivers to the peer; ``read`` blocks for the
    next datagram. EOF (peer closed) is returned as ``None`` from ``recv``
    style reads, mirroring ``read() == 0``.
    """

    def __init__(self, sim: "Simulator", bandwidth: float, name: str = "unixsock"):
        super().__init__(sim, name=name)
        self.bandwidth = bandwidth
        self._rx = Channel(sim, name=f"{name}.rx")
        self.peer: Optional["UnixSocket"] = None
        #: Namespace address this socket is connected to (set by
        #: :meth:`SocketNamespace.connect` on both halves); None for raw
        #: pairs. Checkpoint plugins use it to reconnect after restore.
        self.address: Optional[str] = None

    @staticmethod
    def pair(sim: "Simulator", bandwidth: float, name: str = "unixsock") -> Tuple["UnixSocket", "UnixSocket"]:
        a = UnixSocket(sim, bandwidth, name=f"{name}.a")
        b = UnixSocket(sim, bandwidth, name=f"{name}.b")
        a.peer, b.peer = b, a
        return a, b

    # -- FileDescriptor interface ------------------------------------------
    def write(self, nbytes: int, record: Any = None):
        self._check_open()
        if self.peer is None:
            raise SocketError(f"{self.name}: not connected")
        if self.peer.closed:
            raise SocketError(f"{self.name}: peer closed (EPIPE)")
        yield self.sim.timeout(nbytes / self.bandwidth)
        yield self.peer._rx.send(_Datagram(nbytes, record))
        self.bytes_written += nbytes

    def read(self, nbytes: int = 0):
        """Sub-generator: next datagram's record (None on EOF)."""
        self._check_open()
        dg = yield self._recv_event()
        if dg is None:
            return None
        self.bytes_read += dg.nbytes
        return dg.record

    def read_datagram(self):
        """Sub-generator: (nbytes, record) of the next datagram, (0, None) on EOF."""
        self._check_open()
        dg = yield self._recv_event()
        if dg is None:
            return 0, None
        self.bytes_read += dg.nbytes
        return dg.nbytes, dg.record

    def _recv_event(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.read")
        inner = self._rx.recv()

        def on_inner(inner_ev: Event) -> None:
            if ev.triggered:
                return
            if inner_ev.ok:
                ev.succeed(inner_ev._value)
            else:
                ev.succeed(None)  # closed channel -> EOF, not error

        inner.add_callback(on_inner)
        return ev

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        # Deliver EOF to the peer: its pending/future reads see None.
        self._rx.close()
        if self.peer is not None and not self.peer.closed:
            self.peer._rx.close()


class SocketNamespace:
    """Per-OS registry of listening UNIX sockets (the "filesystem paths")."""

    def __init__(self, sim: "Simulator", default_bandwidth: float):
        self.sim = sim
        self.default_bandwidth = default_bandwidth
        self._listeners: Dict[str, Channel] = {}
        #: address -> Listener for every bound name (oracles audit owners).
        self.bound: Dict[str, "Listener"] = {}

    def listen(self, address: str, owner: Any = None) -> "Listener":
        """Bind ``address``; ``owner`` (a process) gets the listener tracked
        on its ``listeners`` list so process exit releases the name."""
        if address in self._listeners:
            raise SocketError(f"address already in use: {address!r}")
        backlog = Channel(self.sim, name=f"listen:{address}")
        self._listeners[address] = backlog
        listener = Listener(self, address, backlog, owner=owner)
        self.bound[address] = listener
        if owner is not None:
            owner.listeners.append(listener)
        return listener

    def connect(self, address: str, bandwidth: Optional[float] = None):
        """Sub-generator: connect to a listener; returns the client socket."""
        backlog = self._listeners.get(address)
        if backlog is None:
            raise SocketError(f"connection refused: {address!r}")
        bw = bandwidth or self.default_bandwidth
        client, server = UnixSocket.pair(self.sim, bw, name=f"conn:{address}")
        client.address = address
        server.address = address
        yield backlog.send(server)
        return client


class Listener:
    """Accept side of a listening UNIX socket."""

    def __init__(self, ns: SocketNamespace, address: str, backlog: Channel,
                 owner: Any = None):
        self._ns = ns
        self.address = address
        self._backlog = backlog
        #: Owning process (if bound through one); informational, used by
        #: quiescence oracles to detect leaked listener names.
        self.owner = owner

    def accept(self) -> Event:
        """Event that succeeds with the next accepted server-side socket."""
        return self._backlog.recv()

    def close(self) -> None:
        self._ns._listeners.pop(self.address, None)
        self._ns.bound.pop(self.address, None)
        self._backlog.close()
        if self.owner is not None and self in self.owner.listeners:
            self.owner.listeners.remove(self)
