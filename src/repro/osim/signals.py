"""Signal numbers and default dispositions for simulated processes.

Snapify's control plane is signal-driven at two points: the COI daemon
signals the offload process to make it read the pause request from the
daemon pipe, and the ``snapify`` command-line utility signals the *host*
process to trigger swap/migration handlers. BLCR's checkpoint request is
likewise delivered as a signal on the real system.
"""

from __future__ import annotations

SIGKILL = 9
SIGUSR1 = 10
SIGUSR2 = 12
SIGTERM = 15
#: BLCR's out-of-band checkpoint-request signal (real BLCR uses a dedicated
#: real-time signal; the number is arbitrary in the simulation).
SIGCKPT = 64
#: Snapify's "read the daemon pipe" nudge to the offload process.
SIGSNAPIFY = 65

#: Signals whose default action terminates the process.
_FATAL_BY_DEFAULT = frozenset({SIGKILL, SIGTERM})


def default_is_fatal(signum: int) -> bool:
    return signum in _FATAL_BY_DEFAULT


def can_be_caught(signum: int) -> bool:
    return signum != SIGKILL
