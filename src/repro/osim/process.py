"""Simulated operating systems and processes.

Each :class:`OSInstance` owns a physical memory pool, a file system, a UNIX
socket namespace and a process table. A :class:`SimProcess` is a group of
simulated threads plus a memory map (sized regions with optional real data)
and a ``store`` dict — the process's logical application state, which is what
checkpoint tools capture and restore.

Process *resumability* is explicit rather than magical: a process is created
from a ``main_factory`` callable, and restart re-invokes the factory against
the restored store. Programs that want to survive a snapshot keep their
progress in the store (an iteration counter, a phase tag), exactly the way
the offload runtime and the paper's iterative benchmarks do.
"""

from __future__ import annotations

import copy
import itertools
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..hw.memory import PhysicalMemory
from ..sim.errors import SimError
from ..sim.events import Event
from ..sim.kernel import SimGen, Thread
from .fd import FileDescriptor
from .fs import FileSystem
from .sockets import SocketNamespace
from . import signals as sig

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator


class ProcessError(SimError):
    """Process lifecycle misuse (signals to dead processes, etc.)."""


class MemoryRegion:
    """One mapped region of a process: modeled size + optional real data.

    ``pinned`` regions are registered for RDMA and cannot be paged out —
    the reason Xeon Phi OS swap cannot relieve memory pressure for offload
    applications (a motivation the paper gives for process swapping).
    """

    __slots__ = ("name", "size", "kind", "data", "pinned", "tracker")

    KINDS = ("text", "heap", "stack", "localstore", "coi_buffer")

    def __init__(self, name: str, size: int, kind: str = "heap", data: Any = None, pinned: bool = False):
        if kind not in self.KINDS:
            raise ValueError(f"unknown region kind {kind!r}")
        if size < 0:
            raise ValueError("negative region size")
        self.name = name
        self.size = size
        self.kind = kind
        self.data = data
        self.pinned = pinned
        #: Optional dirty-page tracker (repro.blcr.dirty.RegionTracker).
        #: None unless incremental checkpointing opted the region in.
        self.tracker = None

    def enable_tracking(self) -> None:
        """Attach a dirty-page tracker (idempotent; zero simulated cost)."""
        if self.tracker is None:
            from ..blcr.dirty import RegionTracker

            self.tracker = RegionTracker(self.size)

    def write(self, offset: int, nbytes: int) -> None:
        """Note an application write for dirty tracking.

        A pure bookkeeping hook: no simulated time, no events. A no-op when
        tracking is off, so instrumented programs behave identically on the
        golden trace.
        """
        if self.tracker is not None:
            self.tracker.note_write(offset, nbytes)

    def clone(self) -> "MemoryRegion":
        return MemoryRegion(self.name, self.size, self.kind, copy.deepcopy(self.data), self.pinned)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Region {self.name} {self.kind} {self.size}B{' pinned' if self.pinned else ''}>"


RUNNING = "running"
TERMINATED = "terminated"


class SimProcess:
    """A simulated OS process."""

    def __init__(self, os: "OSInstance", pid: int, name: str,
                 main_factory: Optional[Callable[["SimProcess"], SimGen]] = None):
        self.os = os
        self.sim = os.sim
        self.pid = pid
        self.name = name
        self.state = RUNNING
        self.exit_code: Optional[int] = None
        self.exit_event = Event(self.sim, name=f"exit:{name}")
        self.regions: Dict[str, MemoryRegion] = {}
        #: Logical application/runtime state; checkpointed and restored.
        self.store: Dict[str, Any] = {}
        #: Free-form attachment point for runtime layers (COI, Snapify).
        self.runtime: Dict[str, Any] = {}
        self.threads: List[Thread] = []
        self.signal_handlers: Dict[int, Callable[["SimProcess", int], SimGen]] = {}
        #: Signals queued while blocked, in arrival order (POSIX allows
        #: collapsing duplicates; this model keeps every arrival).
        self.pending_signals: List[int] = []
        #: Currently blocked signal numbers (sigprocmask).
        self.blocked_signals: set = set()
        #: Listeners this process owns in the OS socket namespace; closed
        #: (address released) when the process dies.
        self.listeners: List[Any] = []
        self.open_fds: List[FileDescriptor] = []
        self.main_factory = main_factory
        self.main_thread: Optional[Thread] = None
        #: When True, newly mapped regions get dirty-page trackers attached.
        self.dirty_tracking = False

    # -- threads ----------------------------------------------------------
    def spawn_thread(self, gen: SimGen, name: str = "", daemon: bool = False) -> Thread:
        if self.state != RUNNING:
            raise ProcessError(f"{self.name}: spawning thread in dead process")
        t = self.sim.spawn(gen, name=f"{self.name}/{name or 'thread'}", daemon=daemon)
        self.threads.append(t)
        return t

    def start(self) -> None:
        """Launch the main thread (if a main factory was provided)."""
        if self.main_factory is not None and self.main_thread is None:
            self.main_thread = self.spawn_thread(self.main_factory(self), name="main")

    # -- memory -----------------------------------------------------------
    def map_region(self, name: str, size: int, kind: str = "heap",
                   data: Any = None, pinned: bool = False) -> MemoryRegion:
        """Allocate a region against the OS's physical memory."""
        if name in self.regions:
            raise ProcessError(f"{self.name}: region {name!r} already mapped")
        self.os.memory.allocate(size, "process")
        region = MemoryRegion(name, size, kind, data, pinned)
        if self.dirty_tracking:
            region.enable_tracking()
        self.regions[name] = region
        return region

    def enable_dirty_tracking(self) -> None:
        """Turn on dirty-page tracking for current and future regions."""
        self.dirty_tracking = True
        for region in self.regions.values():
            region.enable_tracking()

    def unmap_region(self, name: str) -> None:
        region = self.regions.pop(name, None)
        if region is None:
            raise ProcessError(f"{self.name}: unmapping unknown region {name!r}")
        self.os.memory.free(region.size, "process")

    def region(self, name: str) -> MemoryRegion:
        return self.regions[name]

    @property
    def memory_footprint(self) -> int:
        return sum(r.size for r in self.regions.values())

    # -- file descriptors --------------------------------------------------
    def register_fd(self, fd: FileDescriptor) -> FileDescriptor:
        self.open_fds.append(fd)
        return fd

    # -- signals -------------------------------------------------------------
    def install_signal_handler(self, signum: int,
                               handler: Callable[["SimProcess", int], SimGen]) -> None:
        if not sig.can_be_caught(signum):
            raise ProcessError(f"signal {signum} cannot be caught")
        self.signal_handlers[signum] = handler

    def block_signal(self, signum: int) -> None:
        """Add a signal to the blocked mask (sigprocmask SIG_BLOCK)."""
        self.blocked_signals.add(signum)

    def unblock_signal(self, signum: int) -> List[Optional[Thread]]:
        """Remove a signal from the blocked mask and deliver what queued.

        Pending instances of the signal are delivered in arrival order;
        returns the handler threads spawned (None entries for default
        actions), like repeated :meth:`deliver_signal`.
        """
        self.blocked_signals.discard(signum)
        delivered: List[Optional[Thread]] = []
        while signum in self.pending_signals and self.alive:
            self.pending_signals.remove(signum)
            delivered.append(self.deliver_signal(signum))
        return delivered

    def deliver_signal(self, signum: int) -> Optional[Thread]:
        """Deliver a signal: run its handler thread or apply default action.

        A blocked, catchable signal queues on ``pending_signals`` instead
        (uncatchable signals — SIGKILL-class — ignore the mask, as on
        POSIX); it is delivered when :meth:`unblock_signal` clears the mask.
        """
        if self.state != RUNNING:
            raise ProcessError(f"{self.name}: signal {signum} to dead process")
        if signum in self.blocked_signals and sig.can_be_caught(signum):
            self.pending_signals.append(signum)
            return None
        handler = self.signal_handlers.get(signum)
        if handler is not None:
            return self.spawn_thread(handler(self, signum), name=f"sig{signum}")
        if sig.default_is_fatal(signum):
            self.terminate(code=128 + signum)
        # Non-fatal, unhandled signals are ignored (SIG_DFL ignore).
        return None

    # -- lifecycle -----------------------------------------------------------
    def terminate(self, code: int = 0) -> None:
        """Kill every thread, release memory and FDs, and fire exit_event."""
        if self.state == TERMINATED:
            return
        self.state = TERMINATED
        self.exit_code = code
        for t in self.threads:
            t.kill()
        self.threads.clear()
        for fd in self.open_fds:
            try:
                fd.close()
            except Exception:  # pragma: no cover - defensive cleanup
                pass
        self.open_fds.clear()
        self.pending_signals.clear()
        for listener in list(self.listeners):
            try:
                listener.close()
            except Exception:  # pragma: no cover - defensive cleanup
                pass
        self.listeners.clear()
        for name in list(self.regions):
            self.unmap_region(name)
        self.os._reap(self)
        self.exit_event.succeed(code)

    @property
    def alive(self) -> bool:
        return self.state == RUNNING

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimProcess {self.name} pid={self.pid} {self.state}>"


class OSInstance:
    """One booted OS kernel (host Linux or the Phi's embedded Linux)."""

    HOST = "host"
    PHI = "phi"

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        kind: str,
        memory: PhysicalMemory,
        fs: FileSystem,
        socket_bandwidth: float,
        spawn_latency: float,
    ):
        if kind not in (self.HOST, self.PHI):
            raise ValueError(f"unknown OS kind {kind!r}")
        self.sim = sim
        self.name = name
        self.kind = kind
        self.memory = memory
        self.fs = fs
        self.sockets = SocketNamespace(sim, default_bandwidth=socket_bandwidth)
        self.spawn_latency = spawn_latency
        self.processes: Dict[int, SimProcess] = {}
        self._pids = itertools.count(1000)
        #: Hook point: callables invoked with each exiting process.
        self.exit_watchers: List[Callable[[SimProcess], None]] = []

    def spawn_process(
        self,
        name: str,
        image_size: int = 0,
        main_factory: Optional[Callable[[SimProcess], SimGen]] = None,
        start: bool = True,
    ):
        """Sub-generator: fork+exec a process; returns the SimProcess."""
        yield self.sim.timeout(self.spawn_latency)
        proc = SimProcess(self, next(self._pids), name, main_factory=main_factory)
        self.processes[proc.pid] = proc
        if image_size:
            proc.map_region("text", image_size, kind="text")
        if start:
            proc.start()
        return proc

    def process_by_pid(self, pid: int) -> SimProcess:
        proc = self.processes.get(pid)
        if proc is None:
            raise ProcessError(f"{self.name}: no such pid {pid}")
        return proc

    def _reap(self, proc: SimProcess) -> None:
        self.processes.pop(proc.pid, None)
        for watcher in list(self.exit_watchers):
            watcher(proc)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<OSInstance {self.name} ({self.kind}) procs={len(self.processes)}>"
