"""Boot simulated OS kernels onto hardware nodes."""

from __future__ import annotations

from typing import List, Tuple

from ..hw.node import PhiDevice, ServerNode
from .fs import HostFileSystem, RamFileSystem
from .process import OSInstance


def boot_host(node: ServerNode) -> OSInstance:
    """Boot the host Linux: disk-backed FS, host DRAM."""
    params = node.params
    os = OSInstance(
        node.sim,
        name=f"{node.name}.host",
        kind=OSInstance.HOST,
        memory=node.memory,
        fs=HostFileSystem(node.sim, node.disk, name=f"{node.name}.hostfs"),
        socket_bandwidth=params.snapify_io.socket_bw_host,
        spawn_latency=params.host.process_spawn_latency,
    )
    os.hw = node  # type: ignore[attr-defined] - hardware backref for SCIF routing
    node.os = os
    return os


def boot_phi(phi: PhiDevice) -> OSInstance:
    """Boot the Phi's embedded Linux: RAM-disk FS carved from card memory."""
    params = phi.node.params
    os = OSInstance(
        phi.sim,
        name=f"{phi.node.name}.mic{phi.index}",
        kind=OSInstance.PHI,
        memory=phi.memory,
        fs=RamFileSystem(
            phi.sim,
            phi.memory,
            write_factor=params.phi.ramfs_write_factor,
            name=f"{phi.node.name}.mic{phi.index}.ramfs",
        ),
        socket_bandwidth=params.snapify_io.socket_bw_phi,
        spawn_latency=params.phi.process_spawn_latency,
    )
    os.hw = phi  # type: ignore[attr-defined] - hardware backref for SCIF routing
    phi.os = os
    return os


def boot_node(node: ServerNode) -> Tuple[OSInstance, List[OSInstance]]:
    """Boot the host and every coprocessor of a node."""
    host_os = boot_host(node)
    phi_oses = [boot_phi(phi) for phi in node.phis]
    return host_os, phi_oses
