"""Transfer resilience: retry/backoff, resumable streams, fallback chain.

The paper's Snapify-IO pipeline (§6) is the fast path for moving snapshots
off the card, but a reproduction aiming past the artifact needs the
property real checkpointing systems have: a transport failure mid-capture
degrades the transfer, it does not lose the snapshot. This module adds

* :class:`RetryPolicy` — deterministic exponential backoff whose jitter is
  drawn from a per-simulator RNG seeded by ``Simulator.schedule_seed``, so
  every fuzz run stays a pure function of ``(scenario, seed, faults)``;
* :class:`TransferManager` — drives one snapshot file through the
  degradation chain **Snapify-IO → NFS → scp**, retrying each channel
  under the policy (Snapify-IO re-attempts resume from the last durable
  staging-buffer boundary), reporting which channel ultimately carried the
  file and how many attempts it took;
* :class:`TransferFailed` — raised when every channel is exhausted,
  carrying the whole cause chain for the operation's ``FAILED`` record.

Golden-trace rule: with the default policy and no faults, ``send_file``
performs exactly one Snapify-IO stream — the retry loop only diverges on an
exception, and no timer or span is created before one occurs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..hw.node import ServerNode
from ..obs.registry import MetricsRegistry
from ..osim.fd import FDError
from ..osim.process import OSInstance
from ..osim.sockets import SocketError
from ..scif.endpoint import ScifError, ScifNetwork
from ..sim.channel import ChannelClosed
from ..sim.errors import SimError
from .daemon import SnapifyIOError, TransferTimeout
from .library import snapifyio_open
from .nfs import NFSMount
from .scp import scp_copy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = [
    "ChannelUnavailable",
    "RetryPolicy",
    "TransferFailed",
    "TransferManager",
    "TransferOutcome",
    "TransferTimeout",
]

#: Errors a retry can plausibly cure (or a fallback channel can route
#: around). ``ChannelClosed`` is what a parked local-socket read surfaces
#: when the daemon side tears the connection down mid-stream. Anything
#: else — missing source file, programming errors — is permanent and
#: propagates immediately.
TRANSIENT_ERRORS = (SnapifyIOError, ScifError, SocketError, FDError, ChannelClosed)


class ChannelUnavailable(SnapifyIOError):
    """The channel cannot serve this transfer at all (wrong topology, no
    daemon); skip straight to the next channel instead of burning retries."""


class TransferFailed(SnapifyIOError):
    """Every channel of the fallback chain was exhausted."""

    def __init__(self, path: str, attempts: int, causes: List[Tuple[str, str, Exception]]):
        chain = "; ".join(f"{ch} #{att}: {exc}" for ch, att, exc in causes)
        super().__init__(
            f"transfer of {path} failed after {attempts} attempt(s) "
            f"across {len({c[0] for c in causes})} channel(s): {chain}"
        )
        self.path = path
        self.attempts = attempts
        #: (channel, attempt-label, exception) per failed attempt, in order.
        self.causes = causes


def _retry_rng(sim: "Simulator"):
    """Per-simulator jitter source, lazily seeded from the schedule seed."""
    rng = getattr(sim, "_retry_rng", None)
    if rng is None:
        import random

        seed = getattr(sim, "schedule_seed", None)
        rng = sim._retry_rng = random.Random(0x534E4150 ^ (seed or 0))
    return rng


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter, on the sim clock."""

    attempts: int = 3
    base_delay: float = 5e-3
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.25
    #: Wall-clock bound per attempt; ``None`` disables the deadline (and
    #: its watcher events) entirely.
    timeout: Optional[float] = None

    @staticmethod
    def from_params(params) -> "RetryPolicy":
        return RetryPolicy(
            attempts=params.retry_attempts,
            base_delay=params.retry_base_delay,
            multiplier=params.retry_multiplier,
            max_delay=params.retry_max_delay,
            jitter=params.retry_jitter,
        )

    def delay(self, sim: "Simulator", attempt: int) -> float:
        """Backoff delay before re-attempt number ``attempt`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if not self.jitter:
            return raw
        swing = self.jitter * (2.0 * _retry_rng(sim).random() - 1.0)
        return max(0.0, raw * (1.0 + swing))

    def backoff(self, sim: "Simulator", attempt: int):
        """Sub-generator: sleep the (jittered) backoff for ``attempt``."""
        yield sim.timeout(self.delay(sim, attempt))


@dataclass(frozen=True)
class TransferOutcome:
    """What ``TransferManager.send_file`` reports on success."""

    channel: str
    attempts: int
    nbytes: int


class TransferManager:
    """Degrades a snapshot transfer Snapify-IO → NFS → scp per attempt.

    One manager is cheap and stateless across transfers; the interesting
    state (retry counters, fallback records) lives in the metrics registry
    and the trace, and per-operation progress in the operation itself via
    the ``RETRYING`` edge.
    """

    CHANNELS: Sequence[str] = ("snapifyio", "nfs", "scp")

    def __init__(self, policy: Optional[RetryPolicy] = None,
                 channels: Optional[Sequence[str]] = None):
        self.policy = policy
        self.channels = tuple(channels or self.CHANNELS)

    # -- plumbing ---------------------------------------------------------------
    @staticmethod
    def _node_of(os: OSInstance) -> ServerNode:
        hw = os.hw  # type: ignore[attr-defined]
        return hw if isinstance(hw, ServerNode) else hw.node

    def _policy_for(self, src_os: OSInstance) -> RetryPolicy:
        if self.policy is not None:
            return self.policy
        return RetryPolicy.from_params(self._node_of(src_os).params.snapify_io)

    # -- the chain ---------------------------------------------------------------
    def send_file(self, src_os: OSInstance, dst_node: int, src_path: str,
                  dst_path: str, proc=None, op=None, span: int = 0):
        """Sub-generator: move ``src_path`` on ``src_os`` to ``dst_path`` on
        SCIF node ``dst_node``, degrading through the fallback chain.

        Returns a :class:`TransferOutcome`; raises :class:`TransferFailed`
        (never silently) once every channel is exhausted. ``op`` — an
        optional :class:`~repro.snapify.ops.SnapifyOperation` in state
        ``TRANSFERRING`` — gets a ``RETRYING`` round-trip per failed
        attempt and its ``channel``/``attempts`` fields filled in.
        """
        sim = src_os.sim
        node = self._node_of(src_os)
        dst_os = ScifNetwork.of(node).os_for_scif_node(dst_node)
        f = src_os.fs.stat(src_path)  # missing source = permanent, no retry
        policy = self._policy_for(src_os)
        reg = MetricsRegistry.of(sim)
        causes: List[Tuple[str, str, Exception]] = []
        attempts = 0
        for ch_index, channel in enumerate(self.channels):
            if ch_index > 0:
                reg.counter("snapifyio.fallbacks").inc()
                sim.trace.emit("io.fallback", path=dst_path, channel=channel,
                               after=attempts)
            for attempt in range(1, policy.attempts + 1):
                attempts += 1
                try:
                    gen = self._attempt(
                        channel, src_os, dst_os, dst_node, src_path, dst_path,
                        f, resume=attempt > 1, proc=proc, span=span,
                    )
                    nbytes = yield from self._with_deadline(
                        sim, gen, policy.timeout, f"{channel}:{dst_path}")
                except ChannelUnavailable as exc:
                    causes.append((channel, "n/a", exc))
                    break  # no point retrying an inapplicable channel
                except TRANSIENT_ERRORS as exc:
                    causes.append((channel, str(attempt), exc))
                    if attempt >= policy.attempts:
                        break  # fall through to the next channel
                    reg.counter("snapifyio.retries").inc()
                    sim.trace.emit("io.retry", path=dst_path, channel=channel,
                                   attempt=attempt, error=str(exc))
                    self._mark_retrying(op, channel, attempt, exc)
                    yield from policy.backoff(sim, attempt)
                    self._mark_transferring(op)
                else:
                    if op is not None:
                        op.channel = channel
                        op.attempts = attempts
                    # Per-channel delivery series (counters only: plain adds,
                    # nothing on the hot path when nobody snapshots them).
                    reg.counter(f"snapifyio.channel.{channel}.files").inc()
                    reg.counter(f"snapifyio.channel.{channel}.bytes").inc(nbytes)
                    return TransferOutcome(channel=channel, attempts=attempts,
                                           nbytes=nbytes)
        if op is not None:
            op.attempts = attempts
        raise TransferFailed(dst_path, attempts, causes)

    @staticmethod
    def _with_deadline(sim, gen, timeout, label):
        """Sub-generator: run ``gen``, bounded by ``timeout`` sim-seconds.

        ``timeout=None`` (the default policy) is a plain ``yield from`` —
        no watcher events, preserving the golden trace. With a deadline the
        attempt runs on a sacrificial thread raced against a timer; a hung
        attempt is killed (its generator's ``finally`` teardown runs, so
        the descriptor aborts and the daemons reset) and reported as
        :class:`TransferTimeout` — a transient error the caller retries.
        """
        if timeout is None:
            return (yield from gen)
        done = sim.event(f"attempt:{label}")

        def runner():
            try:
                res = yield from gen
            except SimError as exc:
                if not done.triggered:
                    done.fail(exc)
                return
            if not done.triggered:
                done.succeed(res)

        th = sim.spawn(runner(), name=f"transfer-attempt:{label}", daemon=True)
        idx, first = yield sim.any_of([done, sim.timeout(timeout)])
        if idx == 0:
            return first._value
        th.kill()
        raise TransferTimeout(f"{label}: attempt exceeded {timeout}s deadline")

    # -- per-channel attempts ---------------------------------------------------
    def _attempt(self, channel, src_os, dst_os, dst_node, src_path, dst_path,
                 f, resume, proc, span):
        if channel == "snapifyio":
            return (yield from self._via_snapifyio(
                src_os, dst_os, dst_node, dst_path, f, resume, proc, span))
        if channel == "nfs":
            return (yield from self._via_nfs(src_os, dst_os, dst_path, f))
        if channel == "scp":
            return (yield from self._via_scp(src_os, dst_os, src_path, dst_path, f))
        raise ChannelUnavailable(f"unknown transfer channel {channel!r}")

    def _via_snapifyio(self, src_os, dst_os, dst_node, dst_path, f,
                       resume, proc, span):
        if getattr(src_os, "snapify_io_daemon", None) is None:
            raise ChannelUnavailable(f"{src_os.name}: Snapify-IO daemon not running")
        fd = yield from snapifyio_open(src_os, dst_node, dst_path, "w",
                                       proc=proc, span=span, resume=resume)
        try:
            # A list payload streams element-per-record so the committed
            # file's payload round-trips exactly; scalar payloads ride as a
            # single record.
            payload = f.payload
            if isinstance(payload, list) and payload:
                yield from fd.write(f.size, record=payload[0])
                for rec in payload[1:]:
                    yield from fd.write(0, record=rec)
            else:
                yield from fd.write(f.size, record=payload)
            yield from fd.finish()
        except BaseException:
            fd.close()  # sends the abort marker if the stream is unfinished
            raise
        self._verify(dst_os, dst_path, f.size)
        return f.size

    def _via_nfs(self, src_os, dst_os, dst_path, f):
        node = self._node_of(src_os)
        if src_os.hw is node or dst_os.hw is not node:  # type: ignore[attr-defined]
            raise ChannelUnavailable(
                "nfs fallback serves card-to-host transfers only"
            )
        self._void_stale_state(dst_os, dst_path)
        dst_os.fs.create(dst_path)  # truncate any partial left by Snapify-IO
        mount = NFSMount(src_os, dst_os.fs, node.params.nfs)
        yield from mount.write(dst_path, f.size, payload=f.payload)
        self._verify(dst_os, dst_path, f.size)
        return f.size

    def _via_scp(self, src_os, dst_os, src_path, dst_path, f):
        node = self._node_of(src_os)
        self._void_stale_state(dst_os, dst_path)
        dst_os.fs.create(dst_path)  # truncate any partial left by Snapify-IO
        yield from scp_copy(src_os, dst_os, src_path, dst_path, node.params.scp)
        self._verify(dst_os, dst_path, f.size)
        return f.size

    @staticmethod
    def _void_stale_state(dst_os, dst_path) -> None:
        """Truncating the destination voids any Snapify-IO commit/partial
        bookkeeping for it (the commit ledger must never outlive the bytes)."""
        daemon = getattr(dst_os, "snapify_io_daemon", None)
        if daemon is not None:
            daemon.commits.pop(dst_path, None)
            daemon._partials.pop(dst_path, None)

    @staticmethod
    def _verify(dst_os, dst_path, expected: int) -> None:
        if not dst_os.fs.exists(dst_path):
            raise SnapifyIOError(f"{dst_path}: transfer reported ok but file missing")
        size = dst_os.fs.stat(dst_path).size
        if size != expected:
            raise SnapifyIOError(
                f"{dst_path}: transferred size {size} != source size {expected}"
            )

    # -- operation wiring (lazy imports: snapify.* imports this package) --------
    @staticmethod
    def _mark_retrying(op, channel, attempt, exc):
        if op is not None:
            from ..snapify.ops import RETRYING, TRANSFERRING

            if op.state == TRANSFERRING:
                op.transition(RETRYING, channel=channel, attempt=attempt,
                              error=str(exc))

    @staticmethod
    def _mark_transferring(op):
        if op is not None:
            from ..snapify.ops import RETRYING, TRANSFERRING

            if op.state == RETRYING:
                op.transition(TRANSFERRING)
