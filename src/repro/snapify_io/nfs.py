"""NFS over the PCIe virtual network: the baseline Snapify-IO displaces.

Two access modes matter for Table 4:

* **Synchronous per-call RPCs** — how BLCR's kernel-side writes hit the
  mount: every ``write()`` costs at least one RPC round trip. This is why
  BLCR's burst of small metadata records murders plain NFS.
* **Write-back client caching** — how ordinary user file copies behave
  (Table 3's 1 MB case, where NFS beats everything by absorbing the file
  into the client cache).

The paper's two fixes are modeled as buffered descriptors:
:class:`NFSKernelBufferedFD` (BLCR kernel-module coalescing) and
:class:`NFSUserBufferedFD` (user-space redirection through stdin/stdout,
which pays an extra copy per byte and a pipe hop per record).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..hw.params import NFSParams
from ..osim.fd import FDError, FileDescriptor
from ..osim.fs import FileSystem, HostFileSystem
from ..osim.process import OSInstance


class NFSMount(FileSystem):
    """The host file system mounted on a card over NFS.

    The namespace *is* the host file system's (files written here are
    visible to host-side tools and vice versa); only the access costs
    differ. ``sync_writes`` selects the BLCR-style per-call RPC mode.
    """

    def __init__(
        self,
        phi_os: OSInstance,
        host_fs: HostFileSystem,
        params: NFSParams,
        sync_writes: bool = False,
        name: str = "nfs",
    ):
        super().__init__(phi_os.sim, name)
        self.phi_os = phi_os
        self.host_fs = host_fs
        self.params = params
        self.sync_writes = sync_writes
        self._cached_bytes = 0  # client write-back cache occupancy
        self._readahead: dict = {}  # path -> bytes already fetched
        self.rpc_count = 0

    # Namespace operations delegate to the host FS.
    def exists(self, path: str) -> bool:
        return self.host_fs.exists(path)

    def stat(self, path: str):
        return self.host_fs.stat(path)

    def listdir(self, prefix: str):
        return self.host_fs.listdir(prefix)

    def create(self, path: str):
        return self.host_fs.create(path)

    def unlink(self, path: str) -> None:
        self.host_fs.unlink(path)

    def _rpc_time(self, nbytes: int, bw: float) -> float:
        """Serial synchronous RPCs: latency + wire time per rpc_size slice."""
        n_rpcs = max(1, -(-nbytes // self.params.rpc_size))
        self.rpc_count += n_rpcs
        return n_rpcs * self.params.op_latency + nbytes / bw

    def _check_available(self) -> None:
        """NFS rides the PCIe virtual ethernet and a host-side export: a
        downed link or a stopped export makes every RPC time out (modeled as
        an immediate error — the client would see ``server not responding``).
        """
        if getattr(getattr(self.phi_os, "hw", None), "link_down", False):
            raise FDError(f"{self.name}: PCIe link down — server not responding")
        if not getattr(self.host_fs, "exported", True):
            raise FDError(f"{self.name}: export stopped — server not responding")

    def write(self, path: str, nbytes: int, payload: Any = None, sync: bool = False):
        self._check_available()
        sync = sync or self.sync_writes
        if sync:
            yield self.sim.timeout(self._rpc_time(nbytes, self.params.write_bw))
        else:
            # Write-back: absorb into the client cache while it has room.
            room = max(0, self.params.client_cache - self._cached_bytes)
            absorbed = min(nbytes, room)
            spilled = nbytes - absorbed
            self._cached_bytes += absorbed
            if absorbed:
                yield self.sim.timeout(
                    absorbed / self.phi_os.memory.params.memcpy_bw
                )
            if spilled:
                yield self.sim.timeout(self._rpc_time(spilled, self.params.write_bw))
        # Server-side: land in the host page cache (flushed asynchronously).
        yield from self.host_fs.write(path, nbytes, payload=payload)

    #: Client-side CPU cost of any read call served from the readahead buffer.
    READ_CALL_COST = 100e-6

    def read(self, path: str, nbytes: Optional[int] = None):
        """Readahead-aware read: sequential small reads are served from the
        client's readahead buffer; each ``rpc_size`` window is fetched once.
        BLCR's metadata-record reads therefore cost far less than one RPC
        each — but far more than the zero Snapify-IO pays (its daemon pushes
        the whole stream proactively)."""
        self._check_available()
        f = self.host_fs.stat(path)
        n = f.size if nbytes is None else min(nbytes, f.size)
        pos = self._readahead.get(path, 0)
        end = pos + n
        fetched = self._readahead.get((path, "fetched"), 0)
        cost = self.READ_CALL_COST
        while fetched < end:
            fetched += self.params.rpc_size
            self.rpc_count += 1
            cost += self.params.op_latency + min(self.params.rpc_size, f.size) / self.params.read_bw
        self._readahead[path] = end if end < f.size else 0  # rewind at EOF
        self._readahead[(path, "fetched")] = fetched if end < f.size else 0
        yield self.sim.timeout(cost)
        return f.payload


class NFSKernelBufferedFD(FileDescriptor):
    """The paper's modified-BLCR-kernel-module fix: accumulate writes into
    large chunks before they hit the wire. Restores Table 4's
    'NFS-Buffered in kernel' row."""

    CHUNK = 1024 * 1024

    def __init__(self, mount: NFSMount, path: str):
        super().__init__(mount.sim, name=f"nfs-kbuf:{path}")
        self.mount = mount
        self.path = path
        self._pending = 0
        self._records: List[Any] = []
        mount.create(path)

    def write(self, nbytes: int, record: Any = None):
        self._check_open()
        if record is not None:
            self._records.append(record)
        self._pending += nbytes
        while self._pending >= self.CHUNK:
            yield from self.mount.write(self.path, self.CHUNK, sync=True)
            self._pending -= self.CHUNK
        self.bytes_written += nbytes

    def flush(self):
        """Sub-generator: push out the final partial chunk."""
        if self._pending:
            yield from self.mount.write(self.path, self._pending, sync=True)
            self._pending = 0
        self.mount.stat(self.path).payload = list(self._records)

    def read(self, nbytes: int):  # pragma: no cover - write-only helper
        raise FDError(f"{self.name}: kernel-buffered FD is write-only")

    def close(self) -> None:
        super().close()


class NFSUserBufferedFD(NFSKernelBufferedFD):
    """The user-space variant: BLCR's writes are redirected through a
    buffering utility via stdout/stdin. Same coalescing idea, but every byte
    pays an extra user-space copy and every record a pipe hop — which is why
    it helps 'to a lesser degree' than the kernel fix."""

    PIPE_HOP = 25e-6
    #: Fraction of the extra user-space copy NOT hidden behind the wire
    #: (the utility runs as a separate process, pipelined with the writes).
    RESIDUAL_COPY = 0.05

    def write(self, nbytes: int, record: Any = None):
        # Extra hop through the utility's stdin, mostly overlapped.
        yield self.sim.timeout(
            self.PIPE_HOP
            + self.RESIDUAL_COPY * nbytes / self.mount.phi_os.memory.params.memcpy_bw
        )
        yield from super().write(nbytes, record)
