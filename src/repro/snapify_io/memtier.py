"""The distributed in-memory snapshot tier.

Incremental captures do not touch NFS on the critical path: each
:class:`~repro.blcr.incremental.DeltaImage` is stored as a *local* copy in
the capturing card's memory plus a *partner* copy replicated to another
card (round-robin over the registered fleet, re-homed when health sweeps
flag a card). NFS only sees the chain when a BACKGROUND-priority fleet
ticket demotes it (:meth:`MemoryTier.demote`) — the Kohl-style partner
scheme that makes frequent checkpoints affordable.

The tier is a per-simulator singleton (``MemoryTier.of(sim)``) and fully
opt-in: nothing builds one unless an incremental capture runs, and every
consumer peeks (``MemoryTier.peek``) so default runs schedule zero extra
events — the golden trace stays byte-identical.

Accounting rules (audited by the ``partner_copy_consistent`` oracle):

* every *intact* copy's bytes are charged to its home card's memory pool
  under the ``"snap_tier"`` category and freed when the copy is torn,
  released, or dropped;
* a partner copy interrupted mid-replication is marked ``torn`` and never
  counted as a surviving replica — the tier re-homes to the next candidate
  instead of committing the torn image;
* a link is ``replicated`` only once an intact partner copy committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..blcr.context import BULK_CHUNK
from ..blcr.incremental import DeltaImage
from ..hw.memory import MemoryExhausted
from ..obs.registry import MetricsRegistry
from ..sim.errors import SimError

#: Memory-pool category for tier-resident snapshot bytes.
TIER_CATEGORY = "snap_tier"


class TierError(SimError):
    """Memory-tier placement/lookup failure."""


@dataclass
class TierCopy:
    """One resident copy of one chain link."""

    home: str  #: fleet card key ("n0.mic1")
    nbytes: int
    role: str  #: "local" | "partner"
    torn: bool = False  #: replication was interrupted; image is unusable
    lost: bool = False  #: home card failed with the copy on it
    released: bool = False  #: freed after demotion / re-home

    @property
    def intact(self) -> bool:
        return not (self.torn or self.lost or self.released)


@dataclass
class TierLink:
    """One chain link (a base or delta image) and its copies."""

    image: DeltaImage
    copies: List[TierCopy] = field(default_factory=list)
    #: The local copy is durable in card memory (the capture commit point).
    committed: bool = False
    #: An intact partner copy finished streaming.
    replicated: bool = False

    def intact_copies(self) -> List[TierCopy]:
        return [c for c in self.copies if c.intact]


@dataclass
class ChainEntry:
    """The ledger record of one snapshot path's incremental chain."""

    snapshot_id: str
    links: List[TierLink] = field(default_factory=list)
    demoted: bool = False

    @property
    def images(self) -> List[DeltaImage]:
        return [link.image for link in self.links]


class MemoryTier:
    """Per-simulator in-memory snapshot tier + placement ledger."""

    _ATTR = "snapify_memtier"

    def __init__(self, sim: Any):
        self.sim = sim
        #: snapshot path -> chain ledger entry.
        self.chains: Dict[str, ChainEntry] = {}
        #: fleet card key -> PhiDevice, in registration order (the
        #: round-robin partner rotation walks this order).
        self._cards: Dict[str, Any] = {}
        self._order: List[str] = []
        self._cursor = 0
        reg = MetricsRegistry.of(sim)
        self._registry = reg
        self.m_stores = reg.counter("memtier.stores")
        self.m_delta_bytes = reg.counter("memtier.delta_bytes")
        self.m_logical_bytes = reg.counter("memtier.logical_bytes")
        self.m_torn = reg.counter("memtier.replication_torn")
        self.m_rehomes = reg.counter("memtier.rehomes")
        self.m_demotions = reg.counter("memtier.demotions")
        self.m_demotion_failures = reg.counter("memtier.demotion_failures")
        self.m_hits = {
            src: reg.counter(f"memtier.hits.{src}") for src in ("local", "partner", "nfs")
        }
        reg.gauge("memtier.chains", lambda: len(self.chains))
        reg.gauge("memtier.resident_bytes", self.resident_bytes)

    @classmethod
    def of(cls, sim: Any) -> "MemoryTier":
        tier = getattr(sim, cls._ATTR, None)
        if tier is None:
            tier = cls(sim)
            setattr(sim, cls._ATTR, tier)
        return tier

    @classmethod
    def peek(cls, sim: Any) -> Optional["MemoryTier"]:
        """The simulator's tier if one exists — restore paths and oracles
        must not create one."""
        return getattr(sim, cls._ATTR, None)

    # -- fleet registration --------------------------------------------------
    def register_card(self, key: str, phi: Any) -> None:
        if key not in self._cards:
            self._order.append(key)
        self._cards[key] = phi

    def register_server(self, server: Any, node_index: int = 0) -> None:
        """Register every card of one :class:`~repro.testbed.XeonPhiServer`."""
        for d, phi in enumerate(server.node.phis):
            self.register_card(f"n{node_index}.mic{d}", phi)

    def register_fleet(self, fleet: Any) -> None:
        """Register every card of a :class:`~repro.testbed.XeonPhiFleet`,
        under the same keys :class:`~repro.snapify.fleet.CardRef` uses."""
        for card in fleet.cards():
            self.register_card(card.key, fleet.phi(card))

    def key_for_phi(self, phi: Any) -> str:
        """The fleet key of ``phi``, self-registering it if unknown.

        Derivation matches :meth:`SnapifyOperation._card_of`: node index
        from the node name's digits, device from the phi index — so tier
        keys, operation cards and fleet CardRefs all agree.
        """
        for key, known in self._cards.items():
            if known is phi:
                return key
        name = getattr(getattr(phi, "node", None), "name", "")
        digits = "".join(ch for ch in name if ch.isdigit())
        key = f"n{digits or 0}.mic{getattr(phi, 'index', 0)}"
        self.register_card(key, phi)
        return key

    def _healthy(self, key: str) -> bool:
        phi = self._cards.get(key)
        if phi is None:
            return False
        return not getattr(phi, "failed", False) and not getattr(phi, "link_down", False) \
            and getattr(phi, "os", None) is not None

    def partner_candidates(self, home: str) -> List[str]:
        """Healthy partner keys for ``home``, in round-robin rotation order."""
        n = len(self._order)
        if n == 0:
            return []
        start = self._cursor % n
        rotation = self._order[start:] + self._order[:start]
        return [k for k in rotation if k != home and self._healthy(k)]

    def choose_partner(self, home: str) -> Optional[str]:
        """Next round-robin partner for ``home`` (advances the cursor)."""
        candidates = self.partner_candidates(home)
        if not candidates:
            return None
        self._cursor += 1
        return candidates[0]

    # -- accounting helpers ----------------------------------------------------
    def _mem_of(self, key: str):
        phi = self._cards.get(key)
        return getattr(phi, "memory", None) if phi is not None else None

    def _charge(self, key: str, nbytes: int) -> None:
        mem = self._mem_of(key)
        if mem is not None:
            mem.allocate(nbytes, TIER_CATEGORY)

    def _uncharge(self, key: str, nbytes: int) -> None:
        mem = self._mem_of(key)
        if mem is not None and mem.by_category.get(TIER_CATEGORY, 0) >= nbytes:
            mem.free(nbytes, TIER_CATEGORY)

    def _drop_copy(self, copy: TierCopy, *, reason: str) -> None:
        """Retire a copy: free its pool bytes and mark why it went away."""
        if not copy.intact:
            return
        self._uncharge(copy.home, copy.nbytes)
        if reason == "torn":
            copy.torn = True
        elif reason == "lost":
            copy.lost = True
        else:
            copy.released = True

    def resident_bytes(self) -> int:
        return sum(
            c.nbytes
            for entry in self.chains.values()
            for link in entry.links
            for c in link.copies
            if c.intact
        )

    def _bw_between(self, a: str, b: str) -> float:
        """Replication bandwidth between two cards (P2P PCIe; the fabric
        caps cross-node pairs)."""
        pa, pb = self._cards.get(a), self._cards.get(b)
        node_a = getattr(pa, "node", None)
        node_b = getattr(pb, "node", None)
        p2p = getattr(getattr(getattr(node_a, "params", None), "pcie", None), "p2p_bw", 1.2e9)
        if node_a is not None and node_a is node_b:
            return p2p
        net_bw = getattr(getattr(getattr(node_a, "params", None), "network", None),
                         "bandwidth", p2p)
        return min(p2p, net_bw)

    def _stream(self, src: str, dst: str, nbytes: int):
        """Sub-generator: move ``nbytes`` between two cards in chunks,
        raising :class:`TierError` the moment either end dies mid-copy."""
        bw = self._bw_between(src, dst)
        remaining = nbytes
        while remaining > 0:
            if not self._healthy(dst):
                raise TierError(f"partner {dst} died mid-replication")
            if not self._healthy(src):
                raise TierError(f"source {src} died mid-replication")
            chunk = min(remaining, BULK_CHUNK)
            yield self.sim.timeout(chunk / bw)
            remaining -= chunk

    # -- capture path ----------------------------------------------------------
    def store(self, os_instance: Any, path: str, image: DeltaImage, *, span: int = 0):
        """Sub-generator: place one captured image — local copy first (the
        commit point), then a partner replica, re-homing through the
        rotation when a partner dies mid-copy. Returns the placement dict
        the agent folds into its CAPTURE_COMPLETE reply.
        """
        phi = getattr(os_instance, "hw", None)
        if phi is None:
            raise TierError("memory tier store needs a card OS (no host captures)")
        home = self.key_for_phi(phi)
        entry = self.chains.get(path)
        if entry is None:
            entry = self.chains[path] = ChainEntry(snapshot_id=path)
        if len(entry.links) != image.epoch:
            raise TierError(
                f"{path}: storing epoch {image.epoch} but ledger holds "
                f"{len(entry.links)} link(s)"
            )

        link = TierLink(image=image)
        entry.links.append(link)
        nbytes = image.delta_bytes

        # Local copy: synchronous, charged to this card's memory. This is
        # the capture commit point — MemoryExhausted here fails the capture
        # cleanly before anything was promised.
        try:
            self._charge(home, nbytes)
        except MemoryExhausted:
            entry.links.pop()
            raise
        local = TierCopy(home=home, nbytes=nbytes, role="local")
        link.copies.append(local)
        link.committed = True
        self.m_stores.inc()
        self.m_delta_bytes.inc(nbytes)
        self.m_logical_bytes.inc(image.logical_bytes)
        self.sim.trace.emit("memtier.store", path=path, epoch=image.epoch,
                            home=home, bytes=nbytes, span=span)

        # Partner replica: walk the rotation until one copy lands whole.
        partner_key = None
        attempts = max(1, len(self._order))
        for _ in range(attempts):
            candidate = self.choose_partner(home)
            if candidate is None:
                break
            copy = TierCopy(home=candidate, nbytes=nbytes, role="partner")
            try:
                self._charge(candidate, nbytes)
            except MemoryExhausted:
                continue  # partner full: try the next card in rotation
            link.copies.append(copy)
            try:
                yield from self._stream(home, candidate, nbytes)
            except TierError:
                # Torn replica: never counted as surviving; re-home.
                self._drop_copy(copy, reason="torn")
                self.m_torn.inc()
                self.m_rehomes.inc()
                self.sim.trace.emit("memtier.torn", path=path, epoch=image.epoch,
                                    partner=candidate)
                continue
            link.replicated = True
            partner_key = candidate
            self.sim.trace.emit("memtier.replicated", path=path,
                                epoch=image.epoch, partner=candidate)
            break

        return {"partner": partner_key, "home": home,
                "delta_bytes": nbytes, "logical_bytes": image.logical_bytes}

    # -- restore path ----------------------------------------------------------
    def lookup(self, path: str) -> Optional[ChainEntry]:
        return self.chains.get(path)

    def _refresh_losses(self, entry: ChainEntry) -> None:
        """Copies homed on failed cards are gone — record the loss."""
        for link in entry.links:
            for copy in link.copies:
                if copy.intact and not self._healthy(copy.home):
                    phi = self._cards.get(copy.home)
                    if getattr(phi, "failed", False) or getattr(phi, "os", None) is None:
                        self._drop_copy(copy, reason="lost")

    def fetch(self, path: str, dest_os: Any):
        """Sub-generator: bring every chain link to ``dest_os``'s card.

        Returns ``(images, sources)`` where each source is ``"local"`` or
        ``"partner"``; returns ``(None, None)`` when at least one link has
        no intact memory copy and the chain was demoted (the caller falls
        back to the NFS chain file). Raises :class:`TierError` when a link
        is gone and there is no NFS fallback.
        """
        entry = self.chains.get(path)
        if entry is None:
            raise TierError(f"{path}: not in the memory tier")
        dest_phi = getattr(dest_os, "hw", None)
        dest_key = self.key_for_phi(dest_phi) if dest_phi is not None else None
        self._refresh_losses(entry)
        images: List[DeltaImage] = []
        sources: List[str] = []
        for link in entry.links:
            local = next((c for c in link.intact_copies() if c.home == dest_key), None)
            if local is not None:
                images.append(link.image)
                sources.append("local")
                self.m_hits["local"].inc()
                continue
            remote = next(
                (c for c in link.intact_copies() if self._healthy(c.home)), None
            )
            if remote is not None:
                yield from self._stream(remote.home, dest_key or remote.home,
                                        link.image.delta_bytes)
                images.append(link.image)
                sources.append("partner")
                self.m_hits["partner"].inc()
                continue
            if entry.demoted:
                self.m_hits["nfs"].inc()
                return None, None
            raise TierError(
                f"{path}: epoch {link.image.epoch} has no surviving copy "
                "and the chain was never demoted"
            )
        self.sim.trace.emit("memtier.fetch", path=path, links=len(images),
                            sources=",".join(sources))
        return images, sources

    # -- demotion (the background NFS tier) ------------------------------------
    def demote(self, path: str, host_os: Any, *, release: bool = False):
        """Sub-generator: write the whole chain to the host NFS export.

        Runs off the capture critical path (a BACKGROUND fleet ticket).
        Respects NFS outages: a downed export raises :class:`TierError`
        and the chain simply stays memory-resident — demotion is insurance,
        never a dependency. With ``release`` the memory copies are freed
        once the chain file is durable.
        """
        entry = self.chains.get(path)
        if entry is None:
            raise TierError(f"{path}: nothing to demote")
        if not getattr(host_os.fs, "exported", True):
            self.m_demotion_failures.inc()
            raise TierError(f"{path}: NFS export down, demotion deferred")
        total = sum(link.image.delta_bytes for link in entry.links)
        chain_file = chain_path(path)
        if not host_os.fs.exists(chain_file):
            host_os.fs.create(chain_file)
        yield from host_os.fs.write(chain_file, total, payload=list(entry.images))
        entry.demoted = True
        self.m_demotions.inc()
        self.sim.trace.emit("memtier.demote", path=path, bytes=total,
                            links=len(entry.links))
        if release:
            for link in entry.links:
                for copy in link.copies:
                    self._drop_copy(copy, reason="released")
        return total

    def demote_with_retry(self, path: str, host_os: Any, *, release: bool = False,
                          retries: int = 3, backoff: float = 0.5):
        """Sub-generator: :meth:`demote`, retrying over transient NFS
        outages with linear backoff. Exhausted retries re-raise — the fleet
        ticket fails, the chain stays safely memory-resident."""
        last: Optional[TierError] = None
        for attempt in range(1, max(1, retries) + 1):
            try:
                total = yield from self.demote(path, host_os, release=release)
                return total
            except TierError as exc:
                last = exc
                if attempt <= retries:
                    yield self.sim.timeout(backoff * attempt)
        raise last  # noqa: B904 — the retry chain *is* the cause

    # -- health-driven re-homing -----------------------------------------------
    def rehome_from(self, bad_key: str):
        """Sub-generator: move every intact copy off a flagged card.

        Driven by health sweeps: copies on a dead card are recorded as lost
        (their replicas take over); copies on a merely *flagged* card are
        re-replicated to the next healthy partner, then released.
        Returns the number of copies moved.
        """
        moved = 0
        card_dead = not self._healthy(bad_key)
        for entry in self.chains.values():
            for link in entry.links:
                for copy in list(link.copies):
                    if not copy.intact or copy.home != bad_key:
                        continue
                    if card_dead:
                        self._drop_copy(copy, reason="lost")
                        continue
                    src = next(
                        (c for c in link.intact_copies()
                         if c.home != bad_key and self._healthy(c.home)),
                        copy,
                    )
                    target = self.choose_partner(bad_key)
                    if target is None or target == bad_key:
                        continue
                    new = TierCopy(home=target, nbytes=copy.nbytes, role=copy.role)
                    try:
                        self._charge(target, new.nbytes)
                    except MemoryExhausted:
                        continue
                    link.copies.append(new)
                    try:
                        yield from self._stream(src.home, target, new.nbytes)
                    except TierError:
                        self._drop_copy(new, reason="torn")
                        self.m_torn.inc()
                        continue
                    if new.role == "partner":
                        link.replicated = True
                    self._drop_copy(copy, reason="released")
                    self.m_rehomes.inc()
                    moved += 1
                    self.sim.trace.emit("memtier.rehome", path=entry.snapshot_id,
                                        epoch=link.image.epoch,
                                        source=bad_key, target=target)
        return moved

    def describe(self) -> Dict[str, Any]:
        """JSON-safe tier snapshot (CLI, repro artifacts)."""
        return {
            "chains": len(self.chains),
            "resident_bytes": self.resident_bytes(),
            "cards": list(self._order),
            "entries": {
                path: {
                    "links": len(e.links),
                    "demoted": e.demoted,
                    "copies": [
                        {"home": c.home, "role": c.role, "bytes": c.nbytes,
                         "torn": c.torn, "lost": c.lost, "released": c.released}
                        for link in e.links for c in link.copies
                    ],
                }
                for path, e in sorted(self.chains.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MemoryTier chains={len(self.chains)} "
                f"resident={self.resident_bytes()}B cards={len(self._order)}>")


def chain_path(snapshot_path: str) -> str:
    """Host file the demoted chain lands in (next to context/localstore)."""
    return f"{snapshot_path}/chain"
