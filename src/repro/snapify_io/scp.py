"""scp between the card and the host: the slowest Table 3 baseline.

scp over the PCIe virtual ethernet is a single ssh stream whose throughput
is bounded by one slow in-order Phi core doing encryption and MAC — tens of
MB/s against multi-GB/s RDMA, hence the paper's 22-30x gap at 1 GB.
"""

from __future__ import annotations

from ..hw.params import ScpParams
from ..osim.process import OSInstance


def scp_copy(
    src_os: OSInstance,
    dst_os: OSInstance,
    src_path: str,
    dst_path: str,
    params: ScpParams,
):
    """Sub-generator: copy ``src_path`` on ``src_os`` to ``dst_path`` on
    ``dst_os``. Charges connection setup, the encrypted stream, and the
    destination write (page cache / RAM-FS)."""
    f = src_os.fs.stat(src_path)
    sim = src_os.sim
    yield sim.timeout(params.connection_setup + params.per_file_overhead)
    yield sim.timeout(f.size / params.bandwidth)
    yield from dst_os.fs.write(dst_path, f.size, payload=f.payload)
