"""scp between the card and the host: the slowest Table 3 baseline.

scp over the PCIe virtual ethernet is a single ssh stream whose throughput
is bounded by one slow in-order Phi core doing encryption and MAC — tens of
MB/s against multi-GB/s RDMA, hence the paper's 22-30x gap at 1 GB.

The stream is routed through the PCIe link model in DMA-sized chunks: the
cipher paces the transfer (the link is idle between packets of a ~48 MB/s
stream), but every byte still crosses the wire, so scp traffic contends
with concurrent RDMA for link occupancy and shows up in the link byte
counters — the paper's Table-3-under-load comparison depends on that.
"""

from __future__ import annotations

from ..hw.params import ScpParams
from ..osim.process import OSInstance
from ..osim.sockets import SocketError
from ..scif.endpoint import _segments

_CHUNK = 4 * 1024 * 1024


def scp_copy(
    src_os: OSInstance,
    dst_os: OSInstance,
    src_path: str,
    dst_path: str,
    params: ScpParams,
):
    """Sub-generator: copy ``src_path`` on ``src_os`` to ``dst_path`` on
    ``dst_os``. Charges connection setup, the encrypted stream (routed over
    the PCIe link(s) between the two nodes), and the destination write
    (page cache / RAM-FS)."""
    for os_ in (src_os, dst_os):
        if getattr(getattr(os_, "hw", None), "link_down", False):
            raise SocketError(f"scp: network unreachable ({os_.name}: link down)")
    f = src_os.fs.stat(src_path)
    sim = src_os.sim
    segments = _segments(src_os, dst_os)
    yield sim.timeout(params.connection_setup + params.per_file_overhead)
    remaining = f.size
    while remaining > 0:
        chunk = min(remaining, _CHUNK)
        t0 = sim.now
        for link, direction in segments:
            yield from link.message(direction, chunk)
        # The cipher core is the bottleneck: pad each chunk up to the
        # single-stream ssh rate. Under link contention the wire time can
        # exceed the cipher pace — then the link is what we wait for.
        pace = chunk / params.bandwidth - (sim.now - t0)
        if pace > 0:
            yield sim.timeout(pace)
        remaining -= chunk
    yield from dst_os.fs.write(dst_path, f.size, payload=f.payload)
