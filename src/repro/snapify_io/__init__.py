"""Snapify-IO: RDMA-based remote file access, plus the NFS/scp baselines."""

from .daemon import (
    ABORT_MARKER,
    COMMITTED,
    EOF_MARKER,
    SOCKET_ADDR,
    SnapifyIODaemon,
    SnapifyIOError,
    TransferTimeout,
    resume_digest,
)
from .library import SnapifyIOFile, snapifyio_open
from .nfs import NFSKernelBufferedFD, NFSMount, NFSUserBufferedFD
from .resilience import (
    ChannelUnavailable,
    RetryPolicy,
    TransferFailed,
    TransferManager,
    TransferOutcome,
)
from .scp import scp_copy

__all__ = [
    "ABORT_MARKER",
    "COMMITTED",
    "ChannelUnavailable",
    "EOF_MARKER",
    "NFSKernelBufferedFD",
    "NFSMount",
    "NFSUserBufferedFD",
    "RetryPolicy",
    "SOCKET_ADDR",
    "SnapifyIODaemon",
    "SnapifyIOError",
    "SnapifyIOFile",
    "TransferFailed",
    "TransferManager",
    "TransferOutcome",
    "TransferTimeout",
    "resume_digest",
    "scp_copy",
    "snapifyio_open",
]
