"""Snapify-IO: RDMA-based remote file access, plus the NFS/scp baselines."""

from .daemon import (
    ABORT_MARKER,
    COMMITTED,
    EOF_MARKER,
    SOCKET_ADDR,
    SnapifyIODaemon,
    SnapifyIOError,
    TransferTimeout,
    resume_digest,
)
from .library import SnapifyIOFile, snapifyio_open
from .memtier import (
    TIER_CATEGORY,
    ChainEntry,
    MemoryTier,
    TierCopy,
    TierError,
    TierLink,
    chain_path,
)
from .nfs import NFSKernelBufferedFD, NFSMount, NFSUserBufferedFD
from .resilience import (
    ChannelUnavailable,
    RetryPolicy,
    TransferFailed,
    TransferManager,
    TransferOutcome,
)
from .scp import scp_copy

__all__ = [
    "ABORT_MARKER",
    "COMMITTED",
    "ChainEntry",
    "ChannelUnavailable",
    "EOF_MARKER",
    "MemoryTier",
    "NFSKernelBufferedFD",
    "NFSMount",
    "NFSUserBufferedFD",
    "RetryPolicy",
    "SOCKET_ADDR",
    "SnapifyIODaemon",
    "SnapifyIOError",
    "SnapifyIOFile",
    "TIER_CATEGORY",
    "TierCopy",
    "TierError",
    "TierLink",
    "TransferFailed",
    "TransferManager",
    "TransferOutcome",
    "TransferTimeout",
    "chain_path",
    "resume_digest",
    "scp_copy",
    "snapifyio_open",
]
