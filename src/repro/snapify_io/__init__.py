"""Snapify-IO: RDMA-based remote file access, plus the NFS/scp baselines."""

from .daemon import COMMITTED, EOF_MARKER, SOCKET_ADDR, SnapifyIODaemon, SnapifyIOError
from .library import SnapifyIOFile, snapifyio_open
from .nfs import NFSKernelBufferedFD, NFSMount, NFSUserBufferedFD
from .scp import scp_copy

__all__ = [
    "COMMITTED",
    "EOF_MARKER",
    "NFSKernelBufferedFD",
    "NFSMount",
    "NFSUserBufferedFD",
    "SOCKET_ADDR",
    "SnapifyIODaemon",
    "SnapifyIOError",
    "SnapifyIOFile",
    "scp_copy",
    "snapifyio_open",
]
