"""The Snapify-IO daemon (§6).

One daemon runs on every SCIF node (the host and each coprocessor). Each
daemon has:

* a *local server thread* accepting UNIX-socket connections from processes
  using the Snapify-IO library; each connection gets a *local handler*;
* a *remote server thread* accepting SCIF connections from peer daemons;
  each connection gets a *remote handler*.

Data moves through one registered RDMA staging buffer per connection
(4 MB by default — the paper's balance between card-memory footprint and
transfer latency). In write mode the local handler copies socket data into
the buffer and the remote handler pulls it with ``scif_vreadfrom`` and
appends it to the target file (host-side file writes land in the page cache
and are flushed asynchronously — why card-to-host writes outrun reads). In
read mode the flow reverses.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional

from ..hw.node import ServerNode
from ..hw.params import SnapifyIOParams
from ..obs.registry import MetricsRegistry
from ..osim.process import OSInstance, SimProcess
from ..osim.sockets import SocketError, UnixSocket
from ..scif.endpoint import ConnectionReset, ScifEndpoint, ScifError, ScifNetwork
from ..scif.ports import SNAPIFY_IO_PORT
from ..scif.registry import scif_register
from ..scif.rdma import scif_vreadfrom, scif_vwriteto
from ..sim.channel import ChannelClosed
from ..sim.errors import Interrupted, SimError


class SnapifyIOError(SimError):
    """Snapify-IO protocol failure."""


class TransferTimeout(SnapifyIOError):
    """A peer reply did not arrive within ``SnapifyIOParams.reply_timeout``."""


def resume_digest(path: str, offset: int) -> int:
    """Checksum token of a durable file prefix, for the resume handshake.

    Stands in for a content checksum: both daemons derive it from what they
    believe the durable prefix is; a mismatch means the writer and the
    remote ledger disagree and the transfer must abort loudly rather than
    resume onto a corrupt base.
    """
    return zlib.crc32(f"{path}:{offset}".encode())


#: UNIX socket address the library connects to on every node.
SOCKET_ADDR = "/var/run/snapify-io.sock"


class _Sentinel:
    def __init__(self, tag: str):
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.tag}>"


#: Client -> daemon: orderly end-of-stream (written by ``finish()``).
EOF_MARKER = _Sentinel("snapify-io-eof")
#: Client -> daemon: the stream is abandoned — never commit it.
ABORT_MARKER = _Sentinel("snapify-io-abort")
#: Daemon -> client: the remote file is fully committed.
COMMITTED = _Sentinel("snapify-io-committed")


class SnapifyIODaemon:
    """One per SCIF node."""

    def __init__(self, os: OSInstance, params: SnapifyIOParams):
        self.os = os
        self.sim = os.sim
        self.params = params
        self.proc: Optional[SimProcess] = None
        node = os.hw if isinstance(os.hw, ServerNode) else os.hw.node  # type: ignore[attr-defined]
        self.node: ServerNode = node
        self.net = ScifNetwork.of(node)
        self.connections_served = 0
        #: path -> bytes durably applied of the stream in flight (or left
        #: behind by an interrupted one); the base a resume starts from.
        self._partials: Dict[str, int] = {}
        #: path -> total bytes at commit time. A path appears here only
        #: after an orderly EOF whose byte count matched the writer's
        #: declaration — the `no_truncated_commits` oracle audits it.
        self.commits: Dict[str, int] = {}
        reg = MetricsRegistry.of(self.sim)
        self.m_conns = reg.counter(f"snapifyio.{os.name}.connections")
        self.m_bytes = reg.counter(f"snapifyio.{os.name}.bytes_staged")

    # -- boot ------------------------------------------------------------------
    @staticmethod
    def boot(os: OSInstance, params: Optional[SnapifyIOParams] = None):
        """Sub-generator: start the daemon on ``os``; returns the daemon."""
        node = os.hw if isinstance(os.hw, ServerNode) else os.hw.node  # type: ignore[attr-defined]
        daemon = SnapifyIODaemon(os, params or node.params.snapify_io)
        proc = yield from os.spawn_process(
            "snapify-io-daemon", image_size=4 * 1024 * 1024,
            main_factory=daemon._main_factory(), start=True,
        )
        daemon.proc = proc
        if proc.main_thread is not None:
            proc.main_thread.daemon = True  # service threads only
        os.snapify_io_daemon = daemon  # type: ignore[attr-defined]
        return daemon

    @staticmethod
    def of(os: OSInstance) -> "SnapifyIODaemon":
        daemon = getattr(os, "snapify_io_daemon", None)
        if daemon is None:
            raise SnapifyIOError(f"{os.name}: Snapify-IO daemon not running")
        return daemon

    @staticmethod
    def boot_all(node: ServerNode):
        """Sub-generator: boot daemons on the host and every card of a node."""
        daemons = []
        d = yield from SnapifyIODaemon.boot(node.os)
        daemons.append(d)
        for phi in node.phis:
            d = yield from SnapifyIODaemon.boot(phi.os)
            daemons.append(d)
        return daemons

    def _main_factory(self):
        def main(proc: SimProcess):
            local_listener = self.os.sockets.listen(SOCKET_ADDR)
            remote_listener = self.net.listen(self.os, SNAPIFY_IO_PORT)
            proc.open_fds.append(local_listener)   # released if we die
            proc.open_fds.append(remote_listener)
            proc.spawn_thread(self._local_server(local_listener), name="local-srv", daemon=True)
            proc.spawn_thread(self._remote_server(remote_listener), name="remote-srv", daemon=True)
            return
            yield  # pragma: no cover

        return main

    # -- server threads -----------------------------------------------------------
    def _local_server(self, listener):
        while True:
            sock = yield listener.accept()
            self.proc.open_fds.append(sock)
            self.proc.spawn_thread(self._local_handler(sock), name="local-hdl", daemon=True)

    def _remote_server(self, listener):
        while True:
            ep = yield listener.accept()
            self.proc.open_fds.append(ep)
            self.proc.spawn_thread(self._remote_handler(ep), name="remote-hdl", daemon=True)

    # -- local handler: user process <-> this daemon <-> remote daemon ---------------
    def _local_handler(self, sock: UnixSocket):
        self.connections_served += 1
        self.m_conns.inc()
        header = yield from sock.read()
        if not isinstance(header, dict) or "path" not in header:
            raise SnapifyIOError(f"bad open header: {header!r}")
        node_id, path, mode = header["node"], header["path"], header["mode"]
        resume = bool(header.get("resume"))
        sp = self.sim.trace.span("snapifyio.local", parent=header.get("span", 0),
                                 node=node_id, path=path, mode=mode,
                                 proc=self.proc.name)
        try:
            ep = yield from self.net.connect(self.os, node_id, SNAPIFY_IO_PORT,
                                             proc=self.proc)
        except (ScifError, ChannelClosed) as exc:
            # Peer daemon gone or link down between the client's fail-fast
            # probe and our connect (a torn-down listener surfaces as
            # ChannelClosed, not ScifError): close the socket so the client
            # sees the failure instead of hanging on the handshake.
            self.sim.trace.emit("io.connect_failed", node=node_id, path=path,
                                error=str(exc))
            sock.close()
            sp.finish()
            return
        try:
            yield from ep.send({"path": path, "mode": mode,
                                "span": header.get("span", 0),
                                "resume": resume})
            # Register the staging buffer for RDMA and tell the peer.
            offset = yield from scif_register(ep, self.params.buffer_size)
            yield from ep.send({"offset": offset})
            base = 0
            if mode == "w" and resume:
                # Relay the remote's resume handshake to the client, which
                # verifies the digest and skips the durable prefix.
                info = yield from self._recv_reply(ep)
                base = info.get("offset", 0)
                yield from sock.write(1, record=info)
            if mode == "w":
                yield from self._local_write_loop(sock, ep, base=base)
            else:
                yield from self._local_read_loop(sock, ep)
        except (ConnectionReset, SocketError, TransferTimeout, ChannelClosed):
            # Peer daemon or client vanished (or timed out) mid-stream; the
            # teardown below resets the connection and frees the staging
            # buffer — the client or TransferManager decides what's next.
            pass
        finally:
            ep.close()
            sock.close()
            sp.finish()

    def _recv_reply(self, ep: ScifEndpoint):
        """Sub-generator: one peer reply, bounded by ``reply_timeout``.

        With the default ``reply_timeout=None`` this is exactly one bare
        ``ep.recv()`` — no extra events, preserving the golden trace.
        """
        ev = ep.recv()
        t = self.params.reply_timeout
        if t is None:
            return (yield ev)
        idx, first = yield self.sim.any_of([ev, self.sim.timeout(t)])
        if idx == 0:
            return first._value
        raise TransferTimeout(
            f"{self.os.name}: no peer reply within {t}s (hung transfer)"
        )

    def _local_write_loop(self, sock: UnixSocket, ep: ScifEndpoint, base: int = 0):
        """Socket -> staging buffer -> (remote pulls via RDMA) -> remote file."""
        filled = 0
        total = base
        records: List[Any] = []

        def flush():
            nonlocal filled, records
            if filled == 0:
                return
            yield from ep.send({"type": "chunk", "n": filled, "records": records})
            ack = yield from self._recv_reply(ep)  # remote finished the RDMA pull
            if not (isinstance(ack, dict) and ack.get("type") == "ack"):
                raise SnapifyIOError(f"bad chunk ack: {ack!r}")
            filled, records = 0, []

        while True:
            nbytes, record = yield from sock.read_datagram()
            if record is ABORT_MARKER or (nbytes == 0 and record is None):
                # Abandoned stream: the client aborted explicitly, or died
                # holding the descriptor (raw socket EOF). Flush what was
                # staged — the partial stays resumable — but tell the remote
                # to *never* commit it. The old code treated raw EOF as an
                # orderly end-of-stream and committed truncated files.
                yield from flush()
                yield from ep.send({"type": "abort"})
                return
            if record is not EOF_MARKER:
                if filled + nbytes > self.params.buffer_size:
                    yield from flush()
                # Copy from the socket into the staging buffer.
                yield self.sim.timeout(nbytes / self.os.sockets.default_bandwidth)
                self.m_bytes.inc(nbytes)
                filled += nbytes
                total += nbytes
                if record is not None:
                    records.append(record)
                if filled >= self.params.buffer_size:
                    yield from flush()
                continue
            yield from flush()
            # Declare the byte total so the remote can refuse a short stream.
            yield from ep.send({"type": "eof", "total": total})
            done = yield from self._recv_reply(ep)  # remote committed the file
            ok = not isinstance(done, dict) or done.get("ok", True)
            if not sock.closed:
                if ok:
                    # Orderly finish(): confirm durability to the user.
                    yield from sock.write(1, record=COMMITTED)
                else:
                    yield from sock.write(
                        1, record={"error": done.get("reason", "commit refused")}
                    )
            return

    def _local_read_loop(self, sock: UnixSocket, ep: ScifEndpoint):
        """Remote file -> (remote pushes via RDMA) -> staging buffer -> socket."""
        while True:
            try:
                msg = yield ep.recv()
            except ConnectionReset:
                return
            if msg["type"] == "eof":
                sock.close()  # EOF to the user
                return
            if msg["type"] != "chunk":
                raise SnapifyIOError(f"bad read message: {msg!r}")
            try:
                # Copy staging buffer -> socket; the record batch rides along.
                yield from sock.write(msg["n"], record=msg["records"])
                self.m_bytes.inc(msg["n"])
            except Exception:
                return  # user closed early
            # Only now is the staging buffer reusable: read mode cannot
            # overlap the socket drain with the next RDMA fill.
            yield from ep.send({"type": "ack"})

    # -- remote handler: peer daemon <-> this node's file system ----------------------
    def _remote_handler(self, ep: ScifEndpoint):
        try:
            header = yield ep.recv()
            offset_msg = yield ep.recv()
        except (ConnectionReset, Interrupted):
            ep.close()  # half-open connection: don't leak the endpoint
            return
        path, mode = header["path"], header["mode"]
        peer_offset = offset_msg["offset"]
        sp = self.sim.trace.span("snapifyio.remote", parent=header.get("span", 0),
                                 path=path, mode=mode, proc=self.proc.name)
        try:
            if mode == "w":
                yield from self._remote_write(ep, path, peer_offset,
                                              resume=bool(header.get("resume")))
            else:
                yield from self._remote_read(ep, path, peer_offset)
        finally:
            # The remote end always tears its endpoint down; before this,
            # a reset connection leaked the endpoint (and any windows).
            ep.close()
            sp.finish()

    def _remote_write(self, ep: ScifEndpoint, path: str, peer_offset: int,
                      resume: bool = False):
        if resume:
            base = 0
            if self.os.fs.exists(path):
                # Resume from the last durably-applied boundary. The ledger
                # survives handler death; if the daemon itself was restarted
                # the file size is the durable truth.
                base = self._partials.get(path, self.os.fs.stat(path).size)
            self.commits.pop(path, None)
            self._partials[path] = base
            yield from ep.send({"type": "resume", "offset": base,
                                "digest": resume_digest(path, base)})
        else:
            self.os.fs.create(path)  # O_TRUNC: a fresh stream voids any commit
            self.commits.pop(path, None)
            self._partials[path] = 0
        records: List[Any] = []
        while True:
            try:
                msg = yield from self._recv_reply(ep)
            except (ConnectionReset, Interrupted, TransferTimeout):
                return  # writer vanished/hung; keep the partial for a future resume
            if msg["type"] == "abort":
                return  # stream abandoned: keep the partial, never commit
            if msg["type"] == "eof":
                applied = self._partials.get(path, 0)
                total = msg.get("total", applied)
                if applied != total:
                    # Never commit a truncated (or overlong) stream.
                    yield from ep.send({
                        "type": "done", "ok": False,
                        "reason": f"short stream: applied {applied} of {total} bytes",
                    })
                    return
                if records:
                    self.os.fs.stat(path).payload = list(records)
                self.commits[path] = applied
                yield from ep.send({"type": "done", "ok": True})
                return
            # Pull the staged chunk out of the peer's registered buffer.
            try:
                yield from scif_vreadfrom(ep, peer_offset, msg["n"])
            except ScifError:
                return  # peer reset mid-pull; partial stays resumable
            records.extend(msg["records"])
            if self.params.async_flush:
                # Ack as soon as the staging buffer is free: the file write
                # below overlaps the peer's next fill — the asynchronous
                # flush that makes card->host writes outrun reads (§7).
                yield from ep.send({"type": "ack"})
                yield from self.os.fs.write(path, msg["n"])
            else:
                # Ablation: write before releasing the buffer.
                yield from self.os.fs.write(path, msg["n"])
                yield from ep.send({"type": "ack"})
            self._partials[path] = self._partials.get(path, 0) + msg["n"]

    def _remote_read(self, ep: ScifEndpoint, path: str, peer_offset: int):
        if not self.os.fs.exists(path):
            yield from ep.send({"type": "eof"})
            return
        f = self.os.fs.stat(path)
        records = list(f.payload) if isinstance(f.payload, list) else (
            [f.payload] if f.payload is not None else []
        )
        remaining = f.size
        first = True
        while remaining > 0:
            chunk = min(remaining, self.params.buffer_size)
            # Read from the local file (page-cache aware), then push into the
            # peer's staging buffer.
            yield from self.os.fs.read(path, chunk)
            yield from scif_vwriteto(ep, peer_offset, chunk)
            # The record stream rides with the first chunk; the client FD
            # hands records out one per read, preserving order.
            chunk_records = records if first else []
            first = False
            try:
                yield from ep.send({"type": "chunk", "n": chunk, "records": chunk_records})
                yield ep.recv()  # ack
            except ConnectionReset:
                return
            remaining -= chunk
        try:
            yield from ep.send({"type": "eof"})
        except ConnectionReset:
            pass
