"""The Snapify-IO client library.

``snapifyio_open(os, node, path, mode)`` is the library's single API call:
it connects to the local Snapify-IO daemon over a UNIX socket and returns a
standard :class:`~repro.osim.fd.FileDescriptor` representing a file on a
remote SCIF node — which can be handed directly to BLCR, exactly as in the
paper ("the file descriptor created by Snapify-IO can be directly passed to
BLCR for saving and retrieving snapshots").

Resilience (see ``docs/architecture.md``, "Transfer resilience"): the open
validates the target node *before* touching the daemon so a bad or failed
node fails fast instead of hanging in the handshake; ``resume=True`` runs
the offset/checksum handshake and re-streams only the bytes past the last
durable boundary; closing an unfinished write-mode descriptor sends an
ABORT marker so the remote never commits the truncated stream.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from ..obs.registry import MetricsRegistry
from ..osim.fd import FDError, FileDescriptor
from ..osim.process import OSInstance, SimProcess
from ..osim.sockets import SocketError, UnixSocket
from ..scif.endpoint import ScifNetwork
from ..scif.ports import SNAPIFY_IO_PORT
from .daemon import (
    ABORT_MARKER,
    COMMITTED,
    EOF_MARKER,
    SOCKET_ADDR,
    SnapifyIODaemon,
    SnapifyIOError,
    resume_digest,
)

if TYPE_CHECKING:  # pragma: no cover
    pass


class SnapifyIOFile(FileDescriptor):
    """Descriptor over a remote file, streamed through the daemons.

    Write mode: chunks larger than the daemon's staging buffer are split.
    Call :meth:`finish` (sub-generator) to flush and confirm durability
    before relying on the remote file. Read mode: records arrive in order,
    one per ``read`` call.
    """

    def __init__(self, os: OSInstance, sock: UnixSocket, mode: str, buffer_size: int,
                 path: str = ""):
        super().__init__(os.sim, name=f"snapify-io:{mode}")
        self.os = os
        self.sock = sock
        self.mode = mode
        self.path = path
        self.buffer_size = buffer_size
        self._records: Deque[Any] = deque()
        self._eof = False
        self.finished = False
        #: Bytes of the stream already durable remotely (resume handshake):
        #: the writer replays them, the descriptor skips them silently.
        self._skip = 0

    # -- write path ----------------------------------------------------------
    def write(self, nbytes: int, record: Any = None):
        self._check_open()
        if self.mode != "w":
            raise FDError(f"{self.name}: write on read-mode descriptor")
        remaining = nbytes
        if self._skip:
            skipped = min(self._skip, remaining)
            self._skip -= skipped
            remaining -= skipped
            if remaining == 0:
                # Chunk entirely inside the durable prefix: re-deliver only
                # its record (zero wire bytes). An empty record-less
                # datagram is never sent — the daemon would read it as EOF.
                if record is not None:
                    yield from self.sock.write(0, record=record)
                self.bytes_written += nbytes
                return
        first = True
        while remaining > 0 or first:
            chunk = min(remaining, self.buffer_size) if remaining else 0
            yield from self.sock.write(chunk, record=record if first else None)
            remaining -= chunk
            first = False
        self.bytes_written += nbytes

    def finish(self):
        """Sub-generator: flush, wait for remote commit, and close."""
        self._check_open()
        if self.mode != "w":
            raise FDError(f"{self.name}: finish on read-mode descriptor")
        yield from self.sock.write(1, record=EOF_MARKER)
        reply = yield from self.sock.read()
        if reply is not COMMITTED:
            raise SnapifyIOError(f"expected commit confirmation, got {reply!r}")
        self.finished = True
        self.close()

    # -- read path -------------------------------------------------------------
    def read(self, nbytes: int):
        self._check_open()
        if self.mode != "r":
            raise FDError(f"{self.name}: read on write-mode descriptor")
        while not self._records and not self._eof:
            n, batch = yield from self.sock.read_datagram()
            if n == 0 and batch is None:
                self._eof = True
                break
            self.bytes_read += n
            if isinstance(batch, list):
                self._records.extend(batch)
        if self._records:
            return self._records.popleft()
        return None

    def close(self) -> None:
        if self.closed:
            return
        aborting = self.mode == "w" and not self.finished
        if aborting:
            # The stream is being abandoned (explicit close, or process exit
            # closing registered FDs). Silently dropping it used to leave
            # the daemons believing the stream simply ended; now we record
            # the abort and best-effort notify the daemon so the remote
            # never commits the truncated stream.
            self.sim.trace.emit("io.abort", path=self.path, mode=self.mode,
                                bytes=self.bytes_written)
            MetricsRegistry.of(self.sim).counter("snapifyio.aborts").inc()
        super().close()
        if aborting and not self.sock.closed:
            # The abort marker is sent from a detached thread (close() must
            # stay synchronous — it runs from process teardown); the socket
            # is closed behind it.
            self.sim.spawn(self._send_abort(), name="snapifyio-abort",
                           daemon=True)
        else:
            self.sock.close()

    def _send_abort(self):
        try:
            yield from self.sock.write(1, record=ABORT_MARKER)
        except (SocketError, FDError):
            pass  # daemon already gone; its socket EOF handling aborts too
        finally:
            self.sock.close()


def snapifyio_open(
    os: OSInstance,
    node: int,
    path: str,
    mode: str,
    proc: Optional[SimProcess] = None,
    span: int = 0,
    resume: bool = False,
):
    """Sub-generator: open ``path`` on SCIF node ``node``; returns the FD.

    ``mode`` is ``"r"`` or ``"w"`` (never both, as in the paper). ``node``
    uses SCIF numbering: 0 is the host, 1.. are coprocessors. ``span`` is
    the caller's span id; the daemons parent their transfer spans on it so
    the double-daemon pipeline joins the caller's causal tree.

    ``resume=True`` (write mode only) asks the remote daemon for the last
    durable byte offset of ``path`` plus a checksum token; the descriptor
    then skips the durable prefix as the caller re-streams the file. A
    checksum mismatch aborts loudly — resuming onto a corrupt base would
    commit garbage.
    """
    if mode not in ("r", "w"):
        raise SnapifyIOError(f"mode must be 'r' or 'w', got {mode!r}")
    if resume and mode != "w":
        raise SnapifyIOError("resume is only meaningful in write mode")
    daemon = SnapifyIODaemon.of(os)
    # Fail fast on an unreachable target instead of hanging in the daemon
    # handshake: bad node id, dead card, or no peer daemon listening. The
    # explicit bounds check matters: a negative id would otherwise wrap
    # through Python list indexing and target the wrong card.
    if node != 0:
        if not 1 <= node <= len(daemon.node.phis):
            raise SnapifyIOError(
                f"{os.name}: no SCIF node {node} "
                f"(valid: 0..{len(daemon.node.phis)})"
            )
        if getattr(daemon.node.phis[node - 1], "failed", False):
            raise SnapifyIOError(f"{os.name}: SCIF node {node} has failed")
    net = ScifNetwork.of(daemon.node)
    if not net.has_listener(node, SNAPIFY_IO_PORT):
        raise SnapifyIOError(
            f"{os.name}: no Snapify-IO daemon listening on SCIF node {node}"
        )
    yield os.sim.timeout(daemon.params.connect_latency)
    sock = yield from os.sockets.connect(SOCKET_ADDR)
    yield from sock.write(64, record={"node": node, "path": path, "mode": mode,
                                      "span": span, "resume": resume})
    fd = SnapifyIOFile(os, sock, mode, daemon.params.buffer_size, path=path)
    if resume:
        info = yield from sock.read()
        if not (isinstance(info, dict) and info.get("type") == "resume"):
            fd.close()
            raise SnapifyIOError(f"bad resume handshake: {info!r}")
        offset = info.get("offset", 0)
        if info.get("digest") != resume_digest(path, offset):
            fd.close()
            raise SnapifyIOError(
                f"{path}: resume checksum mismatch at offset {offset} — "
                "refusing to resume onto a corrupt base"
            )
        fd._skip = offset
    if proc is not None:
        proc.register_fd(fd)
    return fd
