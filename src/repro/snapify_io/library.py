"""The Snapify-IO client library.

``snapifyio_open(os, node, path, mode)`` is the library's single API call:
it connects to the local Snapify-IO daemon over a UNIX socket and returns a
standard :class:`~repro.osim.fd.FileDescriptor` representing a file on a
remote SCIF node — which can be handed directly to BLCR, exactly as in the
paper ("the file descriptor created by Snapify-IO can be directly passed to
BLCR for saving and retrieving snapshots").
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from ..osim.fd import FDError, FileDescriptor
from ..osim.process import OSInstance, SimProcess
from ..osim.sockets import UnixSocket
from .daemon import COMMITTED, EOF_MARKER, SOCKET_ADDR, SnapifyIODaemon, SnapifyIOError

if TYPE_CHECKING:  # pragma: no cover
    pass


class SnapifyIOFile(FileDescriptor):
    """Descriptor over a remote file, streamed through the daemons.

    Write mode: chunks larger than the daemon's staging buffer are split.
    Call :meth:`finish` (sub-generator) to flush and confirm durability
    before relying on the remote file. Read mode: records arrive in order,
    one per ``read`` call.
    """

    def __init__(self, os: OSInstance, sock: UnixSocket, mode: str, buffer_size: int):
        super().__init__(os.sim, name=f"snapify-io:{mode}")
        self.os = os
        self.sock = sock
        self.mode = mode
        self.buffer_size = buffer_size
        self._records: Deque[Any] = deque()
        self._eof = False
        self.finished = False

    # -- write path ----------------------------------------------------------
    def write(self, nbytes: int, record: Any = None):
        self._check_open()
        if self.mode != "w":
            raise FDError(f"{self.name}: write on read-mode descriptor")
        remaining = nbytes
        first = True
        while remaining > 0 or first:
            chunk = min(remaining, self.buffer_size) if remaining else 0
            yield from self.sock.write(chunk, record=record if first else None)
            remaining -= chunk
            first = False
        self.bytes_written += nbytes

    def finish(self):
        """Sub-generator: flush, wait for remote commit, and close."""
        self._check_open()
        if self.mode != "w":
            raise FDError(f"{self.name}: finish on read-mode descriptor")
        yield from self.sock.write(1, record=EOF_MARKER)
        reply = yield from self.sock.read()
        if reply is not COMMITTED:
            raise SnapifyIOError(f"expected commit confirmation, got {reply!r}")
        self.finished = True
        self.close()

    # -- read path -------------------------------------------------------------
    def read(self, nbytes: int):
        self._check_open()
        if self.mode != "r":
            raise FDError(f"{self.name}: read on write-mode descriptor")
        while not self._records and not self._eof:
            n, batch = yield from self.sock.read_datagram()
            if n == 0 and batch is None:
                self._eof = True
                break
            self.bytes_read += n
            if isinstance(batch, list):
                self._records.extend(batch)
        if self._records:
            return self._records.popleft()
        return None

    def close(self) -> None:
        if self.closed:
            return
        super().close()
        self.sock.close()


def snapifyio_open(
    os: OSInstance,
    node: int,
    path: str,
    mode: str,
    proc: Optional[SimProcess] = None,
    span: int = 0,
):
    """Sub-generator: open ``path`` on SCIF node ``node``; returns the FD.

    ``mode`` is ``"r"`` or ``"w"`` (never both, as in the paper). ``node``
    uses SCIF numbering: 0 is the host, 1.. are coprocessors. ``span`` is
    the caller's span id; the daemons parent their transfer spans on it so
    the double-daemon pipeline joins the caller's causal tree.
    """
    if mode not in ("r", "w"):
        raise SnapifyIOError(f"mode must be 'r' or 'w', got {mode!r}")
    daemon = SnapifyIODaemon.of(os)
    yield os.sim.timeout(daemon.params.connect_latency)
    sock = yield from os.sockets.connect(SOCKET_ADDR)
    yield from sock.write(64, record={"node": node, "path": path, "mode": mode,
                                      "span": span})
    fd = SnapifyIOFile(os, sock, mode, daemon.params.buffer_size)
    if proc is not None:
        proc.register_fd(fd)
    return fd
