"""A resilient runner: periodic checkpoints + automatic restart.

The downstream consumer the paper's conclusion imagines: wrap an offload
application in periodic Snapify checkpoints so injected coprocessor
failures cost only the work since the last snapshot. On a failure the
runner terminates the orphaned host process, picks a healthy card, and
restarts the whole application from the latest snapshot directory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..apps.offload import OffloadApplication
from ..snapify.api import snapify_t
from ..snapify.usecases import checkpoint_offload_app, restart_offload_app
from .faults import FaultInjector

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import XeonPhiServer


class ResilientRunner:
    """Runs one offload application to completion despite card failures."""

    def __init__(
        self,
        server: "XeonPhiServer",
        app: OffloadApplication,
        injector: FaultInjector,
        interval: float,
        snapshot_root: str = "/resilient",
        restart_from_scratch: bool = False,
        detection_latency: float = 0.05,
        max_recover_attempts: int = 3,
    ):
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        if detection_latency < 0:
            raise ValueError("detection latency must be non-negative")
        if max_recover_attempts < 1:
            raise ValueError("need at least one recovery attempt")
        self.server = server
        self.sim = server.sim
        self.app = app
        self.injector = injector
        self.interval = interval
        self.snapshot_root = snapshot_root
        #: Policy for a failure before the first checkpoint: relaunch the
        #: job from iteration zero (True) or raise (False).
        self.restart_from_scratch = restart_from_scratch
        #: Sim-seconds between a failure and the runner acting on it; also
        #: the back-off between recovery retries.
        self.detection_latency = detection_latency
        #: How many restart attempts one recovery makes before giving up
        #: (a second card can die mid-restart; each retry re-picks a
        #: healthy card, so a repaired card rescues a later attempt).
        self.max_recover_attempts = max_recover_attempts
        self.checkpoints_taken = 0
        self.restarts = 0
        self.latest_snapshot: Optional[str] = None
        self.events: List[tuple] = []
        #: Typed OperationResults of every checkpoint/restart the runner drove.
        self.op_results: List = []

    # -- helpers ----------------------------------------------------------------
    def _healthy_engine(self):
        for phi in self.server.node.phis:
            if not self.injector.is_failed(phi):
                return self.server.engine(phi.index)
        raise RuntimeError("no healthy coprocessor left")

    def _host_proc(self):
        return self.app.host_proc

    def _offload_alive(self) -> bool:
        handle = self._host_proc().runtime.get("coi_handle")
        return handle is not None and not handle.dead and handle.offload_proc.alive

    # -- main loop -----------------------------------------------------------------
    def run(self):
        """Sub-generator: drive the app to completion; returns its store."""
        if self.app.host_proc is None:
            yield from self.app.launch()
        while True:
            # Wait one interval (or until the app finishes first). The app
            # main thread may die mid-wait if its card fails under it —
            # that failure is recovered from, not propagated.
            done = self._host_proc().main_thread.done
            timer = self.sim.timeout(self.interval, "tick")
            try:
                yield self.sim.any_of([done, timer])
            except Exception:
                yield from self._recover()
                continue
            if done.triggered:
                break

            if not self._offload_alive() or not self._host_proc().alive:
                yield from self._recover()
                continue

            path = f"{self.snapshot_root}/ckpt{self.checkpoints_taken}"
            snap = snapify_t(snapshot_path=path,
                             coiproc=self._host_proc().runtime["coi_handle"])
            try:
                yield from checkpoint_offload_app(snap)
            except Exception:
                # The card died mid-checkpoint: recover from the previous one.
                yield from self._recover()
                continue
            self.checkpoints_taken += 1
            self.latest_snapshot = path
            if snap.op is not None and snap.op.result is not None:
                self.op_results.append(snap.op.result)
            self.events.append(("checkpoint", path, self.sim.now))

        return self._host_proc().store

    def _recover(self):
        if self.latest_snapshot is None and not self.restart_from_scratch:
            raise RuntimeError("failure before the first checkpoint: work lost")
        self.restarts += 1
        self.events.append(("failure", self.sim.now))
        attempts = 0
        while True:
            attempts += 1
            proc = self._host_proc()
            if proc is not None and proc.alive:
                proc.terminate(code=1)
            yield self.sim.timeout(self.detection_latency)
            try:
                if self.latest_snapshot is None:
                    # No checkpoint yet: rerun the whole job on a healthy card.
                    self.app.host_proc = None
                    self.app.device = self._healthy_engine().device_id
                    yield from self.app.launch()
                    self.events.append(("relaunch", self.sim.now))
                    return
                result = yield from restart_offload_app(
                    self.server.host_os, self.latest_snapshot, self._healthy_engine()
                )
            except Exception:
                # A second card died mid-restart (or no card was healthy
                # yet). Retry on whatever card is healthy after another
                # detection delay, up to the attempt budget.
                if attempts >= self.max_recover_attempts:
                    raise
                self.events.append(("recover_retry", self.sim.now))
                continue
            self.app.host_proc = result.host_proc
            if result.result is not None:
                self.op_results.append(result.result)
            self.events.append(("restart", self.latest_snapshot, self.sim.now))
            return
