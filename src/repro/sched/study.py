"""Useful-work throughput study: checkpoint/restart vs. replication vs. hybrid.

Checkpoint/restart and replication spend resources in opposite places:
C/R pays a periodic pause plus, on failure, a detection + restore
round-trip and the re-execution of everything since the last snapshot;
replication pays for R cards up front and rides out a failure with zero
interruption; the hybrid adds a re-seed (a MAINTENANCE-lane clone of a
healthy replica) so a degraded team regains redundancy instead of running
exposed. :func:`resilience_study` runs the *same* NAS-MZ-shaped job under
all three modes — clean and with an injected card failure — on one
``rack8`` fleet each, and reports useful-work throughput normalized by
cards occupied, the currency the operator actually budgets in.

Every run is a deterministic simulation: same seed, same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Study modes, in the order the table reports them.
MODES = ("checkpoint_restart", "replication", "hybrid")

#: Sim-seconds between C/R babysitter ticks (checkpoint + failure poll).
CR_INTERVAL = 0.1

#: Where in a mode's clean runtime the study injects its card failure.
#: The fraction (rather than an absolute time) keeps the fault mid-run
#: for every mode even though their clean runtimes differ by an order of
#: magnitude — and lands it after the C/R arm's first checkpoint, so its
#: recovery restores from a real snapshot instead of relaunching.
FAULT_FRACTION = 0.6


@dataclass
class ModeResult:
    """One row of the study: a mode's clean + faulted pair, reduced."""

    mode: str
    iterations: int       #: useful (logical) iterations the faulted run completed
    cards: int            #: cards occupied for the duration of the run
    clean_elapsed: float  #: fault-free wall-clock, simulated seconds
    elapsed: float        #: faulted wall-clock, simulated seconds
    restarts: int         #: logical-rank restarts the faulted run needed
    drops: int            #: replicas dropped by the heartbeat (faulted run)
    reseeds: int          #: re-seed clones driven through the fleet (faulted run)
    verified: bool        #: every team finished with the expected checksum

    @property
    def slowdown(self) -> float:
        """Faulted elapsed over clean elapsed (1.0 = failure was free)."""
        return self.elapsed / self.clean_elapsed if self.clean_elapsed else 0.0

    @property
    def it_per_card_s(self) -> float:
        """Useful iterations per card-second: throughput per resource."""
        denom = self.cards * self.elapsed
        return self.iterations / denom if denom else 0.0


def _replica_down(fleet, rep) -> bool:
    """The heartbeat's health probe, inlined for the C/R babysitter."""
    proc = rep.host_proc
    if proc is None:
        return False
    done = proc.main_thread.done
    if done.triggered:
        return not (done.ok and proc.store.get("finished"))
    phi = fleet.phi(rep.card)
    if getattr(phi, "failed", False) or getattr(phi, "link_down", False):
        return True
    if not proc.alive:
        return True
    handle = proc.runtime.get("coi_handle")
    if handle is not None and (handle.dead or not handle.offload_proc.alive):
        return True
    return False


def _spare_card(fleet, node: int, avoid: List[Any]) -> Optional[Any]:
    """A healthy card on ``node`` not in ``avoid`` (restart target)."""
    from ..snapify.fleet import CardRef

    for d in range(fleet.topology.phis_per_node):
        card = CardRef(node=node, device=d)
        phi = fleet.phi(card)
        if getattr(phi, "failed", False) or getattr(phi, "link_down", False):
            continue
        if any(card.key == a.key for a in avoid):
            continue
        return card
    return None


def _babysit_cr(job, fleet, state):
    """The C/R control loop: one tick per :data:`CR_INTERVAL`.

    Each tick checkpoints every healthy logical rank; a rank found dead is
    restarted from its latest snapshot on a healthy card of the same node
    and re-adopted into the (single-replica) team, so the surviving peer's
    halo exchange picks it up through the team log backfill.
    """
    from ..mpi.replication import TeamReplica
    from ..snapify.api import snapify_t
    from ..snapify.usecases import checkpoint_offload_app, restart_offload_app

    sim = job.sim
    latest: Dict[int, str] = {}
    epoch: Dict[int, int] = {t: 0 for t in range(job.n_teams)}
    while not state["stop"]:
        yield sim.timeout(CR_INTERVAL)
        if state["stop"]:
            break
        for team in range(job.n_teams):
            live = job.comm.live[team]
            rid = live[-1] if live else None
            if rid is None:
                continue
            rep = job.replicas[(team, rid)]
            proc = rep.host_proc
            if proc is None:
                continue
            if proc.main_thread.done.triggered and proc.store.get("finished"):
                continue
            if _replica_down(fleet, rep):
                job.comm.drop_replica(team, rid, reason="cr-failure")
                if proc.alive:
                    proc.terminate(code=1)
                spare = _spare_card(fleet, rep.card.node, avoid=[rep.card])
                if spare is None:
                    raise RuntimeError(f"no healthy card to restart team {team}")
                state["restarts"] += 1
                path = latest.get(team)
                new_rid = job.next_rid(team)
                if path is None:
                    # Failure before the first checkpoint: all work since
                    # launch is lost — rerun the rank from iteration zero.
                    state["recoveries"].append(("relaunch", team))
                    new_rep = TeamReplica(job, team, new_rid, spare)
                    job.replicas[(team, new_rid)] = new_rep
                    job.placement[(team, new_rid)] = spare
                    job.comm.join_replica(team, new_rid, spare.node)
                    yield from new_rep.launch()
                    continue
                state["recoveries"].append(("restore", team))
                result = yield from restart_offload_app(
                    rep.server.host_os, path, fleet.engine(spare)
                )
                # Same no-yield window as the restart: stamp identity and
                # rejoin membership before the restored main is scheduled.
                job.adopt_replica(team, new_rid, spare, result.host_proc)
                continue
            handle = proc.runtime.get("coi_handle")
            if handle is None:
                continue  # still launching: nothing to checkpoint yet
            path = f"/study/{job.name}/t{team}_ck{epoch[team]}"
            snap = snapify_t(snapshot_path=path, coiproc=handle)
            try:
                yield from checkpoint_offload_app(snap)
            except Exception:
                # Card died mid-checkpoint: the next tick's probe restarts
                # from the previous snapshot.
                continue
            epoch[team] += 1
            latest[team] = path


def run_mode(mode: str, *, faulted: bool, seed: int = 0,
             iterations: int = 6, n_teams: int = 2,
             fault_at: float = 0.3) -> Dict[str, Any]:
    """One simulated run of ``mode``; returns its raw measurements.

    ``faulted`` injects one card failure ``fault_at`` seconds after
    launch, against the first replica of team 0 (C/R and replication) or
    — for the hybrid — the same card with the re-seed path armed to
    restore team strength. :func:`resilience_study` derives ``fault_at``
    from the mode's own clean runtime (:data:`FAULT_FRACTION`).
    """
    from ..apps.workloads import NAS_MZ_BENCHMARKS
    from ..mpi.replication import (
        HeartbeatDetector,
        ReplicatedJob,
        ReplicationError,
    )
    from ..sim.kernel import Simulator
    from ..snapify.fleet import FleetManager
    from ..testbed import XeonPhiFleet
    from .faults import FaultInjector

    if mode not in MODES:
        raise ValueError(f"unknown study mode {mode!r}")
    n_replicas = 1 if mode == "checkpoint_restart" else 2
    sim = Simulator(schedule_seed=seed)
    fleet = XeonPhiFleet("rack8", sim=sim)
    injector = FaultInjector(sim)
    job = ReplicatedJob(fleet, NAS_MZ_BENCHMARKS["SP-MZ"], n_teams=n_teams,
                        n_replicas=n_replicas, iterations=iterations)
    reseed = mode == "hybrid"
    manager = FleetManager(fleet) if reseed else None
    detector = None
    state = {"stop": False, "restarts": 0, "recoveries": []}

    def driver():
        nonlocal detector
        yield from job.launch()
        t0 = sim.now
        if mode == "checkpoint_restart":
            sim.spawn(_babysit_cr(job, fleet, state), name="study-cr")
        else:
            detector = HeartbeatDetector(job, interval=0.05, misses=2,
                                         reseed=reseed, manager=manager)
            detector.start()
        if faulted:
            phi = fleet.phi(job.placement[(0, 0)])
            injector.schedule_card_failure(phi, at=sim.now + fault_at)
        # Under C/R a team is legitimately empty between a failure and the
        # babysitter's restart tick: give the restart a bounded grace
        # window instead of treating the gap as a team wipe.
        for _ in range(50):
            try:
                yield from job.join()
                break
            except ReplicationError:
                if mode != "checkpoint_restart":
                    raise
                yield sim.timeout(CR_INTERVAL)
        else:
            raise RuntimeError("C/R restart never revived the failed team")
        elapsed = sim.now - t0
        state["stop"] = True
        if detector is not None:
            detector.stop()
            if manager is not None and detector.reseed_tickets:
                yield from manager.collect(detector.reseed_tickets)
        return elapsed

    elapsed = fleet.run(driver())
    return {
        "mode": mode,
        "elapsed": elapsed,
        "iterations": job.useful_iterations(),
        "executed": job.executed_iterations(),
        "cards": n_teams * n_replicas,
        "restarts": state["restarts"],
        "recoveries": state["recoveries"],
        "drops": len(detector.drops) if detector is not None else 0,
        "reseeds": len(detector.reseeds) if detector is not None else 0,
        "verified": job.verify(),
        "ledger_balanced": job.comm.ledger_balanced(),
        "duplicate_deliveries": sum(
            1 for n in job.comm.delivered_counts.values() if n != 1
        ),
        # Kernel events scheduled. Under a schedule seed the tie-break
        # sequence yields (perturbation, counter) pairs; the counter is
        # the event count either way.
        "events": (lambda s: s[-1] if isinstance(s, tuple) else s)(
            next(sim._seq)
        ),
    }


def resilience_study(seed: int = 0, iterations: int = 6) -> List[ModeResult]:
    """Clean + faulted runs of every mode, reduced to one row each."""
    rows: List[ModeResult] = []
    for mode in MODES:
        clean = run_mode(mode, faulted=False, seed=seed, iterations=iterations)
        fault = run_mode(mode, faulted=True, seed=seed, iterations=iterations,
                         fault_at=FAULT_FRACTION * clean["elapsed"])
        rows.append(ModeResult(
            mode=mode,
            iterations=fault["iterations"],
            cards=fault["cards"],
            clean_elapsed=clean["elapsed"],
            elapsed=fault["elapsed"],
            restarts=fault["restarts"],
            drops=fault["drops"],
            reseeds=fault["reseeds"],
            verified=fault["verified"] and clean["verified"],
        ))
    return rows


def markdown_table(rows: List[ModeResult]) -> str:
    """The study as a GitHub-flavored markdown table."""
    lines = [
        "### Resilience study: useful-work throughput under one card failure",
        "",
        "| mode | iterations | elapsed (s) | slowdown | restarts | drops "
        "| reseeds | cards | it/card-s |",
        "| --- | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: |",
    ]
    for r in rows:
        lines.append(
            f"| {r.mode} | {r.iterations} | {r.elapsed:.3f} | "
            f"{r.slowdown:.2f}x | {r.restarts} | {r.drops} | {r.reseeds} | "
            f"{r.cards} | {r.it_per_card_s:.2f} |"
        )
    lines.append("")
    return "\n".join(lines)
