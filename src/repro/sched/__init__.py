"""Schedulers and resiliency built on Snapify's swap/migrate primitives."""

from .faults import FaultInjector
from .interval import daly_interval, expected_completion_time, young_interval
from .predictor import ProactiveMigrator
from .resilient import ResilientRunner
from .scheduler import SwapScheduler, TenantJob
from .study import ModeResult, markdown_table, resilience_study, run_mode

__all__ = [
    "FaultInjector",
    "ModeResult",
    "ProactiveMigrator",
    "ResilientRunner",
    "SwapScheduler",
    "TenantJob",
    "daly_interval",
    "expected_completion_time",
    "markdown_table",
    "resilience_study",
    "run_mode",
    "young_interval",
]
