"""A multi-tenant card scheduler built on process swapping.

§1's motivation: the Phi's 8 GB and its pinned COI buffers put a hard cap on
co-resident offload processes, and OS paging can't help. A COSMIC-style
scheduler instead *swaps whole offload processes* to host storage: when a
queued job doesn't fit, the scheduler swaps out the resident job with the
largest footprint, runs the newcomer, and swaps the victim back in when
memory frees up.

This is the paper's intended consumer of ``snapify_swapout``/``swapin``
(the resource-contention policy it explicitly scopes out is exactly what
lives here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from ..coi.engine import COIEngine
from ..obs.registry import MetricsRegistry
from ..osim.process import SimProcess
from ..snapify.cli import SWAP_IN, SWAP_OUT, snapify_command
from ..snapify.ops import OperationResult

if TYPE_CHECKING:  # pragma: no cover
    from ..snapify.fleet import FleetManager, CardRef
    from ..testbed import XeonPhiServer


@dataclass
class TenantJob:
    """One scheduled offload application."""

    host_proc: SimProcess
    device: int
    #: Card bytes the job pins (offload heap + local store + image).
    footprint: int
    state: str = "resident"  # resident | swapped
    swap_count: int = 0
    #: The snapify_t of the last swap cycle; its ``op`` is the in-flight or
    #: completed operation for this job (field(...) keeps dataclass eq).
    snap: Optional[object] = field(default=None, compare=False)


class SwapScheduler:
    """Greedy largest-victim swapping policy for one card.

    Standalone by default; when handed a :class:`~repro.snapify.fleet.
    FleetManager` (plus this card's :class:`~repro.snapify.fleet.CardRef`),
    every swap rides a fleet ticket at SWAP priority instead of being
    issued directly — the fleet's admission control then bounds how many of
    this scheduler's swaps run concurrently with the rest of the fleet's
    traffic, and health reports from fleet sweeps gate reclaim (no point
    swapping a tenant back onto a failed or straggling card)."""

    def __init__(self, server: "XeonPhiServer", device: int = 0,
                 headroom: int = 512 * 1024 * 1024,
                 fleet: Optional["FleetManager"] = None,
                 card: Optional["CardRef"] = None):
        self.server = server
        self.sim = server.sim
        self.device = device
        self.phi = server.node.phis[device]
        #: Keep this much card memory free for the OS and RAM-FS churn.
        self.headroom = headroom
        self.jobs: Dict[int, TenantJob] = {}
        self.swap_events: List[tuple] = []
        #: Typed results of every swap operation this scheduler issued.
        self.operations: List[OperationResult] = []
        #: Fleet routing (optional): manager + this card's fleet address.
        self.fleet = fleet
        self.card = card
        if fleet is not None and card is None:
            raise ValueError("fleet routing needs this card's CardRef")
        #: Card keys the last health report flagged (failed or straggling).
        self.unhealthy_cards: Set[str] = set()
        self._fleet_seq = 0
        reg = MetricsRegistry.of(self.sim)
        self.m_swap_outs = reg.counter(f"sched.dev{device}.swap_outs")
        self.m_swap_ins = reg.counter(f"sched.dev{device}.swap_ins")
        reg.gauge(f"sched.dev{device}.resident_jobs",
                  lambda: len(self.resident_jobs()))
        reg.gauge(f"sched.dev{device}.swapped_jobs",
                  lambda: len(self.swapped_jobs()))
        # Card-keyed aliases using the fleet's "n<node>.mic<dev>" addressing,
        # so per-card grouping sees scheduler traffic too (the ".card.<key>."
        # segment becomes a {card=...} label in the Prometheus export).
        ck = self.card_key()
        self.m_card_swap_outs = reg.counter(f"sched.card.{ck}.swap_outs")
        self.m_card_swap_ins = reg.counter(f"sched.card.{ck}.swap_ins")
        reg.gauge(f"sched.card.{ck}.resident_jobs",
                  lambda: len(self.resident_jobs()))
        reg.gauge(f"sched.card.{ck}.swapped_jobs",
                  lambda: len(self.swapped_jobs()))

    def card_key(self) -> str:
        """This scheduler's card in fleet key form ("n0.mic1").

        Uses the explicit :class:`~repro.snapify.fleet.CardRef` when fleet
        routing is on; standalone schedulers derive it from the server node
        name + device index so both paths tag records identically."""
        if self.card is not None:
            return self.card.key
        name = getattr(self.server.node, "name", "")
        digits = "".join(ch for ch in name if ch.isdigit())
        return f"n{digits or 0}.mic{self.device}"

    # -- fleet health ------------------------------------------------------------
    def note_health(self, report: Any) -> None:
        """Consume a :class:`~repro.snapify.fleet.HealthReport`: remember
        which cards are failed or straggling so placement decisions can
        avoid them. Each report replaces the previous one's verdict."""
        self.unhealthy_cards = {h.card for h in report.failed}
        self.unhealthy_cards.update(h.card for h in report.stragglers())

    def card_healthy(self) -> bool:
        """False when the last health report flagged this scheduler's card
        (only meaningful with fleet routing; standalone is always True)."""
        if self.card is None:
            return True
        return self.card.key not in self.unhealthy_cards

    # -- bookkeeping -------------------------------------------------------------
    def register(self, host_proc: SimProcess, footprint: int) -> TenantJob:
        job = TenantJob(host_proc=host_proc, device=self.device, footprint=footprint)
        self.jobs[host_proc.pid] = job
        return job

    def resident_jobs(self) -> List[TenantJob]:
        return [j for j in self.jobs.values() if j.state == "resident"]

    def swapped_jobs(self) -> List[TenantJob]:
        return [j for j in self.jobs.values() if j.state == "swapped"]

    def _free_after(self, incoming: int) -> int:
        return self.phi.memory.available - incoming - self.headroom

    # -- policy ------------------------------------------------------------------
    def make_room(self, incoming: int):
        """Sub-generator: swap out the largest residents until ``incoming``
        bytes fit (plus headroom). Returns the list of victims swapped."""
        victims = []
        while self._free_after(incoming) < 0:
            candidates = sorted(
                self.resident_jobs(), key=lambda j: j.footprint, reverse=True
            )
            if not candidates:
                break  # nothing left to evict; the launch may still OOM
            victim = candidates[0]
            yield from self._swap_out(victim)
            victims.append(victim)
        return victims

    def reclaim(self):
        """Sub-generator: swap jobs back in while they fit (smallest first,
        to maximize the number of running tenants). A card the last health
        sweep flagged gets nothing swapped back onto it."""
        brought_back = []
        if not self.card_healthy():
            self.sim.trace.emit("sched.reclaim_skipped", device=self.device,
                                card=self.card_key())
            return brought_back
        for job in sorted(self.swapped_jobs(), key=lambda j: j.footprint):
            if self._free_after(job.footprint) < 0:
                break
            yield from self._swap_in(job)
            brought_back.append(job)
        return brought_back

    def evacuate(self):
        """Sub-generator: swap out every resident tenant — the maintenance
        action for a card the health sweep flagged. With fleet routing the
        swaps go out at MAINTENANCE priority, ahead of all other fleet
        traffic. Returns the evacuated jobs."""
        from ..snapify.fleet import MAINTENANCE

        victims = []
        for job in sorted(self.resident_jobs(), key=lambda j: j.footprint,
                          reverse=True):
            yield from self._swap_out(job, priority=MAINTENANCE)
            victims.append(job)
        self.sim.trace.emit("sched.evacuate", device=self.device,
                            card=self.card_key(), jobs=len(victims))
        return victims

    def job_finished(self, host_proc: SimProcess):
        """Sub-generator: drop a finished job and reclaim swapped tenants."""
        self.jobs.pop(host_proc.pid, None)
        result = yield from self.reclaim()
        return result

    # -- mechanics ----------------------------------------------------------------
    def _fleet_issue(self, kind: str, job: TenantJob, command, priority=None):
        """Sub-generator: run a snapify CLI command as a fleet ticket so the
        fleet's admission caps govern it. Returns the terminal ticket."""
        from ..snapify.fleet import SWAP as SWAP_PRIORITY
        from ..snapify.monitor import SnapifyError

        self._fleet_seq += 1
        key = f"sched.{self.card.key}/{kind}.{job.host_proc.pid}.{self._fleet_seq}"

        def work():
            return (yield command())

        ticket = self.fleet.submit(
            key, kind, work, card=self.card,
            priority=SWAP_PRIORITY if priority is None else priority,
            proc=job.host_proc,
        )
        if not ticket.done.triggered:
            yield ticket.done
        if ticket.state != "DONE":
            raise SnapifyError(f"scheduler {kind} failed: {ticket.error}")
        return ticket

    def _swap_out(self, job: TenantJob, priority=None):
        def command():
            return snapify_command(
                job.host_proc, SWAP_OUT,
                snapshot_path=f"/swap/job_{job.host_proc.pid}",
            )

        if self.fleet is not None:
            ticket = yield from self._fleet_issue("swapout", job, command,
                                                  priority=priority)
            job.snap = ticket.result
        else:
            job.snap = yield command()
        self._record(job)
        job.state = "swapped"
        job.swap_count += 1
        self.m_swap_outs.inc()
        self.m_card_swap_outs.inc()
        self.sim.trace.emit("sched.swap_out", proc=job.host_proc.name,
                            card=self.card_key(), footprint=job.footprint)
        self.swap_events.append(("out", job.host_proc.name, self.sim.now))

    def _swap_in(self, job: TenantJob):
        engine = COIEngine(self.server.node, self.device)

        def command():
            return snapify_command(job.host_proc, SWAP_IN, engine=engine)

        if self.fleet is not None:
            yield from self._fleet_issue("swapin", job, command)
        else:
            yield command()
        # The CLI handler drove the swap-in on the same snapify_t it parked
        # at swap-out; its operation is now the swap-in's.
        self._record(job)
        job.state = "resident"
        self.m_swap_ins.inc()
        self.m_card_swap_ins.inc()
        self.sim.trace.emit("sched.swap_in", proc=job.host_proc.name,
                            card=self.card_key(), footprint=job.footprint)
        self.swap_events.append(("in", job.host_proc.name, self.sim.now))

    def _record(self, job: TenantJob) -> None:
        snap = job.snap
        if snap is not None and snap.op is not None and snap.op.result is not None:
            self.operations.append(snap.op.result)
