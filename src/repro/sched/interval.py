"""Optimal checkpoint-interval selection (Young / Daly).

The paper closes by arguing its 4-14 s checkpoints make *frequent*
checkpointing feasible; this module answers "how frequent?" — the classic
first-order Young formula and Daly's higher-order refinement, plus the
expected-completion model used to validate them against simulation.
"""

from __future__ import annotations

import math


def young_interval(mtbf: float, checkpoint_cost: float) -> float:
    """Young's first-order optimum: ``sqrt(2 * C * M)``.

    ``mtbf`` is the mean time between failures, ``checkpoint_cost`` the time
    one checkpoint takes. Valid when ``C << M``.
    """
    _validate(mtbf, checkpoint_cost)
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(mtbf: float, checkpoint_cost: float) -> float:
    """Daly's higher-order optimum.

    For ``C < M/2``:  ``sqrt(2 C M) * (1 + (1/3)sqrt(C/2M) + C/9M) - C``;
    degenerates to ``M`` when checkpointing is half the MTBF or more.
    """
    _validate(mtbf, checkpoint_cost)
    c, m = checkpoint_cost, mtbf
    if c >= m / 2.0:
        return m
    root = math.sqrt(2.0 * c * m)
    return root * (1.0 + (1.0 / 3.0) * math.sqrt(c / (2.0 * m)) + c / (9.0 * m)) - c


def expected_completion_time(
    work: float,
    interval: float,
    checkpoint_cost: float,
    restart_cost: float,
    mtbf: float,
) -> float:
    """Expected wall time to finish ``work`` seconds of computation with
    checkpoints every ``interval`` seconds under exponential failures.

    Standard renewal model: each segment of ``interval + C`` succeeds with
    probability ``exp(-(interval + C)/M)``; a failure costs (on average)
    half a segment of lost work plus the restart.
    """
    _validate(mtbf, checkpoint_cost)
    if interval <= 0:
        raise ValueError("interval must be positive")
    if restart_cost < 0 or work <= 0:
        raise ValueError("work must be positive and restart_cost >= 0")
    segment = interval + checkpoint_cost
    # Continuous approximation: fractional segments avoid cliff artifacts
    # when work is not an exact multiple of the interval.
    n_segments = work / interval
    p_fail = 1.0 - math.exp(-segment / mtbf)
    if p_fail >= 1.0:  # pragma: no cover - degenerate
        return math.inf
    # Expected attempts per segment is 1/(1-p); each failed attempt costs
    # ~half a segment of progress plus the restart.
    expected_per_segment = segment + (p_fail / (1.0 - p_fail)) * (
        segment / 2.0 + restart_cost
    )
    return n_segments * expected_per_segment


def _validate(mtbf: float, checkpoint_cost: float) -> None:
    if mtbf <= 0:
        raise ValueError("mtbf must be positive")
    if checkpoint_cost <= 0:
        raise ValueError("checkpoint cost must be positive")
