"""Fault injection for the resiliency scenarios.

A coprocessor failure kills every process on the card and takes the device
out of service. Failures can be announced ahead of time through degradation
telemetry — the hook the failure predictor (and hence proactive migration,
one of the paper's §1 motivations) consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ..hw.node import PhiDevice
from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator


class FaultInjector:
    """Schedules and executes coprocessor failures."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.failed: List[PhiDevice] = []
        #: Audit log of every fault actually executed ("card_failure:0",
        #: "link_flap:1", ...). The ``retry_accounting`` oracle checks the
        #: retry/fallback counters against this: a run with no injected
        #: faults must not have retried anything.
        self.injected: List[str] = []
        #: Subscribers to degradation telemetry: fn(device, time_to_failure).
        #: Dispatch order is subscription order over a snapshot taken when
        #: the warning fires — subscribers added or removed *during* dispatch
        #: take effect only for the next warning. This keeps telemetry
        #: ordering identical across perturbed schedules (the seeded kernel
        #: may reorder the threads that subscribe at equal times, but each
        #: warning still walks one frozen, append-ordered list).
        self.telemetry: List[Callable[[PhiDevice, float], None]] = []

    # -- telemetry subscription --------------------------------------------
    def subscribe(self, fn: Callable[[PhiDevice, float], None]) -> Callable:
        """Register a degradation-telemetry subscriber; returns ``fn``."""
        self.telemetry.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[PhiDevice, float], None]) -> None:
        """Remove a subscriber; a no-op if it was never registered."""
        try:
            self.telemetry.remove(fn)
        except ValueError:
            pass

    def schedule_card_failure(
        self,
        phi: PhiDevice,
        at: float,
        warning_lead: Optional[float] = None,
        repair_after: Optional[float] = None,
    ) -> Event:
        """Fail ``phi`` at absolute simulated time ``at``.

        With ``warning_lead``, degradation telemetry fires that many seconds
        earlier (correctable-error storms precede most real card failures).
        With ``repair_after``, the card is reset/replaced that many seconds
        after the failure: its service daemons (COI, Snapify-IO) are
        re-booted and the card rejoins the healthy pool.
        Returns the event that triggers at the moment of failure.
        """
        if at < self.sim.now:
            raise ValueError("cannot schedule a failure in the past")
        failed_ev = Event(self.sim, name=f"fault:{phi!r}")
        if warning_lead is not None and warning_lead > 0:
            warn_at = max(self.sim.now, at - warning_lead)
            self.sim.schedule(warn_at - self.sim.now, self._warn, phi, at - warn_at)
        self.sim.schedule(at - self.sim.now, self._fail, phi, failed_ev)
        if repair_after is not None:
            if repair_after <= 0:
                raise ValueError("repair_after must be positive")
            self.sim.schedule(at + repair_after - self.sim.now, self._repair, phi)
        return failed_ev

    def _warn(self, phi: PhiDevice, time_to_failure: float) -> None:
        # Snapshot before dispatch: a subscriber that subscribes (or
        # unsubscribes) others mid-warning must not change THIS warning's
        # fan-out, or telemetry ordering would depend on list mutation
        # timing and break seeded-schedule replay.
        snapshot = tuple(self.telemetry)
        for subscriber in snapshot:
            subscriber(phi, time_to_failure)

    def fail_now(self, phi: PhiDevice) -> Event:
        """Fail ``phi`` immediately (synchronously, at the current time).

        Unlike :meth:`schedule_card_failure`, the kill happens before this
        call returns — the hook the fuzzer uses to inject a failure at an
        exact protocol phase boundary rather than at a wall-clock offset.
        """
        ev = Event(self.sim, name=f"fault:{phi!r}")
        self._fail(phi, ev)
        return ev

    def _fail(self, phi: PhiDevice, ev: Event) -> None:
        if phi in self.failed:
            return
        self.failed.append(phi)
        self.injected.append(f"card_failure:{phi.index}")
        phi.failed = True  # type: ignore[attr-defined]
        if phi.os is not None:
            for proc in list(phi.os.processes.values()):
                proc.terminate(code=139)
        ev.succeed(phi)

    def _repair(self, phi: PhiDevice) -> None:
        """The card was reset/replaced: re-boot its service daemons."""
        if phi not in self.failed:
            return
        self.failed.remove(phi)
        phi.failed = False  # type: ignore[attr-defined]

        def reboot(sim):
            from ..coi.daemon import COIDaemon
            from ..snapify_io.daemon import SnapifyIODaemon

            yield from COIDaemon.boot(phi)
            yield from SnapifyIODaemon.boot(phi.os)

        self.sim.spawn(reboot(self.sim), name=f"repair:{phi!r}", daemon=True)

    def is_failed(self, phi: PhiDevice) -> bool:
        return phi in self.failed

    # -- transient transfer-path faults ------------------------------------
    def schedule_link_flap(
        self, phi: PhiDevice, at: float, up_after: Optional[float] = None
    ) -> None:
        """Down ``phi``'s PCIe link at time ``at``; restore after
        ``up_after`` seconds (``None`` = the link stays down).

        A flap resets every SCIF endpoint crossing the link — in-flight
        RDMA transfers see :class:`ConnectionReset`, exactly the failure the
        resume protocol recovers from."""
        if at < self.sim.now:
            raise ValueError("cannot schedule a flap in the past")
        self.sim.schedule(at - self.sim.now, self.flap_link_now, phi, up_after)

    def flap_link_now(self, phi: PhiDevice, up_after: Optional[float] = None) -> None:
        """Down the link immediately (synchronous, fuzzer hook)."""
        self.injected.append(f"link_flap:{phi.index}")
        phi.link_down = True
        from ..scif.endpoint import ScifNetwork

        net = ScifNetwork.of(phi.node)
        for ep in list(net.endpoints):
            if ep.closed:
                continue
            if ep.os.hw is phi or (ep.peer is not None and ep.peer.os.hw is phi):
                ep.close()
        if up_after is not None:
            if up_after <= 0:
                raise ValueError("up_after must be positive")
            self.sim.schedule(up_after, self._unflap, phi)

    def _unflap(self, phi: PhiDevice) -> None:
        phi.link_down = False

    def schedule_io_daemon_crash(
        self, os, at: float, restart_after: Optional[float] = None
    ) -> None:
        """Crash the Snapify-IO daemon on ``os`` at time ``at``; optionally
        re-boot it ``restart_after`` seconds later."""
        if at < self.sim.now:
            raise ValueError("cannot schedule a crash in the past")
        self.sim.schedule(at - self.sim.now, self.crash_io_daemon_now, os, restart_after)

    def crash_io_daemon_now(self, os, restart_after: Optional[float] = None) -> None:
        """Kill the daemon process immediately (synchronous, fuzzer hook).

        Terminating the process closes its listeners, local sockets, and
        SCIF endpoints (they ride ``open_fds``), so clients see connection
        resets rather than silent hangs."""
        daemon = getattr(os, "snapify_io_daemon", None)
        if daemon is None or daemon.proc is None:
            return
        self.injected.append(f"io_daemon_crash:{os.name}")
        os.snapify_io_daemon = None
        daemon.proc.terminate(code=137)
        if restart_after is not None:
            if restart_after <= 0:
                raise ValueError("restart_after must be positive")

            def reboot(sim):
                from ..snapify_io.daemon import SnapifyIODaemon

                yield sim.timeout(restart_after)
                yield from SnapifyIODaemon.boot(os)

            self.sim.spawn(reboot(self.sim), name=f"io-daemon-restart:{os.name}",
                           daemon=True)

    def schedule_nfs_outage(
        self, node, at: float, restore_after: Optional[float] = None
    ) -> None:
        """Stop the host's NFS export at time ``at`` (clients see 'server
        not responding'); optionally restore it ``restore_after`` seconds
        later."""
        if at < self.sim.now:
            raise ValueError("cannot schedule an outage in the past")

        def stop() -> None:
            self.injected.append("nfs_outage")
            node.os.fs.exported = False

        def restore() -> None:
            node.os.fs.exported = True

        self.sim.schedule(at - self.sim.now, stop)
        if restore_after is not None:
            if restore_after <= 0:
                raise ValueError("restore_after must be positive")
            self.sim.schedule(at + restore_after - self.sim.now, restore)
