"""Failure prediction driving proactive migration.

§1: "by using fault prediction methods, it is possible to avoid imminent
coprocessor failures by proactively migrating processes to other healthy
coprocessors." The predictor subscribes to the fault injector's degradation
telemetry and, on a warning, migrates every offload process off the sick
card via the snapify CLI path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..coi.engine import COIEngine
from ..hw.node import PhiDevice
from ..osim.process import SimProcess
from ..snapify.cli import MIGRATE, snapify_command
from .faults import FaultInjector

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import XeonPhiServer


class ProactiveMigrator:
    """Watches telemetry; evacuates processes from failing cards."""

    def __init__(self, server: "XeonPhiServer", injector: FaultInjector):
        self.server = server
        self.sim = server.sim
        self.injector = injector
        #: host processes whose offload work lives on each card.
        self.placements: Dict[int, List[SimProcess]] = {}
        self.migrations_done: List[tuple] = []
        injector.telemetry.append(self._on_warning)

    def track(self, host_proc: SimProcess, device: int) -> None:
        """Register that ``host_proc``'s offload process runs on ``device``."""
        self.placements.setdefault(device, []).append(host_proc)

    def _pick_target(self, sick: PhiDevice) -> Optional[int]:
        """Healthiest other card: most free memory, not failed."""
        best, best_free = None, -1
        for phi in self.server.node.phis:
            if phi is sick or self.injector.is_failed(phi):
                continue
            if phi.memory.available > best_free:
                best, best_free = phi.index, phi.memory.available
        return best

    def _on_warning(self, phi: PhiDevice, time_to_failure: float) -> None:
        victims = self.placements.get(phi.index, [])
        if not victims:
            return
        target = self._pick_target(phi)
        if target is None:
            return  # nowhere to go; the jobs will die with the card
        for host_proc in list(victims):
            self.sim.spawn(
                self._migrate(host_proc, phi.index, target),
                name=f"evacuate:{host_proc.name}",
                daemon=True,
            )

    def _migrate(self, host_proc: SimProcess, src: int, dst: int):
        engine = COIEngine(self.server.node, dst)
        done = snapify_command(
            host_proc, MIGRATE, engine=engine,
            snapshot_path=f"/tmp/evacuate_{host_proc.pid}",
        )
        yield done
        self.placements[src].remove(host_proc)
        self.placements.setdefault(dst, []).append(host_proc)
        self.migrations_done.append((host_proc.name, src, dst, self.sim.now))
