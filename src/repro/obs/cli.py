"""The ``snapify`` command-line front end (``snapify trace``, ``snapify fuzz``).

``snapify trace`` runs a fully traced Snapify operation on the simulated
testbed and turns the span tree into the paper's Figure 9/10-style phase
breakdown table, optionally exporting the whole run as Chrome trace-event
JSON (loadable in Perfetto / ``chrome://tracing``):

    snapify trace                              # swap-out + swap-in breakdown
    snapify trace --scenario checkpoint        # Fig. 5 checkpoint path
    snapify trace --scenario migrate --json trace.json

``snapify fuzz`` sweeps the protocol scenarios across perturbed schedules
and fault plans, checking every invariant oracle (see :mod:`repro.check`),
and replays failure artifacts:

    snapify fuzz --seeds 50                    # all scenarios x 50 seeds
    snapify fuzz --scenario migrate --seeds 10
    snapify fuzz --scenario transfer_fault --seeds 50   # 4 fault modes x 50
    snapify fuzz --seeds 200 --artifact-dir fuzz_artifacts
    snapify fuzz --replay fuzz_artifacts/repro_migrate_seed7.json

``snapify fleet`` boots a named fleet topology, drives a mixed
checkpoint/swap/migrate sweep through the admission-controlled
:class:`~repro.snapify.fleet.FleetManager`, and prints the per-card
outcome table plus the closing health sweep:

    snapify fleet                              # rack8, 4 ops per card
    snapify fleet --topology rack32 --ops-per-card 2
    snapify fleet --max-in-flight 16 --per-card 2 --metrics

``snapify top`` runs the same sweep with the telemetry sampler installed
(:class:`~repro.obs.timeseries.TimeSeriesRecorder` + the stock SLOs) and
renders a refreshing per-card dashboard — in-flight operations, queue
depth, phase p99s, firing alerts — plus Prometheus-text / JSON exports:

    snapify top                                # rack8 dashboard frames
    snapify top --export prom --out metrics.prom
    snapify top --fail-card 3 --export json    # inject a card failure

Also reachable without installation as ``python -m repro.snapify trace``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from .export import validate_trace_events, write_chrome_trace
from .phases import PhaseBreakdown, operation_table
from .registry import MetricsRegistry

#: scenario name -> root span names whose breakdowns are printed.
SCENARIOS = {
    "swapout": ["snapify.swapout", "snapify.swapin"],
    "checkpoint": ["snapify.checkpoint"],
    "migrate": ["snapify.migration"],
}


def _metrics_sampler(sim, interval: float):
    """Daemon thread: periodically sample the registry into the trace, so
    the export grows counter tracks alongside the span lanes."""
    registry = MetricsRegistry.of(sim)
    while True:
        registry.sample(sim.trace)
        yield sim.timeout(interval)


def run_traced_scenario(scenario: str, iterations: int = 40,
                        sample_interval: float = 0.01):
    """Run ``scenario`` with tracing on; returns the booted server.

    The returned server's ``sim.trace`` holds the complete record stream
    (spans included) and ``MetricsRegistry.of(sim)`` the final instruments.
    """
    from ..sim import Simulator
    from ..snapify import (
        MIGRATE, SWAP_IN, SWAP_OUT, checkpoint_offload_app, snapify_command, snapify_t,
    )
    from ..testbed import XeonPhiServer, offload_app

    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r} (choose from {sorted(SCENARIOS)})")

    sim = Simulator(trace=True)
    server = XeonPhiServer(sim=sim)
    app = offload_app(server, "MC", iterations=iterations)
    if sample_interval > 0:
        sim.spawn(_metrics_sampler(sim, sample_interval), name="metrics-sampler",
                  daemon=True)

    def driver(s):
        yield from app.launch()
        yield s.timeout(0.3)
        if scenario == "swapout":
            snap_done = snapify_command(app.host_proc, SWAP_OUT,
                                        snapshot_path="/snapshots/trace")
            yield snap_done
            back = snapify_command(app.host_proc, SWAP_IN, engine=server.engine(0))
            yield back
        elif scenario == "checkpoint":
            snap = snapify_t(snapshot_path="/snapshots/trace", coiproc=app.coiproc)
            yield from checkpoint_offload_app(snap)
        elif scenario == "migrate":
            done = snapify_command(app.host_proc, MIGRATE, engine=server.engine(1))
            yield done
        yield app.host_proc.main_thread.done

    server.run(driver(sim))
    assert app.verify(), f"{scenario} scenario corrupted the application state"
    return server


def trace_command(args: argparse.Namespace) -> int:
    server = run_traced_scenario(
        args.scenario, iterations=args.iterations,
        sample_interval=args.sample_interval,
    )
    tracer = server.sim.trace

    breakdowns: List[Tuple[str, PhaseBreakdown]] = []
    for root_name in SCENARIOS[args.scenario]:
        try:
            breakdowns.append((root_name, PhaseBreakdown.from_trace(tracer, root_name)))
        except ValueError as exc:
            # A trace with no finished root span (or none at all) is a
            # report, not a crash: say so and keep going.
            print(f"(no phase breakdown for {root_name!r}: {exc})")
    for _, breakdown in breakdowns:
        print()
        print(breakdown.render())

    # The state-machine view: one row per operation, phases from op.state
    # transitions (distinguishes concurrent operations by correlation id).
    # Always rendered — a trace with zero op.* records prints the empty
    # table with a note instead of dying.
    print()
    print(operation_table(tracer).render())

    if args.metrics:
        snap = MetricsRegistry.of(server.sim).snapshot()
        print(f"\n== Metrics at t={snap['time']:.6f}s ==")
        for name, value in snap["counters"].items():
            print(f"  counter    {name:40s} {value}")
        for name, value in snap["gauges"].items():
            print(f"  gauge      {name:40s} {value}")
        for name, summary in snap["histograms"].items():
            print(f"  histogram  {name:40s} {summary}")

    if args.json:
        doc = write_chrome_trace(tracer, args.json)
        n = validate_trace_events(doc)
        print(f"\nwrote {args.json}: {n} trace events "
              f"({len(tracer.records)} records) — load it at ui.perfetto.dev")

    # The accounting identity the breakdown promises: union of components
    # plus the unattributed gap reproduces the end-to-end latency.
    for root_name, breakdown in breakdowns:
        drift = abs(breakdown.accounted - breakdown.total)
        limit = 0.01 * breakdown.total
        if drift > limit:
            print(f"WARNING: {root_name} components sum to "
                  f"{breakdown.accounted:.6f}s but end-to-end is "
                  f"{breakdown.total:.6f}s", file=sys.stderr)
            return 1
    return 0


def run_fleet_sweep(topology: str = "rack8", ops_per_card: int = 4,
                    max_in_flight: int = 8, per_card: int = 2):
    """Boot ``topology`` and drive a mixed sweep through one manager.

    Returns ``(manager, result, health)`` — the manager (for metrics and
    high-water marks), the collected :class:`~repro.snapify.fleet.
    FleetResult`, and the closing :class:`~repro.snapify.fleet.HealthReport`.
    """
    from ..snapify.fleet import FleetManager, fleet_sweep
    from ..testbed import XeonPhiFleet

    fleet = XeonPhiFleet(topology)
    manager = FleetManager(fleet, max_in_flight=max_in_flight,
                           per_card_limit=per_card)

    def driver():
        result = yield from fleet_sweep(fleet, manager,
                                        ops_per_card=ops_per_card)
        health = yield from manager.health_sweep()
        return result, health

    result, health = fleet.run(driver())
    return manager, result, health


def fleet_command(args: argparse.Namespace) -> int:
    from ..metrics import ResultTable, fmt_time
    from ..snapify.fleet import DONE

    manager, result, health = run_fleet_sweep(
        args.topology, ops_per_card=args.ops_per_card,
        max_in_flight=args.max_in_flight, per_card=args.per_card,
    )
    status = {h.card: h for h in health.entries}
    stragglers = {h.card for h in health.stragglers()}
    table = ResultTable(
        f"Fleet sweep: {args.topology}, {len(result)} ops "
        f"(caps: {manager.max_in_flight} in flight, "
        f"{manager.per_card_limit}/card)",
        ["card", "ops", "ok", "failed", "mean wait", "mean service", "health"],
    )
    for card, tickets in sorted(result.by_card().items()):
        done = [t for t in tickets if t.state == DONE]
        waits = [t.queue_wait for t in tickets if t.queue_wait is not None]
        services = [t.service_time for t in done if t.service_time is not None]
        h = status.get(card)
        verdict = ("-" if h is None else
                   f"FAILED: {h.error}" if not h.ok else
                   "straggler" if card in stragglers else "ok")
        table.add_row(
            card, len(tickets), len(done), len(tickets) - len(done),
            fmt_time(sum(waits) / len(waits)) if waits else "-",
            fmt_time(sum(services) / len(services)) if services else "-",
            verdict,
        )
    table.add_note(f"in-flight high-water {manager.hwm_in_flight}, "
                   f"busiest card {max(manager.hwm_per_card.values(), default=0)}")
    print()
    print(table.render())
    print()
    print(result.summary())
    print(health.summary())

    if args.metrics:
        snap = MetricsRegistry.of(manager.sim).snapshot()
        print(f"\n== Metrics at t={snap['time']:.6f}s ==")
        for name, value in sorted(snap["counters"].items()):
            if name.startswith(manager.name):
                print(f"  counter    {name:40s} {value}")
        for name, summary in sorted(snap["histograms"].items()):
            if name.startswith(manager.name):
                print(f"  histogram  {name:40s} {summary}")
    return 0 if result.ok and not health.failed else 1


def run_top(topology: str = "rack8", ops_per_card: int = 2,
            max_in_flight: int = 8, per_card: int = 2,
            interval: float = 0.05, settle: float = 1.0,
            fail_card: Optional[int] = None, fail_at: float = 1.0,
            slos: Optional[List[str]] = None,
            on_frame=None, frame_every: int = 0):
    """Run a telemetry-enabled fleet sweep; returns the live objects.

    Boots ``topology``, installs the :class:`~repro.obs.timeseries.
    TimeSeriesRecorder` (stock SLOs unless ``slos`` gives parseable
    overrides), optionally schedules one card failure, drives
    ``fleet_sweep`` + a health sweep, then idles ``settle`` simulated
    seconds so windowed alerts can resolve before the sampler stops.
    Returns ``(recorder, manager, result, health)``.
    """
    from ..sched.faults import FaultInjector
    from ..snapify.fleet import FleetManager, fleet_sweep
    from ..testbed import XeonPhiFleet
    from .slo import default_slos, parse_slo
    from .timeseries import TelemetryConfig, TimeSeriesRecorder

    fleet = XeonPhiFleet(topology)
    sim = fleet.sim
    rules = [parse_slo(s) for s in slos] if slos else default_slos()
    recorder = TimeSeriesRecorder.install(
        sim, TelemetryConfig(interval=interval), slos=rules)
    manager = FleetManager(fleet, max_in_flight=max_in_flight,
                           per_card_limit=per_card)
    if on_frame is not None and frame_every > 0:
        def _frame(rec):
            if rec.stats.ticks % frame_every == 0:
                on_frame(rec, manager)
        recorder.on_tick.append(_frame)
    if fail_card is not None:
        cards = fleet.cards()
        victim = cards[fail_card % len(cards)]
        injector = FaultInjector(sim)
        injector.schedule_card_failure(fleet.phi(victim),
                                       at=sim.now + fail_at)

    def driver():
        result = yield from fleet_sweep(fleet, manager,
                                        ops_per_card=ops_per_card)
        health = yield from manager.health_sweep()
        yield sim.timeout(settle)
        recorder.stop()
        return result, health

    result, health = fleet.run(driver())
    return recorder, manager, result, health


def render_top_frame(recorder, manager) -> str:
    """One dashboard frame: the per-card table + the firing-alert lines."""
    from ..metrics import ResultTable, fmt_time

    table = ResultTable(
        f"snapify top — t={recorder.sim.now:8.3f}s  "
        f"in-flight {manager.in_flight}  queued {manager.queue_depth()}  "
        f"tick {recorder.stats.ticks}",
        ["card", "in-flight", "ops", "failed", "p99 pause", "p99 total", "alerts"],
    )
    engine = recorder.engine
    firing_by_card = {}
    firing_global = []
    if engine is not None:
        for key, alert in sorted(engine.firing.items()):
            if alert.card is not None:
                firing_by_card.setdefault(alert.card, []).append(alert.rule)
            else:
                firing_global.append(f"{alert.rule}: {alert.detail}")
    counts = recorder.card_failure_counts()
    for card in recorder.cards():
        pause = recorder.phase_digest("pausing", card)
        total = recorder.phase_digest("total", card)
        n_ops, n_failed = counts.get(card, (0, 0))
        table.add_row(
            card,
            manager._per_card.get(card, 0),
            n_ops,
            n_failed,
            fmt_time(pause.p99) if pause is not None and pause.p99 is not None else "-",
            fmt_time(total.p99) if total is not None and total.p99 is not None else "-",
            ",".join(firing_by_card.get(card, [])) or "-",
        )
    for line in firing_global:
        table.add_note(f"ALERT {line}")
    if engine is not None and not engine.firing:
        table.add_note("no alerts firing")
    return table.render()


def top_command(args: argparse.Namespace) -> int:
    import json as _json

    from .export import prometheus_text, validate_prometheus_text

    def on_frame(recorder, manager):
        print()
        print(render_top_frame(recorder, manager))

    recorder, manager, result, health = run_top(
        topology=args.topology, ops_per_card=args.ops_per_card,
        max_in_flight=args.max_in_flight, per_card=args.per_card,
        interval=args.interval, settle=args.settle,
        fail_card=args.fail_card, fail_at=args.fail_at,
        slos=args.slo or None,
        on_frame=on_frame if args.frames > 0 else None,
        frame_every=max(1, recorder_ticks_per_frame(args)) if args.frames > 0 else 0,
    )
    print()
    print(render_top_frame(recorder, manager))
    engine = recorder.engine
    if engine is not None and engine.history:
        print()
        print("alert history:")
        for t, event, snap in engine.history:
            print(f"  {t:8.3f}s {event:7s} {snap['key']} ({snap['detail']})"
                  if event == "fire" else
                  f"  {t:8.3f}s {event:7s} {snap['key']}")

    if args.export == "prom":
        text = prometheus_text(manager.sim, telemetry=recorder)
        validate_prometheus_text(text)
        _write_or_print(text, args.out)
    elif args.export == "json":
        doc = recorder.describe()
        doc["fleet"] = manager.describe()
        _write_or_print(_json.dumps(doc, indent=2, sort_keys=True) + "\n", args.out)
    return 0 if result.ok or args.fail_card is not None else 1


def recorder_ticks_per_frame(args: argparse.Namespace) -> int:
    """Sample ticks between dashboard frames (~sweep seconds / frames)."""
    approx_run_s = 4.0 + args.settle
    return int(approx_run_s / max(args.interval, 1e-6) / max(args.frames, 1))


def _write_or_print(text: str, out: Optional[str]) -> None:
    if out:
        with open(out, "w") as fh:
            fh.write(text)
        print(f"wrote {out} ({len(text.splitlines())} lines)")
    else:
        print(text, end="")


def fuzz_command(args: argparse.Namespace) -> int:
    from ..check import fuzz, replay_artifact
    from ..check.scenarios import scenario_names

    if args.replay:
        art, result = replay_artifact(args.replay)
        print(f"replaying {art.scenario} seed={art.seed} faults={list(art.faults)}")
        print(result.summary())
        if result.waitfor:
            print("wait-for graph:")
            for edge in result.waitfor:
                print(f"  {edge['thread']} -> {edge['event']!r} (owner: {edge['owner']})")
        interesting = [o for o in result.operations
                       if o.get("state") != "DONE" or o.get("error")]
        if interesting:
            print("operations:")
            for o in interesting:
                line = (f"  op {o['op']} ({o['kind']}, pid {o['pid']}) "
                        f"state={o['state']}")
                if o.get("error"):
                    line += f" error={o['error']}"
                print(line)
        if result.ok:
            print("replay did NOT reproduce a failure (run is clean)")
            return 0
        return 1

    names = scenario_names()
    if args.scenario:
        matching = [n for n in names if n == args.scenario or
                    n.startswith(args.scenario + ":")]
        if not matching:
            print(f"unknown scenario {args.scenario!r} (have {names})", file=sys.stderr)
            return 2
        names = matching

    def progress(result):
        if args.verbose or not result.ok:
            print(result.summary())

    report = fuzz(
        scenarios=names,
        seeds=range(args.seeds),
        artifact_dir=args.artifact_dir,
        fail_fast=args.fail_fast,
        progress=progress,
    )
    print(report.summary())
    if not report.ok and report.artifact_paths:
        print("replay a failure with:")
        print(f"  PYTHONPATH=src python -m repro.obs.cli fuzz --replay "
              f"{report.artifact_paths[0]}")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="snapify", description="Snapify reproduction command-line tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    tr = sub.add_parser(
        "trace",
        help="run a traced Snapify operation and print its phase breakdown",
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    tr.add_argument("--scenario", choices=sorted(SCENARIOS), default="swapout",
                    help="operation to run (default: swapout)")
    tr.add_argument("--iterations", type=int, default=40,
                    help="application iterations before the operation (default 40)")
    tr.add_argument("--json", metavar="PATH", default=None,
                    help="write Chrome trace-event JSON to PATH")
    tr.add_argument("--metrics", action="store_true",
                    help="print the final metrics-registry snapshot")
    tr.add_argument("--sample-interval", type=float, default=0.01,
                    help="simulated seconds between metric samples "
                         "(0 disables counter tracks; default 0.01)")
    tr.set_defaults(fn=trace_command)
    fz = sub.add_parser(
        "fuzz",
        help="sweep protocol scenarios across perturbed schedules and check "
             "invariant oracles",
    )
    fz.add_argument("--seeds", type=int, default=10,
                    help="schedule seeds per scenario: 0..N-1 (default 10)")
    fz.add_argument("--scenario", default=None,
                    help="restrict to one scenario (e.g. migrate, "
                         "checkpoint_fault); default: all")
    fz.add_argument("--artifact-dir", default=None, metavar="DIR",
                    help="write a repro artifact per failure into DIR")
    fz.add_argument("--replay", default=None, metavar="ARTIFACT",
                    help="replay a failure artifact instead of sweeping")
    fz.add_argument("--fail-fast", action="store_true",
                    help="stop at the first failing run")
    fz.add_argument("--verbose", action="store_true",
                    help="print every run, not just failures")
    fz.set_defaults(fn=fuzz_command)
    fl = sub.add_parser(
        "fleet",
        help="drive a mixed checkpoint/swap/migrate sweep across a fleet "
             "topology and print the per-card outcome table",
    )
    fl.add_argument("--topology", default="rack8",
                    help="fleet topology name (default rack8; see "
                         "repro.testbed.FLEET_TOPOLOGIES)")
    fl.add_argument("--ops-per-card", type=int, default=4,
                    help="operations submitted per card (default 4)")
    fl.add_argument("--max-in-flight", type=int, default=8,
                    help="global admission cap (default 8)")
    fl.add_argument("--per-card", type=int, default=2,
                    help="per-card admission cap (default 2)")
    fl.add_argument("--metrics", action="store_true",
                    help="print the fleet's metrics instruments")
    fl.set_defaults(fn=fleet_command)
    tp = sub.add_parser(
        "top",
        help="telemetry-enabled fleet sweep with a live per-card dashboard "
             "(phase p99s, queue depths, firing alerts) and prom/json export",
    )
    tp.add_argument("--topology", default="rack8",
                    help="fleet topology name (default rack8)")
    tp.add_argument("--ops-per-card", type=int, default=2,
                    help="operations submitted per card (default 2)")
    tp.add_argument("--max-in-flight", type=int, default=8,
                    help="global admission cap (default 8)")
    tp.add_argument("--per-card", type=int, default=2,
                    help="per-card admission cap (default 2)")
    tp.add_argument("--interval", type=float, default=0.05,
                    help="simulated seconds between telemetry samples "
                         "(default 0.05)")
    tp.add_argument("--settle", type=float, default=1.0,
                    help="idle simulated seconds after the sweep so windowed "
                         "alerts can resolve (default 1.0)")
    tp.add_argument("--frames", type=int, default=3,
                    help="dashboard frames printed during the run "
                         "(0 = final frame only; default 3)")
    tp.add_argument("--fail-card", type=int, default=None, metavar="N",
                    help="inject a failure of the N-th fleet card")
    tp.add_argument("--fail-at", type=float, default=1.0,
                    help="simulated seconds after boot to fail the card "
                         "(default 1.0)")
    tp.add_argument("--slo", action="append", default=[], metavar="SPEC",
                    help='SLO override, repeatable (e.g. "pausing p99 < 50ms",'
                         ' "burn_rate < 0.25", "straggler z > 3.5")')
    tp.add_argument("--export", choices=("prom", "json"), default=None,
                    help="also emit Prometheus text or the JSON telemetry "
                         "summary")
    tp.add_argument("--out", default=None, metavar="PATH",
                    help="write the --export payload to PATH instead of stdout")
    tp.set_defaults(fn=top_command)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
