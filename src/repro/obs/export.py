"""Chrome trace-event (``chrome://tracing`` / Perfetto) export.

Converts a traced run into the JSON object format of the Trace Event spec:

* every span becomes an async begin/end pair (``ph: "b"`` / ``"e"``) keyed
  by its span id, placed on the lane of the simulated process that opened
  it (the ``proc`` field spans carry) — one lane per simulated process;
* ``metric.sample`` records become counter tracks (``ph: "C"``);
* every other trace record becomes an instant event (``ph: "i"``), so
  protocol markers like ``snapify.pause`` show up inline;
* process lanes are labeled with ``ph: "M"`` metadata events.

Simulated seconds map to trace microseconds (the spec's unit). The output
of :func:`chrome_trace` loads directly in Perfetto (ui.perfetto.dev) or
``chrome://tracing``; :func:`validate_trace_events` checks the structural
rules and is what CI's format test runs.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.trace import Tracer

#: Lane for records that carry no ``proc`` field (driver threads, hardware).
DEFAULT_LANE = "sim"

_VALID_PHASES = {"b", "e", "i", "C", "M", "X", "B", "E"}


def _jsonable(value: Any) -> Any:
    """Trace args must be JSON-serializable; repr() anything that isn't."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def chrome_trace(tracer: "Tracer", *, include_instants: bool = True) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for a traced run."""
    events: List[Dict[str, Any]] = []
    lanes: Dict[str, int] = {}
    open_spans: Dict[int, Dict[str, Any]] = {}  # span id -> its begin event
    last_ts = 0.0

    def lane(proc: str) -> int:
        pid = lanes.get(proc)
        if pid is None:
            pid = len(lanes) + 1
            lanes[proc] = pid
        return pid

    for rec in tracer.records:
        ts = rec.time * 1e6
        last_ts = max(last_ts, ts)
        f = rec.fields
        if rec.category == "span.begin":
            pid = lane(str(f.get("proc", DEFAULT_LANE)))
            args = {k: _jsonable(v) for k, v in f.items() if k not in ("span", "name")}
            begin = {
                "ph": "b", "cat": "span", "id": f["span"], "name": f["name"],
                "pid": pid, "tid": 0, "ts": ts, "args": args,
            }
            open_spans[f["span"]] = begin
            events.append(begin)
        elif rec.category == "span.end":
            # The end event must land on the same lane as its begin.
            begin = open_spans.pop(f["span"], None)
            pid = begin["pid"] if begin else lane(str(f.get("proc", DEFAULT_LANE)))
            args = {k: _jsonable(v) for k, v in f.items() if k not in ("span", "name")}
            events.append({
                "ph": "e", "cat": "span", "id": f["span"], "name": f["name"],
                "pid": pid, "tid": 0, "ts": ts, "args": args,
            })
        elif rec.category == "metric.sample":
            events.append({
                "ph": "C", "cat": "metric", "name": str(f["name"]),
                "pid": lane("metrics"), "tid": 0, "ts": ts,
                "args": {"value": f["value"]},
            })
        elif include_instants:
            pid = lane(str(f.get("proc", DEFAULT_LANE)))
            args = {k: _jsonable(v) for k, v in f.items()}
            events.append({
                "ph": "i", "cat": "trace", "name": rec.category, "s": "t",
                "pid": pid, "tid": 0, "ts": ts, "args": args,
            })

    # Spans still open when the trace was exported (a run stopped mid-
    # operation) get a synthetic end at the last timestamp, keeping every
    # async pair matched — viewers and the validator both require it.
    for begin in open_spans.values():
        events.append({
            "ph": "e", "cat": "span", "id": begin["id"], "name": begin["name"],
            "pid": begin["pid"], "tid": 0, "ts": last_ts,
            "args": {"unfinished": True},
        })

    metadata = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0,
         "args": {"name": proc}}
        for proc, pid in lanes.items()
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "spec": "trace-event-format"},
    }


def write_chrome_trace(tracer: "Tracer", path: str, **kwargs: Any) -> Dict[str, Any]:
    """Export and write to ``path``; returns the trace object."""
    doc = chrome_trace(tracer, **kwargs)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_trace_events(doc: Dict[str, Any]) -> int:
    """Check ``doc`` against the trace-event JSON-object structural rules.

    Raises :class:`ValueError` on the first violation; returns the event
    count. This is deliberately strict about what *we* promise to emit
    (matched async begin/end pairs, non-negative timestamps, JSON-clean
    args), not just what viewers tolerate.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace-event JSON object (missing 'traceEvents')")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    json.dumps(doc)  # must be losslessly serializable
    open_async: Dict[Any, Dict[str, Any]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            raise ValueError(f"event {i}: bad phase {ph!r}")
        if ph == "M":
            continue
        for key in ("pid", "tid", "ts"):
            if key not in ev:
                raise ValueError(f"event {i} ({ph}): missing {key!r}")
        if ev["ts"] < 0:
            raise ValueError(f"event {i}: negative timestamp {ev['ts']}")
        if "name" not in ev:
            raise ValueError(f"event {i} ({ph}): missing name")
        if ph in ("b", "e"):
            if "id" not in ev or "cat" not in ev:
                raise ValueError(f"event {i} ({ph}): async events need id and cat")
            key = (ev["cat"], ev["id"])
            if ph == "b":
                if key in open_async:
                    raise ValueError(f"event {i}: async id {key} begun twice")
                open_async[key] = ev
            else:
                begin = open_async.pop(key, None)
                if begin is None:
                    raise ValueError(f"event {i}: async end {key} without begin")
                if begin["name"] != ev["name"]:
                    raise ValueError(
                        f"event {i}: async end name {ev['name']!r} != "
                        f"begin name {begin['name']!r}"
                    )
                if ev["ts"] < begin["ts"]:
                    raise ValueError(f"event {i}: async end precedes its begin")
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                raise ValueError(f"event {i}: counter without numeric args.value")
    if open_async:
        names = sorted(str(ev["name"]) for ev in open_async.values())[:8]
        raise ValueError(f"{len(open_async)} async span(s) never ended: {names}")
    return len(events)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
#
# Dotted registry names become underscore-safe metric names; the structured
# middle segments the fleet uses ("<x>.card.<n0.mic1>.<rest>" and
# "<x>.prio.<label>.<rest>") are lifted into {card=...} / {priority=...}
# labels so per-card grouping works in any Prometheus-compatible UI.
# Histograms export with cumulative `le` buckets ending at +Inf (equal to
# _count) — the shape scrapers require; parse_prometheus_text /
# validate_prometheus_text round-trip that promise in CI.

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_CARD_SEG_RE = re.compile(r"^(?P<prefix>.+?)\.card\.(?P<card>n\d+\.mic\d+)\.(?P<rest>.+)$")
_PRIO_SEG_RE = re.compile(r"^(?P<prefix>.+?)\.prio\.(?P<prio>[a-z]+)\.(?P<rest>.+)$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _prom_name(name: str) -> str:
    return _PROM_NAME_RE.sub("_", name)


def _split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Lift structured ".card.<key>." / ".prio.<label>." segments into labels."""
    labels: Dict[str, str] = {}
    m = _CARD_SEG_RE.match(name)
    if m:
        labels["card"] = m.group("card")
        name = f"{m.group('prefix')}.{m.group('rest')}"
    m = _PRIO_SEG_RE.match(name)
    if m:
        labels["priority"] = m.group("prio")
        name = f"{m.group('prefix')}.{m.group('rest')}"
    return name, labels


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(sim: Any, telemetry: Any = None) -> str:
    """Prometheus text exposition of ``sim``'s registry (+ telemetry).

    Includes every counter, numeric gauge, and histogram in the
    :class:`~repro.obs.registry.MetricsRegistry`, and — when a
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` is installed (or
    passed explicitly) — per-phase/per-card latency quantile summaries
    and a ``snapify_alert_firing`` gauge per firing alert.
    """
    from .registry import MetricsRegistry

    if telemetry is None:
        telemetry = getattr(sim, "snapify_telemetry", None)
    reg = MetricsRegistry.of(sim)
    snap = reg.snapshot()
    # metric name -> (type, [(labels, value)]); insertion order = output order.
    metrics: Dict[str, Tuple[str, List[Tuple[Dict[str, str], float]]]] = {}

    def add(name: str, mtype: str, labels: Dict[str, str], value: float) -> None:
        entry = metrics.get(name)
        if entry is None:
            entry = metrics[name] = (mtype, [])
        entry[1].append((labels, value))

    for kind, mtype in (("counters", "counter"), ("gauges", "gauge")):
        for raw, value in snap[kind].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            base, labels = _split_labels(raw)
            add(_prom_name(base), mtype, labels, float(value))
    for raw, hist in sorted(reg.histograms.items()):
        base, labels = _split_labels(raw)
        name = _prom_name(base)
        for le, cum in hist.cumulative_buckets():
            ble = dict(labels)
            ble["le"] = _fmt_value(float(le))
            add(name + "_bucket", "histogram", ble, float(cum))
        add(name + "_sum", "histogram", dict(labels), float(hist.total))
        add(name + "_count", "histogram", dict(labels), float(hist.count))

    if telemetry is not None:
        for (phase, card), digest in sorted(
            telemetry.phase_latency.items(), key=lambda kv: (kv[0][0], kv[0][1] or "")
        ):
            labels = {"phase": phase}
            if card is not None:
                labels["card"] = card
            for q, value in (("0.5", digest.p50), ("0.95", digest.p95),
                             ("0.99", digest.p99)):
                if value is None:
                    continue
                ql = dict(labels)
                ql["quantile"] = q
                add("snapify_phase_latency_seconds", "summary", ql, float(value))
            add("snapify_phase_latency_seconds_sum", "summary", dict(labels),
                float(digest.total))
            add("snapify_phase_latency_seconds_count", "summary", dict(labels),
                float(digest.count))
        engine = getattr(telemetry, "engine", None)
        if engine is not None:
            for key, alert in sorted(engine.firing.items()):
                labels = {"rule": alert.rule, "key": key}
                if alert.card is not None:
                    labels["card"] = alert.card
                add("snapify_alert_firing", "gauge", labels, 1.0)

    lines: List[str] = []
    typed: set = set()
    for name, (mtype, samples) in metrics.items():
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if mtype in ("histogram", "summary") and name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        if base not in typed:
            typed.add(base)
            lines.append(f"# TYPE {base} {mtype}")
        for labels, value in samples:
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Tuple[Dict[str, str], Dict[str, List[Tuple[Dict[str, str], float]]]]:
    """Parse a text exposition back into ``(types, samples)``.

    ``types`` maps declared metric family names to their TYPE; ``samples``
    maps *sample* names (including ``_bucket``/``_sum``/``_count``) to
    ``(labels, value)`` lists. Raises :class:`ValueError` on malformed
    lines — this is the round-trip half of the scrapeability check.
    """
    types: Dict[str, str] = {}
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        labels: Dict[str, str] = {}
        if m.group("labels"):
            pairs = _LABEL_RE.findall(m.group("labels"))
            if not pairs:
                raise ValueError(f"line {lineno}: unparseable labels: {line!r}")
            labels = dict(pairs)
        raw = m.group("value")
        if raw == "+Inf":
            value = float("inf")
        elif raw == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(f"line {lineno}: non-numeric value: {line!r}")
        samples.setdefault(m.group("name"), []).append((labels, value))
    return types, samples


def validate_prometheus_text(text: str) -> int:
    """Structural scrapeability check; returns the total sample count.

    Verifies every sample belongs to a TYPE-declared family, and that
    each histogram label-set has cumulative, non-decreasing buckets with
    a ``+Inf`` bucket equal to its ``_count``. Raises
    :class:`ValueError` on the first violation.
    """
    types, samples = parse_prometheus_text(text)

    def family(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    total = 0
    for name, entries in samples.items():
        total += len(entries)
        if family(name) not in types:
            raise ValueError(f"sample {name!r} has no TYPE declaration")
    for fam, ftype in types.items():
        if ftype != "histogram":
            continue
        buckets = samples.get(fam + "_bucket", [])
        counts = samples.get(fam + "_count", [])
        groups: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        for labels, value in buckets:
            le = labels.get("le")
            if le is None:
                raise ValueError(f"{fam}_bucket sample without le label")
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            bound = float("inf") if le == "+Inf" else float(le)
            groups.setdefault(key, []).append((bound, value))
        count_by_key = {
            tuple(sorted(labels.items())): value for labels, value in counts
        }
        for key, seq in groups.items():
            seq.sort()
            if not seq or seq[-1][0] != float("inf"):
                raise ValueError(f"{fam}{dict(key)}: missing +Inf bucket")
            values = [v for _, v in seq]
            if any(b > a for a, b in zip(values[1:], values)):
                raise ValueError(f"{fam}{dict(key)}: buckets not cumulative")
            expected = count_by_key.get(key)
            if expected is not None and seq[-1][1] != expected:
                raise ValueError(
                    f"{fam}{dict(key)}: +Inf bucket {seq[-1][1]} != _count {expected}"
                )
    return total
