"""Chrome trace-event (``chrome://tracing`` / Perfetto) export.

Converts a traced run into the JSON object format of the Trace Event spec:

* every span becomes an async begin/end pair (``ph: "b"`` / ``"e"``) keyed
  by its span id, placed on the lane of the simulated process that opened
  it (the ``proc`` field spans carry) — one lane per simulated process;
* ``metric.sample`` records become counter tracks (``ph: "C"``);
* every other trace record becomes an instant event (``ph: "i"``), so
  protocol markers like ``snapify.pause`` show up inline;
* process lanes are labeled with ``ph: "M"`` metadata events.

Simulated seconds map to trace microseconds (the spec's unit). The output
of :func:`chrome_trace` loads directly in Perfetto (ui.perfetto.dev) or
``chrome://tracing``; :func:`validate_trace_events` checks the structural
rules and is what CI's format test runs.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.trace import Tracer

#: Lane for records that carry no ``proc`` field (driver threads, hardware).
DEFAULT_LANE = "sim"

_VALID_PHASES = {"b", "e", "i", "C", "M", "X", "B", "E"}


def _jsonable(value: Any) -> Any:
    """Trace args must be JSON-serializable; repr() anything that isn't."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def chrome_trace(tracer: "Tracer", *, include_instants: bool = True) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for a traced run."""
    events: List[Dict[str, Any]] = []
    lanes: Dict[str, int] = {}
    open_spans: Dict[int, Dict[str, Any]] = {}  # span id -> its begin event
    last_ts = 0.0

    def lane(proc: str) -> int:
        pid = lanes.get(proc)
        if pid is None:
            pid = len(lanes) + 1
            lanes[proc] = pid
        return pid

    for rec in tracer.records:
        ts = rec.time * 1e6
        last_ts = max(last_ts, ts)
        f = rec.fields
        if rec.category == "span.begin":
            pid = lane(str(f.get("proc", DEFAULT_LANE)))
            args = {k: _jsonable(v) for k, v in f.items() if k not in ("span", "name")}
            begin = {
                "ph": "b", "cat": "span", "id": f["span"], "name": f["name"],
                "pid": pid, "tid": 0, "ts": ts, "args": args,
            }
            open_spans[f["span"]] = begin
            events.append(begin)
        elif rec.category == "span.end":
            # The end event must land on the same lane as its begin.
            begin = open_spans.pop(f["span"], None)
            pid = begin["pid"] if begin else lane(str(f.get("proc", DEFAULT_LANE)))
            args = {k: _jsonable(v) for k, v in f.items() if k not in ("span", "name")}
            events.append({
                "ph": "e", "cat": "span", "id": f["span"], "name": f["name"],
                "pid": pid, "tid": 0, "ts": ts, "args": args,
            })
        elif rec.category == "metric.sample":
            events.append({
                "ph": "C", "cat": "metric", "name": str(f["name"]),
                "pid": lane("metrics"), "tid": 0, "ts": ts,
                "args": {"value": f["value"]},
            })
        elif include_instants:
            pid = lane(str(f.get("proc", DEFAULT_LANE)))
            args = {k: _jsonable(v) for k, v in f.items()}
            events.append({
                "ph": "i", "cat": "trace", "name": rec.category, "s": "t",
                "pid": pid, "tid": 0, "ts": ts, "args": args,
            })

    # Spans still open when the trace was exported (a run stopped mid-
    # operation) get a synthetic end at the last timestamp, keeping every
    # async pair matched — viewers and the validator both require it.
    for begin in open_spans.values():
        events.append({
            "ph": "e", "cat": "span", "id": begin["id"], "name": begin["name"],
            "pid": begin["pid"], "tid": 0, "ts": last_ts,
            "args": {"unfinished": True},
        })

    metadata = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0,
         "args": {"name": proc}}
        for proc, pid in lanes.items()
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "spec": "trace-event-format"},
    }


def write_chrome_trace(tracer: "Tracer", path: str, **kwargs: Any) -> Dict[str, Any]:
    """Export and write to ``path``; returns the trace object."""
    doc = chrome_trace(tracer, **kwargs)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_trace_events(doc: Dict[str, Any]) -> int:
    """Check ``doc`` against the trace-event JSON-object structural rules.

    Raises :class:`ValueError` on the first violation; returns the event
    count. This is deliberately strict about what *we* promise to emit
    (matched async begin/end pairs, non-negative timestamps, JSON-clean
    args), not just what viewers tolerate.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace-event JSON object (missing 'traceEvents')")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    json.dumps(doc)  # must be losslessly serializable
    open_async: Dict[Any, Dict[str, Any]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            raise ValueError(f"event {i}: bad phase {ph!r}")
        if ph == "M":
            continue
        for key in ("pid", "tid", "ts"):
            if key not in ev:
                raise ValueError(f"event {i} ({ph}): missing {key!r}")
        if ev["ts"] < 0:
            raise ValueError(f"event {i}: negative timestamp {ev['ts']}")
        if "name" not in ev:
            raise ValueError(f"event {i} ({ph}): missing name")
        if ph in ("b", "e"):
            if "id" not in ev or "cat" not in ev:
                raise ValueError(f"event {i} ({ph}): async events need id and cat")
            key = (ev["cat"], ev["id"])
            if ph == "b":
                if key in open_async:
                    raise ValueError(f"event {i}: async id {key} begun twice")
                open_async[key] = ev
            else:
                begin = open_async.pop(key, None)
                if begin is None:
                    raise ValueError(f"event {i}: async end {key} without begin")
                if begin["name"] != ev["name"]:
                    raise ValueError(
                        f"event {i}: async end name {ev['name']!r} != "
                        f"begin name {begin['name']!r}"
                    )
                if ev["ts"] < begin["ts"]:
                    raise ValueError(f"event {i}: async end precedes its begin")
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                raise ValueError(f"event {i}: counter without numeric args.value")
    if open_async:
        names = sorted(str(ev["name"]) for ev in open_async.values())[:8]
        raise ValueError(f"{len(open_async)} async span(s) never ended: {names}")
    return len(events)
