"""A per-simulator metrics registry: counters, gauges, histograms.

Modeled on gem5's standardized-stats idea: every subsystem publishes its
instruments under one registry per :class:`~repro.sim.kernel.Simulator`, so
any point of a run can be snapshot into a uniform, comparable dictionary —
the foundation for regression gating and cross-run comparison.

Design rules (the hot path pays for nothing):

* **Counters** are pushed by the instrumented site (``counter.inc(n)`` is a
  plain integer add) and are only placed on *event* paths — a pause, a swap
  decision, a daemon connection — never inside the kernel dispatch loop.
* **Gauges** are *pull-based*: a gauge is a callable evaluated only when a
  snapshot is taken, so instrumenting e.g. the PCIe link's cumulative byte
  count costs the hot path absolutely nothing (the link already keeps the
  attribute; the gauge just reads it later).
* **Histograms** keep bounded state (count/sum/min/max), never the samples.

This module deliberately imports nothing from :mod:`repro.sim`, so any layer
(including the kernel, if it ever wants to) can use it without cycles.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count (events, bytes, decisions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


#: Default bucket boundaries (seconds): spans sub-ms pauses to 10 s sweeps.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Bounded summary of a sample stream (count, sum, min, max, buckets).

    Buckets use Prometheus semantics: boundary ``b`` counts samples with
    ``value <= b``, plus an implicit ``+Inf`` bucket equal to ``count`` —
    :meth:`cumulative_buckets` renders exactly the shape a
    ``le``-labelled ``_bucket`` series needs, so the text exposition in
    :func:`repro.obs.export.prometheus_text` is actually scrapeable.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_bucket_counts")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        # Per-bucket (non-cumulative) counts; index len(buckets) is +Inf.
        self._bucket_counts: List[int] = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._bucket_counts[bisect_left(self.buckets, value)] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        acc = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            acc += n
            out.append((bound, acc))
        out.append((float("inf"), self.count))
        return out

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            # +Inf rendered as a string: bundles/artifacts must stay strict JSON.
            "buckets": [["+Inf" if le == float("inf") else le, n]
                        for le, n in self.cumulative_buckets()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean}>"


class MetricsRegistry:
    """All instruments of one simulator, keyed by dotted metric name."""

    #: Attribute the registry parks itself under on the Simulator instance.
    _ATTR = "metrics_registry"

    def __init__(self, sim: Any = None):
        self.sim = sim
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Callable[[], Any]] = {}
        self.histograms: Dict[str, Histogram] = {}

    @classmethod
    def of(cls, sim: Any) -> "MetricsRegistry":
        """The registry of ``sim``, created on first use."""
        reg = getattr(sim, cls._ATTR, None)
        if reg is None:
            reg = cls(sim)
            setattr(sim, cls._ATTR, reg)
        return reg

    # -- instrument factories ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = Counter(name)
            self.counters[name] = c
        return c

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register (or replace) a pull-based gauge provider."""
        self.gauges[name] = fn

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = Histogram(name, buckets=buckets or DEFAULT_BUCKETS)
            self.histograms[name] = h
        return h

    def unregister(self, name: str) -> None:
        self.counters.pop(name, None)
        self.gauges.pop(name, None)
        self.histograms.pop(name, None)

    # -- reading ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All instruments read at this instant of simulated time.

        Gauge providers that raise (e.g. reading a torn-down component) are
        reported as ``None`` rather than killing the snapshot.
        """
        gauges: Dict[str, Any] = {}
        for name, fn in self.gauges.items():
            try:
                gauges[name] = fn()
            except Exception:
                gauges[name] = None
        return {
            "time": getattr(self.sim, "now", 0.0),
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": dict(sorted(gauges.items())),
            "histograms": {n: h.summary() for n, h in sorted(self.histograms.items())},
        }

    def sample(self, tracer: Any, prefix: Optional[str] = None) -> None:
        """Emit one ``metric.sample`` trace record per numeric instrument.

        This is the bridge from the registry to the trace: sampled values
        become counter tracks in the Chrome trace-event export. Sampling is
        explicit (a sampler thread, a phase boundary) — the registry never
        emits on its own.
        """
        snap = self.snapshot()
        for kind in ("counters", "gauges"):
            for name, value in snap[kind].items():
                if prefix is not None and not name.startswith(prefix):
                    continue
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    tracer.emit("metric.sample", name=name, value=value)
