"""Declarative SLOs and an alert engine evaluated on each sample tick.

Rules are small objects with one job: look at the
:class:`~repro.obs.timeseries.TimeSeriesRecorder` and return the set of
currently-breaching alert keys. The :class:`SLOEngine` diffs that set
against what was firing on the previous tick and emits ``alert.fire`` /
``alert.resolve`` trace records on the transitions — so a trace of a
telemetry-enabled run carries the full alert history, and ``snapify top``
can show what is firing *now*.

Four rule families cover the paper's operational story:

* :class:`PercentileSLO` — "checkpoint pause p99 < X" style latency
  objectives over the phase digests (optionally per card);
* :class:`BurnRateSLO` — operation/ticket failure rate over a sliding
  window, the thing that lights up when a card dies mid-sweep;
* :class:`StragglerSLO` — per-card robust z-score of phase latency
  against the fleet median (MAD-based, same detector
  :meth:`~repro.snapify.fleet.HealthReport.stragglers` now uses);
* :class:`RedundancySLO` — replication-team strength: every
  ``replica.team.<t>.live`` gauge (registered by
  :class:`~repro.mpi.replication.HeartbeatDetector`) must stay at or
  above the declared replica count.

A compact string form (``"pausing p99 < 0.05"``) parses via
:func:`parse_slo` so CLI flags and configs can declare objectives without
touching Python.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .timeseries import TimeSeriesRecorder

#: Scale factor turning MAD into a consistent sigma estimate for normal data.
_MAD_SIGMA = 1.4826


def robust_zscores(values: Dict[str, float]) -> Dict[str, float]:
    """Robust (median/MAD) z-score per key; the fleet straggler detector.

    Uses the median absolute deviation scaled to sigma, which a single
    outlier cannot poison the way a mean/stddev z-score can. When MAD is
    zero (most samples identical) it falls back to a relative-to-median
    deviation so a lone huge outlier still scores high instead of
    dividing by zero.
    """
    if not values:
        return {}
    vals = sorted(values.values())
    n = len(vals)
    med = (vals[n // 2] if n % 2 else (vals[n // 2 - 1] + vals[n // 2]) / 2.0)
    devs = sorted(abs(v - med) for v in vals)
    mad = (devs[n // 2] if n % 2 else (devs[n // 2 - 1] + devs[n // 2]) / 2.0)
    scale = mad * _MAD_SIGMA
    out: Dict[str, float] = {}
    for key, v in values.items():
        if scale > 0:
            out[key] = (v - med) / scale
        elif med > 0:
            # Degenerate spread: score by relative deviation from the median.
            out[key] = (v - med) / med
        else:
            out[key] = 0.0
    return out


@dataclass(frozen=True)
class Breach:
    """One currently-breaching alert instance produced by a rule."""

    key: str            #: unique within the engine, e.g. "p99:pausing" or "straggler:n0.mic1"
    value: float        #: observed value
    threshold: float    #: the objective it crossed
    card: Optional[str] = None
    detail: str = ""


class SLORule:
    """Base class: subclasses implement :meth:`evaluate`."""

    name = "slo"

    def evaluate(self, recorder: "TimeSeriesRecorder", now: float) -> List[Breach]:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        return {"rule": self.name}


@dataclass
class PercentileSLO(SLORule):
    """``<phase> p<q> < max_seconds`` over the recorder's phase digests."""

    phase: str
    q: float = 99.0
    max_seconds: float = 0.1
    per_card: bool = False
    min_samples: int = 3

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"p{self.q:g}:{self.phase}"

    def evaluate(self, recorder: "TimeSeriesRecorder", now: float) -> List[Breach]:
        breaches: List[Breach] = []
        cards: List[Optional[str]] = recorder.cards() if self.per_card else [None]  # type: ignore[list-item]
        for card in cards:
            digest = recorder.phase_digest(self.phase, card)
            if digest is None or digest.count < self.min_samples:
                continue
            value = digest.percentile(self.q)
            if value is not None and value > self.max_seconds:
                key = self.name if card is None else f"{self.name}@{card}"
                breaches.append(Breach(
                    key=key, value=value, threshold=self.max_seconds, card=card,
                    detail=f"{self.phase} p{self.q:g}={value:.6f}s > {self.max_seconds:.6f}s",
                ))
        return breaches

    def describe(self) -> Dict[str, Any]:
        return {"rule": self.name, "phase": self.phase, "q": self.q,
                "max_seconds": self.max_seconds, "per_card": self.per_card}


@dataclass
class BurnRateSLO(SLORule):
    """Failure fraction over a sliding window of outcome counters.

    Prefers fleet ticket outcomes (which cover dead-card rejections that
    never become operations) and falls back to raw operation outcomes
    when no fleet is involved. Fires when, over the last ``window``
    simulated seconds, ``failed / total > max_rate`` with at least
    ``min_events`` outcomes in the window; resolves once the window
    drains past the failure burst.
    """

    max_rate: float = 0.25
    window: float = 0.5
    min_events: int = 2

    @property
    def name(self) -> str:  # type: ignore[override]
        return "burn_rate"

    def evaluate(self, recorder: "TimeSeriesRecorder", now: float) -> List[Breach]:
        source = "tickets" if recorder.tickets_total > 0 else "ops"
        total_s = recorder.series.get(f"telemetry.{source}_total")
        failed_s = recorder.series.get(f"telemetry.{source}_failed")
        if total_s is None or failed_s is None:
            return []
        total = total_s.delta(self.window, now)
        failed = failed_s.delta(self.window, now)
        if total < self.min_events or total <= 0:
            return []
        rate = failed / total
        if rate > self.max_rate:
            return [Breach(
                key=self.name, value=rate, threshold=self.max_rate,
                detail=f"{source} failure rate {rate:.2f} over {self.window:g}s "
                       f"({failed:g}/{total:g}) > {self.max_rate:.2f}",
            )]
        return []

    def describe(self) -> Dict[str, Any]:
        return {"rule": self.name, "max_rate": self.max_rate,
                "window": self.window, "min_events": self.min_events}


@dataclass
class StragglerSLO(SLORule):
    """Per-card phase-latency robust z-score vs. the fleet median."""

    phase: str = "total"
    q: float = 99.0
    max_z: float = 3.5
    min_cards: int = 3
    min_samples: int = 2
    #: Absolute deviation floor (seconds).  A fleet whose cards agree to
    #: within microseconds has a microscopic MAD, which turns harmless
    #: jitter into astronomical z-scores; a straggler must also be this
    #: far above the median in real time to count.
    min_spread: float = 0.010

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"straggler:{self.phase}"

    def evaluate(self, recorder: "TimeSeriesRecorder", now: float) -> List[Breach]:
        per_card: Dict[str, float] = {}
        for card in recorder.cards():
            digest = recorder.phase_digest(self.phase, card)
            if digest is None or digest.count < self.min_samples:
                continue
            value = digest.percentile(self.q)
            if value is not None:
                per_card[card] = value
        if len(per_card) < self.min_cards:
            return []
        median = sorted(per_card.values())[len(per_card) // 2]
        breaches: List[Breach] = []
        for card, z in sorted(robust_zscores(per_card).items()):
            if z > self.max_z and per_card[card] - median > self.min_spread:
                breaches.append(Breach(
                    key=f"{self.name}@{card}", value=z, threshold=self.max_z, card=card,
                    detail=f"{self.phase} p{self.q:g} z={z:.2f} > {self.max_z:.2f} "
                           f"vs fleet of {len(per_card)} cards",
                ))
        return breaches

    def describe(self) -> Dict[str, Any]:
        return {"rule": self.name, "phase": self.phase, "q": self.q,
                "max_z": self.max_z, "min_cards": self.min_cards,
                "min_spread": self.min_spread}


@dataclass
class RedundancySLO(SLORule):
    """``replicas >= N``: every replication team keeps ``min_live`` replicas.

    Scans the ``replica.team.<t>.live`` gauge series a
    :class:`~repro.mpi.replication.HeartbeatDetector` registers. A team
    running below strength fires one alert per team; the alert resolves
    the tick after a re-seed restores the team (or the job ends and the
    recorder stops sampling new values below the bound).
    """

    min_live: int = 2

    _SERIES_RE = re.compile(r"^replica\.team\.(\d+)\.live$")

    @property
    def name(self) -> str:  # type: ignore[override]
        return "redundancy"

    def evaluate(self, recorder: "TimeSeriesRecorder", now: float) -> List[Breach]:
        breaches: List[Breach] = []
        for series_name, series in sorted(recorder.series.items()):
            m = self._SERIES_RE.match(series_name)
            if m is None:
                continue
            value = series.latest()
            if value is None or value >= self.min_live:
                continue
            team = m.group(1)
            breaches.append(Breach(
                key=f"{self.name}:team{team}", value=value,
                threshold=float(self.min_live),
                detail=f"team {team} live replicas {value:g} < {self.min_live}",
            ))
        return breaches

    def describe(self) -> Dict[str, Any]:
        return {"rule": self.name, "min_live": self.min_live}


_SLO_RE = re.compile(
    r"^\s*(?P<phase>[\w.]+)\s+p(?P<q>\d+(?:\.\d+)?)\s*<\s*(?P<max>\d+(?:\.\d+)?)\s*(?P<unit>ms|s)?\s*$"
)


def parse_slo(spec: str) -> SLORule:
    """Parse the compact string forms used by CLI flags.

    * ``"pausing p99 < 50ms"`` / ``"transferring p95 < 0.4s"`` →
      :class:`PercentileSLO` (bare numbers are seconds);
    * ``"burn_rate < 0.25"`` → :class:`BurnRateSLO`;
    * ``"straggler z > 3.5"`` → :class:`StragglerSLO`;
    * ``"replicas >= 2"`` → :class:`RedundancySLO`.
    """
    text = spec.strip()
    m = re.match(r"^replicas\s*>=\s*(\d+)$", text)
    if m:
        return RedundancySLO(min_live=int(m.group(1)))
    m = re.match(r"^burn_rate\s*<\s*(\d+(?:\.\d+)?)$", text)
    if m:
        return BurnRateSLO(max_rate=float(m.group(1)))
    m = re.match(r"^straggler\s+z\s*>\s*(\d+(?:\.\d+)?)$", text)
    if m:
        return StragglerSLO(max_z=float(m.group(1)))
    m = _SLO_RE.match(text)
    if m:
        bound = float(m.group("max"))
        if m.group("unit") == "ms":
            bound /= 1000.0
        return PercentileSLO(phase=m.group("phase"), q=float(m.group("q")),
                             max_seconds=bound)
    raise ValueError(f"unparseable SLO spec: {spec!r}")


def default_slos() -> List[SLORule]:
    """The stock objectives ``snapify top`` runs with.

    Pause-time is Snapify's headline metric (Figs. 9/10): hold the
    pausing-phase p99 under 150 ms, flag any failure burn over 25% in a
    half-second window, and flag cards whose end-to-end p99 sits 3.5
    robust sigmas above the fleet.
    """
    return [
        PercentileSLO(phase="pausing", q=99.0, max_seconds=0.150),
        BurnRateSLO(max_rate=0.25, window=0.5),
        StragglerSLO(phase="total", q=99.0, max_z=3.5),
    ]


@dataclass
class Alert:
    """Engine-side state for one alert key."""

    key: str
    rule: str
    firing: bool
    since: float
    value: float
    threshold: float
    card: Optional[str] = None
    detail: str = ""
    resolved_at: Optional[float] = None

    def describe(self) -> Dict[str, Any]:
        return {
            "key": self.key, "rule": self.rule, "firing": self.firing,
            "since": self.since, "value": self.value, "threshold": self.threshold,
            "card": self.card, "detail": self.detail, "resolved_at": self.resolved_at,
        }


class SLOEngine:
    """Evaluates rules each tick; tracks firing state; emits transitions."""

    def __init__(self, rules: List[SLORule]):
        self.rules = list(rules)
        self.firing: Dict[str, Alert] = {}
        #: Full transition history: (time, "fire"|"resolve", Alert snapshot dict).
        self.history: List[Tuple[float, str, Dict[str, Any]]] = []

    def evaluate(self, recorder: "TimeSeriesRecorder", now: float) -> List[Alert]:
        """One tick: diff breaches against firing state, emit transitions."""
        trace = getattr(recorder.sim, "trace", None)
        current: Dict[str, Tuple[SLORule, Breach]] = {}
        for rule in self.rules:
            for breach in rule.evaluate(recorder, now):
                current[breach.key] = (rule, breach)
        # Fires and refreshes.
        for key, (rule, breach) in sorted(current.items()):
            alert = self.firing.get(key)
            if alert is None:
                alert = Alert(key=key, rule=rule.name, firing=True, since=now,
                              value=breach.value, threshold=breach.threshold,
                              card=breach.card, detail=breach.detail)
                self.firing[key] = alert
                self.history.append((now, "fire", alert.describe()))
                if trace is not None:
                    trace.emit("alert.fire", key=key, rule=rule.name,
                               value=breach.value, threshold=breach.threshold,
                               card=breach.card, detail=breach.detail)
            else:
                alert.value = breach.value
                alert.detail = breach.detail
        # Resolves.
        for key in sorted(set(self.firing) - set(current)):
            alert = self.firing.pop(key)
            alert.firing = False
            alert.resolved_at = now
            self.history.append((now, "resolve", alert.describe()))
            if trace is not None:
                trace.emit("alert.resolve", key=key, rule=alert.rule,
                           since=alert.since, card=alert.card)
        return list(self.firing.values())

    def fired_keys(self) -> List[str]:
        """Every key that ever fired (including since-resolved), sorted."""
        return sorted({entry[2]["key"] for entry in self.history if entry[1] == "fire"})

    def describe(self) -> Dict[str, Any]:
        return {
            "rules": [r.describe() for r in self.rules],
            "firing": [a.describe() for _, a in sorted(self.firing.items())],
            "history": [
                {"time": t, "event": ev, **snap} for t, ev, snap in self.history
            ],
        }
