"""Observability layer: spans, metrics, phase breakdowns, trace export.

Built on the span API of :mod:`repro.sim.trace` (begin/end records with
causal parent ids), this package provides what the paper's evaluation
needed by hand:

* :class:`MetricsRegistry` — per-simulator counters / gauges / histograms,
  snapshotable at any simulated time (gem5-style standardized stats);
* :class:`PhaseBreakdown` / :func:`build_span_tree` — rebuild the causal
  span tree of a checkpoint/restart and render the Figure 9/10-style
  component table;
* :func:`chrome_trace` / :func:`write_chrome_trace` /
  :func:`validate_trace_events` — Chrome trace-event JSON export, one lane
  per simulated process plus counter tracks;
* the ``snapify trace`` CLI (:mod:`repro.obs.cli`).

See docs/observability.md for the span model and the determinism rules.
"""

from .export import chrome_trace, validate_trace_events, write_chrome_trace
from .phases import (
    OperationTimeline,
    PhaseBreakdown,
    SpanNode,
    build_span_tree,
    operation_table,
    operation_timelines,
)
from .registry import Counter, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "OperationTimeline",
    "PhaseBreakdown",
    "SpanNode",
    "build_span_tree",
    "chrome_trace",
    "operation_table",
    "operation_timelines",
    "validate_trace_events",
    "write_chrome_trace",
]
