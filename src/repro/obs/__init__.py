"""Observability layer: spans, metrics, time series, SLOs, trace export.

Built on the span API of :mod:`repro.sim.trace` (begin/end records with
causal parent ids), this package provides what the paper's evaluation
needed by hand:

* :class:`MetricsRegistry` — per-simulator counters / gauges / histograms,
  snapshotable at any simulated time (gem5-style standardized stats);
* :class:`PhaseBreakdown` / :func:`build_span_tree` — rebuild the causal
  span tree of a checkpoint/restart and render the Figure 9/10-style
  component table;
* :class:`TimeSeriesRecorder` — sim-clock sampler folding the registry
  into ring-buffered series with exact phase-latency percentiles;
* :class:`SLOEngine` + rule classes — declarative objectives evaluated
  each sample tick, emitting ``alert.fire``/``alert.resolve`` records;
* :class:`FlightRecorder` / :func:`postmortem_bundle` — bounded
  last-N-records rings dumped as post-mortem bundles on failures;
* :func:`chrome_trace` / :func:`prometheus_text` — Chrome trace-event
  JSON and Prometheus text exports, with structural validators;
* the ``snapify trace`` / ``snapify top`` CLI (:mod:`repro.obs.cli`).

See docs/observability.md for the span model and the determinism rules.
"""

from .export import (
    chrome_trace,
    parse_prometheus_text,
    prometheus_text,
    validate_prometheus_text,
    validate_trace_events,
    write_chrome_trace,
)
from .phases import (
    OperationTimeline,
    PhaseBreakdown,
    SpanNode,
    build_span_tree,
    operation_table,
    operation_timelines,
)
from .recorder import FlightRecorder, postmortem_bundle
from .registry import Counter, Histogram, MetricsRegistry
from .slo import (
    BurnRateSLO,
    PercentileSLO,
    SLOEngine,
    SLORule,
    StragglerSLO,
    default_slos,
    parse_slo,
    robust_zscores,
)
from .timeseries import (
    PercentileDigest,
    Series,
    TelemetryConfig,
    TimeSeriesRecorder,
)

__all__ = [
    "BurnRateSLO",
    "Counter",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "OperationTimeline",
    "PercentileDigest",
    "PercentileSLO",
    "PhaseBreakdown",
    "SLOEngine",
    "SLORule",
    "Series",
    "SpanNode",
    "StragglerSLO",
    "TelemetryConfig",
    "TimeSeriesRecorder",
    "build_span_tree",
    "chrome_trace",
    "default_slos",
    "operation_table",
    "operation_timelines",
    "parse_prometheus_text",
    "parse_slo",
    "postmortem_bundle",
    "prometheus_text",
    "robust_zscores",
    "validate_prometheus_text",
    "validate_trace_events",
    "write_chrome_trace",
]
