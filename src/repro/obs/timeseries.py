"""Sim-clock time-series telemetry: ring-buffered series + exact percentiles.

PR 2's :class:`~repro.obs.registry.MetricsRegistry` is pull-based — a
snapshot is one instant. This module adds the *time* dimension: a
:class:`TimeSeriesRecorder` runs a daemon sampler thread on the simulated
clock, folding every numeric instrument into a bounded :class:`Series`
ring buffer with windowed aggregation (``rate``, ``delta``, ``ewma``),
and keeps exact streaming percentiles (p50/p95/p99) over operation-phase
latencies fed from ``op.state`` transitions via
:meth:`TimeSeriesRecorder.observe_operation`.

Design rules, matching the rest of ``repro.obs``:

* **Inert when absent.** Nothing in the stack imports or installs the
  recorder by default; instrumented sites reach it through
  ``getattr(sim, "snapify_telemetry", None)`` — one attribute read when
  telemetry is off, zero trace records, golden trace byte-identical.
* **Deterministic.** The sampler ticks on ``sim.timeout`` like any other
  thread, so a telemetry-enabled run is exactly as reproducible as the
  run itself; no wall-clock, no randomness.
* **Bounded.** Series are ``deque(maxlen=...)`` rings; percentile digests
  keep a sorted list capped at ``TelemetryConfig.percentile_cap`` samples
  (exact until the cap, which no simulated run here approaches).

This module imports only from ``repro.sim``-free code plus the local
registry, keeping the obs package cycle-free.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from .registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from .slo import SLOEngine, SLORule


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for the sampler; defaults suit second-scale Snapify runs."""

    #: Simulated seconds between samples.
    interval: float = 0.05
    #: Ring length per series (samples retained).
    ring: int = 512
    #: Hard cap on retained percentile samples per (phase, card) digest.
    percentile_cap: int = 100_000
    #: EWMA smoothing factor used by :meth:`Series.ewma` when unspecified.
    ewma_alpha: float = 0.3


class Series:
    """A bounded (time, value) ring with windowed aggregation."""

    __slots__ = ("name", "_buf")

    def __init__(self, name: str, maxlen: int = 512):
        self.name = name
        self._buf: deque = deque(maxlen=maxlen)

    def append(self, t: float, value: float) -> None:
        self._buf.append((t, value))

    def __len__(self) -> int:
        return len(self._buf)

    def points(self) -> List[Tuple[float, float]]:
        return list(self._buf)

    def latest(self) -> Optional[float]:
        return self._buf[-1][1] if self._buf else None

    def latest_time(self) -> Optional[float]:
        return self._buf[-1][0] if self._buf else None

    def window(self, seconds: float, now: Optional[float] = None) -> List[Tuple[float, float]]:
        """Points with ``now - seconds <= t <= now`` (``now`` defaults to
        the last sample, making the upper bound a no-op on live reads)."""
        if not self._buf:
            return []
        if now is None:
            now = self._buf[-1][0]
        cutoff = now - seconds
        return [(t, v) for t, v in self._buf if cutoff <= t <= now]

    def delta(self, seconds: float, now: Optional[float] = None) -> float:
        """last - first value over the window (0.0 with fewer than 2 points)."""
        pts = self.window(seconds, now)
        if len(pts) < 2:
            return 0.0
        return pts[-1][1] - pts[0][1]

    def rate(self, seconds: float, now: Optional[float] = None) -> float:
        """delta / elapsed over the window, in value-units per simulated second."""
        pts = self.window(seconds, now)
        if len(pts) < 2:
            return 0.0
        dt = pts[-1][0] - pts[0][0]
        if dt <= 0:
            return 0.0
        return (pts[-1][1] - pts[0][1]) / dt

    def ewma(self, alpha: float = 0.3) -> Optional[float]:
        """Exponentially weighted moving average over the whole ring."""
        acc: Optional[float] = None
        for _, v in self._buf:
            acc = v if acc is None else alpha * v + (1.0 - alpha) * acc
        return acc


class PercentileDigest:
    """Exact streaming percentiles via an insertion-sorted sample list.

    Exact (nearest-rank with linear interpolation) as long as the stream
    stays under ``cap`` samples; past the cap new samples are dropped and
    :attr:`saturated` flips so exporters can flag the digest as truncated.
    """

    __slots__ = ("name", "cap", "count", "total", "saturated", "_sorted")

    def __init__(self, name: str, cap: int = 100_000):
        self.name = name
        self.cap = cap
        self.count = 0
        self.total = 0.0
        self.saturated = False
        self._sorted: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self._sorted) < self.cap:
            insort(self._sorted, value)
        else:
            self.saturated = True

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (q in [0, 100]), interpolated between ranks."""
        s = self._sorted
        if not s:
            return None
        if len(s) == 1:
            return s[0]
        rank = (q / 100.0) * (len(s) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(s) - 1)
        frac = rank - lo
        return s[lo] * (1.0 - frac) + s[hi] * frac

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50.0)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(95.0)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(99.0)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def count_le(self, bound: float) -> int:
        """Samples <= bound among those retained (cumulative-bucket helper)."""
        return bisect_right(self._sorted, bound)

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "saturated": self.saturated,
        }


@dataclass
class TickStats:
    """Bookkeeping the sampler exposes for overhead accounting/tests."""

    ticks: int = 0
    last_time: float = 0.0


class TimeSeriesRecorder:
    """Samples the registry on the sim clock; owns phase-latency digests.

    Install with :meth:`install` (spawns the daemon sampler thread and
    parks the recorder on ``sim.snapify_telemetry``); instrumented sites
    discover it with :meth:`peek` — a plain ``getattr`` that costs nothing
    when telemetry is off. Call :meth:`stop` before letting a driver
    settle with ``sim.run(check_deadlock=True)``: the sampler's pending
    timeout would otherwise keep the event heap non-empty forever.
    """

    _ATTR = "snapify_telemetry"

    def __init__(self, sim: Any, config: Optional[TelemetryConfig] = None,
                 slos: Optional[List["SLORule"]] = None):
        self.sim = sim
        self.config = config or TelemetryConfig()
        self.series: Dict[str, Series] = {}
        #: (phase, card-or-None) -> digest of phase latencies in sim seconds.
        self.phase_latency: Dict[Tuple[str, Optional[str]], PercentileDigest] = {}
        self.stats = TickStats()
        #: Frame callbacks invoked after each sample tick (``snapify top``).
        self.on_tick: List[Callable[["TimeSeriesRecorder"], None]] = []
        self._stopped = False
        # Internal outcome counters the burn-rate SLO reads as series.
        self.ops_total = 0
        self.ops_failed = 0
        self.tickets_total = 0
        self.tickets_failed = 0
        self._card_ops: Dict[str, int] = {}
        self._card_failed: Dict[str, int] = {}
        self.engine: Optional["SLOEngine"] = None
        if slos is not None:
            from .slo import SLOEngine
            self.engine = SLOEngine(slos)

    # -- lifecycle ----------------------------------------------------------------
    @classmethod
    def install(cls, sim: Any, config: Optional[TelemetryConfig] = None,
                slos: Optional[List["SLORule"]] = None) -> "TimeSeriesRecorder":
        """Create, park on the sim, and start the sampler thread."""
        rec = cls(sim, config, slos)
        setattr(sim, cls._ATTR, rec)
        sim.spawn(rec._sampler(), name="telemetry.sampler", daemon=True)
        return rec

    @classmethod
    def peek(cls, sim: Any) -> Optional["TimeSeriesRecorder"]:
        """The installed recorder, or None — the zero-cost discovery path."""
        return getattr(sim, cls._ATTR, None)

    def stop(self) -> None:
        """Stop sampling after the current tick; keeps collected data readable."""
        self._stopped = True

    def _sampler(self):
        interval = self.config.interval
        while not self._stopped:
            yield self.sim.timeout(interval)
            if self._stopped:
                break
            self.sample_tick()

    # -- sampling -----------------------------------------------------------------
    def _series(self, name: str) -> Series:
        s = self.series.get(name)
        if s is None:
            s = Series(name, maxlen=self.config.ring)
            self.series[name] = s
        return s

    def sample_tick(self) -> None:
        """Fold one registry snapshot into the rings; evaluate SLOs."""
        snap = MetricsRegistry.of(self.sim).snapshot()
        now = snap["time"]
        for kind in ("counters", "gauges"):
            for name, value in snap[kind].items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    self._series(name).append(now, value)
        for name, summ in snap["histograms"].items():
            self._series(name + ".count").append(now, summ["count"])
            self._series(name + ".sum").append(now, summ["sum"])
        # Outcome counters as series, so SLO rules get windowed burn rates.
        self._series("telemetry.ops_total").append(now, self.ops_total)
        self._series("telemetry.ops_failed").append(now, self.ops_failed)
        self._series("telemetry.tickets_total").append(now, self.tickets_total)
        self._series("telemetry.tickets_failed").append(now, self.tickets_failed)
        self.stats.ticks += 1
        self.stats.last_time = now
        if self.engine is not None:
            self.engine.evaluate(self, now)
        for cb in list(self.on_tick):
            cb(self)

    # -- operation / ticket feeds ---------------------------------------------------
    def observe_operation(self, op: Any) -> None:
        """Fold a finished operation's phase latencies into the digests.

        Called by ``SnapifyOperation._finalize`` through the ``peek`` hook;
        ``op`` provides ``result`` (with ``phases``/``duration``/``ok``)
        and ``card``.
        """
        result = getattr(op, "result", None)
        if result is None:
            return
        card = getattr(op, "card", None)
        self.ops_total += 1
        if not result.ok:
            self.ops_failed += 1
        if card is not None:
            self._card_ops[card] = self._card_ops.get(card, 0) + 1
            if not result.ok:
                self._card_failed[card] = self._card_failed.get(card, 0) + 1
        for phase, seconds in result.phases.items():
            self._digest(phase, None).observe(seconds)
            if card is not None:
                self._digest(phase, card).observe(seconds)
        self._digest("total", None).observe(result.elapsed)
        if card is not None:
            self._digest("total", card).observe(result.elapsed)

    def observe_ticket(self, ticket: Any) -> None:
        """Fold a fleet ticket outcome (covers failures with no op, e.g. a
        dead card rejecting the spawn before an operation exists)."""
        self.tickets_total += 1
        if getattr(ticket, "error", None) is not None:
            self.tickets_failed += 1

    # -- reading ------------------------------------------------------------------
    def _digest(self, phase: str, card: Optional[str]) -> PercentileDigest:
        key = (phase, card)
        d = self.phase_latency.get(key)
        if d is None:
            label = phase if card is None else f"{phase}@{card}"
            d = PercentileDigest(label, cap=self.config.percentile_cap)
            self.phase_latency[key] = d
        return d

    def phase_digest(self, phase: str, card: Optional[str] = None) -> Optional[PercentileDigest]:
        return self.phase_latency.get((phase, card))

    def cards(self) -> List[str]:
        """All card keys seen in phase digests, sorted."""
        return sorted({c for (_, c) in self.phase_latency if c is not None})

    def phases(self) -> List[str]:
        return sorted({p for (p, _) in self.phase_latency})

    def card_failure_counts(self) -> Dict[str, Tuple[int, int]]:
        """card -> (ops seen, ops failed)."""
        return {c: (n, self._card_failed.get(c, 0)) for c, n in sorted(self._card_ops.items())}

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary: series tails, per-phase/card digests, alerts."""
        doc: Dict[str, Any] = {
            "time": getattr(self.sim, "now", 0.0),
            "ticks": self.stats.ticks,
            "interval": self.config.interval,
            "series": {
                name: {
                    "latest": s.latest(),
                    "ewma": s.ewma(self.config.ewma_alpha),
                    "points": len(s),
                }
                for name, s in sorted(self.series.items())
            },
            "phase_latency": {
                (phase if card is None else f"{phase}@{card}"): d.summary()
                for (phase, card), d in sorted(
                    self.phase_latency.items(), key=lambda kv: (kv[0][0], kv[0][1] or "")
                )
            },
            "operations": {"total": self.ops_total, "failed": self.ops_failed},
            "tickets": {"total": self.tickets_total, "failed": self.tickets_failed},
        }
        if self.engine is not None:
            doc["alerts"] = self.engine.describe()
        return doc
