"""Bounded flight recorder: the last N trace records, ready for post-mortem.

A fuzz failure or an operation death is only debuggable if you can see
what the system was doing *just before* — but keeping a full trace of a
4500-run fuzz sweep is not an option. The :class:`FlightRecorder`
attaches as a tracer sink and keeps a bounded ring (``deque(maxlen=N)``)
of records per category; :func:`postmortem_bundle` assembles those rings
with the active-operation table, firing-alert state, and a metrics
snapshot into one JSON-safe dict that rides inside fuzz repro artifacts
(``repro_*.json`` → ``postmortem``) and is dumped beside them as
``*.flight.json``.

Like the rest of the telemetry stack it is strictly opt-in: nothing
installs a recorder by default, and an uninstalled recorder costs zero —
``postmortem_bundle`` can still synthesize a bundle from a captured
tracer after the fact.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .export import _jsonable
from .registry import MetricsRegistry

#: Bundle schema version, bumped on incompatible shape changes.
BUNDLE_FORMAT = 1


def _record_dict(rec: Any) -> Dict[str, Any]:
    return {
        "time": rec.time,
        "category": rec.category,
        "fields": {k: _jsonable(v) for k, v in rec.fields.items()},
    }


def _safe_metrics(sim: Any) -> Dict[str, Any]:
    snap = MetricsRegistry.of(sim).snapshot()
    snap["gauges"] = {k: _jsonable(v) for k, v in snap["gauges"].items()}
    return snap


class FlightRecorder:
    """Keeps the last ``per_category`` trace records of every category.

    Install with :meth:`install`; the recorder registers itself as a sink
    on ``sim.trace`` (sinks only see *emitted* records, so with tracing
    disabled the recorder sees nothing and costs nothing). Operation
    failures are additionally latched via :meth:`note_failure` from
    ``SnapifyOperation._finalize`` so the bundle names the casualties
    even when their records have already rotated out of the rings.
    """

    _ATTR = "snapify_flight_recorder"

    def __init__(self, sim: Any, per_category: int = 64, max_failures: int = 32):
        self.sim = sim
        self.per_category = per_category
        self.events: Dict[str, Deque[Any]] = {}
        self.failures: Deque[Dict[str, Any]] = deque(maxlen=max_failures)
        self.dropped: Dict[str, int] = {}
        tracer = getattr(sim, "trace", None)
        if tracer is not None and hasattr(tracer, "sinks"):
            tracer.sinks.append(self._sink)

    @classmethod
    def install(cls, sim: Any, per_category: int = 64) -> "FlightRecorder":
        rec = getattr(sim, cls._ATTR, None)
        if rec is None:
            rec = cls(sim, per_category=per_category)
            setattr(sim, cls._ATTR, rec)
        return rec

    @classmethod
    def peek(cls, sim: Any) -> Optional["FlightRecorder"]:
        return getattr(sim, cls._ATTR, None)

    # -- feeds --------------------------------------------------------------
    def _sink(self, rec: Any) -> None:
        ring = self.events.get(rec.category)
        if ring is None:
            ring = self.events[rec.category] = deque(maxlen=self.per_category)
        elif len(ring) == self.per_category:
            self.dropped[rec.category] = self.dropped.get(rec.category, 0) + 1
        ring.append(rec)

    def note_failure(self, op: Any) -> None:
        """Latch a failed operation's summary (called from the op machine)."""
        entry = dict(op.describe())
        entry["time"] = getattr(self.sim, "now", 0.0)
        if getattr(op, "card", None) is not None:
            entry["card"] = op.card
        self.failures.append(entry)

    # -- output -------------------------------------------------------------
    def bundle(self) -> Dict[str, Any]:
        """The JSON-safe post-mortem bundle for this simulator, now."""
        doc: Dict[str, Any] = {
            "format": BUNDLE_FORMAT,
            "time": getattr(self.sim, "now", 0.0),
            "events": {
                cat: [_record_dict(r) for r in ring]
                for cat, ring in sorted(self.events.items())
            },
            "dropped": dict(sorted(self.dropped.items())),
            "failures": list(self.failures),
            "active_ops": _active_ops(self.sim),
            "alerts": _alert_state(self.sim),
            "metrics": _safe_metrics(self.sim),
        }
        return doc


def _active_ops(sim: Any) -> List[Dict[str, Any]]:
    mgr = getattr(sim, "snapify_operations", None)
    return mgr.describe_pending() if mgr is not None else []


def _alert_state(sim: Any) -> Optional[Dict[str, Any]]:
    telem = getattr(sim, "snapify_telemetry", None)
    engine = getattr(telem, "engine", None) if telem is not None else None
    return engine.describe() if engine is not None else None


def postmortem_bundle(sim: Any, recent: int = 64) -> Dict[str, Any]:
    """A bundle for ``sim`` whether or not a recorder was installed.

    With a :class:`FlightRecorder` installed this is its live rings;
    otherwise the tail of the captured trace (last ``recent`` records per
    category) is synthesized into the same shape, so fuzz failure paths
    always produce a bundle.
    """
    fr = FlightRecorder.peek(sim)
    if fr is not None:
        return fr.bundle()
    events: Dict[str, Deque[Any]] = {}
    tracer = getattr(sim, "trace", None)
    for rec in getattr(tracer, "records", []) or []:
        ring = events.get(rec.category)
        if ring is None:
            ring = events[rec.category] = deque(maxlen=recent)
        ring.append(rec)
    return {
        "format": BUNDLE_FORMAT,
        "time": getattr(sim, "now", 0.0),
        "events": {
            cat: [_record_dict(r) for r in ring]
            for cat, ring in sorted(events.items())
        },
        "dropped": {},
        "failures": [],
        "active_ops": _active_ops(sim),
        "alerts": _alert_state(sim),
        "metrics": _safe_metrics(sim),
    }
