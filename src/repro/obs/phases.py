"""Span trees and phase-breakdown reports.

The paper's evaluation (§7, Figures 9-11) decomposes checkpoint and restart
latency into pause / capture / transfer / resume components. This module
rebuilds that decomposition from the span records a traced run emits:
:func:`build_span_tree` turns the flat ``span.begin``/``span.end`` record
stream back into causal trees, and :class:`PhaseBreakdown` renders one
operation's tree as the Figure 9/10-style component table.

Accounting rule: an operation's *components* are the direct children of its
root span. Children may overlap (e.g. the host BLCR snapshot runs in
parallel with the offload capture), so the accounted total is the **union**
of the child intervals plus the unattributed remainder — which by
construction sums to the end-to-end latency exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics import ResultTable
    from ..sim.trace import Tracer


def _tables():
    """Deferred: :mod:`repro.metrics` imports :mod:`repro.hw`, whose package
    init reaches back into :mod:`repro.obs` for the metrics registry — a
    top-level import here closes that cycle when ``repro.metrics`` is the
    first module loaded."""
    from ..metrics import ResultTable, fmt_time

    return ResultTable, fmt_time


class SpanNode:
    """One reconstructed span with its children."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "fields", "children")

    def __init__(self, span_id: int, parent_id: int, name: str, start: float):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.fields: Dict[str, Any] = {}
        self.children: List["SpanNode"] = []

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["SpanNode"]:
        """Descendants (including self) whose name matches."""
        return [n for n in self.walk() if n.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SpanNode {self.span_id} {self.name!r} "
                f"[{self.start:g}, {self.end if self.end is not None else '...'}] "
                f"children={len(self.children)}>")


def build_span_tree(tracer: "Tracer") -> Tuple[List[SpanNode], Dict[int, SpanNode]]:
    """Rebuild (roots, by_id) from a tracer's span records.

    Spans whose parent id never appeared (0, or a parent emitted while
    tracing was off) become roots. Unfinished spans keep ``end=None``.
    """
    by_id: Dict[int, SpanNode] = {}
    roots: List[SpanNode] = []
    for rec in tracer.find("span.begin"):
        f = rec.fields
        node = SpanNode(f["span"], f.get("parent", 0), f["name"], rec.time)
        node.fields.update({k: v for k, v in f.items()
                            if k not in ("span", "parent", "name")})
        by_id[node.span_id] = node
    for rec in tracer.find("span.end"):
        node = by_id.get(rec.fields["span"])
        if node is None:
            continue  # end without a recorded begin (tracing toggled mid-span)
        node.end = rec.time
        node.fields.update({k: v for k, v in rec.fields.items()
                            if k not in ("span", "name")})
    for node in by_id.values():
        parent = by_id.get(node.parent_id)
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in by_id.values():
        node.children.sort(key=lambda n: (n.start, n.span_id))
    roots.sort(key=lambda n: (n.start, n.span_id))
    return roots, by_id


def _interval_union(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    total = 0.0
    cur_start = cur_end = None
    for start, end in sorted(intervals):
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_end is not None:
        total += cur_end - cur_start
    return total


class PhaseBreakdown:
    """Per-component latency decomposition of one operation's span tree."""

    def __init__(self, root: SpanNode):
        if root.end is None:
            raise ValueError(f"root span {root.name!r} never finished")
        self.root = root
        self.total = root.duration
        #: (name, start, duration) per direct child, in start order.
        self.components: List[Tuple[str, float, float]] = [
            (c.name, c.start, c.duration) for c in root.children if c.end is not None
        ]
        closed = [(c.start, c.end) for c in root.children if c.end is not None]
        self.covered = _interval_union(closed)
        #: Root time not inside any child span (handshakes, queueing, gaps).
        self.unattributed = max(0.0, self.total - self.covered)

    @classmethod
    def from_trace(cls, tracer: "Tracer", root_name: str,
                   occurrence: int = 0) -> "PhaseBreakdown":
        """Breakdown of the ``occurrence``-th finished root span named
        ``root_name`` (roots only — nested spans of the same name don't
        match)."""
        roots, _ = build_span_tree(tracer)
        matches = [r for r in roots if r.name == root_name and r.end is not None]
        if not matches:
            names = sorted({r.name for r in roots})
            raise ValueError(
                f"no finished root span named {root_name!r} in trace "
                f"(roots present: {names})"
            )
        if occurrence >= len(matches):
            raise ValueError(
                f"only {len(matches)} root span(s) named {root_name!r}, "
                f"occurrence {occurrence} requested"
            )
        return cls(matches[occurrence])

    @property
    def accounted(self) -> float:
        """Covered child time + unattributed gap — equals ``total`` exactly."""
        return self.covered + self.unattributed

    def table(self) -> "ResultTable":
        """Render as the paper's Figure 9/10-style component table."""
        ResultTable, fmt_time = _tables()
        t = ResultTable(
            f"Phase breakdown: {self.root.name} "
            f"(end-to-end {fmt_time(self.total)})",
            ["phase", "start", "duration", "% of total"],
        )
        t0 = self.root.start
        for name, start, duration in self.components:
            pct = 100.0 * duration / self.total if self.total else 0.0
            t.add_row(name, f"+{fmt_time(start - t0)}", fmt_time(duration), f"{pct:5.1f}%")
        if self.unattributed > 1e-12:
            pct = 100.0 * self.unattributed / self.total if self.total else 0.0
            t.add_row("(unattributed)", "", fmt_time(self.unattributed), f"{pct:5.1f}%")
        t.add_row("end-to-end", "", fmt_time(self.total), "100.0%")
        wall = sum(d for _, _, d in self.components)
        if wall > self.covered + 1e-12:
            t.add_note(
                f"components overlap: {fmt_time(wall)} of wall time covers "
                f"{fmt_time(self.covered)} of the interval (overlap counted once)"
            )
        return t

    def render(self) -> str:
        return self.table().render()


class OperationTimeline:
    """One Snapify operation's state history, rebuilt from ``op.begin`` /
    ``op.state`` / ``op.end`` trace records.

    This is the phase view derived from the control plane's *state machine*
    (:mod:`repro.snapify.ops`) rather than from per-call spans: time spent
    in PAUSING is the pause cost, CAPTURING the capture stream, and so on —
    per operation, which is what distinguishes two concurrent checkpoints
    that a span-name query would conflate.
    """

    __slots__ = ("op_id", "kind", "pid", "card", "span_id", "transitions",
                 "final_state", "error")

    def __init__(self, op_id: int, kind: str, pid: int, span_id: int,
                 start: float, card: Optional[str] = None):
        self.op_id = op_id
        self.kind = kind
        self.pid = pid
        self.card = card
        self.span_id = span_id
        self.transitions: List[Tuple[str, float]] = [("REQUESTED", start)]
        self.final_state: Optional[str] = None
        self.error: Optional[str] = None

    @property
    def started(self) -> float:
        return self.transitions[0][1]

    @property
    def finished(self) -> Optional[float]:
        return self.transitions[-1][1] if self.final_state else None

    @property
    def elapsed(self) -> Optional[float]:
        return None if self.finished is None else self.finished - self.started

    def phases(self) -> Dict[str, float]:
        """Simulated seconds spent in each non-terminal state."""
        out: Dict[str, float] = {}
        for (state, t0), (_, t1) in zip(self.transitions, self.transitions[1:]):
            out[state.lower()] = out.get(state.lower(), 0.0) + (t1 - t0)
        return out


def operation_timelines(tracer: "Tracer") -> List[OperationTimeline]:
    """Every operation's timeline, in issue order."""
    by_id: Dict[int, OperationTimeline] = {}
    for rec in tracer.find("op.begin"):
        f = rec.fields
        by_id[f["op"]] = OperationTimeline(f["op"], f["kind"], f.get("pid", -1),
                                           f.get("span", 0), rec.time,
                                           card=f.get("card"))
    for rec in tracer.find("op.state"):
        tl = by_id.get(rec.fields["op"])
        if tl is None:
            continue
        tl.transitions.append((rec.fields["state"], rec.time))
        if rec.fields.get("pid", -1) >= 0:
            tl.pid = rec.fields["pid"]
        if tl.card is None and rec.fields.get("card") is not None:
            tl.card = rec.fields["card"]
    for rec in tracer.find("op.end"):
        tl = by_id.get(rec.fields["op"])
        if tl is None:
            continue
        tl.transitions.append((rec.fields["state"], rec.time))
        tl.final_state = rec.fields["state"]
        tl.error = rec.fields.get("error")
    return [by_id[k] for k in sorted(by_id)]


def operation_table(tracer: "Tracer") -> "ResultTable":
    """All operations of a traced run as one per-phase table."""
    ResultTable, fmt_time = _tables()
    timelines = operation_timelines(tracer)
    phase_cols = ["pausing", "drained", "capturing", "capturing_delta",
                  "replicating", "transferring", "retrying"]
    t = ResultTable(
        "Operations (state-machine phase breakdown)",
        ["op", "kind", "pid", "card", *phase_cols, "total", "state"],
    )
    for tl in timelines:
        phases = tl.phases()
        t.add_row(
            str(tl.op_id), tl.kind, str(tl.pid), tl.card or "-",
            *(fmt_time(phases[p]) if p in phases else "-" for p in phase_cols),
            fmt_time(tl.elapsed) if tl.elapsed is not None else "...",
            tl.final_state or "(in flight)",
        )
        if tl.error:
            t.add_note(f"op {tl.op_id} failed: {tl.error}")
    if not timelines:
        t.add_note("no op.* records in this trace (nothing ran an operation)")
    return t
