"""Snapify (HPDC'14) reproduction.

Consistent snapshots of offload applications on (simulated) Xeon Phi
manycore processors: checkpoint/restart, process swapping, process
migration, and the Snapify-IO RDMA remote-file service — built on a
deterministic discrete-event simulation of the full MPSS stack.

Typical entry points::

    from repro.testbed import XeonPhiServer, XeonPhiCluster
    from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
    from repro.snapify import snapify_t, checkpoint_offload_app

See README.md for a tour and DESIGN.md for the architecture.
"""

__version__ = "1.0.0"

__all__ = [
    "apps",
    "blcr",
    "calibration",
    "coi",
    "hw",
    "metrics",
    "mpi",
    "osim",
    "sched",
    "scif",
    "sim",
    "snapify",
    "snapify_io",
    "testbed",
]
