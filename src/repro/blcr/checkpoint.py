"""BLCR checkpoint path.

``cr_checkpoint`` serializes a process through any
:class:`~repro.osim.fd.FileDescriptor` — a local file, an NFS file, or a
Snapify-IO socket. ``cr_request_checkpoint`` is the asynchronous entry point
the paper's offload process uses: the capture request arrives over the
daemon pipe, and the process checkpoints itself.
"""

from __future__ import annotations


from typing import Optional

from ..osim.fd import FileDescriptor
from ..osim.process import SimProcess
from ..sim.errors import SimError
from ..sim.events import Event
from .context import RECORD_CPU_COST, ProcessContext
from .incremental import capture_incremental


def page_walk_cost(os_instance) -> float:
    """Per-byte kernel cost of walking/copying process pages on this OS.

    Nonzero on the Phi (slow in-order cores; see PhiParams.blcr_page_cost,
    expressed per 4 KiB page), negligible on the host.
    """
    hw = getattr(os_instance, "hw", None)
    node = getattr(hw, "node", None)
    if node is None:
        return 0.0  # host
    return node.params.phi.blcr_page_cost / 4096.0


class BLCRError(SimError):
    """Checkpoint/restart failure."""


def cr_checkpoint(proc: SimProcess, fd: FileDescriptor):
    """Sub-generator: write ``proc``'s context through ``fd``.

    Returns the captured :class:`ProcessContext`. State is copied atomically
    at entry; the time is spent pushing it through the descriptor.
    """
    if not proc.alive:
        raise BLCRError(f"cannot checkpoint dead process {proc.name}")
    ctx = ProcessContext.capture(proc)
    sim = proc.sim
    per_byte = page_walk_cost(proc.os)
    for nbytes, record in ctx.write_plan():
        yield sim.timeout(RECORD_CPU_COST + per_byte * nbytes)
        yield from fd.write(nbytes, record)
    return ctx


def cr_request_checkpoint(proc: SimProcess, fd: FileDescriptor) -> Event:
    """Asynchronously checkpoint ``proc`` from within (returns a done event).

    Mirrors BLCR's ``cr_request_checkpoint()``: the work happens on a thread
    inside the target process; the returned event succeeds with the captured
    context (or fails with the checkpoint error).
    """
    done = Event(proc.sim, name=f"ckpt:{proc.name}")

    def _runner(proc: SimProcess = proc):
        try:
            ctx = yield from cr_checkpoint(proc, fd)
        except SimError as exc:
            done.fail(exc)
            return
        done.succeed(ctx)

    proc.spawn_thread(_runner(), name="blcr-checkpoint")
    return done


def cr_checkpoint_incremental(
    proc: SimProcess,
    snapshot_id: str,
    fd: Optional[FileDescriptor] = None,
):
    """Sub-generator: incremental capture of ``proc`` for ``snapshot_id``.

    Returns the captured :class:`DeltaImage` (full base on epoch 0, dirty
    pages after). Kernel-side cost (record assembly + page walks over the
    *shipped* bytes only) is always charged; descriptor writes happen only
    when ``fd`` is given — in-memory tier captures pass ``fd=None`` and the
    image lands in the caller's hands without touching any channel.
    """
    if not proc.alive:
        raise BLCRError(f"cannot checkpoint dead process {proc.name}")
    image = capture_incremental(proc, snapshot_id)
    sim = proc.sim
    per_byte = page_walk_cost(proc.os)
    for nbytes, record in image.write_plan():
        yield sim.timeout(RECORD_CPU_COST + per_byte * nbytes)
        if fd is not None:
            yield from fd.write(nbytes, record)
    return image


def cr_request_checkpoint_incremental(
    proc: SimProcess,
    snapshot_id: str,
    fd: Optional[FileDescriptor] = None,
) -> Event:
    """Asynchronous form of :func:`cr_checkpoint_incremental`.

    The work happens on a thread inside the target process; the returned
    event succeeds with the captured :class:`DeltaImage` or fails with the
    checkpoint error — mirroring :func:`cr_request_checkpoint`.
    """
    done = Event(proc.sim, name=f"ickpt:{proc.name}")

    def _runner(proc: SimProcess = proc):
        try:
            image = yield from cr_checkpoint_incremental(proc, snapshot_id, fd)
        except SimError as exc:
            done.fail(exc)
            return
        done.succeed(image)

    proc.spawn_thread(_runner(), name="blcr-checkpoint")
    return done
