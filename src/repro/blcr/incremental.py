"""Incremental checkpoint images: base + delta chains.

Epoch 0 of a snapshot id captures a full :class:`ProcessContext` (the
*base*); later epochs harvest each region's dirty bitmap into a
:class:`RegionDelta` and ship only those pages. Every image carries a CRC
over its payload and the per-page version map of the pages it ships;
:func:`reassemble` replays base + deltas, overlays the version maps, and
verifies the result against the fingerprint recorded at capture time — so a
page the bitmap missed (stale version left behind) or a corrupted image
(CRC mismatch) fails loudly instead of restoring silently-wrong state.

Epoch counters are keyed by snapshot id in ``proc.runtime["snapify_epochs"]``:
two interleaved snapshot chains of the same process advance independently.
"""

from __future__ import annotations

import copy
import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..osim.process import SimProcess
from ..sim.errors import SimError
from .context import (
    BASE_SMALL_RECORDS,
    BULK_CHUNK,
    RECORDS_PER_THREAD,
    SMALL_RECORD,
    ProcessContext,
    RegionImage,
)
from .dirty import PAGE_SIZE
from .plugins import PluginImage, PluginRegistry

#: runtime[] key holding per-snapshot-id epoch counters.
EPOCHS_KEY = "snapify_epochs"


class ChainError(SimError):
    """Incremental chain cannot be (safely) reassembled."""


def _stable(obj: Any) -> str:
    """Deterministic textual form of checkpointable state.

    Primitives render exactly; containers render sorted/ordered; anything
    else renders as its type name (its correctness is covered by the page
    version map, not by value comparison).
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes, bytearray)):
        return repr(obj)
    if isinstance(obj, dict):
        items = sorted(((repr(k), _stable(v)) for k, v in obj.items()))
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_stable(x) for x in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_stable(x) for x in obj)) + "}"
    if callable(obj):
        return f"<fn {getattr(obj, '__qualname__', type(obj).__name__)}>"
    return f"<{type(obj).__name__}>"


def _fingerprint(
    regions: List[Tuple[str, int, str, bool, Any]],
    versions: Dict[str, Dict[int, int]],
    store: Dict[str, Any],
) -> str:
    h = hashlib.sha256()
    for name, size, kind, pinned, data in sorted(regions):
        h.update(f"R|{name}|{size}|{kind}|{int(pinned)}|{_stable(data)}|".encode())
        vmap = versions.get(name, {})
        h.update(",".join(f"{p}:{v}" for p, v in sorted(vmap.items())).encode())
        h.update(b";")
    h.update(b"S|")
    h.update(_stable(store).encode())
    return h.hexdigest()


def state_fingerprint(proc: SimProcess) -> str:
    """Fingerprint of a live process's checkpointable state *right now*.

    Exactly what a full capture at this instant would hash to — recorded
    into each image as ``expected`` so chain reassembly can be compared
    against ground truth.
    """
    regions = [
        (r.name, r.size, r.kind, r.pinned, r.data) for r in proc.regions.values()
    ]
    versions = {
        r.name: (r.tracker.all_versions() if r.tracker is not None else {})
        for r in proc.regions.values()
    }
    return _fingerprint(regions, versions, proc.store)


@dataclass
class RegionDelta:
    """Dirty pages of one region at one epoch."""

    name: str
    size: int
    kind: str
    pinned: bool
    #: Sorted dirty page indices shipped by this delta.
    pages: List[int]
    #: Version of each shipped page at capture time.
    versions: Dict[int, int]
    #: Region payload (the ledger keeps the full object; the *modeled*
    #: byte cost is page-granular — see ``delta_bytes``).
    data: Any = None

    @property
    def delta_bytes(self) -> int:
        """Modeled bytes this delta ships (partial last page exact)."""
        if not self.pages:
            return 0
        n_pages = (self.size + PAGE_SIZE - 1) // PAGE_SIZE
        last_page = n_pages - 1
        tail = self.size - last_page * PAGE_SIZE  # bytes in the last page
        return sum(tail if p == last_page else PAGE_SIZE for p in self.pages)


@dataclass
class DeltaImage:
    """One link of an incremental chain: the base (epoch 0) or a delta."""

    snapshot_id: str
    epoch: int
    kind: str  # "base" | "delta"
    nthreads: int
    store: Dict[str, Any]
    main_factory: Optional[Callable] = None
    #: Full context — present on the base image only.
    base: Optional[ProcessContext] = None
    #: region name -> page versions at capture time (base image only).
    base_versions: Dict[str, Dict[int, int]] = field(default_factory=dict)
    #: Dirty-page payloads (delta images only).
    deltas: List[RegionDelta] = field(default_factory=list)
    #: Non-builtin plugin images frozen at this link's capture instant
    #: (sockets, RAM-FS files, signals, RDMA windows, ...). Empty when only
    #: the built-ins are registered, which keeps every size below identical
    #: to the pre-plugin model.
    plugin_images: List[PluginImage] = field(default_factory=list)
    #: Fingerprint of the live process at capture time (ground truth).
    expected: str = ""
    #: Size of the full image this link logically represents.
    logical_bytes: int = 0
    #: Bytes this link actually ships (== logical_bytes for the base).
    delta_bytes: int = 0
    #: CRC32 over the payload, fixed at capture time.
    crc: int = 0

    def payload_crc(self) -> int:
        h = zlib.crc32(f"{self.snapshot_id}|{self.epoch}|{self.kind}|{self.nthreads}|".encode())
        h = zlib.crc32(_stable(self.store).encode(), h)
        if self.base is not None:
            for r in self.base.regions:
                h = zlib.crc32(
                    f"B|{r.name}|{r.size}|{r.kind}|{int(r.pinned)}|{_stable(r.data)}".encode(), h
                )
            for name, vmap in sorted(self.base_versions.items()):
                h = zlib.crc32(
                    f"V|{name}|{','.join(f'{p}:{v}' for p, v in sorted(vmap.items()))}".encode(), h
                )
        for d in self.deltas:
            h = zlib.crc32(
                f"D|{d.name}|{d.size}|{d.kind}|{int(d.pinned)}|{d.pages}|"
                f"{sorted(d.versions.items())}|{_stable(d.data)}".encode(),
                h,
            )
        for pi in self.plugin_images:
            h = zlib.crc32(
                f"P|{pi.plugin}|{pi.records}|{pi.bulk_bytes}|{_stable(pi.payload)}".encode(),
                h,
            )
        h = zlib.crc32(f"E|{self.expected}".encode(), h)
        return h & 0xFFFFFFFF

    def seal(self) -> "DeltaImage":
        self.crc = self.payload_crc()
        return self

    def verify_crc(self) -> None:
        actual = self.payload_crc()
        if actual != self.crc:
            raise ChainError(
                f"{self.snapshot_id} epoch {self.epoch}: CRC mismatch "
                f"(stored {self.crc:#010x}, computed {actual:#010x})"
            )

    # -- serialization cost model ------------------------------------------
    @property
    def n_small_records(self) -> int:
        if self.base is not None:
            # The base context already accounts for its own plugin images.
            return self.base.n_small_records
        return (
            BASE_SMALL_RECORDS
            + RECORDS_PER_THREAD * self.nthreads
            + len(self.deltas)
            + sum(pi.records for pi in self.plugin_images)
        )

    @property
    def metadata_bytes(self) -> int:
        return self.n_small_records * SMALL_RECORD

    def write_plan(self) -> List[Tuple[int, Optional[Any]]]:
        """(nbytes, record) sequence for streaming this image to a file.

        Mirrors :meth:`ProcessContext.write_plan`: a burst of small metadata
        records (the last carrying the image object) followed by bulk chunks
        sized by the bytes this link actually ships.
        """
        plan: List[Tuple[int, Optional[Any]]] = []
        for _ in range(self.n_small_records - 1):
            plan.append((SMALL_RECORD, None))
        plan.append((SMALL_RECORD, self))
        if self.base is not None:
            bulk = self.base.bulk_bytes  # already includes plugin bulk bytes
        else:
            bulk = sum(d.delta_bytes for d in self.deltas) + sum(
                pi.bulk_bytes for pi in self.plugin_images
            )
        remaining = bulk
        while remaining > 0:
            chunk = min(remaining, BULK_CHUNK)
            plan.append((chunk, None))
            remaining -= chunk
        return plan


def capture_incremental(proc: SimProcess, snapshot_id: str) -> DeltaImage:
    """Instantaneous incremental capture of ``proc`` for ``snapshot_id``.

    Epoch 0 (first capture under this id) produces a base image and enables
    dirty tracking; later epochs harvest dirty bitmaps into deltas. Rolls
    the epoch: bitmaps are cleared and the snapshot-id counter advances.
    Pure state copy — the caller charges simulated time from the write plan.
    """
    if not proc.alive:
        raise ChainError(f"cannot capture dead process {proc.name}")
    epochs: Dict[str, int] = proc.runtime.setdefault(EPOCHS_KEY, {})
    epoch = epochs.get(snapshot_id, 0)
    if epoch == 0:
        proc.enable_dirty_tracking()
        base = ProcessContext.capture(proc)
        base_versions = {
            r.name: (r.tracker.all_versions() if r.tracker is not None else {})
            for r in proc.regions.values()
        }
        image = DeltaImage(
            snapshot_id=snapshot_id,
            epoch=0,
            kind="base",
            nthreads=base.nthreads,
            store=copy.deepcopy(proc.store),
            main_factory=proc.main_factory,
            base=base,
            base_versions=base_versions,
            plugin_images=list(base.plugin_images),
            logical_bytes=base.image_bytes,
            delta_bytes=base.image_bytes,
        )
    else:
        deltas: List[RegionDelta] = []
        for region in proc.regions.values():
            tracker = region.tracker
            if tracker is None:
                # Region mapped while tracking was off (shouldn't happen once
                # enabled, but stay safe): ship it whole.
                region.enable_tracking()
                tracker = region.tracker
                tracker.bitmap.mark_all()
            pages = tracker.bitmap.dirty_pages
            if not pages:
                continue
            deltas.append(
                RegionDelta(
                    name=region.name,
                    size=region.size,
                    kind=region.kind,
                    pinned=region.pinned,
                    pages=pages,
                    versions=tracker.versions_for(pages),
                    data=copy.deepcopy(region.data),
                )
            )
        nthreads = max(1, len([t for t in proc.threads if t.alive]))
        # Plugin resources have no dirty bitmap: every delta re-freezes the
        # extras whole (they are metadata-sized next to memory pages).
        plugin_images = PluginRegistry.for_process(proc).capture_extras(proc)
        n_small = (
            BASE_SMALL_RECORDS
            + RECORDS_PER_THREAD * nthreads
            + len(proc.regions)
            + sum(pi.records for pi in plugin_images)
        )
        logical = (
            n_small * SMALL_RECORD
            + sum(r.size for r in proc.regions.values())
            + sum(pi.bulk_bytes for pi in plugin_images)
        )
        image = DeltaImage(
            snapshot_id=snapshot_id,
            epoch=epoch,
            kind="delta",
            nthreads=nthreads,
            store=copy.deepcopy(proc.store),
            main_factory=proc.main_factory,
            deltas=deltas,
            plugin_images=plugin_images,
            logical_bytes=logical,
        )
        image.delta_bytes = (
            image.metadata_bytes
            + sum(d.delta_bytes for d in deltas)
            + sum(pi.bulk_bytes for pi in plugin_images)
        )
    image.expected = state_fingerprint(proc)
    image.seal()
    for region in proc.regions.values():
        if region.tracker is not None:
            region.tracker.roll_epoch()
    epochs[snapshot_id] = epoch + 1
    return image


def reassemble(images: List[DeltaImage], verify: bool = True) -> ProcessContext:
    """Replay a base + delta chain into a restorable :class:`ProcessContext`.

    Verifies every link's CRC, epoch continuity (0, 1, 2, ... with a single
    snapshot id), and — when ``verify`` — that the overlaid page-version map
    and region/store state hash to the fingerprint recorded at capture time
    of the last link. Raises :class:`ChainError` on any mismatch.
    """
    if not images:
        raise ChainError("empty incremental chain")
    head = images[0]
    if head.kind != "base" or head.base is None:
        raise ChainError(f"chain must start with a base image, got epoch {head.epoch} {head.kind!r}")
    sid = head.snapshot_id
    for i, img in enumerate(images):
        if img.snapshot_id != sid:
            raise ChainError(f"mixed snapshot ids in chain: {sid!r} vs {img.snapshot_id!r}")
        if img.epoch != i:
            raise ChainError(f"{sid}: epoch gap — expected epoch {i}, found {img.epoch}")
        img.verify_crc()

    regions: Dict[str, RegionImage] = {}
    order: List[str] = []
    for r in head.base.regions:
        regions[r.name] = RegionImage(r.name, r.size, r.kind, r.pinned, copy.deepcopy(r.data))
        order.append(r.name)
    versions: Dict[str, Dict[int, int]] = {
        name: dict(vmap) for name, vmap in head.base_versions.items()
    }
    store = copy.deepcopy(head.store)
    nthreads = head.nthreads
    main_factory = head.main_factory
    # Plugins re-freeze whole at every link, so the newest non-empty set is
    # the restorable one (an empty set on a later link means the resources
    # were gone at that capture — e.g. all sockets closed — and wins too).
    plugin_images = list(head.plugin_images)

    for img in images[1:]:
        store = copy.deepcopy(img.store)
        nthreads = img.nthreads
        main_factory = img.main_factory or main_factory
        plugin_images = list(img.plugin_images)
        for d in img.deltas:
            if d.name not in regions:
                order.append(d.name)
            regions[d.name] = RegionImage(d.name, d.size, d.kind, d.pinned, copy.deepcopy(d.data))
            versions.setdefault(d.name, {}).update(d.versions)

    if verify:
        parts = [(ri.name, ri.size, ri.kind, ri.pinned, ri.data) for ri in regions.values()]
        got = _fingerprint(parts, versions, store)
        want = images[-1].expected
        if got != want:
            raise ChainError(
                f"{sid}: reassembled state diverges from the epoch-{images[-1].epoch} "
                f"full capture (fingerprint {got[:12]} != {want[:12]}) — "
                "a write escaped the dirty bitmap or an image is stale"
            )

    return ProcessContext(
        name=head.base.name,
        nthreads=nthreads,
        store=store,
        regions=[regions[n] for n in order],
        main_factory=main_factory,
        annotations=dict(head.base.annotations),
        plugin_images=copy.deepcopy(plugin_images),
    )
