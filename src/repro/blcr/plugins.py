"""Checkpoint-content plugins: the DMTCP hook model over BLCR serialization.

BLCR's monolithic capture knows memory regions, the store, and thread
counts — and nothing else, so sockets, RAM-FS file offsets, signal
dispositions, and SCIF RDMA windows silently vanish across a
checkpoint/restart. This module refactors the seam the way DMTCP did
(Arya et al., PAPERS.md): each resource type is a :class:`CheckpointPlugin`
registered per OS (or per process) with three hooks:

* ``pre_pause(proc)`` — a drain hook the Snapify agent runs at the DRAINED
  boundary, after the COI runtime quiesced, so the plugin's resource is
  quiet before capture (e.g. socket receive queues are empty).
* ``pre_checkpoint(proc) -> PluginImage`` — freeze the resource into an
  image that rides inside the :class:`~repro.blcr.context.ProcessContext`.
  Each image declares how many metadata records and bulk bytes it adds to
  the serialized stream, so its cost flows through the existing
  ``write_plan()`` accounting unchanged.
* ``post_restart(proc, image, os)`` — a sub-generator that rebuilds the
  resource on the restore target, or raises a typed :class:`PluginError`
  when it cannot (the fail-loud alternative to silent corruption).

The two resources the core always handled — memory regions and the store —
are the two *built-in* plugins (:class:`MemoryRegionsPlugin`,
:class:`StorePlugin`). Built-ins serialize into the context's legacy
``regions``/``store`` fields and contribute zero extra records, so a
registry holding only built-ins produces a byte-identical stream and an
unchanged golden trace. Extra plugins are opt-in per OS::

    registry = PluginRegistry.of(phi_os)
    registry.register(SocketPlugin())
    registry.register(SignalPlugin())

``ProcessContext.annotations`` is deprecated: COI runtime metadata now
rides :class:`COIMetadataPlugin` (a one-record thin plugin) instead of the
raw dict.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..osim.fd import RegularFileFD
from ..osim.sockets import SocketError, UnixSocket
from ..sim.errors import SimError
from .context import RegionImage

if TYPE_CHECKING:  # pragma: no cover
    from ..osim.process import OSInstance, SimProcess
    from .context import ProcessContext


class PluginError(SimError):
    """A checkpoint plugin could not capture or restore its resource."""


class SocketRestoreError(PluginError):
    """Socket endpoints could not be re-bound/reconnected on the target."""


class RdmaMigrateError(PluginError):
    """Live RDMA windows cannot be transplanted to the restore target."""


#: runtime[] key: RDMA window specs awaiting :func:`replay_rdma_windows`.
RDMA_PENDING_KEY = "rdma_restore_pending"
#: runtime[] key: a per-process registry overriding the OS-level one.
REGISTRY_RUNTIME_KEY = "checkpoint_plugins"


@dataclass
class PluginImage:
    """One plugin's serialized resource, carried inside a context image.

    ``records`` small metadata records and ``bulk_bytes`` bulk payload are
    added to the owning context's write plan — the plugin's serialization
    cost is charged through exactly the same accounting as regions.
    """

    plugin: str
    records: int = 1
    bulk_bytes: int = 0
    payload: Any = None


class CheckpointPlugin:
    """Base class: one resource type's checkpoint/restore hooks."""

    #: Registry key; also recorded in every image this plugin produces.
    name = "plugin"
    #: Built-ins serialize into the context's legacy fields (see module doc).
    builtin = False

    def pre_pause(self, proc: "SimProcess"):
        """Sub-generator drain hook, run at the DRAINED boundary. Default:
        nothing to drain."""
        return None
        yield  # pragma: no cover - generator form

    def pre_checkpoint(self, proc: "SimProcess") -> Optional[PluginImage]:
        """Freeze this plugin's resource; ``None`` = nothing to capture."""
        return None

    def apply_to_context(self, ctx: "ProcessContext", image: PluginImage) -> None:
        """Built-ins only: fold the image into the context's legacy fields."""
        raise NotImplementedError  # pragma: no cover - built-ins override

    def post_restart(self, proc: "SimProcess", image: PluginImage, os: "OSInstance"):
        """Sub-generator: rebuild the resource on ``os``; raise a typed
        :class:`PluginError` when the target cannot host it."""
        return None
        yield  # pragma: no cover - generator form

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# Built-ins: the two resources the monolithic core always captured.
# ---------------------------------------------------------------------------


class MemoryRegionsPlugin(CheckpointPlugin):
    """Built-in: the process's memory map (regions + their data)."""

    name = "memory"
    builtin = True

    def pre_checkpoint(self, proc: "SimProcess") -> Optional[PluginImage]:
        return PluginImage(
            self.name, records=0,
            payload=[RegionImage.from_region(r) for r in proc.regions.values()],
        )

    def apply_to_context(self, ctx: "ProcessContext", image: PluginImage) -> None:
        ctx.regions = image.payload


class StorePlugin(CheckpointPlugin):
    """Built-in: the process's logical application state (the store)."""

    name = "store"
    builtin = True

    def pre_checkpoint(self, proc: "SimProcess") -> Optional[PluginImage]:
        return PluginImage(self.name, records=0, payload=copy.deepcopy(proc.store))

    def apply_to_context(self, ctx: "ProcessContext", image: PluginImage) -> None:
        ctx.store = image.payload


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class PluginRegistry:
    """Ordered set of checkpoint plugins (built-ins first, extras after).

    One registry per OS (``PluginRegistry.of(os)``), optionally overridden
    per process through ``proc.runtime["checkpoint_plugins"]``. The default
    registry holds only the two built-ins, which keeps legacy captures —
    and the golden trace — byte-identical.
    """

    def __init__(self):
        self._plugins: List[CheckpointPlugin] = [MemoryRegionsPlugin(), StorePlugin()]

    @staticmethod
    def of(os: "OSInstance") -> "PluginRegistry":
        reg = getattr(os, "checkpoint_plugins", None)
        if reg is None:
            reg = PluginRegistry()
            os.checkpoint_plugins = reg  # type: ignore[attr-defined]
        return reg

    @staticmethod
    def for_process(proc: "SimProcess") -> "PluginRegistry":
        override = proc.runtime.get(REGISTRY_RUNTIME_KEY)
        if override is not None:
            return override
        return PluginRegistry.of(proc.os)

    def register(self, plugin: CheckpointPlugin) -> CheckpointPlugin:
        """Add (or replace, by name) a plugin; returns it. Idempotent."""
        for i, existing in enumerate(self._plugins):
            if existing.name == plugin.name:
                self._plugins[i] = plugin
                return plugin
        self._plugins.append(plugin)
        return plugin

    def get(self, name: str) -> CheckpointPlugin:
        for plugin in self._plugins:
            if plugin.name == name:
                return plugin
        raise PluginError(
            f"context carries a {name!r} plugin image but the target OS has "
            "no such plugin registered"
        )

    def __iter__(self):
        return iter(self._plugins)

    def __len__(self) -> int:
        return len(self._plugins)

    @property
    def extras(self) -> List[CheckpointPlugin]:
        return [p for p in self._plugins if not p.builtin]

    def drain_plugins(self) -> List[CheckpointPlugin]:
        """Extras that actually override the ``pre_pause`` drain hook."""
        return [
            p for p in self.extras
            if type(p).pre_pause is not CheckpointPlugin.pre_pause
        ]

    def capture_extras(self, proc: "SimProcess") -> List[PluginImage]:
        """Run every extra plugin's ``pre_checkpoint``; drop empty images."""
        images: List[PluginImage] = []
        for plugin in self.extras:
            image = plugin.pre_checkpoint(proc)
            if image is not None:
                images.append(image)
        return images


# ---------------------------------------------------------------------------
# Shipped plugins
# ---------------------------------------------------------------------------


class SocketPlugin(CheckpointPlugin):
    """UNIX sockets: re-bind listener names and reconnect client sockets.

    Captures three socket classes from the process's fd table:

    * intra-process pairs (both halves owned by the process) — recreated as
      a fresh pair on the target;
    * namespace-connected clients (``socket.address`` set by
      :meth:`~repro.osim.sockets.SocketNamespace.connect`) — reconnected
      through the target OS's namespace, which fails loudly with
      :class:`SocketRestoreError` when no listener holds the name there
      (the cross-node-migrate case);
    * listeners the process owns — re-bound on the target namespace
      (a bind collision is also a :class:`SocketRestoreError`).

    Sockets whose peer lives in another process and that carry no namespace
    address cannot be reconstructed at all: restore refuses loudly instead
    of silently dropping them. Restored descriptors land in
    ``proc.runtime["restored_sockets"]`` keyed by their original fd name.
    """

    name = "sockets"

    def pre_pause(self, proc: "SimProcess"):
        """Drain hook: wait until every open socket's receive queue is empty
        (a datagram in flight at capture time would be lost)."""
        sim = proc.sim
        while any(
            isinstance(fd, UnixSocket) and not fd.closed and fd._rx.qsize > 0
            for fd in proc.open_fds
        ):
            yield sim.timeout(100e-6)

    def pre_checkpoint(self, proc: "SimProcess") -> Optional[PluginImage]:
        open_socks = [
            fd for fd in proc.open_fds if isinstance(fd, UnixSocket) and not fd.closed
        ]
        owned = {id(fd) for fd in open_socks}
        pairs, clients, orphans = [], [], []
        seen: set = set()
        for fd in open_socks:
            if id(fd) in seen:
                continue
            if fd.peer is not None and id(fd.peer) in owned:
                seen.add(id(fd))
                seen.add(id(fd.peer))
                pairs.append({
                    "base": fd.name.rsplit(".", 1)[0],
                    "a": fd.name, "b": fd.peer.name,
                    "bandwidth": fd.bandwidth,
                })
            elif fd.address is not None:
                seen.add(id(fd))
                clients.append({
                    "name": fd.name, "address": fd.address,
                    "bandwidth": fd.bandwidth,
                })
            else:
                seen.add(id(fd))
                orphans.append(fd.name)
        listeners = [lst.address for lst in proc.listeners]
        if not (pairs or clients or orphans or listeners):
            return None
        return PluginImage(
            self.name,
            records=1 + len(pairs) + len(clients) + len(listeners),
            payload={"pairs": pairs, "clients": clients,
                     "listeners": listeners, "orphans": orphans},
        )

    def post_restart(self, proc: "SimProcess", image: PluginImage, os: "OSInstance"):
        payload = image.payload
        if payload["orphans"]:
            raise SocketRestoreError(
                f"{proc.name}: socket(s) {payload['orphans']} are connected to "
                "another process and carry no namespace address; they cannot "
                "be reconnected on the restore target"
            )
        restored: Dict[str, Any] = proc.runtime.setdefault("restored_sockets", {})
        for address in payload["listeners"]:
            try:
                listener = os.sockets.listen(address, owner=proc)
            except SocketError as exc:
                raise SocketRestoreError(
                    f"{proc.name}: cannot re-bind listener {address!r} on "
                    f"{os.name}: {exc}"
                ) from exc
            restored[f"listen:{address}"] = listener
        for pair in payload["pairs"]:
            a, b = UnixSocket.pair(proc.sim, pair["bandwidth"], name=pair["base"])
            proc.register_fd(a)
            proc.register_fd(b)
            restored[pair["a"]] = a
            restored[pair["b"]] = b
        for client in payload["clients"]:
            try:
                sock = yield from os.sockets.connect(
                    client["address"], bandwidth=client["bandwidth"]
                )
            except SocketError as exc:
                raise SocketRestoreError(
                    f"{proc.name}: cannot reconnect {client['name']} to "
                    f"{client['address']!r} on {os.name} (no listener on the "
                    f"restore target): {exc}"
                ) from exc
            proc.register_fd(sock)
            restored[client["name"]] = sock


class RamFSFilePlugin(CheckpointPlugin):
    """Open RAM-FS files: offsets and dirty content survive restore.

    Captures every open :class:`~repro.osim.fd.RegularFileFD` on the
    process's own file system — path, mode, read cursor, and the record
    stream (the file *content* rides in the image's bulk bytes, so a
    restore on another card recreates the file there). The restored process
    finds reopened descriptors, cursors intact, in
    ``proc.runtime["restored_files"]`` keyed by path — a reader parked
    mid-file resumes at the same record.
    """

    name = "ramfs_files"

    def pre_checkpoint(self, proc: "SimProcess") -> Optional[PluginImage]:
        files = []
        for fd in proc.open_fds:
            if not isinstance(fd, RegularFileFD) or fd.closed or fd.fs is not proc.os.fs:
                continue
            size = fd.fs.stat(fd.path).size if fd.fs.exists(fd.path) else 0
            files.append({
                "path": fd.path, "mode": fd.mode, "sync": fd.sync,
                "cursor": fd._read_cursor, "size": size,
                "records": copy.deepcopy(fd._records),
            })
        if not files:
            return None
        return PluginImage(
            self.name,
            records=1 + len(files),
            bulk_bytes=sum(f["size"] for f in files),
            payload={"files": files},
        )

    def post_restart(self, proc: "SimProcess", image: PluginImage, os: "OSInstance"):
        restored: Dict[str, Any] = proc.runtime.setdefault("restored_files", {})
        for spec in image.payload["files"]:
            path = spec["path"]
            if spec["mode"] == "w":
                # Reopening for write truncates (POSIX O_TRUNC), so open
                # first, then replay the dirty content the image carried
                # (charging the target file system's write cost).
                fd = RegularFileFD(proc.sim, os.fs, path, "w", sync=spec["sync"])
                if spec["size"]:
                    yield from os.fs.write(path, spec["size"],
                                           payload=copy.deepcopy(spec["records"]))
                fd._records = copy.deepcopy(spec["records"])
            else:
                if not os.fs.exists(path):
                    # The content travelled inside the image: recreate the
                    # file on the target RAM-FS before reopening it.
                    os.fs.create(path)
                    if spec["size"]:
                        yield from os.fs.write(
                            path, spec["size"],
                            payload=copy.deepcopy(spec["records"]),
                        )
                fd = RegularFileFD(proc.sim, os.fs, path, "r", sync=spec["sync"])
                fd._records = copy.deepcopy(spec["records"])
                fd._read_cursor = spec["cursor"]
            proc.register_fd(fd)
            restored[path] = fd


class SignalPlugin(CheckpointPlugin):
    """Signal state: pending/blocked sets and handlers survive restore.

    Without this plugin a pending (blocked) SIGSNAPIFY simply vanishes at
    restore; with it, the restored process carries the same handler table,
    blocked mask, and pending queue — unblocking after restore delivers the
    queued signals exactly as the original process would have.
    Handlers are carried by reference, like ``main_factory``.
    """

    name = "signals"

    def pre_checkpoint(self, proc: "SimProcess") -> Optional[PluginImage]:
        if not (proc.pending_signals or proc.blocked_signals or proc.signal_handlers):
            return None
        return PluginImage(
            self.name, records=1,
            payload={
                "pending": list(proc.pending_signals),
                "blocked": sorted(proc.blocked_signals),
                "handlers": dict(proc.signal_handlers),
            },
        )

    def post_restart(self, proc: "SimProcess", image: PluginImage, os: "OSInstance"):
        payload = image.payload
        proc.signal_handlers.update(payload["handlers"])
        proc.blocked_signals.update(payload["blocked"])
        proc.pending_signals.extend(payload["pending"])
        return None
        yield  # pragma: no cover - generator form


class RdmaWindowPlugin(CheckpointPlugin):
    """SCIF RDMA windows: re-register on restore or refuse migration.

    Captures the windows of every *raw* SCIF endpoint in the process's fd
    table (COI's dma endpoint is excluded: :meth:`CardRuntime.restore`
    already re-registers COI buffer windows itself). A window is pinned
    against a live endpoint that dies with the original process, so restore
    cannot transplant it directly:

    * restore on the **same OS** stashes the window specs in
      ``proc.runtime["rdma_restore_pending"]``; the restored program calls
      :func:`replay_rdma_windows` with a fresh endpoint to re-register them
      (new offsets, recorded in ``proc.runtime["rdma_address_map"]``) —
      never allocating ``rdma_staging`` without a live endpoint;
    * restore on a **different OS** raises :class:`RdmaMigrateError` —
      a typed refusal instead of silently corrupting staging accounting.
    """

    name = "rdma_windows"

    def pre_checkpoint(self, proc: "SimProcess") -> Optional[PluginImage]:
        coi = proc.runtime.get("coi")
        coi_eps = {id(ep) for ep in coi.eps.values()} if coi is not None else set()
        windows = []
        for fd in proc.open_fds:
            wins = getattr(fd, "windows", None)
            if not wins or getattr(fd, "closed", True) or id(fd) in coi_eps:
                continue
            for offset, nbytes in sorted(wins.items()):
                windows.append({"offset": offset, "nbytes": nbytes})
        if not windows:
            return None
        return PluginImage(
            self.name,
            records=1 + len(windows),
            payload={"os": proc.os.name, "windows": windows},
        )

    def post_restart(self, proc: "SimProcess", image: PluginImage, os: "OSInstance"):
        payload = image.payload
        if os.name != payload["os"]:
            raise RdmaMigrateError(
                f"{proc.name}: {len(payload['windows'])} RDMA window(s) were "
                f"registered on {payload['os']} and cannot migrate to "
                f"{os.name}; unregister them (or close the endpoint) before "
                "capture, then re-register after restore"
            )
        proc.runtime[RDMA_PENDING_KEY] = [dict(w) for w in payload["windows"]]
        return None
        yield  # pragma: no cover - generator form


def replay_rdma_windows(proc: "SimProcess", ep):
    """Sub-generator: re-register a restored process's pending RDMA windows
    on a caller-provided live endpoint.

    Consumes ``proc.runtime["rdma_restore_pending"]``, registers each window
    on ``ep`` (charging the usual pinning cost; offsets WILL differ), and
    records the (old -> new) offsets in ``proc.runtime["rdma_address_map"]``
    — the per-process analogue of COI's §4.3 address table. Returns the map.
    """
    from ..scif.registry import scif_register

    pending = proc.runtime.pop(RDMA_PENDING_KEY, None) or []
    table: Dict[int, int] = proc.runtime.setdefault("rdma_address_map", {})
    for spec in pending:
        new_offset = yield from scif_register(ep, spec["nbytes"])
        table[spec["offset"]] = new_offset
    return table


class COIMetadataPlugin(CheckpointPlugin):
    """COI runtime metadata, as a thin plugin image.

    Supersedes the deprecated free-form ``ProcessContext.annotations`` dict:
    the binary name, executed-function count, and issued buffer ids ride a
    one-record image and land in ``proc.runtime["coi_meta"]`` after restore,
    where the restored CardRuntime (and tests) can audit them.
    """

    name = "coi_meta"

    def pre_checkpoint(self, proc: "SimProcess") -> Optional[PluginImage]:
        coi = proc.runtime.get("coi")
        if coi is None:
            return None
        return PluginImage(
            self.name, records=1,
            payload={
                "binary": coi.binary.name,
                "functions_executed": coi.functions_executed,
                "buffers": sorted(coi._buffers),
            },
        )

    def post_restart(self, proc: "SimProcess", image: PluginImage, os: "OSInstance"):
        proc.runtime["coi_meta"] = dict(image.payload)
        return None
        yield  # pragma: no cover - generator form


#: The four shipped resource plugins plus the COI metadata carrier — the
#: set scenario/fuzz code registers on card OSes in one call.
def register_standard_plugins(os: "OSInstance") -> PluginRegistry:
    """Register every shipped extra plugin on ``os``'s registry."""
    registry = PluginRegistry.of(os)
    registry.register(SocketPlugin())
    registry.register(RamFSFilePlugin())
    registry.register(SignalPlugin())
    registry.register(RdmaWindowPlugin())
    registry.register(COIMetadataPlugin())
    return registry


__all__ = [
    "CheckpointPlugin",
    "COIMetadataPlugin",
    "MemoryRegionsPlugin",
    "PluginError",
    "PluginImage",
    "PluginRegistry",
    "RamFSFilePlugin",
    "RdmaMigrateError",
    "RdmaWindowPlugin",
    "SignalPlugin",
    "SocketPlugin",
    "SocketRestoreError",
    "StorePlugin",
    "register_standard_plugins",
    "replay_rdma_windows",
]
