"""BLCR context files.

A context file is the serialized image of one process: a burst of small
metadata records (credentials, fd table, per-thread register/signal state)
followed by the bulk memory pages. The *write pattern* is modeled faithfully
because it drives Table 4: "BLCR performs multiple small writes before
reaching the loop where it actually takes snapshots of the application's
memory pages, and these small writes lead to poor performance for the NFS
variants."
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..osim.process import MemoryRegion, SimProcess

#: Size of one metadata record.
SMALL_RECORD = 256
#: Fixed number of prologue records (header, creds, mm layout, fd table...).
BASE_SMALL_RECORDS = 48
#: Metadata records per thread (registers, signal mask, FPU state...).
RECORDS_PER_THREAD = 4
#: Bulk pages are written in chunks of this size.
BULK_CHUNK = 4 * 1024 * 1024
#: CPU cost of assembling one record (kernel-side copy bookkeeping).
RECORD_CPU_COST = 4e-6


@dataclass
class RegionImage:
    """Serialized form of one memory region."""

    name: str
    size: int
    kind: str
    pinned: bool
    data: Any = None

    @staticmethod
    def from_region(region: MemoryRegion) -> "RegionImage":
        return RegionImage(
            name=region.name,
            size=region.size,
            kind=region.kind,
            pinned=region.pinned,
            data=copy.deepcopy(region.data),
        )


@dataclass
class ProcessContext:
    """Everything needed to rebuild a process on (possibly another) OS.

    ``main_factory`` stands in for the executable: restart re-invokes it
    against the restored ``store``, and resumable programs keep their
    progress (iteration counters, phase tags) in the store.
    """

    name: str
    nthreads: int
    store: Dict[str, Any]
    regions: List[RegionImage]
    main_factory: Optional[Callable] = None
    #: Free-form runtime hints preserved across restart (e.g. COI metadata).
    annotations: Dict[str, Any] = field(default_factory=dict)

    @property
    def image_bytes(self) -> int:
        """Total serialized size: metadata records + memory pages."""
        return self.metadata_bytes + self.bulk_bytes

    @property
    def metadata_bytes(self) -> int:
        return self.n_small_records * SMALL_RECORD

    @property
    def n_small_records(self) -> int:
        return BASE_SMALL_RECORDS + RECORDS_PER_THREAD * self.nthreads + len(self.regions)

    @property
    def bulk_bytes(self) -> int:
        return sum(r.size for r in self.regions)

    def write_plan(self) -> List[Tuple[int, Optional[Any]]]:
        """The (nbytes, record) sequence BLCR pushes through the descriptor.

        The final record carries the context object itself so a reader can
        reconstruct the process; earlier records model the write pattern.
        """
        plan: List[Tuple[int, Optional[Any]]] = []
        for _ in range(self.n_small_records - 1):
            plan.append((SMALL_RECORD, None))
        plan.append((SMALL_RECORD, self))
        for region in self.regions:
            remaining = region.size
            while remaining > 0:
                chunk = min(remaining, BULK_CHUNK)
                plan.append((chunk, None))
                remaining -= chunk
        return plan

    @staticmethod
    def capture(proc: SimProcess) -> "ProcessContext":
        """Freeze a live process into a context (instantaneous state copy).

        The caller is responsible for quiescence: Snapify guarantees it via
        the pause protocol, native benchmarks via their own structure. The
        copy itself is atomic at the simulated instant it is taken.
        """
        return ProcessContext(
            name=proc.name,
            nthreads=max(1, len([t for t in proc.threads if t.alive])),
            store=copy.deepcopy(proc.store),
            regions=[RegionImage.from_region(r) for r in proc.regions.values()],
            main_factory=proc.main_factory,
            annotations={},
        )
