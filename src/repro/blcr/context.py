"""BLCR context files.

A context file is the serialized image of one process: a burst of small
metadata records (credentials, fd table, per-thread register/signal state)
followed by the bulk memory pages. The *write pattern* is modeled faithfully
because it drives Table 4: "BLCR performs multiple small writes before
reaching the loop where it actually takes snapshots of the application's
memory pages, and these small writes lead to poor performance for the NFS
variants."
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..osim.process import MemoryRegion, SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from .plugins import PluginImage, PluginRegistry

#: Size of one metadata record.
SMALL_RECORD = 256
#: Fixed number of prologue records (header, creds, mm layout, fd table...).
BASE_SMALL_RECORDS = 48
#: Metadata records per thread (registers, signal mask, FPU state...).
RECORDS_PER_THREAD = 4
#: Bulk pages are written in chunks of this size.
BULK_CHUNK = 4 * 1024 * 1024
#: CPU cost of assembling one record (kernel-side copy bookkeeping).
RECORD_CPU_COST = 4e-6


@dataclass
class RegionImage:
    """Serialized form of one memory region."""

    name: str
    size: int
    kind: str
    pinned: bool
    data: Any = None

    @staticmethod
    def from_region(region: MemoryRegion) -> "RegionImage":
        return RegionImage(
            name=region.name,
            size=region.size,
            kind=region.kind,
            pinned=region.pinned,
            data=copy.deepcopy(region.data),
        )


@dataclass
class ProcessContext:
    """Everything needed to rebuild a process on (possibly another) OS.

    ``main_factory`` stands in for the executable: restart re-invokes it
    against the restored ``store``, and resumable programs keep their
    progress (iteration counters, phase tags) in the store.
    """

    name: str
    nthreads: int
    store: Dict[str, Any]
    regions: List[RegionImage]
    main_factory: Optional[Callable] = None
    #: .. deprecated:: superseded by ``plugin_images`` (see
    #:    :class:`~repro.blcr.plugins.COIMetadataPlugin`); kept so legacy
    #:    captures deserialize. New code should not write to it.
    annotations: Dict[str, Any] = field(default_factory=dict)
    #: Ordered images from non-builtin checkpoint plugins (sockets, RAM-FS
    #: files, signals, RDMA windows, ...). Empty for legacy captures, which
    #: keeps ``image_bytes``/``write_plan`` — and the golden trace —
    #: byte-identical when only the built-ins are registered.
    plugin_images: List["PluginImage"] = field(default_factory=list)

    @property
    def image_bytes(self) -> int:
        """Total serialized size: metadata records + memory pages."""
        return self.metadata_bytes + self.bulk_bytes

    @property
    def metadata_bytes(self) -> int:
        return self.n_small_records * SMALL_RECORD

    @property
    def n_small_records(self) -> int:
        return (
            BASE_SMALL_RECORDS
            + RECORDS_PER_THREAD * self.nthreads
            + len(self.regions)
            + sum(image.records for image in self.plugin_images)
        )

    @property
    def bulk_bytes(self) -> int:
        return sum(r.size for r in self.regions) + sum(
            image.bulk_bytes for image in self.plugin_images
        )

    def plugin_payload(self, name: str) -> Optional[Any]:
        """The payload of the named plugin's image, or ``None``."""
        for image in self.plugin_images:
            if image.plugin == name:
                return image.payload
        return None

    def write_plan(self) -> List[Tuple[int, Optional[Any]]]:
        """The (nbytes, record) sequence BLCR pushes through the descriptor.

        The final record carries the context object itself so a reader can
        reconstruct the process; earlier records model the write pattern.
        """
        plan: List[Tuple[int, Optional[Any]]] = []
        for _ in range(self.n_small_records - 1):
            plan.append((SMALL_RECORD, None))
        plan.append((SMALL_RECORD, self))
        for region in self.regions:
            remaining = region.size
            while remaining > 0:
                chunk = min(remaining, BULK_CHUNK)
                plan.append((chunk, None))
                remaining -= chunk
        # Plugin bulk payloads stream after the region pages, in image order
        # (the restore side mirrors this layout).
        for image in self.plugin_images:
            remaining = image.bulk_bytes
            while remaining > 0:
                chunk = min(remaining, BULK_CHUNK)
                plan.append((chunk, None))
                remaining -= chunk
        return plan

    @staticmethod
    def capture(
        proc: SimProcess, registry: Optional["PluginRegistry"] = None
    ) -> "ProcessContext":
        """Freeze a live process into a context (instantaneous state copy).

        Capture is plugin-driven: each registered plugin's ``pre_checkpoint``
        freezes its resource. The built-ins (memory regions, store) fold into
        the legacy context fields; extras append to ``plugin_images``. With
        the default registry the result is bit-for-bit what the monolithic
        capture produced.

        The caller is responsible for quiescence: Snapify guarantees it via
        the pause protocol, native benchmarks via their own structure. The
        copy itself is atomic at the simulated instant it is taken.
        """
        from .plugins import PluginRegistry

        if registry is None:
            registry = PluginRegistry.for_process(proc)
        ctx = ProcessContext(
            name=proc.name,
            nthreads=max(1, len([t for t in proc.threads if t.alive])),
            store={},
            regions=[],
            main_factory=proc.main_factory,
            annotations={},
        )
        for plugin in registry:
            image = plugin.pre_checkpoint(proc)
            if image is None:
                continue
            if plugin.builtin:
                plugin.apply_to_context(ctx, image)
            else:
                ctx.plugin_images.append(image)
        return ctx
