"""Dirty-page tracking for incremental checkpoints.

A :class:`RegionTracker` rides on a :class:`~repro.osim.process.MemoryRegion`
and records which 4 KiB pages have been written since the last capture epoch.
Tracking is strictly opt-in: regions are created without a tracker, the
write-interception hook is a no-op when no tracker is attached, and nothing
here touches the simulator — marking a page dirty costs zero simulated time
and emits zero events, so default runs stay byte-identical on the golden
trace.

The version map is the correctness backbone for the test battery: every
write bumps a per-page version counter, deltas carry the versions of the
pages they ship, and chain reassembly overlays them — so a page the bitmap
*missed* leaves a stale version behind and the reassembled fingerprint
diverges from a full capture taken at the same epoch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

#: Page granularity of dirty tracking (matches the Phi's 4 KiB base pages).
PAGE_SIZE = 4096


def page_span(offset: int, nbytes: int) -> Tuple[int, int]:
    """First and last+1 page index touched by a ``(offset, nbytes)`` write."""
    if offset < 0 or nbytes < 0:
        raise ValueError("negative offset/length in page_span")
    if nbytes == 0:
        return (offset // PAGE_SIZE, offset // PAGE_SIZE)
    first = offset // PAGE_SIZE
    last = (offset + nbytes - 1) // PAGE_SIZE
    return (first, last + 1)


class DirtyBitmap:
    """Set-of-pages bitmap over one region.

    Stored sparsely (a set of page indices): regions are gigabytes but the
    dirty working set of an iterative app is a few percent, and the sparse
    form makes ``dirty_bytes`` and iteration exact with no bit twiddling.
    """

    __slots__ = ("size", "_pages")

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("negative region size")
        self.size = size
        self._pages: Set[int] = set()

    @property
    def n_pages(self) -> int:
        return (self.size + PAGE_SIZE - 1) // PAGE_SIZE

    def mark(self, offset: int, nbytes: int) -> None:
        """Mark every page a ``(offset, nbytes)`` write straddles.

        The write is clamped to the region: bytes past ``size`` (including a
        write starting at or beyond the end) touch no backed page — the tail
        page is only as large as the region's remainder.
        """
        nbytes = min(nbytes, max(0, self.size - offset))
        first, stop = page_span(offset, nbytes)
        if first >= self.n_pages:
            return
        stop = min(stop, self.n_pages)
        for p in range(first, stop):
            self._pages.add(p)

    def mark_all(self) -> None:
        self._pages = set(range(self.n_pages))

    def clear(self) -> None:
        self._pages.clear()

    def is_dirty(self, page: int) -> bool:
        return page in self._pages

    @property
    def dirty_pages(self) -> List[int]:
        """Sorted dirty page indices (deterministic iteration order)."""
        return sorted(self._pages)

    @property
    def dirty_count(self) -> int:
        return len(self._pages)

    @property
    def dirty_bytes(self) -> int:
        """Exact byte size of the dirty set (last page may be partial)."""
        if not self._pages:
            return 0
        total = len(self._pages) * PAGE_SIZE
        last_page = self.n_pages - 1
        if last_page in self._pages:
            tail = self.size - last_page * PAGE_SIZE
            total -= PAGE_SIZE - tail
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DirtyBitmap {self.dirty_count}/{self.n_pages} pages>"


class RegionTracker:
    """Per-region dirty bitmap + epoch counter + per-page version map.

    ``epoch`` counts capture generations: 0 until the first capture rolls
    it. ``page_versions`` maps page index -> monotone write counter (pages
    never written are implicitly version 0); it is what deltas ship and what
    the ``delta_chain_reconstructs`` oracle compares against a full capture.
    """

    __slots__ = ("size", "bitmap", "epoch", "page_versions")

    def __init__(self, size: int):
        self.size = size
        self.bitmap = DirtyBitmap(size)
        self.epoch = 0
        self.page_versions: Dict[int, int] = {}

    def note_write(self, offset: int, nbytes: int) -> None:
        """Record a write: mark pages dirty and bump their versions.

        Clamped to the region like :meth:`DirtyBitmap.mark`: a write landing
        entirely past the end touches no page and bumps no version.
        """
        nbytes = min(nbytes, max(0, self.size - offset))
        first, stop = page_span(offset, nbytes)
        stop = min(stop, self.bitmap.n_pages)
        if first >= stop or nbytes == 0:
            return
        self.bitmap.mark(offset, nbytes)
        for p in range(first, stop):
            self.page_versions[p] = self.page_versions.get(p, 0) + 1

    def roll_epoch(self) -> int:
        """Close the current capture epoch: clear the bitmap, bump epoch.

        Returns the *new* epoch number. Called at capture time, after the
        dirty set has been harvested into a delta.
        """
        self.bitmap.clear()
        self.epoch += 1
        return self.epoch

    def versions_for(self, pages: Iterable[int]) -> Dict[int, int]:
        """Version snapshot of the given pages (missing pages are 0)."""
        return {p: self.page_versions.get(p, 0) for p in pages}

    def all_versions(self) -> Dict[int, int]:
        return dict(self.page_versions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RegionTracker epoch={self.epoch} {self.bitmap!r}>"
