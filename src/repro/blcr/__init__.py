"""BLCR: application-transparent single-process checkpoint/restart."""

from .checkpoint import BLCRError, cr_checkpoint, cr_request_checkpoint
from .context import (
    BASE_SMALL_RECORDS,
    BULK_CHUNK,
    RECORDS_PER_THREAD,
    SMALL_RECORD,
    ProcessContext,
    RegionImage,
)
from .restart import cr_restart

__all__ = [
    "BASE_SMALL_RECORDS",
    "BLCRError",
    "BULK_CHUNK",
    "ProcessContext",
    "RECORDS_PER_THREAD",
    "RegionImage",
    "SMALL_RECORD",
    "cr_checkpoint",
    "cr_request_checkpoint",
    "cr_restart",
]
