"""BLCR: application-transparent single-process checkpoint/restart."""

from .checkpoint import (
    BLCRError,
    cr_checkpoint,
    cr_checkpoint_incremental,
    cr_request_checkpoint,
    cr_request_checkpoint_incremental,
)
from .context import (
    BASE_SMALL_RECORDS,
    BULK_CHUNK,
    RECORDS_PER_THREAD,
    SMALL_RECORD,
    ProcessContext,
    RegionImage,
)
from .dirty import PAGE_SIZE, DirtyBitmap, RegionTracker
from .incremental import (
    ChainError,
    DeltaImage,
    RegionDelta,
    capture_incremental,
    reassemble,
    state_fingerprint,
)
from .restart import cr_restart, cr_restore_context

__all__ = [
    "BASE_SMALL_RECORDS",
    "BLCRError",
    "BULK_CHUNK",
    "ChainError",
    "DeltaImage",
    "DirtyBitmap",
    "PAGE_SIZE",
    "ProcessContext",
    "RECORDS_PER_THREAD",
    "RegionDelta",
    "RegionTracker",
    "RegionImage",
    "SMALL_RECORD",
    "capture_incremental",
    "cr_checkpoint",
    "cr_checkpoint_incremental",
    "cr_request_checkpoint",
    "cr_request_checkpoint_incremental",
    "cr_restart",
    "cr_restore_context",
    "reassemble",
    "state_fingerprint",
]
