"""BLCR restart path.

``cr_restart`` reads a context through a descriptor and rebuilds the process
on a target OS: it re-maps every memory region (which can legitimately fail
with :class:`~repro.hw.memory.MemoryExhausted` — restoring a big process
onto a loaded card is exactly the hazard the paper describes), restores the
store, and restarts the main program with ``_blcr_restored`` set so
resumable programs take their restart branch.
"""

from __future__ import annotations

import copy
from typing import Optional

from ..osim.fd import FileDescriptor
from ..osim.process import OSInstance, SimProcess
from .checkpoint import BLCRError, page_walk_cost
from .context import BULK_CHUNK, RECORD_CPU_COST, SMALL_RECORD, ProcessContext


def cr_restart(
    os: OSInstance,
    fd: FileDescriptor,
    name: Optional[str] = None,
    start: bool = True,
):
    """Sub-generator: rebuild a process from the context behind ``fd``.

    Returns the new :class:`SimProcess`. The read pattern mirrors the write
    pattern: a burst of small metadata reads, then bulk page reads.
    """
    sim = os.sim
    per_byte = page_walk_cost(os)
    ctx: Optional[ProcessContext] = None
    # Metadata burst: read small records until the context header appears,
    # then the remaining per-thread/per-region metadata records.
    reads_done = 0
    for _ in range(100_000):
        yield sim.timeout(RECORD_CPU_COST)
        record = yield from fd.read(SMALL_RECORD)
        reads_done += 1
        if isinstance(record, ProcessContext):
            ctx = record
            break
    if ctx is None:
        raise BLCRError("descriptor did not yield a process context")
    for _ in range(max(0, ctx.n_small_records - reads_done)):
        yield sim.timeout(RECORD_CPU_COST)
        yield from fd.read(SMALL_RECORD)

    # Rebuild the process shell first (fork+exec cost).
    proc = yield from os.spawn_process(
        name or ctx.name, image_size=0, main_factory=ctx.main_factory, start=False
    )

    # Bulk pages: each region is mapped (charging physical memory) while its
    # bytes stream in through the descriptor. Region data and the store are
    # DEEP-COPIED out of the context: a snapshot may be restored from many
    # times (repeated failures), and restored processes must never share
    # mutable state with the context or with each other.
    try:
        for region in ctx.regions:
            proc.map_region(
                region.name, region.size, kind=region.kind,
                data=copy.deepcopy(region.data), pinned=region.pinned,
            )
            remaining = region.size
            while remaining > 0:
                chunk = min(remaining, BULK_CHUNK)
                yield sim.timeout(per_byte * chunk)
                yield from fd.read(chunk)
                remaining -= chunk
    except Exception:
        # Failed restore must not leak the half-built process.
        proc.terminate(code=1)
        raise

    proc.store.update(copy.deepcopy(ctx.store))
    proc.store["_blcr_restored"] = True
    if start:
        proc.start()
    return proc


def cr_restore_context(
    os: OSInstance,
    ctx: ProcessContext,
    name: Optional[str] = None,
    start: bool = True,
):
    """Sub-generator: rebuild a process from an in-memory context.

    The restore path for memory-tier hits: no descriptor reads (the image is
    already resident), but fork+exec, region mapping and the kernel page-walk
    cost over the image bytes are still charged — restoring a big process
    onto a loaded card can still fail with MemoryExhausted.
    """
    sim = os.sim
    per_byte = page_walk_cost(os)
    for _ in range(ctx.n_small_records):
        yield sim.timeout(RECORD_CPU_COST)

    proc = yield from os.spawn_process(
        name or ctx.name, image_size=0, main_factory=ctx.main_factory, start=False
    )
    try:
        for region in ctx.regions:
            proc.map_region(
                region.name, region.size, kind=region.kind,
                data=copy.deepcopy(region.data), pinned=region.pinned,
            )
            remaining = region.size
            while remaining > 0:
                chunk = min(remaining, BULK_CHUNK)
                yield sim.timeout(per_byte * chunk)
                remaining -= chunk
    except Exception:
        proc.terminate(code=1)
        raise

    proc.store.update(copy.deepcopy(ctx.store))
    proc.store["_blcr_restored"] = True
    if start:
        proc.start()
    return proc
